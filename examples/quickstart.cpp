// Quickstart: generate a small correlated sensor network, inject one
// correlation-break anomaly, run CAD, and print what it found.
//
//   ./quickstart [--telemetry-out out.json]
//
// This is the 60-second tour of the public API:
//   datasets::SensorNetworkGenerator / InjectAnomalies  (synthetic data)
//   core::CadOptions / core::CadDetector                (the detector)
//   core::DetectionReport                               (results)
// With --telemetry-out the run also records per-stage spans and dumps the
// metrics registry + Chrome-trace JSONL (see DESIGN.md "Observability").
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "core/cad_detector.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry-out") == 0 && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }
  if (!telemetry_out.empty()) cad::obs::Tracer::Global().Enable();

  // --- 1. A machine with 16 sensors in 4 correlated groups. ---------------
  cad::Rng rng(2024);
  cad::datasets::GeneratorOptions generator_options;
  generator_options.n_sensors = 16;
  generator_options.n_communities = 4;
  generator_options.noise_std = 0.2;
  cad::datasets::SensorNetworkGenerator generator(generator_options, &rng);

  // Historical (healthy) data for the warm-up, then the monitored stream.
  cad::ts::MultivariateSeries history = generator.Generate(1200, &rng);
  cad::ts::MultivariateSeries live = generator.Generate(1800, &rng);

  // --- 2. A fault: three sensors of group 0 decorrelate at t = 900. -------
  cad::datasets::AnomalyEvent fault;
  fault.type = cad::datasets::AnomalyType::kCorrelationBreak;
  fault.start = 900;
  fault.duration = 200;
  fault.sensors = generator.CommunityMembers(0);
  fault.sensors.resize(3);
  const auto labels =
      cad::datasets::InjectAnomalies(generator, {fault}, &live, &rng);

  std::printf("Injected a correlation break at t=[%d, %d) on sensors:",
              fault.start, fault.start + fault.duration);
  for (int sensor : fault.sensors) std::printf(" %d", sensor);
  std::printf("\n\n");

  // --- 3. Configure and run CAD. -------------------------------------------
  cad::core::CadOptions options;
  options.window = 60;  // ~3% of the live stream
  options.step = 2;
  options.k = 4;        // nearest correlated neighbours per sensor
  options.tau = 0.5;    // prune weaker correlations from the TSG
  options.min_sigma = 0.3;  // alarm on >= ~2 simultaneous variations
  cad::core::CadDetector detector(options);

  const cad::core::DetectionReport report =
      detector.Detect(live, &history).ValueOrDie();

  // --- 4. Inspect the results. ---------------------------------------------
  std::printf("Processed %zu rounds in %.3f s (%.2f ms per round).\n",
              report.rounds.size(), report.detect_seconds,
              report.seconds_per_round * 1e3);
  std::printf("Detected %zu anomal%s:\n", report.anomalies.size(),
              report.anomalies.size() == 1 ? "y" : "ies");
  for (const cad::core::Anomaly& anomaly : report.anomalies) {
    std::printf(
        "  time [%4d, %4d)  first alarm at t=%-4d  affected sensors:",
        anomaly.start_time, anomaly.end_time, anomaly.detection_time);
    for (int sensor : anomaly.sensors) std::printf(" %d", sensor);
    std::printf("\n");
  }
  if (!report.anomalies.empty()) {
    const int delay = report.anomalies.front().detection_time - fault.start;
    std::printf("\nFirst alarm fired %d points after fault onset.\n", delay);
  }

  // --- 5. Optional: dump run telemetry. ------------------------------------
  if (!telemetry_out.empty()) {
    const cad::Status status = cad::obs::WriteTelemetry(
        telemetry_out, report.telemetry, cad::obs::Tracer::Global());
    if (!status.ok()) {
      std::fprintf(stderr, "telemetry write failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("Telemetry written to %s (+ .trace.jsonl, .prom).\n",
                telemetry_out.c_str());
  }
  return 0;
}
