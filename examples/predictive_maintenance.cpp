// Predictive maintenance scenario: an assembly line whose gearbox sensors
// begin to decorrelate *gradually* (a mixed correlation-break + drift fault,
// the failure-propagation situation of the paper's introduction). The
// example shows the maintenance workflow: alarm lead time before the fault
// becomes severe, and which components to inspect first.
//
//   ./predictive_maintenance
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/cad_detector.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"

int main() {
  // The "assembly line": 48 sensors across 6 stations.
  cad::Rng rng(77);
  cad::datasets::GeneratorOptions generator_options;
  generator_options.n_sensors = 48;
  generator_options.n_communities = 6;
  generator_options.noise_std = 0.25;
  generator_options.seasonal_period = 160;  // shift pattern
  cad::datasets::SensorNetworkGenerator generator(generator_options, &rng);

  cad::ts::MultivariateSeries history = generator.Generate(2000, &rng);
  cad::ts::MultivariateSeries monitored = generator.Generate(2600, &rng);

  // The developing gearbox fault on station 2: starts as a pure correlation
  // deviation at t=1400 and is declared "severe" (visible damage) at 1700.
  const int fault_onset = 1400;
  const int severe_at = 1700;
  cad::datasets::AnomalyEvent fault;
  fault.type = cad::datasets::AnomalyType::kMixed;
  fault.start = fault_onset;
  fault.duration = 400;
  fault.sensors = generator.CommunityMembers(2);
  fault.sensors.resize(4);  // four bearings of the gearbox
  fault.magnitude = 2.0;
  cad::datasets::InjectAnomalies(generator, {fault}, &monitored, &rng);

  cad::core::CadOptions options;
  options.window = 80;
  options.step = 2;
  options.k = 7;
  options.tau = 0.5;
  options.min_sigma = 0.3;
  cad::core::CadDetector detector(options);
  const cad::core::DetectionReport report =
      detector.Detect(monitored, &history).ValueOrDie();

  std::printf("Assembly line: 48 sensors, 6 stations.\n");
  std::printf("Gearbox fault develops from t=%d; severe damage from t=%d.\n\n",
              fault_onset, severe_at);

  const cad::core::Anomaly* first_hit = nullptr;
  for (const cad::core::Anomaly& anomaly : report.anomalies) {
    if (anomaly.end_time > fault_onset &&
        anomaly.start_time < fault_onset + fault.duration) {
      first_hit = &anomaly;
      break;
    }
  }
  if (first_hit == nullptr) {
    std::printf("No alarm overlapped the fault — inspection missed!\n");
    return 1;
  }

  std::printf("First alarm at t=%d.\n", first_hit->detection_time);
  std::printf("Lead time before severe damage: %d sampling periods.\n",
              severe_at - first_hit->detection_time);

  // Inspection short-list: sensors CAD attributes, mapped to stations.
  std::printf("\nInspection short-list (sensor -> station):\n");
  for (int sensor : first_hit->sensors) {
    const int station = generator.community_of()[sensor];
    const bool truly_faulty =
        std::find(fault.sensors.begin(), fault.sensors.end(), sensor) !=
        fault.sensors.end();
    std::printf("  sensor %-3d station %d%s\n", sensor, station,
                truly_faulty ? "   <- actual fault location" : "");
  }

  // How much operator attention the short-list saves.
  const double ruled_out =
      1.0 - static_cast<double>(first_hit->sensors.size()) /
                static_cast<double>(monitored.n_sensors());
  std::printf("\n%.0f%% of sensors safely ruled out for this inspection.\n",
              ruled_out * 100.0);
  return 0;
}
