// CSV-driven command-line detector: run CAD on your own data.
//
//   ./detect_csv --test readings.csv [--train history.csv]
//                [--window 100] [--step 2] [--k 10] [--tau 0.5]
//                [--scores out.csv]
//
// CSV layout: one row per time point, one column per sensor, header row with
// sensor names. Prints detected anomalies (time span, first alarm, affected
// sensors); --scores writes the per-point anomaly score series for plotting.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cad_detector.h"
#include "core/report_io.h"
#include "ts/csv.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --test data.csv [--train history.csv]\n"
               "          [--window N] [--step N] [--k N] [--tau X]\n"
               "          [--theta X] [--scores out.csv] [--report out.json]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string test_path, train_path, scores_path, report_path;
  cad::core::CadOptions options;
  options.window = 0;  // 0 = auto (2% of the series)

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--test") test_path = next();
    else if (flag == "--train") train_path = next();
    else if (flag == "--scores") scores_path = next();
    else if (flag == "--report") report_path = next();
    else if (flag == "--window") options.window = std::atoi(next());
    else if (flag == "--step") options.step = std::atoi(next());
    else if (flag == "--k") options.k = std::atoi(next());
    else if (flag == "--tau") options.tau = std::atof(next());
    else if (flag == "--theta") options.theta = std::atof(next());
    else Usage(argv[0]);
  }
  if (test_path.empty()) Usage(argv[0]);

  auto test = cad::ts::ReadCsv(test_path);
  if (!test.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", test_path.c_str(),
                 test.status().ToString().c_str());
    return 1;
  }
  cad::ts::MultivariateSeries train;
  if (!train_path.empty()) {
    auto loaded = cad::ts::ReadCsv(train_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", train_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    train = std::move(loaded).value();
  }

  if (options.window == 0) {
    options.window = std::max(32, test.value().length() / 50);
    options.step = std::max(1, options.window / 50);
  }

  cad::core::CadDetector detector(options);
  auto report = detector.Detect(test.value(),
                                train.length() > 0 ? &train : nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("%s: %d sensors x %d points; window=%d step=%d k=%d tau=%.2f\n",
              test_path.c_str(), test.value().n_sensors(),
              test.value().length(), options.window, options.step, options.k,
              options.tau);
  std::printf("%zu rounds, %.2f ms per round\n\n",
              report.value().rounds.size(),
              report.value().seconds_per_round * 1e3);

  if (report.value().anomalies.empty()) {
    std::printf("no anomalies detected\n");
  }
  for (const cad::core::Anomaly& anomaly : report.value().anomalies) {
    std::printf("anomaly [%d, %d)  first alarm t=%d  sensors:",
                anomaly.start_time, anomaly.end_time, anomaly.detection_time);
    for (int v : anomaly.sensors) {
      std::printf(" %s", test.value().sensor_name(v).c_str());
    }
    std::printf("\n");
  }

  if (!report_path.empty()) {
    cad::core::ReportJsonOptions json_options;
    json_options.include_rounds = true;
    const cad::Status status = cad::core::WriteReportJson(
        report.value(), report_path, json_options);
    if (!status.ok()) {
      std::fprintf(stderr, "writing report failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nreport written to %s\n", report_path.c_str());
  }

  if (!scores_path.empty()) {
    cad::ts::MultivariateSeries scores(1, test.value().length());
    scores.set_sensor_name(0, "anomaly_score");
    for (int t = 0; t < test.value().length(); ++t) {
      scores.set_value(0, t, report.value().point_scores[t]);
    }
    const cad::Status status = cad::ts::WriteCsv(scores, scores_path);
    if (!status.ok()) {
      std::fprintf(stderr, "writing scores failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("\nscores written to %s\n", scores_path.c_str());
  }
  return 0;
}
