// Streaming detection: feed sensor samples one at a time into StreamingCad,
// as a plant-floor data collector would (paper Section IV-F). Alarms are
// raised the moment a detection round closes — no batch pass over the data.
//
//   ./streaming_detection [--serve [port]]
//
// With --serve, the detector also exposes its observability surface over
// HTTP on 127.0.0.1 (port 0 = pick an ephemeral one) while the stream runs:
//
//   curl localhost:<port>/metrics            Prometheus text
//   curl localhost:<port>/healthz            liveness JSON
//   curl "localhost:<port>/explain?round=50" decision provenance JSON
//   curl "localhost:<port>/advise"           ranked root-cause advice JSON
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "advisor/advisor.h"
#include "common/rng.h"
#include "core/streaming.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"

int main(int argc, char** argv) {
  int exposition_port = -1;  // off unless --serve
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0) {
      exposition_port = 0;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        exposition_port = std::atoi(argv[++i]);
      }
    }
  }
  cad::Rng rng(7);
  cad::datasets::GeneratorOptions generator_options;
  generator_options.n_sensors = 20;
  generator_options.n_communities = 4;
  generator_options.noise_std = 0.2;
  cad::datasets::SensorNetworkGenerator generator(generator_options, &rng);

  cad::ts::MultivariateSeries history = generator.Generate(1500, &rng);
  cad::ts::MultivariateSeries stream = generator.Generate(2400, &rng);

  // Two faults arriving mid-stream.
  std::vector<cad::datasets::AnomalyEvent> faults(2);
  faults[0].type = cad::datasets::AnomalyType::kCorrelationBreak;
  faults[0].start = 800;
  faults[0].duration = 180;
  faults[0].sensors = generator.CommunityMembers(1);
  faults[0].sensors.resize(3);
  faults[1].type = cad::datasets::AnomalyType::kMixed;
  faults[1].start = 1700;
  faults[1].duration = 220;
  faults[1].sensors = generator.CommunityMembers(3);
  faults[1].sensors.resize(4);
  cad::datasets::InjectAnomalies(generator, faults, &stream, &rng);

  cad::core::CadOptions options;
  options.window = 64;
  options.step = 2;
  options.k = 5;
  options.tau = 0.5;
  options.min_sigma = 0.3;  // require ~2 simultaneous variations per alarm
  options.exposition_port = exposition_port;

  cad::core::StreamingCad detector(stream.n_sensors(), options);
  if (detector.exposition_port() > 0) {
    std::printf("Exposition server on 127.0.0.1:%d — try:\n",
                detector.exposition_port());
    std::printf("  curl localhost:%d/metrics\n", detector.exposition_port());
    std::printf("  curl localhost:%d/healthz\n", detector.exposition_port());
    std::printf("  curl \"localhost:%d/explain?round=50\"\n",
                detector.exposition_port());
    std::printf("  curl \"localhost:%d/advise\"\n\n",
                detector.exposition_port());
  }
  const cad::Status warmup_status = detector.WarmUp(history);
  if (!warmup_status.ok()) {
    std::fprintf(stderr, "Warm-up failed: %s\n",
                 warmup_status.message().c_str());
    return 1;
  }
  std::printf("Warm-up done: mu=%.2f sigma=%.2f over the healthy history.\n\n",
              detector.mu(), detector.sigma());

  // The ingest loop: one sample per tick.
  std::vector<double> sample(stream.n_sensors());
  int alarms = 0;
  int last_abnormal_round = -1;
  bool was_open = false;
  for (int t = 0; t < stream.length(); ++t) {
    for (int i = 0; i < stream.n_sensors(); ++i) sample[i] = stream.value(i, t);
    const auto event = detector.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;

    if (event->abnormal) last_abnormal_round = event->round;
    if (event->abnormal && !was_open) {
      ++alarms;
      std::printf("t=%-5d ALARM #%d  n_r=%d (mu=%.2f sigma=%.2f) outliers:",
                  t, alarms, event->n_variations, event->mu, event->sigma);
      for (int sensor : event->entered) std::printf(" %d", sensor);
      // Movers (Definition 2) are the attribution-grade subset: sensors that
      // changed community this round, not merely persistent outliers.
      if (!event->entered_movers.empty()) {
        std::printf("  movers:");
        for (int sensor : event->entered_movers) std::printf(" %d", sensor);
      }
      std::printf("\n");
    }
    if (!event->abnormal && was_open) {
      // anomalies() returns a snapshot copy; keep the element by value.
      const cad::core::Anomaly closed = detector.anomalies().back();
      std::printf("t=%-5d cleared; anomaly spanned [%d, %d), sensors:",
                  t, closed.start_time, closed.end_time);
      for (int sensor : closed.sensors) std::printf(" %d", sensor);
      std::printf("\n");
    }
    was_open = detector.anomaly_open();
  }

  std::printf("\nStream complete: %d rounds, %zu anomalies closed.\n",
              detector.rounds_completed(), detector.anomalies().size());

  // Decision provenance: the flight recorder can say *why* a round fired
  // long after the fact (the /explain endpoint serves the same record).
  if (last_abnormal_round >= 0) {
    const auto provenance = detector.Explain(last_abnormal_round);
    if (provenance.has_value()) {
      const auto& record = provenance->record;
      std::printf("Why round %d fired: n_r=%d vs mu=%.2f sigma=%.2f "
                  "(threshold %.2f)",
                  record.round, record.n_variations, record.mu, record.sigma,
                  record.threshold);
      if (provenance->has_prev) {
        std::printf("; vs round %d: dn_r=%+d dmu=%+.2f",
                    provenance->prev_round, provenance->delta_n_variations,
                    provenance->delta_mu);
      }
      std::printf("\n");
    }
  }
  // Root-cause triage over the whole flight log: who to look at first.
  // (A live scrape of /advise serves the same ranking as JSON.)
  const cad::advisor::AdviceReport advice =
      cad::advisor::Advise(detector.FlightLog(), cad::advisor::AdviseWindow{});
  if (!advice.ranking.empty()) {
    std::printf("Top root causes (severity = movers >> deviation >> "
                "residency >> churn):\n");
    const size_t shown = advice.ranking.size() < 3 ? advice.ranking.size() : 3;
    for (size_t i = 0; i < shown; ++i) {
      const cad::advisor::SensorFinding& finding = advice.ranking[i];
      std::printf("  #%zu sensor %-3d severity %.2f  onset round %d "
                  "(samples [%d, %d))  blast radius %d\n",
                  i + 1, finding.sensor, finding.severity, finding.onset_round,
                  finding.onset_window_start, finding.onset_window_end,
                  finding.blast_radius);
    }
  }
  auto print_fault = [](const cad::datasets::AnomalyEvent& fault) {
    std::printf("  [%d, %d) sensors:", fault.start,
                fault.start + fault.duration);
    for (int sensor : fault.sensors) std::printf(" %d", sensor);
    std::printf("\n");
  };
  std::printf("Ground truth faults:\n");
  print_fault(faults[0]);
  print_fault(faults[1]);
  return 0;
}
