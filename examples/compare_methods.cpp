// Method comparison on one dataset with the paper's Delay-aware Evaluation:
// runs CAD and a chosen set of baselines on a synthetic PSM-like dataset and
// prints F1_PA, F1_DPA, and Ahead/Miss of CAD against each baseline.
//
//   ./compare_methods                 # CAD vs LOF, ECOD, IForest, S2G
//   ./compare_methods USAD RCoders    # pick your own baselines
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/method_registry.h"
#include "baselines/parallel_ensemble.h"
#include "check/check.h"
#include "datasets/registry.h"
#include "eval/ahead_miss.h"
#include "eval/threshold.h"

namespace {

cad::eval::Labels Binarize(const std::vector<double>& scores,
                           const cad::eval::Labels& truth) {
  const cad::eval::BestF1 best = cad::eval::BestF1Search(
      scores, truth, cad::eval::Adjustment::kDelayPointAdjust, 0.005);
  cad::eval::Labels pred(scores.size(), 0);
  for (size_t t = 0; t < scores.size(); ++t) {
    pred[t] = scores[t] >= best.threshold ? 1 : 0;
  }
  return pred;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> baselines = {"LOF", "ECOD", "IForest", "S2G"};
  if (argc > 1) {
    baselines.assign(argv + 1, argv + argc);
  }

  cad::datasets::DatasetProfile profile =
      cad::datasets::ProfileByName("PSM").ValueOrDie();
  profile.train_length = 1500;
  profile.test_length = 2000;
  profile.n_anomalies = 5;
  const cad::datasets::LabeledDataset dataset =
      cad::datasets::MakeDataset(profile);
  std::printf("Dataset: %s analogue, %d sensors, %d test points, %zu anomalies\n\n",
              dataset.name.c_str(), dataset.test.n_sensors(),
              dataset.test.length(), dataset.anomalies.size());

  auto evaluate = [&](const std::string& name) {
    auto method = cad::baselines::MakeMethod(name, dataset.recommended, 42);
    if (dataset.has_train()) {
      const cad::Status status = method->Fit(dataset.train);
      CAD_CHECK(status.ok(), status.ToString());
    }
    return method->Score(dataset.test).ValueOrDie();
  };

  const std::vector<double> cad_scores = evaluate("CAD");
  const cad::eval::Labels cad_pred = Binarize(cad_scores, dataset.labels);
  auto f1 = [&](const std::vector<double>& scores, cad::eval::Adjustment mode) {
    return cad::eval::BestF1Search(scores, dataset.labels, mode, 0.005).f1;
  };

  std::printf("%-10s %8s %8s %9s %8s\n", "Method", "F1_PA", "F1_DPA",
              "CAD Ahead", "CAD Miss");
  std::printf("%-10s %7.1f%% %7.1f%% %9s %8s\n", "CAD",
              100.0 * f1(cad_scores, cad::eval::Adjustment::kPointAdjust),
              100.0 * f1(cad_scores, cad::eval::Adjustment::kDelayPointAdjust),
              "-", "-");

  for (const std::string& name : baselines) {
    const std::vector<double> scores = evaluate(name);
    const cad::eval::AheadMiss daes = cad::eval::CompareAheadMiss(
        cad_pred, Binarize(scores, dataset.labels), dataset.labels);
    std::printf("%-10s %7.1f%% %7.1f%% %8.1f%% %7.1f%%\n", name.c_str(),
                100.0 * f1(scores, cad::eval::Adjustment::kPointAdjust),
                100.0 * f1(scores, cad::eval::Adjustment::kDelayPointAdjust),
                100.0 * daes.ahead, 100.0 * daes.miss);
  }
  // The Section IV-F suggestion: CAD in parallel with a point detector
  // covers amplitude-only anomalies CAD alone cannot see.
  {
    std::vector<std::unique_ptr<cad::baselines::Detector>> members;
    members.push_back(
        cad::baselines::MakeMethod("CAD", dataset.recommended, 42));
    members.push_back(
        cad::baselines::MakeMethod("ECOD", dataset.recommended, 42));
    cad::baselines::ParallelEnsemble ensemble(std::move(members));
    if (dataset.has_train()) {
      // Hoisted out of the check: CAD_CHECK conditions must stay side-effect
      // free (they vanish at CAD_CHECK_LEVEL=off).
      const cad::Status fit_status = ensemble.Fit(dataset.train);
      CAD_CHECK(fit_status.ok(), "ensemble fit failed: ", fit_status.ToString());
    }
    const std::vector<double> scores =
        ensemble.Score(dataset.test).ValueOrDie();
    std::printf("%-10s %7.1f%% %7.1f%% %9s %8s   (Section IV-F ensemble)\n",
                ensemble.name().c_str(),
                100.0 * f1(scores, cad::eval::Adjustment::kPointAdjust),
                100.0 * f1(scores, cad::eval::Adjustment::kDelayPointAdjust),
                "-", "-");
  }

  std::printf(
      "\nAhead: share of CAD-detected anomalies CAD found before the "
      "baseline.\nMiss: share of CAD-missed anomalies the baseline caught.\n");
  return 0;
}
