// Export a registry benchmark dataset to a directory of CSV files so it can
// be consumed by external tools (Python notebooks, other detectors) or
// frozen as a regression fixture — and load it back through the same API.
//
//   ./export_dataset PSM /tmp/psm_dataset
//   ./export_dataset SMD-7 /tmp/smd7 --train 800 --test 1200 --anomalies 3
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "datasets/dataset_io.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <profile> <output-dir> [--train N] [--test N] "
                 "[--anomalies N]\n"
                 "profiles: PSM SWaT IS-1..IS-5 SMD-1..SMD-28\n",
                 argv[0]);
    return 2;
  }
  const std::string name = argv[1];
  const std::string dir = argv[2];

  cad::datasets::DatasetProfile profile;
  if (name.rfind("SMD-", 0) == 0) {
    const int index = std::atoi(name.c_str() + 4);
    if (index < 1 || index > 28) {
      std::fprintf(stderr, "SMD subset index must be 1..28\n");
      return 2;
    }
    profile = cad::datasets::SmdSubsetProfile(index);
  } else {
    auto found = cad::datasets::ProfileByName(name);
    if (!found.ok()) {
      std::fprintf(stderr, "%s\n", found.status().ToString().c_str());
      return 2;
    }
    profile = found.value();
  }
  // Laptop-scale defaults; override with flags.
  profile.train_length = std::min(profile.train_length, 1500);
  profile.test_length = std::min(profile.test_length, 2000);
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const int value = std::atoi(argv[i + 1]);
    if (flag == "--train") profile.train_length = value;
    else if (flag == "--test") profile.test_length = value;
    else if (flag == "--anomalies") profile.n_anomalies = value;
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 2;
    }
  }

  const cad::datasets::LabeledDataset dataset =
      cad::datasets::MakeDataset(profile);
  std::filesystem::create_directories(dir);
  const cad::Status status = cad::datasets::SaveDataset(dataset, dir);
  if (!status.ok()) {
    std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%s: %d sensors, train %d, test %d, %zu anomalies -> %s\n",
              dataset.name.c_str(), dataset.test.n_sensors(),
              dataset.train.length(), dataset.test.length(),
              dataset.anomalies.size(), dir.c_str());

  // Round-trip sanity: load it back and confirm the shape.
  const auto loaded = cad::datasets::LoadDataset(dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "reload failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("reload OK (%d x %d test, %zu anomalies)\n",
              loaded.value().test.n_sensors(), loaded.value().test.length(),
              loaded.value().anomalies.size());
  return 0;
}
