// Unit tests for cad::advisor: window selection, membership replay, onset /
// severity / blast-radius semantics, incident segments, and the
// byte-determinism contract (including the %.9g canonicalization that keeps
// the live and offline paths byte-identical).
#include "advisor/advisor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace cad::advisor {
namespace {

obs::DecisionRecord MakeRecord(int round, double score = 0.5,
                               bool abnormal = false,
                               bool anomaly_open = false) {
  obs::DecisionRecord record;
  record.round = round;
  record.window_start = round * 4;
  record.window_end = round * 4 + 40;
  record.score = score;
  record.abnormal = abnormal;
  record.anomaly_open = anomaly_open;
  record.n_communities = 3;
  record.modularity = 0.42;
  return record;
}

TEST(AdvisorTest, EmptyInputYieldsEmptyReport) {
  const AdviceReport report = Advise({});
  EXPECT_EQ(report.rounds_scanned, 0);
  EXPECT_EQ(report.first_round, -1);
  EXPECT_TRUE(report.ranking.empty());
  EXPECT_TRUE(report.segments.empty());
  EXPECT_TRUE(report.timeline.empty());
  EXPECT_EQ(AdviceReportToJson(report),
            "{\"advice_version\":1,\"window\":{\"first_round\":-1,"
            "\"last_round\":-1,\"rounds_scanned\":0,\"rounds_abnormal\":0},"
            "\"ranking\":[],\"segments\":[],\"timeline\":[]}");
}

TEST(AdvisorTest, WindowBoundsSelectInclusiveRoundRange) {
  std::vector<obs::DecisionRecord> records;
  for (int r = 0; r < 10; ++r) records.push_back(MakeRecord(r));
  const AdviceReport report = Advise(records, AdviseWindow{3, 5});
  EXPECT_EQ(report.first_round, 3);
  EXPECT_EQ(report.last_round, 5);
  EXPECT_EQ(report.rounds_scanned, 3);

  // Unbounded sides clamp to the records present.
  const AdviceReport all = Advise(records);
  EXPECT_EQ(all.first_round, 0);
  EXPECT_EQ(all.last_round, 9);
  EXPECT_EQ(all.rounds_scanned, 10);

  // first > last (both non-negative) selects nothing.
  EXPECT_EQ(Advise(records, AdviseWindow{5, 3}).rounds_scanned, 0);
}

TEST(AdvisorTest, OnsetSeverityAndBlastRadius) {
  std::vector<obs::DecisionRecord> records;
  obs::DecisionRecord r0 = MakeRecord(0, 0.8, /*abnormal=*/true);
  r0.entered = {1};
  r0.movers = {1};
  obs::DecisionRecord r1 =
      MakeRecord(1, 0.9, /*abnormal=*/true, /*anomaly_open=*/true);
  r1.entered = {2};
  obs::DecisionRecord r2 = MakeRecord(2, 0.1);
  r2.exited = {1, 2};
  records = {r0, r1, r2};

  const AdviceReport report = Advise(records);
  ASSERT_EQ(report.ranking.size(), 2u);
  const SensorFinding& first = report.ranking[0];
  const SensorFinding& second = report.ranking[1];

  // Sensor 1: mover at round 0, resident rounds 0-1, one enter + one exit.
  EXPECT_EQ(first.sensor, 1);
  EXPECT_EQ(first.onset_round, 0);
  EXPECT_EQ(first.onset_window_start, 0);
  EXPECT_EQ(first.onset_window_end, 40);
  EXPECT_EQ(first.mover_rounds, 1);
  EXPECT_EQ(first.outlier_rounds, 2);
  EXPECT_EQ(first.enter_count, 1);
  EXPECT_EQ(first.exit_count, 1);
  EXPECT_DOUBLE_EQ(first.structural, 0.8 + 0.9);
  EXPECT_DOUBLE_EQ(first.severity, kMoverWeight * 1 + (0.8 + 0.9) +
                                       kPresenceWeight * 2 +
                                       kChurnWeight * (1 + 1));

  // Sensor 2: collateral — joined later, never moved communities.
  EXPECT_EQ(second.sensor, 2);
  EXPECT_EQ(second.onset_round, 1);
  EXPECT_EQ(second.mover_rounds, 0);
  EXPECT_EQ(second.outlier_rounds, 1);
  EXPECT_LT(second.severity, first.severity);

  // One incident segment spanning the abnormal/anomaly-open rounds, with the
  // cascade order and the asymmetric blast radius.
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_EQ(report.segments[0].first_round, 0);
  EXPECT_EQ(report.segments[0].last_round, 1);
  EXPECT_EQ(report.segments[0].onset_order, (std::vector<int>{1, 2}));
  EXPECT_EQ(first.blast_radius, 1);
  EXPECT_EQ(first.peers, (std::vector<int>{2}));
  EXPECT_EQ(second.blast_radius, 0);
  EXPECT_TRUE(second.peers.empty());

  // All three rounds had activity (set changes / abnormal verdicts).
  EXPECT_EQ(report.timeline.size(), 3u);
  EXPECT_EQ(report.timeline[0].delta_communities, 0);
  EXPECT_TRUE(report.timeline[0].abnormal);
  EXPECT_FALSE(report.timeline[2].abnormal);
}

TEST(AdvisorTest, ExitWithoutEntryPinsOnsetToWindowStart) {
  // Sensor 7 was resident before the scanned window opened; the only
  // in-window evidence is its exit. Its onset predates the window, so it is
  // pinned to the window's first scanned round.
  std::vector<obs::DecisionRecord> records = {MakeRecord(5), MakeRecord(6)};
  records[1].exited = {7};
  const AdviceReport report = Advise(records);
  ASSERT_EQ(report.ranking.size(), 1u);
  EXPECT_EQ(report.ranking[0].sensor, 7);
  EXPECT_EQ(report.ranking[0].onset_round, 5);
  EXPECT_EQ(report.ranking[0].onset_window_start, 20);
  EXPECT_EQ(report.ranking[0].exit_count, 1);
  // Residency was never observed in-window, so no outlier rounds accrue.
  EXPECT_EQ(report.ranking[0].outlier_rounds, 0);
}

TEST(AdvisorTest, SeparateAbnormalRunsYieldSeparateSegments) {
  std::vector<obs::DecisionRecord> records;
  records.push_back(MakeRecord(0, 0.9, true));
  records.push_back(MakeRecord(1, 0.1));
  records.push_back(MakeRecord(2, 0.9, true));
  records.push_back(MakeRecord(3, 0.9, true));
  const AdviceReport report = Advise(records);
  ASSERT_EQ(report.segments.size(), 2u);
  EXPECT_EQ(report.segments[0].first_round, 0);
  EXPECT_EQ(report.segments[0].last_round, 0);
  EXPECT_EQ(report.segments[1].first_round, 2);
  EXPECT_EQ(report.segments[1].last_round, 3);
  EXPECT_EQ(report.rounds_abnormal, 3);
}

TEST(AdvisorTest, WindowForSamplesUsesRecordedSpans) {
  std::vector<obs::DecisionRecord> records;
  for (int r = 0; r < 10; ++r) records.push_back(MakeRecord(r));
  // Round r spans [4r, 4r + 40): sample 50 is covered by rounds 3..9 (the
  // first window containing it starts at round ceil((50-40+1)/4) = 3).
  AdviseWindow window = WindowForSamples(records, 50, 50);
  EXPECT_EQ(window.first_round, 3);
  EXPECT_EQ(window.last_round, 9);
  // A range beyond every span selects nothing, and Advise agrees.
  window = WindowForSamples(records, 500, 600);
  EXPECT_GT(window.first_round, window.last_round);
  EXPECT_EQ(Advise(records, window).rounds_scanned, 0);
}

// The offline path re-parses doubles from their %.9g rendering. Advise must
// produce byte-identical JSON from the original and the re-parsed records.
TEST(AdvisorTest, CanonicalizationMakesLiveAndReparsedRecordsAgree) {
  std::vector<obs::DecisionRecord> live;
  obs::DecisionRecord r0 = MakeRecord(0, 0.123456789123456789, true);
  r0.entered = {1, 2};
  r0.movers = {1};
  r0.modularity = 0.987654321987654321;
  obs::DecisionRecord r1 = MakeRecord(1, 0.333333333333333333, true, true);
  r1.exited = {2};
  live = {r0, r1};

  std::vector<obs::DecisionRecord> reparsed = live;
  for (obs::DecisionRecord& record : reparsed) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", record.score);
    record.score = std::strtod(buf, nullptr);
    std::snprintf(buf, sizeof(buf), "%.9g", record.modularity);
    record.modularity = std::strtod(buf, nullptr);
  }
  // The re-parse genuinely loses bits (else the test proves nothing)...
  ASSERT_NE(reparsed[0].score, live[0].score);
  // ...yet the reports agree byte for byte.
  EXPECT_EQ(AdviceReportToJson(Advise(live)),
            AdviceReportToJson(Advise(reparsed)));
}

TEST(AdvisorTest, JsonIsByteDeterministicAcrossRuns) {
  std::vector<obs::DecisionRecord> records;
  for (int r = 0; r < 6; ++r) {
    obs::DecisionRecord record = MakeRecord(r, 0.1 * r, r % 2 == 1);
    if (r == 2) record.entered = {3, 5};
    if (r == 4) record.exited = {5};
    records.push_back(record);
  }
  const std::string a = AdviceReportToJson(Advise(records));
  const std::string b = AdviceReportToJson(Advise(records));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"advice_version\":1"), std::string::npos);
  EXPECT_NE(a.find("\"ranking\":["), std::string::npos);
  EXPECT_NE(a.find("\"segments\":["), std::string::npos);
  EXPECT_NE(a.find("\"timeline\":["), std::string::npos);
}

}  // namespace
}  // namespace cad::advisor
