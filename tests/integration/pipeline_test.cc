// End-to-end integration tests: dataset generation -> CAD detection ->
// evaluation, exercising the same pipeline as the benchmark harness on
// shrunken dataset profiles.
#include <gtest/gtest.h>

#include "baselines/cad_adapter.h"
#include "baselines/method_registry.h"
#include "core/cad_detector.h"
#include "datasets/registry.h"
#include "eval/ahead_miss.h"
#include "eval/sensor_eval.h"
#include "eval/threshold.h"

namespace cad {
namespace {

datasets::LabeledDataset SmallPsm() {
  datasets::DatasetProfile profile =
      datasets::ProfileByName("PSM").ValueOrDie();
  profile.train_length = 800;
  profile.test_length = 1500;
  profile.n_anomalies = 4;
  return datasets::MakeDataset(profile);
}

TEST(PipelineTest, CadAchievesHighF1OnPsmLikeData) {
  const datasets::LabeledDataset dataset = SmallPsm();
  core::CadDetector detector(dataset.recommended);
  const core::DetectionReport report =
      detector.Detect(dataset.test, &dataset.train).ValueOrDie();

  const eval::BestF1 pa = eval::BestF1Search(
      report.point_scores, dataset.labels, eval::Adjustment::kPointAdjust, 0.01);
  const eval::BestF1 dpa =
      eval::BestF1Search(report.point_scores, dataset.labels,
                         eval::Adjustment::kDelayPointAdjust, 0.01);
  EXPECT_GT(pa.f1, 0.8) << "F1_PA too low";
  EXPECT_GT(dpa.f1, 0.6) << "F1_DPA too low";
  EXPECT_LE(dpa.f1, pa.f1 + 1e-12);
}

TEST(PipelineTest, CadSensorAttributionBeatsChance) {
  const datasets::LabeledDataset dataset = SmallPsm();
  baselines::CadAdapter adapter(dataset.recommended);
  ASSERT_TRUE(adapter.Fit(dataset.train).ok());
  adapter.Score(dataset.test).ValueOrDie();

  std::vector<eval::SensorPrediction> predictions;
  for (const core::Anomaly& anomaly : adapter.last_report()->anomalies) {
    predictions.push_back(
        {{anomaly.start_time, anomaly.end_time}, anomaly.sensors});
  }
  const double f1_sensor = eval::SensorF1(predictions, dataset.anomalies);
  EXPECT_GT(f1_sensor, 0.4);
}

TEST(PipelineTest, CadDetectsEarlyRelativeToDetectionSpan) {
  // Every detected anomaly's detection time should fall in the first half of
  // the overlapping ground-truth segment (early detection, Section VI-G).
  const datasets::LabeledDataset dataset = SmallPsm();
  core::CadDetector detector(dataset.recommended);
  const core::DetectionReport report =
      detector.Detect(dataset.test, &dataset.train).ValueOrDie();

  int matched = 0, early = 0;
  for (const eval::SensorGroundTruth& truth : dataset.anomalies) {
    for (const core::Anomaly& anomaly : report.anomalies) {
      if (anomaly.start_time < truth.segment.end &&
          anomaly.end_time > truth.segment.begin) {
        ++matched;
        const int midpoint = (truth.segment.begin + truth.segment.end) / 2;
        if (anomaly.detection_time <= midpoint) ++early;
        break;
      }
    }
  }
  ASSERT_GT(matched, 0);
  EXPECT_GE(early * 2, matched);  // at least half of detections are early
}

TEST(PipelineTest, DaEComparesCadAgainstEcod) {
  const datasets::LabeledDataset dataset = SmallPsm();

  auto cad = baselines::MakeMethod("CAD", dataset.recommended, 1);
  auto ecod = baselines::MakeMethod("ECOD", dataset.recommended, 1);
  ASSERT_TRUE(cad->Fit(dataset.train).ok());
  ASSERT_TRUE(ecod->Fit(dataset.train).ok());
  const std::vector<double> cad_scores = cad->Score(dataset.test).ValueOrDie();
  const std::vector<double> ecod_scores =
      ecod->Score(dataset.test).ValueOrDie();

  // Binarize each method at its own best-F1 threshold (paper protocol).
  auto binarize = [&](const std::vector<double>& scores) {
    const eval::BestF1 best = eval::BestF1Search(
        scores, dataset.labels, eval::Adjustment::kDelayPointAdjust, 0.01);
    eval::Labels pred(scores.size(), 0);
    for (size_t t = 0; t < scores.size(); ++t) {
      pred[t] = scores[t] >= best.threshold ? 1 : 0;
    }
    return pred;
  };
  const eval::AheadMiss result = eval::CompareAheadMiss(
      binarize(cad_scores), binarize(ecod_scores), dataset.labels);
  EXPECT_EQ(result.total_anomalies, 4);
  // CAD should detect most anomalies on this easy profile.
  EXPECT_GE(result.detected_by_m1, 3);
  // Sanity on ranges.
  EXPECT_GE(result.ahead, 0.0);
  EXPECT_LE(result.ahead, 1.0);
  EXPECT_GE(result.miss, 0.0);
  EXPECT_LE(result.miss, 1.0);
}

TEST(PipelineTest, SmdSubsetWithoutWarmupWorks) {
  datasets::DatasetProfile profile = datasets::SmdSubsetProfile(2);
  profile.train_length = 0;  // CAD's SMD protocol: no warm-up
  profile.test_length = 1200;
  profile.n_anomalies = 3;
  const datasets::LabeledDataset dataset = datasets::MakeDataset(profile);
  ASSERT_FALSE(dataset.has_train());

  core::CadDetector detector(dataset.recommended);
  const core::DetectionReport report =
      detector.Detect(dataset.test, nullptr).ValueOrDie();
  const eval::BestF1 pa = eval::BestF1Search(
      report.point_scores, dataset.labels, eval::Adjustment::kPointAdjust, 0.01);
  EXPECT_GT(pa.f1, 0.5);
}

TEST(PipelineTest, StochasticMethodsVaryDeterministicOnesDoNot) {
  datasets::DatasetProfile profile = datasets::ProfileByName("PSM").ValueOrDie();
  profile.train_length = 500;
  profile.test_length = 700;
  profile.n_anomalies = 2;
  const datasets::LabeledDataset dataset = datasets::MakeDataset(profile);

  auto run = [&](const std::string& name, uint64_t seed) {
    auto method = baselines::MakeMethod(name, dataset.recommended, seed);
    if (dataset.has_train()) {
      EXPECT_TRUE(method->Fit(dataset.train).ok());
    }
    return method->Score(dataset.test).ValueOrDie();
  };
  EXPECT_EQ(run("CAD", 1), run("CAD", 2));
  EXPECT_EQ(run("ECOD", 1), run("ECOD", 2));
  EXPECT_NE(run("IForest", 1), run("IForest", 2));
}

}  // namespace
}  // namespace cad
