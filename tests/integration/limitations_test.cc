// Reproduces the limitations the paper itself states (Section IV-F):
// "CAD might fail to detect anomalies if there is no correlation in the
// sensor network or the set of affected sensors remain the same correlation
// to each other" — and verifies the suggested remedy (running CAD in
// parallel with another detector) covers the blind spot.
#include <gtest/gtest.h>

#include "baselines/cad_adapter.h"
#include "baselines/ecod.h"
#include "baselines/parallel_ensemble.h"
#include "common/rng.h"
#include "core/cad_detector.h"
#include "datasets/generator.h"
#include "eval/threshold.h"

namespace cad {
namespace {

core::CadOptions SmallOptions() {
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.min_sigma = 0.3;
  return options;
}

TEST(LimitationsTest, UncorrelatedNetworkProducesNoSignal) {
  // Pure white-noise sensors: the TSG has (almost) no edges above tau, every
  // vertex is a permanent isolate, n_r stays 0 — CAD stays silent instead of
  // hallucinating anomalies.
  Rng rng(901);
  ts::MultivariateSeries train(10, 600), test(10, 900);
  for (int i = 0; i < 10; ++i) {
    for (int t = 0; t < 600; ++t) train.set_value(i, t, rng.Gaussian());
    for (int t = 0; t < 900; ++t) test.set_value(i, t, rng.Gaussian());
  }
  core::CadDetector detector(SmallOptions());
  const core::DetectionReport report =
      detector.Detect(test, &train).ValueOrDie();
  EXPECT_TRUE(report.anomalies.empty());
}

// A fault that moves every sensor's level together: all pairwise
// correlations survive, so CAD is blind by design — the paper's second
// limitation case.
struct GlobalShiftScenario {
  ts::MultivariateSeries train;
  ts::MultivariateSeries test;
  eval::Labels labels;
};

GlobalShiftScenario MakeGlobalShift() {
  Rng rng(902);
  datasets::GeneratorOptions options;
  options.n_sensors = 12;
  options.n_communities = 3;
  options.noise_std = 0.1;
  datasets::SensorNetworkGenerator generator(options, &rng);
  GlobalShiftScenario scenario;
  scenario.train = generator.Generate(600, &rng);
  scenario.test = generator.Generate(900, &rng);
  scenario.labels.assign(900, 0);
  for (int t = 450; t < 560; ++t) {
    scenario.labels[t] = 1;
    for (int i = 0; i < 12; ++i) {
      // Same large offset on every sensor: amplitudes scream, correlations
      // between sensors are untouched.
      scenario.test.set_value(i, t, scenario.test.value(i, t) + 5.0);
    }
  }
  return scenario;
}

TEST(LimitationsTest, CorrelationPreservingShiftIsCadsBlindSpot) {
  const GlobalShiftScenario scenario = MakeGlobalShift();
  baselines::CadAdapter cad(SmallOptions());
  ASSERT_TRUE(cad.Fit(scenario.train).ok());
  const std::vector<double> cad_scores =
      cad.Score(scenario.test).ValueOrDie();
  const double cad_f1 =
      eval::BestF1Search(cad_scores, scenario.labels,
                         eval::Adjustment::kPointAdjust, 0.01)
          .f1;

  baselines::Ecod ecod;
  ASSERT_TRUE(ecod.Fit(scenario.train).ok());
  const std::vector<double> ecod_scores =
      ecod.Score(scenario.test).ValueOrDie();
  const double ecod_f1 =
      eval::BestF1Search(ecod_scores, scenario.labels,
                         eval::Adjustment::kPointAdjust, 0.01)
          .f1;

  // The amplitude method nails it; CAD cannot see it.
  EXPECT_GT(ecod_f1, 0.95);
  EXPECT_LT(cad_f1, ecod_f1 - 0.2);
}

TEST(LimitationsTest, ParallelEnsembleCoversTheBlindSpot) {
  const GlobalShiftScenario scenario = MakeGlobalShift();

  baselines::CadAdapter cad_alone(SmallOptions());
  ASSERT_TRUE(cad_alone.Fit(scenario.train).ok());
  const double cad_f1 =
      eval::BestF1Search(cad_alone.Score(scenario.test).ValueOrDie(),
                         scenario.labels, eval::Adjustment::kPointAdjust, 0.01)
          .f1;

  std::vector<std::unique_ptr<baselines::Detector>> members;
  members.push_back(std::make_unique<baselines::CadAdapter>(SmallOptions()));
  members.push_back(std::make_unique<baselines::Ecod>());
  baselines::ParallelEnsemble ensemble(std::move(members),
                                       baselines::ScoreFusion::kMax);
  ASSERT_TRUE(ensemble.Fit(scenario.train).ok());
  const std::vector<double> fused =
      ensemble.Score(scenario.test).ValueOrDie();
  const double fused_f1 =
      eval::BestF1Search(fused, scenario.labels,
                         eval::Adjustment::kPointAdjust, 0.01)
          .f1;
  // The Section IV-F remedy: the ensemble never loses CAD's signal (under
  // PA, CAD already gets credit for detecting the shift's *boundaries*,
  // where correlations warp through the step) and adds ECOD's coverage of
  // the amplitude interior. Max fusion also inherits CAD's false positives,
  // so it does not fully reach ECOD's solo score.
  EXPECT_GE(fused_f1, cad_f1 - 0.05);
  EXPECT_GT(fused_f1, 0.7);
}

}  // namespace
}  // namespace cad
