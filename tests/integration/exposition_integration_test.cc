// Acceptance gate for the observability surface: a live StreamingCad is
// scraped over HTTP (/metrics, /healthz, /explain?round=r, /advise) and the
// explain record must be byte-identical — in its deterministic prefix — to
// the decision provenance the batch driver reports for the same input. One
// detection engine, two drivers, one flight-recorder story. The /advise body
// must additionally byte-compare against the offline replay: the real
// cad_explain binary (CAD_EXPLAIN_BIN) run with --advise over the same
// flight log dumped to JSONL.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/cad_detector.h"
#include "core/streaming.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "testing/http_client.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

using cad::testing::HttpGet;
using cad::testing::HttpResponse;

CadOptions MakeOptions(obs::Registry* registry) {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  options.metrics_registry = registry;
  return options;
}

// Pushes the whole test split through a stream, sample by sample.
void PushAll(StreamingCad* streaming, const ts::MultivariateSeries& series) {
  std::vector<double> sample(series.n_sensors());
  for (int t = 0; t < series.length(); ++t) {
    for (int i = 0; i < series.n_sensors(); ++i) {
      sample[i] = series.value(i, t);
    }
    ASSERT_TRUE(streaming->Push(sample).ok());
  }
}

TEST(ExpositionIntegrationTest, LiveScrapeMatchesBatchProvenance) {
  const cad::testing::SmallScenario scenario = cad::testing::MakeSmallScenario();

  // Batch run: the reference provenance.
  obs::Registry batch_registry;
  CadDetector detector(MakeOptions(&batch_registry));
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  ASSERT_FALSE(report.flight_log.empty());

  // Streaming run with the exposition server on an ephemeral port.
  obs::Registry stream_registry;
  CadOptions stream_options = MakeOptions(&stream_registry);
  stream_options.exposition_port = 0;
  StreamingCad streaming(scenario.test.n_sensors(), stream_options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  PushAll(&streaming, scenario.test);
  const int port = streaming.exposition_port();
  ASSERT_GT(port, 0) << "exposition server did not come up";

  // /metrics reflects the stream's registry.
  const HttpResponse metrics =
      HttpGet(static_cast<uint16_t>(port), "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status_code, 200);
  // cad_rounds_total also counts the warm-up rounds over the train split, so
  // the exact-value anchor is the sample counter.
  const std::string expected_samples =
      "cad_stream_samples_total " + std::to_string(scenario.test.length()) +
      "\n";
  EXPECT_NE(metrics.body.find(expected_samples), std::string::npos)
      << "metrics scrape disagrees with the pushed sample count";
  EXPECT_NE(metrics.body.find("# TYPE cad_rounds_total counter"),
            std::string::npos);

  // /healthz reports the stream's liveness.
  const HttpResponse healthz =
      HttpGet(static_cast<uint16_t>(port), "/healthz");
  ASSERT_TRUE(healthz.ok);
  EXPECT_EQ(healthz.status_code, 200);
  EXPECT_NE(healthz.body.find(
                "\"samples_seen\":" + std::to_string(scenario.test.length())),
            std::string::npos);
  EXPECT_NE(healthz.body.find("\"flight_ring_size\":"), std::string::npos);

  // Every round still held by both recorders has a byte-identical
  // deterministic record across the drivers.
  int compared = 0;
  for (const obs::DecisionRecord& batch_record : report.flight_log) {
    const std::optional<obs::DecisionProvenance> stream_provenance =
        streaming.Explain(batch_record.round);
    ASSERT_TRUE(stream_provenance.has_value())
        << "round " << batch_record.round << " missing from the stream ring";
    EXPECT_EQ(
        obs::DecisionRecordToJson(stream_provenance->record, false),
        obs::DecisionRecordToJson(batch_record, false))
        << "drivers disagree on round " << batch_record.round;
    ++compared;
  }
  EXPECT_GT(compared, 50) << "scenario too short for a meaningful comparison";

  // The HTTP explain body embeds exactly that deterministic record.
  const obs::DecisionRecord& last = report.flight_log.back();
  const std::optional<obs::DecisionProvenance> batch_provenance =
      ExplainRound(report, last.round);
  ASSERT_TRUE(batch_provenance.has_value());
  const HttpResponse explain = HttpGet(
      static_cast<uint16_t>(port),
      "/explain?round=" + std::to_string(last.round));
  ASSERT_TRUE(explain.ok);
  EXPECT_EQ(explain.status_code, 200);
  const std::string expected_record =
      "{\"record\":" + obs::DecisionRecordToJson(last, false);
  ASSERT_EQ(explain.body.compare(0, expected_record.size(), expected_record),
            0)
      << "explain body prefix:\n"
      << explain.body.substr(0, expected_record.size()) << "\nexpected:\n"
      << expected_record;

  // A round the ring never saw 404s.
  const HttpResponse missing = HttpGet(static_cast<uint16_t>(port),
                                       "/explain?round=999999");
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status_code, 404);
}

TEST(ExpositionIntegrationTest, LiveAdviseMatchesOfflineCadExplainByteForByte) {
  const cad::testing::SmallScenario scenario = cad::testing::MakeSmallScenario();

  obs::Registry registry;
  CadOptions options = MakeOptions(&registry);
  options.exposition_port = 0;
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  PushAll(&streaming, scenario.test);
  const int port = streaming.exposition_port();
  ASSERT_GT(port, 0) << "exposition server did not come up";

  // Live path: scrape /advise over the whole ring.
  const HttpResponse advise = HttpGet(static_cast<uint16_t>(port), "/advise");
  ASSERT_TRUE(advise.ok);
  EXPECT_EQ(advise.status_code, 200);
  ASSERT_FALSE(advise.body.empty());
  EXPECT_EQ(advise.body.compare(0, 20, "{\"advice_version\":1,"), 0)
      << advise.body.substr(0, 80);

  // Offline path: dump the same flight log and replay it through the real
  // cad_explain binary. Its stdout is the advice JSON plus one newline.
  const std::string jsonl = streaming.DumpFlightLogJsonl();
  ASSERT_FALSE(jsonl.empty());
  const std::string log_path = ::testing::TempDir() + "/advise_live.jsonl";
  {
    std::ofstream file(log_path);
    file << jsonl;
  }
  const std::string command =
      std::string(CAD_EXPLAIN_BIN) + " --advise " + log_path;
  FILE* pipe = popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr) << "failed to spawn: " << command;
  std::string offline;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    offline.append(buffer, n);
  }
  const int status = pclose(pipe);
  ASSERT_EQ(WEXITSTATUS(status), 0) << offline;

  // The acceptance bar: live scrape == offline replay, byte for byte.
  EXPECT_EQ(offline, advise.body + "\n")
      << "live /advise and cad_explain --advise disagree";

  // Round-range selection narrows the window, malformed bounds 400, an
  // empty range 404.
  const int last_round = streaming.rounds_completed() - 1;
  const HttpResponse ranged =
      HttpGet(static_cast<uint16_t>(port),
              "/advise?from=" + std::to_string(last_round) +
                  "&to=" + std::to_string(last_round));
  ASSERT_TRUE(ranged.ok);
  EXPECT_EQ(ranged.status_code, 200);
  EXPECT_NE(ranged.body.find("\"rounds_scanned\":1"), std::string::npos)
      << ranged.body.substr(0, 120);
  EXPECT_EQ(HttpGet(static_cast<uint16_t>(port), "/advise?from=abc").status_code,
            400);
  EXPECT_EQ(HttpGet(static_cast<uint16_t>(port),
                    "/advise?from=999990&to=999999")
                .status_code,
            404);
}

TEST(ExpositionIntegrationTest, ServerIsOffByDefault) {
  obs::Registry registry;
  StreamingCad streaming(4, MakeOptions(&registry));
  EXPECT_EQ(streaming.exposition_port(), -1);
}

}  // namespace
}  // namespace cad::core
