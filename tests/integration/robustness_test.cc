// Randomized robustness sweep: across arbitrary (valid) option sets and
// data shapes, the detector must never crash, and every report must be
// well-formed — sizes match, scores stay in [0, 1], anomalies are ordered
// and within range. This is the fuzz-style backstop behind the targeted
// unit tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/cad_detector.h"
#include "core/streaming.h"
#include "datasets/generator.h"

namespace cad::core {
namespace {

struct RandomCase {
  CadOptions options;
  ts::MultivariateSeries train;
  ts::MultivariateSeries test;
};

RandomCase MakeRandomCase(uint64_t seed) {
  Rng rng(seed);
  RandomCase c;

  datasets::GeneratorOptions generator_options;
  generator_options.n_sensors = rng.UniformInt(2, 40);
  generator_options.n_communities =
      rng.UniformInt(1, std::max(2, generator_options.n_sensors / 2));
  generator_options.noise_std = rng.Uniform(0.01, 1.0);
  generator_options.factor_smoothness = rng.Uniform(0.0, 0.95);
  generator_options.baseline_drift_std = rng.Uniform(0.0, 0.1);
  if (rng.NextDouble() < 0.3) {
    generator_options.seasonal_period = rng.UniformInt(10, 200);
  }
  datasets::SensorNetworkGenerator generator(generator_options, &rng);

  const int train_len = rng.UniformInt(0, 400);
  const int test_len = rng.UniformInt(120, 800);
  if (train_len > 60) c.train = generator.Generate(train_len, &rng);
  c.test = generator.Generate(test_len, &rng);

  CadOptions& o = c.options;
  o.window = rng.UniformInt(8, std::max(9, std::min(train_len > 60 ? train_len : test_len, test_len) / 2));
  o.step = rng.UniformInt(1, std::max(2, o.window / 2));
  o.k = rng.UniformInt(1, 12);
  o.tau = rng.Uniform(0.0, 1.0);
  o.theta = rng.Uniform(0.0, 1.0);
  o.eta = rng.Uniform(0.5, 5.0);
  o.min_sigma = rng.Uniform(0.0, 1.0);
  o.rc_window = rng.UniformInt(0, 16);
  o.rc_global_normalization = rng.NextDouble() < 0.3;
  o.use_spearman = rng.NextDouble() < 0.3;
  o.incremental_correlation = rng.NextDouble() < 0.3;
  o.n_threads = rng.UniformInt(1, 4);
  o.window_mark_fraction = rng.Uniform(0.05, 1.0);
  o.use_sigma_rule = rng.NextDouble() < 0.8;
  o.fixed_xi = rng.UniformInt(1, 5);
  return c;
}

class RandomizedDetector : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedDetector, ReportIsAlwaysWellFormed) {
  RandomCase c = MakeRandomCase(GetParam());
  CadDetector detector(c.options);
  const ts::MultivariateSeries* train =
      c.train.length() > 0 ? &c.train : nullptr;
  Result<DetectionReport> result = detector.Detect(c.test, train);
  if (!result.ok()) {
    // Only legitimate validation failures are acceptable (e.g. window was
    // randomly drawn larger than a short train split).
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    return;
  }
  const DetectionReport& report = result.value();
  ASSERT_EQ(report.point_scores.size(), static_cast<size_t>(c.test.length()));
  ASSERT_EQ(report.point_labels.size(), static_cast<size_t>(c.test.length()));
  ASSERT_EQ(report.sensor_labels.size(),
            static_cast<size_t>(c.test.n_sensors()));
  for (double s : report.point_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  int previous_end_round = -1;
  for (const Anomaly& anomaly : report.anomalies) {
    EXPECT_GE(anomaly.first_round, 0);
    EXPECT_LE(anomaly.first_round, anomaly.last_round);
    EXPECT_GT(anomaly.first_round, previous_end_round);  // ordered, disjoint
    previous_end_round = anomaly.last_round;
    EXPECT_GE(anomaly.start_time, 0);
    EXPECT_LE(anomaly.end_time, c.test.length());
    EXPECT_TRUE(std::is_sorted(anomaly.sensors.begin(), anomaly.sensors.end()));
    for (int v : anomaly.sensors) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, c.test.n_sensors());
    }
  }
}

TEST_P(RandomizedDetector, StreamingNeverCrashes) {
  RandomCase c = MakeRandomCase(GetParam() + 5000);
  StreamingCad streaming(c.test.n_sensors(), c.options);
  if (c.train.length() > 0) {
    // May fail validation on degenerate random cases; that's fine here.
    (void)streaming.WarmUp(c.train);
  }
  std::vector<double> sample(c.test.n_sensors());
  for (int t = 0; t < c.test.length(); ++t) {
    for (int i = 0; i < c.test.n_sensors(); ++i) {
      sample[i] = c.test.value(i, t);
    }
    const auto event = streaming.Push(sample);
    ASSERT_TRUE(event.ok());
  }
  for (const Anomaly& anomaly : streaming.anomalies()) {
    EXPECT_LE(anomaly.first_round, anomaly.last_round);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDetector,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace cad::core
