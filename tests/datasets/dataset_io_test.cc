#include "datasets/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

namespace cad::datasets {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cad_dataset_io_" +
           std::to_string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->line());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

LabeledDataset SmallDataset(bool with_train) {
  DatasetProfile profile = SmdSubsetProfile(4);
  profile.train_length = with_train ? 400 : 0;
  profile.test_length = 700;
  profile.n_anomalies = 2;
  return MakeDataset(profile);
}

TEST_F(DatasetIoTest, RoundTripWithTrain) {
  const LabeledDataset original = SmallDataset(true);
  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  const Result<LabeledDataset> loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().name, original.name);
  EXPECT_EQ(loaded.value().train.n_sensors(), original.train.n_sensors());
  EXPECT_EQ(loaded.value().train.length(), original.train.length());
  EXPECT_EQ(loaded.value().test.length(), original.test.length());
  EXPECT_EQ(loaded.value().labels, original.labels);

  // CSV serializes doubles with default precision; values agree closely.
  for (int i = 0; i < original.test.n_sensors(); i += 5) {
    for (int t = 0; t < original.test.length(); t += 101) {
      EXPECT_NEAR(loaded.value().test.value(i, t), original.test.value(i, t),
                  1e-4);
    }
  }

  ASSERT_EQ(loaded.value().anomalies.size(), original.anomalies.size());
  for (size_t a = 0; a < original.anomalies.size(); ++a) {
    EXPECT_EQ(loaded.value().anomalies[a].segment.begin,
              original.anomalies[a].segment.begin);
    EXPECT_EQ(loaded.value().anomalies[a].segment.end,
              original.anomalies[a].segment.end);
    EXPECT_EQ(loaded.value().anomalies[a].sensors,
              original.anomalies[a].sensors);
  }

  const core::CadOptions& a = original.recommended;
  const core::CadOptions& b = loaded.value().recommended;
  EXPECT_EQ(a.window, b.window);
  EXPECT_EQ(a.step, b.step);
  EXPECT_EQ(a.k, b.k);
  EXPECT_DOUBLE_EQ(a.tau, b.tau);
  EXPECT_DOUBLE_EQ(a.theta, b.theta);
  EXPECT_DOUBLE_EQ(a.min_sigma, b.min_sigma);
}

TEST_F(DatasetIoTest, RoundTripWithoutTrain) {
  const LabeledDataset original = SmallDataset(false);
  ASSERT_FALSE(original.has_train());
  ASSERT_TRUE(SaveDataset(original, dir_).ok());
  const Result<LabeledDataset> loaded = LoadDataset(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded.value().has_train());
}

TEST_F(DatasetIoTest, LoadFromMissingDirectoryFails) {
  const Result<LabeledDataset> loaded = LoadDataset("/no/such/dir");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetIoTest, SaveRejectsInconsistentLabels) {
  LabeledDataset broken = SmallDataset(false);
  broken.labels.pop_back();
  EXPECT_FALSE(SaveDataset(broken, dir_).ok());
}

}  // namespace
}  // namespace cad::datasets
