#include "datasets/anomaly_injector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"

namespace cad::datasets {
namespace {

struct Fixture {
  Fixture() : rng(42), generator(MakeOptions(), &rng) {
    series = generator.Generate(1000, &rng);
  }
  static GeneratorOptions MakeOptions() {
    GeneratorOptions options;
    options.n_sensors = 8;
    options.n_communities = 2;
    options.noise_std = 0.1;
    return options;
  }
  Rng rng;
  SensorNetworkGenerator generator;
  ts::MultivariateSeries series;
};

TEST(InjectorTest, LabelsCoverExactlyTheEvents) {
  Fixture f;
  AnomalyEvent event;
  event.type = AnomalyType::kLevelShift;
  event.start = 200;
  event.duration = 50;
  event.sensors = {0, 1};
  const eval::Labels labels =
      InjectAnomalies(f.generator, {event}, &f.series, &f.rng);
  for (int t = 0; t < 1000; ++t) {
    EXPECT_EQ(labels[t], t >= 200 && t < 250 ? 1 : 0) << "t=" << t;
  }
}

TEST(InjectorTest, LevelShiftMovesTheMean) {
  Fixture f;
  const double before = f.series.value(0, 225);
  AnomalyEvent event;
  event.type = AnomalyType::kLevelShift;
  event.start = 200;
  event.duration = 50;
  event.sensors = {0};
  event.magnitude = 3.0;
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);
  const double delta = f.series.value(0, 225) - before;
  EXPECT_NEAR(delta, 3.0 * f.generator.SensorStd(0), 1e-9);
  // Unaffected sensor untouched at the same time.
}

TEST(InjectorTest, CorrelationBreakDecorrelatesAffectedSensors) {
  Fixture f;
  // Pick two sensors of the same community: correlated before injection.
  const std::vector<int> members = f.generator.CommunityMembers(0);
  ASSERT_GE(members.size(), 2u);
  const int a = members[0], b = members[1];
  const stats::CorrelationMatrix before =
      stats::WindowCorrelationMatrix(f.series, 300, 200);
  ASSERT_GT(std::abs(before.at(a, b)), 0.7);

  AnomalyEvent event;
  event.type = AnomalyType::kCorrelationBreak;
  event.start = 300;
  event.duration = 200;
  event.sensors = {a};  // only sensor a detaches
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);

  const stats::CorrelationMatrix after =
      stats::WindowCorrelationMatrix(f.series, 300, 200);
  EXPECT_LT(std::abs(after.at(a, b)), 0.5);
}

TEST(InjectorTest, CorrelationBreakKeepsAmplitudePlausible) {
  Fixture f;
  AnomalyEvent event;
  event.type = AnomalyType::kCorrelationBreak;
  event.start = 300;
  event.duration = 200;
  event.sensors = {0};
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);
  // The replaced stretch should stay within a few sigma of the local level:
  // no trivial amplitude giveaway.
  const double sigma = f.generator.SensorStd(0);
  double max_dev = 0.0;
  double level = 0.0;
  for (int t = 250; t < 300; ++t) level += f.series.value(0, t);
  level /= 50.0;
  for (int t = 300; t < 500; ++t) {
    max_dev = std::max(max_dev, std::abs(f.series.value(0, t) - level));
  }
  EXPECT_LT(max_dev, 6.0 * sigma);
}

TEST(InjectorTest, GradualOnsetDeviatesSlowlyInValueSpace) {
  // With onset_fraction = 0.5, point-wise deviation from the original signal
  // during the first tenth of the event is much smaller than at its core —
  // while correlation is already decaying (the early-detection regime).
  Fixture f;
  const ts::MultivariateSeries original = f.series;
  AnomalyEvent event;
  event.type = AnomalyType::kCorrelationBreak;
  event.start = 300;
  event.duration = 200;
  event.sensors = {0};
  event.onset_fraction = 0.5;
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);

  auto mean_abs_dev = [&](int begin, int end) {
    double dev = 0.0;
    for (int t = begin; t < end; ++t) {
      dev += std::abs(f.series.value(0, t) - original.value(0, t));
    }
    return dev / (end - begin);
  };
  const double early = mean_abs_dev(300, 320);
  const double core = mean_abs_dev(420, 500);
  EXPECT_LT(early, core * 0.6);
}

TEST(InjectorTest, AbruptOnsetWhenFractionZero) {
  Fixture f;
  const ts::MultivariateSeries original = f.series;
  AnomalyEvent event;
  event.type = AnomalyType::kCorrelationBreak;
  event.start = 300;
  event.duration = 200;
  event.sensors = {0};
  event.onset_fraction = 0.0;
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);
  // With no ramp the very first anomalous points already follow the
  // replacement walk (deviation comparable to the event core).
  double early = 0.0, core = 0.0;
  for (int t = 302; t < 322; ++t) {
    early += std::abs(f.series.value(0, t) - original.value(0, t));
  }
  for (int t = 420; t < 440; ++t) {
    core += std::abs(f.series.value(0, t) - original.value(0, t));
  }
  EXPECT_GT(early, core * 0.25);
}

TEST(InjectorTest, TrendDriftRampsUp) {
  Fixture f;
  const double early_before = f.series.value(0, 405);
  const double late_before = f.series.value(0, 495);
  AnomalyEvent event;
  event.type = AnomalyType::kTrendDrift;
  event.start = 400;
  event.duration = 100;
  event.sensors = {0};
  event.magnitude = 2.0;
  InjectAnomalies(f.generator, {event}, &f.series, &f.rng);
  const double early_delta = f.series.value(0, 405) - early_before;
  const double late_delta = f.series.value(0, 495) - late_before;
  EXPECT_GT(late_delta, early_delta * 5.0);
}

TEST(InjectorTest, EventOutOfRangeAborts) {
  Fixture f;
  AnomalyEvent event;
  event.start = 990;
  event.duration = 50;  // overruns length 1000
  event.sensors = {0};
  EXPECT_DEATH(InjectAnomalies(f.generator, {event}, &f.series, &f.rng),
               "out of series range");
}

TEST(ToGroundTruthTest, SortsAndConverts) {
  AnomalyEvent late, early;
  early.start = 10;
  early.duration = 5;
  early.sensors = {3, 1};
  late.start = 100;
  late.duration = 10;
  late.sensors = {2};
  const auto truth = ToGroundTruth({late, early});
  ASSERT_EQ(truth.size(), 2u);
  EXPECT_EQ(truth[0].segment.begin, 10);
  EXPECT_EQ(truth[0].segment.end, 15);
  EXPECT_EQ(truth[0].sensors, (std::vector<int>{1, 3}));  // sorted
  EXPECT_EQ(truth[1].segment.begin, 100);
}

TEST(ToGroundTruthTest, MergesTouchingEvents) {
  AnomalyEvent a, b;
  a.start = 10;
  a.duration = 10;  // [10, 20)
  a.sensors = {1};
  b.start = 20;
  b.duration = 5;  // [20, 25) touches a
  b.sensors = {2};
  const auto truth = ToGroundTruth({a, b});
  ASSERT_EQ(truth.size(), 1u);
  EXPECT_EQ(truth[0].segment.begin, 10);
  EXPECT_EQ(truth[0].segment.end, 25);
  EXPECT_EQ(truth[0].sensors, (std::vector<int>{1, 2}));
}

TEST(PlanEventsTest, EventsRespectConstraints) {
  Fixture f;
  const std::vector<AnomalyEvent> events =
      PlanEvents(f.generator, 1000, 4, 20, 40, 50, &f.rng);
  ASSERT_EQ(events.size(), 4u);
  int prev_end = -1;
  for (const AnomalyEvent& event : events) {
    EXPECT_GE(event.duration, 20);
    EXPECT_LE(event.duration, 40);
    EXPECT_GE(event.start, 50);
    EXPECT_LE(event.start + event.duration, 1000);
    EXPECT_GT(event.start, prev_end);  // non-overlapping, ordered
    prev_end = event.start + event.duration;
    EXPECT_FALSE(event.sensors.empty());
    EXPECT_TRUE(std::is_sorted(event.sensors.begin(), event.sensors.end()));
  }
}

TEST(PlanEventsTest, SensorsComeFromOneCommunity) {
  Fixture f;
  const std::vector<AnomalyEvent> events =
      PlanEvents(f.generator, 1000, 3, 20, 30, 50, &f.rng);
  for (const AnomalyEvent& event : events) {
    const int community = f.generator.community_of()[event.sensors[0]];
    for (int sensor : event.sensors) {
      EXPECT_EQ(f.generator.community_of()[sensor], community);
    }
  }
}

}  // namespace
}  // namespace cad::datasets
