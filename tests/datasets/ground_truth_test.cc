// Ground-truth export round trip: the injector's InjectedGroundTruth onset
// samples must map through the window/step arithmetic
// (eval::FirstRoundCovering) to the same round indices that
// advisor::WindowForSamples derives from a real flight log's recorded window
// spans — the two independent mappings agreeing is what lets advisor_bench
// judge rankings against injected truth.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "advisor/advisor.h"
#include "common/rng.h"
#include "core/cad_detector.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"
#include "eval/root_cause.h"
#include "ts/multivariate_series.h"

namespace cad::datasets {
namespace {

TEST(GroundTruthExportTest, OneStableEntryPerEventSortedByOnset) {
  AnomalyEvent late;
  late.type = AnomalyType::kSpike;
  late.start = 300;
  late.duration = 50;
  late.sensors = {9, 2, 5};  // deliberately unsorted
  AnomalyEvent early;
  early.type = AnomalyType::kCorrelationBreak;
  early.start = 100;
  early.duration = 80;
  early.sensors = {1, 4};
  // Touching events stay separate here (unlike ToGroundTruth's merging):
  // root-cause eval judges incident by incident.
  AnomalyEvent touching;
  touching.type = AnomalyType::kLevelShift;
  touching.start = 180;
  touching.duration = 40;
  touching.sensors = {6};

  const std::vector<InjectedGroundTruth> truth =
      ExportGroundTruth({late, early, touching});
  ASSERT_EQ(truth.size(), 3u);
  EXPECT_EQ(truth[0].onset_sample, 100);
  EXPECT_EQ(truth[0].end_sample, 180);
  EXPECT_EQ(truth[0].type, AnomalyType::kCorrelationBreak);
  EXPECT_EQ(truth[0].sensors, (std::vector<int>{1, 4}));
  EXPECT_EQ(truth[1].onset_sample, 180);
  EXPECT_EQ(truth[1].sensors, (std::vector<int>{6}));
  EXPECT_EQ(truth[2].onset_sample, 300);
  EXPECT_EQ(truth[2].sensors, (std::vector<int>{2, 5, 9}));  // sorted
}

TEST(GroundTruthExportTest, OnsetsRoundTripThroughWindowArithmetic) {
  const int kWindow = 64;
  const int kStep = 4;
  const int kLength = 1600;

  Rng rng(7);
  GeneratorOptions gen_options;
  gen_options.n_sensors = 18;
  gen_options.n_communities = 3;
  SensorNetworkGenerator generator(gen_options, &rng);
  const ts::MultivariateSeries train = generator.Generate(500, &rng);
  ts::MultivariateSeries test = generator.Generate(kLength, &rng);

  const std::vector<AnomalyEvent> events =
      PlanEvents(generator, kLength, 3, 90, 140, 120, &rng);
  (void)InjectAnomalies(generator, events, &test, &rng);
  const std::vector<InjectedGroundTruth> truth = ExportGroundTruth(events);
  ASSERT_EQ(truth.size(), 3u);

  // A ring big enough to hold every round, so WindowForSamples sees the
  // complete log and the arithmetic mapping has no truncation caveat.
  core::CadOptions options;
  options.window = kWindow;
  options.step = kStep;
  options.k = 3;
  options.flight_log_capacity = 1024;
  core::CadDetector detector(options);
  const core::DetectionReport report =
      detector.Detect(test, &train).ValueOrDie();
  ASSERT_GT(report.flight_log.size(), 0u);
  ASSERT_EQ(report.flight_log.front().round, 0);

  for (const InjectedGroundTruth& incident : truth) {
    const int arithmetic_round =
        eval::FirstRoundCovering(incident.onset_sample, kWindow, kStep);
    ASSERT_GE(arithmetic_round, 0);
    const advisor::AdviseWindow window = advisor::WindowForSamples(
        report.flight_log, incident.onset_sample, incident.onset_sample);
    // First round whose recorded span covers the onset == the arithmetic
    // prediction; the last is the final round still containing the sample.
    EXPECT_EQ(window.first_round, arithmetic_round);
    EXPECT_GE(window.last_round, window.first_round);
    const obs::DecisionRecord& first =
        report.flight_log[static_cast<size_t>(window.first_round)];
    EXPECT_LE(first.window_start, incident.onset_sample);
    EXPECT_GT(first.window_end, incident.onset_sample);
    if (window.first_round > 0) {
      const obs::DecisionRecord& prev =
          report.flight_log[static_cast<size_t>(window.first_round - 1)];
      EXPECT_LE(prev.window_end, incident.onset_sample)
          << "an earlier round also covered the onset";
    }
  }
}

}  // namespace
}  // namespace cad::datasets
