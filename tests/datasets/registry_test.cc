#include "datasets/registry.h"

#include <gtest/gtest.h>

namespace cad::datasets {
namespace {

TEST(RegistryTest, StandardRosterMatchesTable2SensorCounts) {
  const std::vector<DatasetProfile> profiles = StandardProfiles();
  ASSERT_EQ(profiles.size(), 7u);
  EXPECT_EQ(profiles[0].name, "PSM");
  EXPECT_EQ(profiles[0].n_sensors, 26);
  EXPECT_EQ(profiles[0].k, 10);
  EXPECT_EQ(profiles[1].name, "SWaT");
  EXPECT_EQ(profiles[1].n_sensors, 51);
  EXPECT_EQ(profiles[1].k, 20);
  EXPECT_EQ(profiles[6].name, "IS-5");
  EXPECT_EQ(profiles[6].n_sensors, 1266);
  EXPECT_EQ(profiles[6].k, 50);
}

TEST(RegistryTest, ProfileByNameFindsAndFails) {
  EXPECT_TRUE(ProfileByName("IS-3").ok());
  EXPECT_EQ(ProfileByName("IS-3").value().n_sensors, 406);
  EXPECT_FALSE(ProfileByName("nope").ok());
  EXPECT_EQ(ProfileByName("nope").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, SmdSubsetsVary) {
  const DatasetProfile a = SmdSubsetProfile(1);
  const DatasetProfile b = SmdSubsetProfile(28);
  EXPECT_EQ(a.n_sensors, 38);
  EXPECT_EQ(b.n_sensors, 38);
  EXPECT_GT(a.train_length, 0);  // baselines train on it; CAD skips warm-up
  EXPECT_NE(a.seed, b.seed);
  EXPECT_LT(a.noise_std, b.noise_std);
}

TEST(RegistryTest, MakeDatasetShapesAndTruth) {
  DatasetProfile profile = SmdSubsetProfile(3);
  profile.train_length = 0;    // shrink for test speed
  profile.test_length = 1200;
  profile.n_anomalies = 3;
  const LabeledDataset dataset = MakeDataset(profile);
  EXPECT_EQ(dataset.test.n_sensors(), 38);
  EXPECT_EQ(dataset.test.length(), 1200);
  EXPECT_FALSE(dataset.has_train());
  EXPECT_EQ(dataset.labels.size(), 1200u);
  EXPECT_EQ(dataset.anomalies.size(), 3u);

  // Labels and ground-truth segments agree.
  const std::vector<eval::Segment> segments = eval::ExtractSegments(dataset.labels);
  ASSERT_EQ(segments.size(), dataset.anomalies.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].begin, dataset.anomalies[i].segment.begin);
    EXPECT_EQ(segments[i].end, dataset.anomalies[i].segment.end);
    EXPECT_FALSE(dataset.anomalies[i].sensors.empty());
  }

  // Recommended options validate against the test split.
  EXPECT_TRUE(dataset.recommended.Validate(dataset.test.length()).ok());
  EXPECT_EQ(dataset.recommended.k, profile.k);
}

TEST(RegistryTest, DatasetGenerationIsDeterministic) {
  DatasetProfile profile = SmdSubsetProfile(5);
  profile.test_length = 800;
  profile.n_anomalies = 2;
  const LabeledDataset a = MakeDataset(profile);
  const LabeledDataset b = MakeDataset(profile);
  EXPECT_EQ(a.labels, b.labels);
  for (int i = 0; i < a.test.n_sensors(); i += 7) {
    for (int t = 0; t < a.test.length(); t += 97) {
      EXPECT_EQ(a.test.value(i, t), b.test.value(i, t));
    }
  }
}

TEST(RegistryTest, TrainSplitIsAnomalyFree) {
  DatasetProfile profile = ProfileByName("PSM").ValueOrDie();
  profile.train_length = 600;
  profile.test_length = 900;
  profile.n_anomalies = 2;
  const LabeledDataset dataset = MakeDataset(profile);
  EXPECT_TRUE(dataset.has_train());
  EXPECT_EQ(dataset.train.length(), 600);
  // All anomalies live in the test split by construction; the train split is
  // generated before injection. (Nothing to assert beyond shape — the label
  // vector only covers test.)
  EXPECT_EQ(dataset.labels.size(), static_cast<size_t>(dataset.test.length()));
}

}  // namespace
}  // namespace cad::datasets
