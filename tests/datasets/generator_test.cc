#include "datasets/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"

namespace cad::datasets {
namespace {

TEST(GeneratorTest, ShapeAndDeterminism) {
  GeneratorOptions options;
  options.n_sensors = 10;
  options.n_communities = 2;
  Rng rng_a(5), rng_b(5);
  SensorNetworkGenerator gen_a(options, &rng_a);
  SensorNetworkGenerator gen_b(options, &rng_b);
  const ts::MultivariateSeries a = gen_a.Generate(100, &rng_a);
  const ts::MultivariateSeries b = gen_b.Generate(100, &rng_b);
  EXPECT_EQ(a.n_sensors(), 10);
  EXPECT_EQ(a.length(), 100);
  for (int i = 0; i < 10; ++i) {
    for (int t = 0; t < 100; ++t) {
      EXPECT_EQ(a.value(i, t), b.value(i, t));
    }
  }
  EXPECT_EQ(gen_a.community_of(), gen_b.community_of());
}

TEST(GeneratorTest, CommunityAssignmentBalanced) {
  GeneratorOptions options;
  options.n_sensors = 20;
  options.n_communities = 4;
  Rng rng(6);
  SensorNetworkGenerator generator(options, &rng);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(generator.CommunityMembers(c).size(), 5u);
  }
}

TEST(GeneratorTest, IntraCommunityCorrelationExceedsInter) {
  GeneratorOptions options;
  options.n_sensors = 12;
  options.n_communities = 3;
  options.noise_std = 0.1;
  Rng rng(7);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries series = generator.Generate(2000, &rng);
  const stats::CorrelationMatrix corr =
      stats::WindowCorrelationMatrix(series, 0, series.length());

  double intra_sum = 0.0, inter_sum = 0.0;
  int intra_count = 0, inter_count = 0;
  const std::vector<int>& community = generator.community_of();
  for (int i = 0; i < 12; ++i) {
    for (int j = i + 1; j < 12; ++j) {
      if (community[i] == community[j]) {
        intra_sum += std::abs(corr.at(i, j));
        ++intra_count;
      } else {
        inter_sum += std::abs(corr.at(i, j));
        ++inter_count;
      }
    }
  }
  const double intra_mean = intra_sum / intra_count;
  const double inter_mean = inter_sum / inter_count;
  EXPECT_GT(intra_mean, 0.85);
  EXPECT_LT(inter_mean, 0.35);
}

TEST(GeneratorTest, ConsecutiveCallsAreSeamless) {
  // Generate(100) twice should produce a continuous stream: factor state
  // persists, so the pieces correlate like one long series.
  GeneratorOptions options;
  options.n_sensors = 4;
  options.n_communities = 1;
  Rng rng(8);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries first = generator.Generate(100, &rng);
  const ts::MultivariateSeries second = generator.Generate(100, &rng);
  // No jump discontinuity: the boundary step should be comparable to typical
  // in-series steps (AR(1) increments), not a fresh restart.
  double typical = 0.0;
  for (int t = 1; t < 100; ++t) {
    typical += std::abs(first.value(0, t) - first.value(0, t - 1));
  }
  typical /= 99.0;
  const double boundary = std::abs(second.value(0, 0) - first.value(0, 99));
  EXPECT_LT(boundary, 8.0 * typical);
}

TEST(GeneratorTest, SensorStdApproximatesEmpirical) {
  GeneratorOptions options;
  options.n_sensors = 6;
  options.n_communities = 2;
  options.noise_std = 0.2;
  Rng rng(9);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries series = generator.Generate(20000, &rng);
  for (int i = 0; i < 6; ++i) {
    auto x = series.sensor(i);
    double mean = 0.0;
    for (double v : x) mean += v;
    mean /= x.size();
    double var = 0.0;
    for (double v : x) var += (v - mean) * (v - mean);
    var /= x.size();
    const double predicted = generator.SensorStd(i);
    EXPECT_NEAR(std::sqrt(var), predicted, predicted * 0.35) << "sensor " << i;
  }
}

TEST(GeneratorTest, BaselineDriftWandersSlowly) {
  GeneratorOptions options;
  options.n_sensors = 4;
  options.n_communities = 1;
  options.noise_std = 0.05;
  options.baseline_drift_std = 0.05;
  Rng rng(11);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries series = generator.Generate(4000, &rng);
  // The level of the last stretch should have wandered away from the level
  // of the first stretch by a macroscopic amount (drift ~ 0.05 * sqrt(4000)
  // ~ 3 sigma), far beyond what the stationary process alone produces.
  auto level = [&](int begin, int end) {
    double mean = 0.0;
    for (int t = begin; t < end; ++t) mean += series.value(0, t);
    return mean / (end - begin);
  };
  GeneratorOptions no_drift = options;
  no_drift.baseline_drift_std = 0.0;
  Rng rng2(11);
  SensorNetworkGenerator stationary(no_drift, &rng2);
  const ts::MultivariateSeries reference = stationary.Generate(4000, &rng2);
  auto ref_level = [&](int begin, int end) {
    double mean = 0.0;
    for (int t = begin; t < end; ++t) mean += reference.value(0, t);
    return mean / (end - begin);
  };
  const double drifted = std::abs(level(3500, 4000) - level(0, 500));
  const double still = std::abs(ref_level(3500, 4000) - ref_level(0, 500));
  EXPECT_GT(drifted, still + 0.5);
}

TEST(GeneratorTest, DriftPreservesWindowCorrelations) {
  // Drift is slow: within one CAD-scale window the community correlation
  // structure must survive (this is why CAD tolerates drift).
  GeneratorOptions options;
  options.n_sensors = 6;
  options.n_communities = 2;
  options.noise_std = 0.2;
  options.baseline_drift_std = 0.05;
  Rng rng(12);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries series = generator.Generate(3000, &rng);
  const std::vector<int>& community = generator.community_of();
  // Mean |corr| of same-community pairs within a late window stays high.
  const stats::CorrelationMatrix corr =
      stats::WindowCorrelationMatrix(series, 2800, 100);
  double intra = 0.0;
  int count = 0;
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      if (community[i] == community[j]) {
        intra += std::abs(corr.at(i, j));
        ++count;
      }
    }
  }
  EXPECT_GT(intra / count, 0.6);
}

TEST(GeneratorTest, SeasonalComponentCreatesPeriodicity) {
  GeneratorOptions options;
  options.n_sensors = 2;
  options.n_communities = 1;
  options.seasonal_period = 50;
  options.seasonal_amplitude = 2.0;
  options.noise_std = 0.05;
  options.factor_smoothness = 0.5;  // weak AR so the seasonal term dominates
  Rng rng(10);
  SensorNetworkGenerator generator(options, &rng);
  const ts::MultivariateSeries series = generator.Generate(1000, &rng);
  // Lag-50 autocorrelation should be strongly positive.
  auto x = series.sensor(0);
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= x.size();
  double num = 0.0, denom = 0.0;
  for (size_t t = 0; t + 50 < x.size(); ++t) {
    num += (x[t] - mean) * (x[t + 50] - mean);
  }
  for (double v : x) denom += (v - mean) * (v - mean);
  EXPECT_GT(num / denom, 0.4);
}

}  // namespace
}  // namespace cad::datasets
