#include "graph/louvain.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace cad::graph {
namespace {

// Two dense cliques joined by one weak bridge.
Graph TwoCliques(int clique_size, double intra_weight, double bridge_weight) {
  Graph g(2 * clique_size);
  for (int base : {0, clique_size}) {
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j, intra_weight);
      }
    }
  }
  g.AddEdge(0, clique_size, bridge_weight);
  return g;
}

TEST(LouvainTest, SeparatesTwoCliques) {
  const Graph g = TwoCliques(5, 1.0, 0.1);
  const Partition p = Louvain(g);
  EXPECT_EQ(p.n_communities, 2);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(p.community[i], p.community[0]);
  for (int i = 6; i < 10; ++i) EXPECT_EQ(p.community[i], p.community[5]);
  EXPECT_NE(p.community[0], p.community[5]);
}

TEST(LouvainTest, CanonicalLabelsByLowestMember) {
  const Graph g = TwoCliques(4, 1.0, 0.05);
  const Partition p = Louvain(g);
  // Community containing vertex 0 must be labeled 0.
  EXPECT_EQ(p.community[0], 0);
}

TEST(LouvainTest, DeterministicAcrossRuns) {
  cad::Rng rng(55);
  Graph g(30);
  for (int i = 0; i < 30; ++i) {
    for (int j = i + 1; j < 30; ++j) {
      if (rng.NextDouble() < 0.2) g.AddEdge(i, j, rng.Uniform(0.3, 1.0));
    }
  }
  const Partition a = Louvain(g);
  const Partition b = Louvain(g);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.n_communities, b.n_communities);
}

TEST(LouvainTest, EmptyAndEdgelessGraphs) {
  const Partition empty = Louvain(Graph(0));
  EXPECT_EQ(empty.n_communities, 0);
  const Partition isolated = Louvain(Graph(5));
  EXPECT_EQ(isolated.n_communities, 5);  // every vertex its own community
  for (int v = 0; v < 5; ++v) EXPECT_EQ(isolated.community[v], v);
}

TEST(LouvainTest, NegativeWeightsTreatedByMagnitude) {
  // Anti-correlated clique should still form one community.
  Graph g(6);
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) g.AddEdge(i, j, -1.0);
  }
  for (int i = 3; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) g.AddEdge(i, j, 1.0);
  }
  g.AddEdge(0, 3, 0.05);
  const Partition p = Louvain(g);
  EXPECT_EQ(p.n_communities, 2);
  EXPECT_EQ(p.community[0], p.community[1]);
  EXPECT_EQ(p.community[1], p.community[2]);
}

TEST(LouvainTest, ImprovesModularityOverSingletons) {
  const Graph g = TwoCliques(6, 1.0, 0.2);
  std::vector<int> singletons(g.n_vertices());
  for (int v = 0; v < g.n_vertices(); ++v) singletons[v] = v;
  const Partition p = Louvain(g);
  EXPECT_GT(Modularity(g, p.community), Modularity(g, singletons));
  EXPECT_GT(Modularity(g, p.community), 0.3);  // clean two-block structure
}

TEST(ModularityTest, KnownValues) {
  // Single edge, both vertices together: Q = w/m - (2w)^2/(4m^2) = 1 - 1 = 0.
  Graph g(2);
  g.AddEdge(0, 1, 1.0);
  EXPECT_NEAR(Modularity(g, {0, 0}), 0.0, 1e-12);
  // Separated: Q = 0 - (1 + 1)/4 = -0.5.
  EXPECT_NEAR(Modularity(g, {0, 1}), -0.5, 1e-12);
}

TEST(ModularityTest, EdgelessGraphIsZero) {
  Graph g(3);
  EXPECT_EQ(Modularity(g, {0, 1, 2}), 0.0);
}

TEST(ConnectedComponentsTest, FindsComponents) {
  Graph g(6);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(1, 2, 1.0);
  g.AddEdge(4, 5, 1.0);
  const Partition p = ConnectedComponents(g);
  EXPECT_EQ(p.n_communities, 3);  // {0,1,2}, {3}, {4,5}
  EXPECT_EQ(p.community[0], p.community[2]);
  EXPECT_NE(p.community[0], p.community[3]);
  EXPECT_EQ(p.community[4], p.community[5]);
}

TEST(LouvainTest, CommunitiesRespectComponents) {
  // Vertices in different connected components can never share a community.
  cad::Rng rng(77);
  Graph g(24);
  // Three disjoint random blobs.
  for (int base : {0, 8, 16}) {
    for (int i = 0; i < 8; ++i) {
      for (int j = i + 1; j < 8; ++j) {
        if (rng.NextDouble() < 0.5) {
          g.AddEdge(base + i, base + j, rng.Uniform(0.5, 1.0));
        }
      }
    }
  }
  const Partition louvain = Louvain(g);
  const Partition components = ConnectedComponents(g);
  for (int u = 0; u < 24; ++u) {
    for (int v = 0; v < 24; ++v) {
      if (louvain.community[u] == louvain.community[v]) {
        EXPECT_EQ(components.community[u], components.community[v]);
      }
    }
  }
}

}  // namespace
}  // namespace cad::graph
