// Structural Louvain tests on classic benchmark topologies (ring of
// cliques, star, weighted barbell) plus parameterized sweeps over graph
// size — properties Louvain must hold for CAD's TSGs at any scale.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/louvain.h"

namespace cad::graph {
namespace {

// `n_cliques` cliques of `clique_size`, neighbouring cliques joined by one
// weak edge — the canonical Louvain test topology.
Graph RingOfCliques(int n_cliques, int clique_size, double bridge = 0.1) {
  Graph g(n_cliques * clique_size);
  for (int c = 0; c < n_cliques; ++c) {
    const int base = c * clique_size;
    for (int i = 0; i < clique_size; ++i) {
      for (int j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j, 1.0);
      }
    }
    const int next_base = ((c + 1) % n_cliques) * clique_size;
    g.AddEdge(base, next_base, bridge);
  }
  return g;
}

TEST(LouvainStructureTest, RingOfCliquesRecovered) {
  const int n_cliques = 6, clique_size = 5;
  const Partition p = Louvain(RingOfCliques(n_cliques, clique_size));
  EXPECT_EQ(p.n_communities, n_cliques);
  for (int c = 0; c < n_cliques; ++c) {
    for (int i = 1; i < clique_size; ++i) {
      EXPECT_EQ(p.community[c * clique_size + i],
                p.community[c * clique_size]);
    }
  }
}

TEST(LouvainStructureTest, StarGraphSingleCommunity) {
  Graph g(9);
  for (int leaf = 1; leaf < 9; ++leaf) g.AddEdge(0, leaf, 1.0);
  const Partition p = Louvain(g);
  // A star has no sub-structure worth splitting; Louvain may keep it whole
  // or split leaves, but the hub must share a community with some leaves and
  // modularity must be >= the singleton baseline (0 - sum k^2 term < 0).
  std::vector<int> singletons(9);
  for (int v = 0; v < 9; ++v) singletons[v] = v;
  EXPECT_GE(Modularity(g, p.community), Modularity(g, singletons));
}

TEST(LouvainStructureTest, WeightedBarbellSplitsAtWeakBridge) {
  // Two triangles of weight 5 joined by a bridge of weight 0.5.
  Graph g(6);
  for (int base : {0, 3}) {
    g.AddEdge(base, base + 1, 5.0);
    g.AddEdge(base, base + 2, 5.0);
    g.AddEdge(base + 1, base + 2, 5.0);
  }
  g.AddEdge(2, 3, 0.5);
  const Partition p = Louvain(g);
  EXPECT_EQ(p.n_communities, 2);
  EXPECT_EQ(p.community[0], p.community[2]);
  EXPECT_EQ(p.community[3], p.community[5]);
  EXPECT_NE(p.community[0], p.community[3]);
}

TEST(LouvainStructureTest, HeavyBridgeMergesBarbell) {
  // Same shape but the bridge outweighs the triangles: merging wins.
  Graph g(6);
  for (int base : {0, 3}) {
    g.AddEdge(base, base + 1, 0.2);
    g.AddEdge(base, base + 2, 0.2);
    g.AddEdge(base + 1, base + 2, 0.2);
  }
  g.AddEdge(2, 3, 5.0);
  const Partition p = Louvain(g);
  // Vertices 2 and 3 must share a community across the heavy bridge.
  EXPECT_EQ(p.community[2], p.community[3]);
}

class LouvainScaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(LouvainScaleSweep, PlantedPartitionRecovered) {
  // Planted partition: dense within blocks, sparse across.
  const int n_blocks = GetParam();
  const int block = 8;
  cad::Rng rng(1000 + n_blocks);
  Graph g(n_blocks * block);
  for (int u = 0; u < g.n_vertices(); ++u) {
    for (int v = u + 1; v < g.n_vertices(); ++v) {
      const bool same = u / block == v / block;
      const double p_edge = same ? 0.9 : 0.02;
      if (rng.NextDouble() < p_edge) {
        g.AddEdge(u, v, same ? rng.Uniform(0.7, 1.0) : rng.Uniform(0.1, 0.3));
      }
    }
  }
  const Partition p = Louvain(g);
  // Count pair agreement within blocks (should be near-perfect).
  int same_pairs = 0, agree = 0;
  for (int u = 0; u < g.n_vertices(); ++u) {
    for (int v = u + 1; v < g.n_vertices(); ++v) {
      if (u / block != v / block) continue;
      ++same_pairs;
      if (p.community[u] == p.community[v]) ++agree;
    }
  }
  EXPECT_GE(static_cast<double>(agree) / same_pairs, 0.9)
      << n_blocks << " blocks";
  EXPECT_GE(p.n_communities, n_blocks / 2);
}

INSTANTIATE_TEST_SUITE_P(BlockCounts, LouvainScaleSweep,
                         ::testing::Values(2, 4, 8, 16));

TEST(LouvainStructureTest, LabelsAreDense) {
  cad::Rng rng(5);
  Graph g(40);
  for (int i = 0; i < 120; ++i) {
    const int u = rng.UniformInt(0, 40);
    const int v = rng.UniformInt(0, 40);
    if (u != v && !g.HasEdge(u, v)) g.AddEdge(u, v, rng.Uniform(0.2, 1.0));
  }
  const Partition p = Louvain(g);
  std::set<int> labels(p.community.begin(), p.community.end());
  EXPECT_EQ(static_cast<int>(labels.size()), p.n_communities);
  EXPECT_EQ(*labels.begin(), 0);
  EXPECT_EQ(*labels.rbegin(), p.n_communities - 1);
}

}  // namespace
}  // namespace cad::graph
