#include "graph/graph.h"

#include <gtest/gtest.h>

namespace cad::graph {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(4);
  EXPECT_EQ(g.n_vertices(), 4);
  EXPECT_EQ(g.n_edges(), 0);
  EXPECT_EQ(g.TotalWeight(), 0.0);
  EXPECT_TRUE(g.SortedEdges().empty());
}

TEST(GraphTest, UndirectedEdgeVisibleFromBothSides) {
  Graph g(3);
  g.AddEdge(0, 2, 0.8);
  EXPECT_EQ(g.n_edges(), 1);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphTest, WeightedDegreeUsesAbsoluteWeights) {
  Graph g(3);
  g.AddEdge(0, 1, -0.5);
  g.AddEdge(0, 2, 0.25);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 0.75);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.75);
}

TEST(GraphTest, SortedEdgesCanonicalOrder) {
  Graph g(4);
  g.AddEdge(2, 3, 1.0);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 3, 3.0);
  const std::vector<Edge> edges = g.SortedEdges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].u, 0);
  EXPECT_EQ(edges[0].v, 1);
  EXPECT_EQ(edges[1].u, 1);
  EXPECT_EQ(edges[1].v, 3);
  EXPECT_EQ(edges[2].u, 2);
  EXPECT_EQ(edges[2].v, 3);
  // Negative weights keep their sign in the edge list.
  EXPECT_EQ(edges[0].weight, 2.0);
}

TEST(GraphTest, NeighborsCarryWeights) {
  Graph g(2);
  g.AddEdge(0, 1, -0.9);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].vertex, 1);
  EXPECT_EQ(g.neighbors(0)[0].weight, -0.9);
}

}  // namespace
}  // namespace cad::graph
