#include "graph/knn_graph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cad::graph {
namespace {

stats::CorrelationMatrix MakeMatrix(
    const std::vector<std::vector<double>>& values) {
  stats::CorrelationMatrix corr(static_cast<int>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      corr.set(static_cast<int>(i), static_cast<int>(j), values[i][j]);
    }
  }
  return corr;
}

TEST(KnnGraphTest, TauPrunesWeakEdges) {
  // 0-1 strongly correlated, 0-2 weakly: only 0-1 survives tau = 0.5.
  auto corr = MakeMatrix({{1.0, 0.9, 0.2}, {0.9, 1.0, 0.1}, {0.2, 0.1, 1.0}});
  const Graph g = BuildKnnGraph(corr, {.k = 2, .tau = 0.5});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_EQ(g.n_edges(), 1);
}

TEST(KnnGraphTest, NegativeCorrelationCountsByMagnitude) {
  auto corr =
      MakeMatrix({{1.0, -0.95, 0.3}, {-0.95, 1.0, 0.2}, {0.3, 0.2, 1.0}});
  const Graph g = BuildKnnGraph(corr, {.k = 1, .tau = 0.5});
  ASSERT_TRUE(g.HasEdge(0, 1));
  // The signed weight is preserved on the edge.
  EXPECT_EQ(g.neighbors(0)[0].weight, -0.95);
}

TEST(KnnGraphTest, KLimitsDirectedPicksButUnionApplies) {
  // Vertex 0 correlates with everyone; with k = 1, 0 picks only its best,
  // but the others also pick 0 so the union has all three edges to 0.
  auto corr = MakeMatrix({{1.0, 0.9, 0.8, 0.7},
                          {0.9, 1.0, 0.1, 0.1},
                          {0.8, 0.1, 1.0, 0.1},
                          {0.7, 0.1, 0.1, 1.0}});
  const Graph g = BuildKnnGraph(corr, {.k = 1, .tau = 0.5});
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_EQ(g.n_edges(), 3);
}

TEST(KnnGraphTest, LargeTauYieldsEmptyGraph) {
  auto corr = MakeMatrix({{1.0, 0.6}, {0.6, 1.0}});
  const Graph g = BuildKnnGraph(corr, {.k = 1, .tau = 0.95});
  EXPECT_EQ(g.n_edges(), 0);
}

TEST(KnnGraphTest, DeterministicOnTies) {
  auto corr = MakeMatrix({{1.0, 0.7, 0.7, 0.7},
                          {0.7, 1.0, 0.7, 0.7},
                          {0.7, 0.7, 1.0, 0.7},
                          {0.7, 0.7, 0.7, 1.0}});
  const Graph a = BuildKnnGraph(corr, {.k = 2, .tau = 0.5});
  const Graph b = BuildKnnGraph(corr, {.k = 2, .tau = 0.5});
  const auto ea = a.SortedEdges();
  const auto eb = b.SortedEdges();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].u, eb[i].u);
    EXPECT_EQ(ea[i].v, eb[i].v);
  }
  // Tie-break by index: vertex 0 with k = 2 picks 1 and 2.
  EXPECT_TRUE(a.HasEdge(0, 1));
  EXPECT_TRUE(a.HasEdge(0, 2));
}

TEST(KnnGraphTest, NoSelfLoopsEver) {
  auto corr = MakeMatrix({{1.0, 0.9}, {0.9, 1.0}});
  const Graph g = BuildKnnGraph(corr, {.k = 5, .tau = 0.0});
  for (const Edge& e : g.SortedEdges()) EXPECT_NE(e.u, e.v);
}

// Property: every vertex's degree from its own picks is <= k before the
// symmetric union, so total edges <= n * k.
TEST(KnnGraphTest, EdgeCountBounded) {
  const int n = 20;
  stats::CorrelationMatrix corr(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      corr.set(i, j, 0.5 + 0.4 * std::sin(i * 13 + j * 7));
    }
  }
  for (int k = 1; k <= 5; ++k) {
    const Graph g = BuildKnnGraph(corr, {.k = k, .tau = 0.0});
    EXPECT_LE(g.n_edges(), static_cast<int64_t>(n) * k);
  }
}

}  // namespace
}  // namespace cad::graph
