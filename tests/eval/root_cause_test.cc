// Tests for eval/root_cause.h: hit@k semantics and the window/step round
// arithmetic the injector round-trip test builds on.
#include "eval/root_cause.h"

#include <gtest/gtest.h>

#include <vector>

namespace cad::eval {
namespace {

TEST(RootCauseTest, HitAtKRespectsTheCutoff) {
  const std::vector<int> ranking = {4, 9, 2, 7};
  EXPECT_TRUE(RootCauseHitAtK(ranking, {4}, 1));
  EXPECT_FALSE(RootCauseHitAtK(ranking, {2}, 2));
  EXPECT_TRUE(RootCauseHitAtK(ranking, {2}, 3));
  EXPECT_TRUE(RootCauseHitAtK(ranking, {1, 7}, 4));
  EXPECT_FALSE(RootCauseHitAtK(ranking, {1, 3}, 4));
  // k beyond the ranking and empty inputs degrade gracefully.
  EXPECT_TRUE(RootCauseHitAtK(ranking, {7}, 100));
  EXPECT_FALSE(RootCauseHitAtK({}, {7}, 3));
  EXPECT_FALSE(RootCauseHitAtK(ranking, {}, 3));
}

TEST(RootCauseTest, HitRateAveragesIncidents) {
  EXPECT_EQ(RootCauseHitRate({}), 0.0);
  EXPECT_EQ(RootCauseHitRate({true, true, false, true}), 0.75);
  EXPECT_EQ(RootCauseHitRate({false}), 0.0);
}

TEST(RootCauseTest, FirstRoundCoveringMatchesWindowArithmetic) {
  // window 40, step 4: round r sees [4r, 4r + 40).
  EXPECT_EQ(FirstRoundCovering(0, 40, 4), 0);
  EXPECT_EQ(FirstRoundCovering(39, 40, 4), 0);
  EXPECT_EQ(FirstRoundCovering(40, 40, 4), 1);  // round 1 spans [4, 44)
  EXPECT_EQ(FirstRoundCovering(50, 40, 4), 3);  // round 3 spans [12, 52)
  // Brute-force agreement over a dense grid of samples.
  for (int sample = 0; sample < 400; ++sample) {
    int expected = -1;
    for (int r = 0; r < 200; ++r) {
      if (r * 4 <= sample && sample < r * 4 + 40) {
        expected = r;
        break;
      }
    }
    EXPECT_EQ(FirstRoundCovering(sample, 40, 4), expected) << sample;
  }
  // step > window leaves gaps no round covers.
  EXPECT_EQ(FirstRoundCovering(10, 8, 16), -1);
  EXPECT_EQ(FirstRoundCovering(16, 8, 16), 1);
  // Degenerate inputs.
  EXPECT_EQ(FirstRoundCovering(-1, 40, 4), -1);
  EXPECT_EQ(FirstRoundCovering(5, 0, 4), -1);
}

}  // namespace
}  // namespace cad::eval
