#include "eval/threshold.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cad::eval {
namespace {

TEST(BestF1Test, PerfectScoresReachF1One) {
  const Labels truth = {0, 0, 1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.9, 0.8, 0.1, 0.0};
  const BestF1 best = BestF1Search(scores, truth, Adjustment::kNone);
  EXPECT_NEAR(best.f1, 1.0, 1e-9);
  EXPECT_GT(best.threshold, 0.2);
  EXPECT_LE(best.threshold, 0.8);
}

TEST(BestF1Test, AllZeroScoresDetectEverythingAtThresholdZero) {
  // Threshold 0 marks everything abnormal -> recall 1, precision = positive
  // rate; the search reports that as the best achievable.
  const Labels truth = {1, 0, 0, 0};
  const std::vector<double> scores = {0.0, 0.0, 0.0, 0.0};
  const BestF1 best = BestF1Search(scores, truth, Adjustment::kNone);
  EXPECT_NEAR(best.f1, 2.0 * 0.25 / 1.25, 1e-9);  // p=0.25, r=1
}

TEST(BestF1Test, PaAdjustmentNeverHurts) {
  cad::Rng rng(42);
  Labels truth(200, 0);
  for (int t = 50; t < 80; ++t) truth[t] = 1;
  for (int t = 140; t < 160; ++t) truth[t] = 1;
  std::vector<double> scores(200);
  for (double& s : scores) s = rng.NextDouble();
  const double raw = BestF1Search(scores, truth, Adjustment::kNone, 0.01).f1;
  const double dpa =
      BestF1Search(scores, truth, Adjustment::kDelayPointAdjust, 0.01).f1;
  const double pa =
      BestF1Search(scores, truth, Adjustment::kPointAdjust, 0.01).f1;
  EXPECT_LE(raw, dpa + 1e-12);
  EXPECT_LE(dpa, pa + 1e-12);
}

TEST(AucRocTest, PerfectSeparationNearOne) {
  Labels truth(100, 0);
  std::vector<double> scores(100, 0.1);
  for (int t = 40; t < 60; ++t) {
    truth[t] = 1;
    scores[t] = 0.9;
  }
  EXPECT_GT(AucRoc(scores, truth, Adjustment::kNone), 0.99);
}

TEST(AucRocTest, RandomScoresNearHalf) {
  cad::Rng rng(7);
  Labels truth(4000, 0);
  for (int t = 0; t < 4000; ++t) truth[t] = rng.NextDouble() < 0.3 ? 1 : 0;
  std::vector<double> scores(4000);
  for (double& s : scores) s = rng.NextDouble();
  const double auc = AucRoc(scores, truth, Adjustment::kNone);
  EXPECT_NEAR(auc, 0.5, 0.05);
}

TEST(AucRocTest, InvertedScoresNearZero) {
  Labels truth(100, 0);
  std::vector<double> scores(100, 0.9);
  for (int t = 40; t < 60; ++t) {
    truth[t] = 1;
    scores[t] = 0.1;  // anomalies get the LOWEST scores
  }
  EXPECT_LT(AucRoc(scores, truth, Adjustment::kNone), 0.1);
}

TEST(AucPrTest, PerfectSeparationNearOne) {
  Labels truth(100, 0);
  std::vector<double> scores(100, 0.1);
  for (int t = 40; t < 60; ++t) {
    truth[t] = 1;
    scores[t] = 0.9;
  }
  EXPECT_GT(AucPr(scores, truth, Adjustment::kNone), 0.95);
}

TEST(AucPrTest, RandomScoresNearPositiveRate) {
  cad::Rng rng(9);
  Labels truth(4000, 0);
  for (int t = 0; t < 4000; ++t) truth[t] = rng.NextDouble() < 0.2 ? 1 : 0;
  std::vector<double> scores(4000);
  for (double& s : scores) s = rng.NextDouble();
  EXPECT_NEAR(AucPr(scores, truth, Adjustment::kNone), 0.2, 0.07);
}

TEST(DilateTruthTest, ExtendsSegments) {
  const Labels truth = {0, 0, 0, 1, 1, 0, 0, 0};
  EXPECT_EQ(DilateTruth(truth, 1), (Labels{0, 0, 1, 1, 1, 1, 0, 0}));
  EXPECT_EQ(DilateTruth(truth, 0), truth);
}

TEST(DilateTruthTest, ClampsAtBoundaries) {
  const Labels truth = {1, 0, 0, 0, 1};
  EXPECT_EQ(DilateTruth(truth, 2), (Labels{1, 1, 1, 1, 1}));
}

TEST(VusTest, MatchesAucWhenWindowZero) {
  Labels truth(80, 0);
  std::vector<double> scores(80, 0.2);
  for (int t = 30; t < 45; ++t) {
    truth[t] = 1;
    scores[t] = 0.8;
  }
  VusOptions options;
  options.max_window = 0;
  options.window_step = 1;
  EXPECT_NEAR(VusRoc(scores, truth, Adjustment::kNone, options),
              AucRoc(scores, truth, Adjustment::kNone), 1e-12);
  EXPECT_NEAR(VusPr(scores, truth, Adjustment::kNone, options),
              AucPr(scores, truth, Adjustment::kNone), 1e-12);
}

TEST(VusTest, ToleratesBoundaryMisalignment) {
  // Prediction shifted 3 points late: plain AUC-PR punishes it, VUS with a
  // tolerance window forgives the boundary, so VUS > AUC.
  Labels truth(120, 0);
  for (int t = 50; t < 70; ++t) truth[t] = 1;
  std::vector<double> scores(120, 0.1);
  for (int t = 53; t < 73; ++t) scores[t] = 0.9;
  VusOptions options;
  options.max_window = 12;
  options.window_step = 4;
  EXPECT_GT(VusPr(scores, truth, Adjustment::kNone, options),
            AucPr(scores, truth, Adjustment::kNone));
}

TEST(VusTest, ScoresBounded) {
  cad::Rng rng(13);
  Labels truth(300, 0);
  for (int t = 100; t < 130; ++t) truth[t] = 1;
  std::vector<double> scores(300);
  for (double& s : scores) s = rng.NextDouble();
  for (Adjustment mode : {Adjustment::kNone, Adjustment::kPointAdjust,
                          Adjustment::kDelayPointAdjust}) {
    const double roc = VusRoc(scores, truth, mode);
    const double pr = VusPr(scores, truth, mode);
    EXPECT_GE(roc, 0.0);
    EXPECT_LE(roc, 1.0 + 1e-9);
    EXPECT_GE(pr, 0.0);
    EXPECT_LE(pr, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace cad::eval
