#include "eval/ahead_miss.h"

#include <gtest/gtest.h>

namespace cad::eval {
namespace {

// Figure 3 of the paper: M1 detects anomaly 1 earlier, M2 detects anomaly 2
// earlier; neither misses. Ahead(M1 vs M2) = 50%, Miss = 0.
TEST(AheadMissTest, Figure3Example) {
  const Labels truth = {0, 1, 1, 1, 0, 0, 1, 1, 1, 1};
  const Labels m1 = {0, 1, 0, 0, 0, 0, 0, 0, 0, 1};
  const Labels m2 = {0, 0, 1, 0, 0, 0, 0, 1, 0, 0};
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_EQ(result.total_anomalies, 2);
  EXPECT_EQ(result.detected_by_m1, 2);
  EXPECT_EQ(result.ahead_count, 1);
  EXPECT_DOUBLE_EQ(result.ahead, 0.5);
  EXPECT_DOUBLE_EQ(result.miss, 0.0);
}

TEST(AheadMissTest, IdealCase) {
  const Labels truth = {1, 1, 0, 1, 1};
  const Labels m1 = {1, 0, 0, 1, 0};    // detects both at their first point
  const Labels m2 = {0, 1, 0, 0, 1};    // one point later on both
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_DOUBLE_EQ(result.ahead, 1.0);
  EXPECT_DOUBLE_EQ(result.miss, 0.0);
}

TEST(AheadMissTest, AnomalyMissedByM2CountsAsAhead) {
  const Labels truth = {1, 1, 0};
  const Labels m1 = {0, 1, 0};
  const Labels m2 = {0, 0, 0};  // misses entirely
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_EQ(result.ahead_count, 1);
  EXPECT_DOUBLE_EQ(result.ahead, 1.0);
}

TEST(AheadMissTest, TieIsNotAhead) {
  const Labels truth = {1, 1, 0};
  const Labels m1 = {0, 1, 0};
  const Labels m2 = {0, 1, 0};
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_EQ(result.ahead_count, 0);
  EXPECT_DOUBLE_EQ(result.ahead, 0.0);
}

TEST(AheadMissTest, MissCountsOnlyWhatM2Caught) {
  const Labels truth = {1, 0, 1, 0, 1};  // three single-point anomalies
  const Labels m1 = {1, 0, 0, 0, 0};     // detects only the first
  const Labels m2 = {0, 0, 1, 0, 0};     // detects only the second
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_EQ(result.detected_by_m1, 1);
  // M1 missed 2 anomalies; M2 caught 1 of them -> Miss = 1/2.
  EXPECT_EQ(result.miss_count, 1);
  EXPECT_DOUBLE_EQ(result.miss, 0.5);
}

TEST(AheadMissTest, MissZeroWhenM1DetectsAll) {
  const Labels truth = {1, 0, 1};
  const Labels m1 = {1, 0, 1};
  const Labels m2 = {0, 0, 0};
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_DOUBLE_EQ(result.miss, 0.0);  // I_d == I convention
}

TEST(AheadMissTest, M1DetectsNothing) {
  const Labels truth = {1, 1, 0, 1};
  const Labels m1 = {0, 0, 0, 0};
  const Labels m2 = {1, 0, 0, 1};
  const AheadMiss result = CompareAheadMiss(m1, m2, truth);
  EXPECT_EQ(result.detected_by_m1, 0);
  EXPECT_DOUBLE_EQ(result.ahead, 0.0);
  EXPECT_DOUBLE_EQ(result.miss, 1.0);  // both missed anomalies caught by M2
}

TEST(AheadMissTest, NoAnomaliesAtAll) {
  const Labels truth = {0, 0, 0};
  const AheadMiss result = CompareAheadMiss({1, 0, 0}, {0, 1, 0}, truth);
  EXPECT_EQ(result.total_anomalies, 0);
  EXPECT_DOUBLE_EQ(result.ahead, 0.0);
  EXPECT_DOUBLE_EQ(result.miss, 0.0);
}

TEST(FirstDetectionTest, FindsFirstPointInSegment) {
  const Labels pred = {0, 0, 1, 1, 0};
  EXPECT_EQ(FirstDetection(pred, {1, 5}), 2);
  EXPECT_EQ(FirstDetection(pred, {0, 2}), -1);
  EXPECT_EQ(FirstDetection(pred, {3, 4}), 3);
}

}  // namespace
}  // namespace cad::eval
