#include "eval/sensor_eval.h"

#include <gtest/gtest.h>

namespace cad::eval {
namespace {

TEST(SensorSetF1Test, ExactMatch) {
  EXPECT_DOUBLE_EQ(SensorSetF1({1, 2, 3}, {1, 2, 3}).f1, 1.0);
}

TEST(SensorSetF1Test, PartialOverlap) {
  // predicted {1,2}, actual {2,3}: tp=1, fp=1, fn=1 -> p=r=f1=0.5.
  const PrfScore s = SensorSetF1({1, 2}, {2, 3});
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(SensorSetF1Test, Disjoint) {
  EXPECT_DOUBLE_EQ(SensorSetF1({1}, {2}).f1, 0.0);
}

TEST(SensorSetF1Test, EmptyPrediction) {
  EXPECT_DOUBLE_EQ(SensorSetF1({}, {1, 2}).f1, 0.0);
}

TEST(SensorF1Test, MergesOverlappingPredictions) {
  // Two predictions overlap the single anomaly; their sensor sets union.
  const std::vector<SensorGroundTruth> truth = {{{10, 30}, {1, 2, 3, 4}}};
  const std::vector<SensorPrediction> predictions = {
      {{8, 15}, {1, 2}},
      {{20, 40}, {3, 4}},
  };
  EXPECT_DOUBLE_EQ(SensorF1(predictions, truth), 1.0);
}

TEST(SensorF1Test, NonOverlappingPredictionIgnored) {
  const std::vector<SensorGroundTruth> truth = {{{10, 20}, {1, 2}}};
  const std::vector<SensorPrediction> predictions = {
      {{50, 60}, {1, 2}},  // right sensors, wrong time
  };
  EXPECT_DOUBLE_EQ(SensorF1(predictions, truth), 0.0);
}

TEST(SensorF1Test, MacroAverageOverAnomalies) {
  const std::vector<SensorGroundTruth> truth = {
      {{0, 10}, {1, 2}},
      {{50, 60}, {5, 6}},
  };
  const std::vector<SensorPrediction> predictions = {
      {{0, 10}, {1, 2}},  // perfect on first
                          // second anomaly undetected -> 0
  };
  EXPECT_DOUBLE_EQ(SensorF1(predictions, truth), 0.5);
}

TEST(SensorF1Test, DuplicateSensorsDeduplicated) {
  const std::vector<SensorGroundTruth> truth = {{{0, 10}, {1, 2}}};
  const std::vector<SensorPrediction> predictions = {
      {{0, 5}, {1, 2}},
      {{5, 10}, {1, 2}},  // same sensors again: no precision penalty
  };
  EXPECT_DOUBLE_EQ(SensorF1(predictions, truth), 1.0);
}

TEST(SensorF1Test, EmptyGroundTruthIsZero) {
  EXPECT_DOUBLE_EQ(SensorF1({}, {}), 0.0);
}

TEST(SensorF1Test, TouchingButNotOverlappingSegments) {
  // [0, 10) and [10, 20) share no point: not an overlap.
  const std::vector<SensorGroundTruth> truth = {{{10, 20}, {1}}};
  const std::vector<SensorPrediction> predictions = {{{0, 10}, {1}}};
  EXPECT_DOUBLE_EQ(SensorF1(predictions, truth), 0.0);
}

}  // namespace
}  // namespace cad::eval
