#include "eval/rank.h"

#include <gtest/gtest.h>

namespace cad::eval {
namespace {

TEST(RankColumnTest, HigherScoreLowerRank) {
  const std::vector<double> ranks = RankColumn({0.9, 0.5, 0.7});
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 2.0);
}

TEST(RankColumnTest, TiesShareAverageRank) {
  const std::vector<double> ranks = RankColumn({0.5, 0.9, 0.5});
  EXPECT_DOUBLE_EQ(ranks[1], 1.0);
  EXPECT_DOUBLE_EQ(ranks[0], 2.5);  // tied for ranks 2 and 3
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
}

TEST(RankColumnTest, AllTied) {
  const std::vector<double> ranks = RankColumn({1.0, 1.0, 1.0, 1.0});
  for (double r : ranks) EXPECT_DOUBLE_EQ(r, 2.5);
}

TEST(AverageRanksTest, AveragesAcrossColumns) {
  // Method 0 is best in column 0 (rank 1) and worst in column 1 (rank 2):
  // average 1.5. Method 1 the mirror image.
  const std::vector<double> avg =
      AverageRanks({{0.9, 0.1}, {0.2, 0.8}});
  EXPECT_DOUBLE_EQ(avg[0], 1.5);
  EXPECT_DOUBLE_EQ(avg[1], 1.5);
}

TEST(AverageRanksTest, ConsistentWinnerRanksFirst) {
  const std::vector<double> avg =
      AverageRanks({{0.9, 0.5, 0.1}, {0.8, 0.6, 0.2}, {0.95, 0.4, 0.3}});
  EXPECT_DOUBLE_EQ(avg[0], 1.0);
  EXPECT_DOUBLE_EQ(avg[1], 2.0);
  EXPECT_DOUBLE_EQ(avg[2], 3.0);
}

}  // namespace
}  // namespace cad::eval
