#include "eval/adjust.h"

#include <gtest/gtest.h>

namespace cad::eval {
namespace {

// The paper's Figure 3 example, reconstructed exactly: ten time points
// t1..t10 (0-indexed 0..9), ground truth anomalies at t2-t4 and t7-t10
// (0-indexed [1,4) and [6,10)), method M1 detecting t2 and t10 (0-indexed 1
// and 9). Expected: F1 = 44.4%, F1_PA = 100%, F1_DPA = 72.7%.
struct Figure3 {
  Labels truth = {0, 1, 1, 1, 0, 0, 1, 1, 1, 1};
  Labels m1 = {0, 1, 0, 0, 0, 0, 0, 0, 0, 1};
  // M2 detects each anomaly one point later than its start.
  Labels m2 = {0, 0, 1, 0, 0, 0, 0, 1, 0, 0};
};

TEST(AdjustTest, Figure3RawF1) {
  const Figure3 fig;
  const PrfScore s = ScoreWithAdjustment(Adjustment::kNone, fig.m1, fig.truth);
  EXPECT_NEAR(s.f1, 4.0 / 9.0, 1e-9);  // 44.4%
}

TEST(AdjustTest, Figure3PointAdjustGives100) {
  const Figure3 fig;
  const PrfScore s =
      ScoreWithAdjustment(Adjustment::kPointAdjust, fig.m1, fig.truth);
  EXPECT_NEAR(s.f1, 1.0, 1e-9);
}

TEST(AdjustTest, Figure3DelayPointAdjustGives727) {
  const Figure3 fig;
  const PrfScore s =
      ScoreWithAdjustment(Adjustment::kDelayPointAdjust, fig.m1, fig.truth);
  EXPECT_NEAR(s.f1, 8.0 / 11.0, 1e-9);  // 72.7%
}

TEST(AdjustTest, PaFillsWholeSegment) {
  const Labels truth = {0, 1, 1, 1, 0};
  const Labels pred = {0, 0, 1, 0, 0};
  const Labels adjusted = PointAdjust(pred, truth);
  EXPECT_EQ(adjusted, (Labels{0, 1, 1, 1, 0}));
}

TEST(AdjustTest, DpaFillsOnlyAfterFirstTp) {
  const Labels truth = {0, 1, 1, 1, 0};
  const Labels pred = {0, 0, 1, 0, 0};
  const Labels adjusted = DelayPointAdjust(pred, truth);
  EXPECT_EQ(adjusted, (Labels{0, 0, 1, 1, 0}));
}

TEST(AdjustTest, UndetectedSegmentUnchanged) {
  const Labels truth = {1, 1, 0, 1, 1};
  const Labels pred = {0, 0, 0, 1, 0};
  EXPECT_EQ(PointAdjust(pred, truth), (Labels{0, 0, 0, 1, 1}));
  EXPECT_EQ(DelayPointAdjust(pred, truth), (Labels{0, 0, 0, 1, 1}));
}

TEST(AdjustTest, FalsePositivesOutsideSegmentsKept) {
  const Labels truth = {0, 0, 1, 1, 0};
  const Labels pred = {1, 0, 1, 0, 1};
  const Labels pa = PointAdjust(pred, truth);
  EXPECT_EQ(pa[0], 1);  // FP untouched
  EXPECT_EQ(pa[4], 1);  // FP untouched
  EXPECT_EQ(pa[3], 1);  // FN adjusted
}

TEST(AdjustTest, SegmentTouchingSeriesEnd) {
  const Labels truth = {0, 0, 1, 1};
  const Labels pred = {0, 0, 0, 1};
  EXPECT_EQ(PointAdjust(pred, truth), (Labels{0, 0, 1, 1}));
  EXPECT_EQ(DelayPointAdjust(pred, truth), (Labels{0, 0, 0, 1}));
}

TEST(AdjustTest, NoAnomaliesIsIdentity) {
  const Labels truth = {0, 0, 0};
  const Labels pred = {1, 0, 1};
  EXPECT_EQ(PointAdjust(pred, truth), pred);
  EXPECT_EQ(DelayPointAdjust(pred, truth), pred);
}

TEST(ExtractSegmentsTest, FindsAllRuns) {
  const Labels truth = {1, 1, 0, 0, 1, 0, 1};
  const std::vector<Segment> segments = ExtractSegments(truth);
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_EQ(segments[0].begin, 0);
  EXPECT_EQ(segments[0].end, 2);
  EXPECT_EQ(segments[1].begin, 4);
  EXPECT_EQ(segments[1].end, 5);
  EXPECT_EQ(segments[2].begin, 6);
  EXPECT_EQ(segments[2].end, 7);
}

TEST(ConfusionTest, CountsAllQuadrants) {
  const Labels pred = {1, 1, 0, 0};
  const Labels truth = {1, 0, 1, 0};
  const Confusion c = Count(pred, truth);
  EXPECT_EQ(c.tp, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.tn, 1);
  const PrfScore s = FromConfusion(c);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
}

TEST(ConfusionTest, DegenerateAllNegative) {
  const PrfScore s = FromConfusion(Count({0, 0}, {0, 0}));
  EXPECT_EQ(s.precision, 0.0);
  EXPECT_EQ(s.recall, 0.0);
  EXPECT_EQ(s.f1, 0.0);
}

// Property: DPA is sandwiched between raw and PA — F1 <= F1_DPA <= F1_PA —
// across many random prediction patterns.
class DpaSandwich : public ::testing::TestWithParam<int> {};

TEST_P(DpaSandwich, F1Ordering) {
  const unsigned seed = static_cast<unsigned>(GetParam());
  Labels truth(60, 0), pred(60, 0);
  unsigned state = seed;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return state >> 16;
  };
  // Two fixed anomaly segments.
  for (int t = 10; t < 20; ++t) truth[t] = 1;
  for (int t = 40; t < 52; ++t) truth[t] = 1;
  for (int t = 0; t < 60; ++t) pred[t] = (next() % 4) == 0 ? 1 : 0;

  const double raw =
      ScoreWithAdjustment(Adjustment::kNone, pred, truth).f1;
  const double dpa =
      ScoreWithAdjustment(Adjustment::kDelayPointAdjust, pred, truth).f1;
  const double pa =
      ScoreWithAdjustment(Adjustment::kPointAdjust, pred, truth).f1;
  EXPECT_LE(raw, dpa + 1e-12);
  EXPECT_LE(dpa, pa + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomPredictions, DpaSandwich,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace cad::eval
