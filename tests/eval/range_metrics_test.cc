#include "eval/range_metrics.h"

#include <gtest/gtest.h>

namespace cad::eval {
namespace {

TEST(RangeMetricsTest, PerfectPredictionScoresOne) {
  const Labels truth = {0, 1, 1, 1, 0, 0, 1, 1, 0};
  const RangePrf s = RangeBasedScore(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(RangeMetricsTest, NoPredictionScoresZero) {
  const Labels truth = {0, 1, 1, 0};
  const Labels pred = {0, 0, 0, 0};
  const RangePrf s = RangeBasedScore(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(RangeMetricsTest, ExistenceRewardHalfForSinglePointHit) {
  // One real range of 4, predicted hit on one point: recall gets the full
  // alpha existence reward plus (1-alpha) * 1/4 overlap (flat bias).
  const Labels truth = {1, 1, 1, 1};
  const Labels pred = {0, 1, 0, 0};
  RangeMetricOptions options;
  options.alpha = 0.5;
  const RangePrf s = RangeBasedScore(pred, truth, options);
  EXPECT_NEAR(s.recall, 0.5 + 0.5 * 0.25, 1e-12);
  // The predicted single-point range is fully inside truth: precision 1.
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
}

TEST(RangeMetricsTest, FrontBiasPrefersEarlyOverlap) {
  const Labels truth = {1, 1, 1, 1, 1, 1};
  const Labels early = {1, 1, 0, 0, 0, 0};
  const Labels late = {0, 0, 0, 0, 1, 1};
  RangeMetricOptions options;
  options.alpha = 0.0;  // isolate the overlap term
  options.bias = PositionalBias::kFront;
  const double early_recall = RangeBasedScore(early, truth, options).recall;
  const double late_recall = RangeBasedScore(late, truth, options).recall;
  EXPECT_GT(early_recall, late_recall * 2.0);
}

TEST(RangeMetricsTest, FlatBiasSymmetric) {
  const Labels truth = {1, 1, 1, 1, 1, 1};
  const Labels early = {1, 1, 0, 0, 0, 0};
  const Labels late = {0, 0, 0, 0, 1, 1};
  RangeMetricOptions options;
  options.alpha = 0.0;
  const double a = RangeBasedScore(early, truth, options).recall;
  const double b = RangeBasedScore(late, truth, options).recall;
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(RangeMetricsTest, CardinalityPenalizesFragmentation) {
  // Same 4 covered points, once contiguous and once as 4 fragments.
  const Labels truth = {1, 1, 1, 1, 1, 1, 1, 1};
  const Labels contiguous = {1, 1, 1, 1, 0, 0, 0, 0};
  const Labels fragmented = {1, 0, 1, 0, 1, 0, 1, 0};
  RangeMetricOptions options;
  options.alpha = 0.0;
  const double whole = RangeBasedScore(contiguous, truth, options).recall;
  const double split = RangeBasedScore(fragmented, truth, options).recall;
  EXPECT_GT(whole, split);
}

TEST(RangeMetricsTest, FalsePositiveRangeHurtsPrecisionOnly) {
  const Labels truth = {0, 0, 1, 1, 0, 0, 0, 0};
  const Labels pred = {0, 0, 1, 1, 0, 0, 1, 1};  // second range is spurious
  const RangePrf s = RangeBasedScore(pred, truth);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_NEAR(s.precision, 0.5, 1e-12);  // one perfect, one zero
}

TEST(RangeMetricsTest, EmptyTruthGivesZeroRecall) {
  const Labels truth = {0, 0, 0};
  const Labels pred = {0, 1, 0};
  const RangePrf s = RangeBasedScore(pred, truth);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);  // the predicted range overlaps nothing
}

}  // namespace
}  // namespace cad::eval
