#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/check.h"

namespace cad::obs {
namespace {

// Fills the next slot with a synthetic round whose fields are derived from
// the round index, so eviction / lookup results are checkable by value.
void RecordRound(FlightRecorder* recorder, int round) {
  DecisionRecord& record = recorder->BeginRecord();
  record.round = round;
  record.window_start = round * 4;
  record.window_end = round * 4 + 40;
  record.n_variations = round % 5;
  record.mu = 0.5 * round;
  record.sigma = 0.25;
  record.threshold = 0.75;
  record.score = 0.1;
  record.abnormal = (round % 3 == 0);
  record.entered.push_back(round);
  record.movers.push_back(round);
  recorder->Commit();
}

TEST(FlightRecorderTest, DisabledRecorderAnswersEverythingEmpty) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  EXPECT_EQ(recorder.capacity(), 0);
  EXPECT_EQ(recorder.size(), 0);
  EXPECT_EQ(recorder.latest(), nullptr);
  EXPECT_EQ(recorder.Find(0), nullptr);
  EXPECT_FALSE(recorder.Explain(0).has_value());
  EXPECT_TRUE(recorder.Records().empty());
  std::string jsonl;
  recorder.DumpJsonl(&jsonl);
  EXPECT_TRUE(jsonl.empty());
}

TEST(FlightRecorderTest, RingWrapsAndEvictsOldestRounds) {
  FlightRecorder recorder(4, 8);
  for (int round = 0; round < 10; ++round) RecordRound(&recorder, round);

  EXPECT_EQ(recorder.size(), 4);
  EXPECT_EQ(recorder.total_records(), 10);
  ASSERT_NE(recorder.latest(), nullptr);
  EXPECT_EQ(recorder.latest()->round, 9);

  // Rounds 0..5 were evicted, 6..9 are held.
  for (int round = 0; round < 6; ++round) {
    EXPECT_EQ(recorder.Find(round), nullptr) << "round " << round;
  }
  for (int round = 6; round < 10; ++round) {
    const DecisionRecord* record = recorder.Find(round);
    ASSERT_NE(record, nullptr) << "round " << round;
    EXPECT_EQ(record->round, round);
    EXPECT_EQ(record->window_start, round * 4);
    ASSERT_EQ(record->entered.size(), 1u);
    EXPECT_EQ(record->entered[0], round);
  }

  const std::vector<DecisionRecord> records = recorder.Records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().round, 6);  // oldest first
  EXPECT_EQ(records.back().round, 9);
}

TEST(FlightRecorderTest, ExplainComputesDeltasAgainstPreviousRound) {
  FlightRecorder recorder(8, 4);
  RecordRound(&recorder, 0);  // abnormal (0 % 3 == 0)
  RecordRound(&recorder, 1);  // normal

  const std::optional<DecisionProvenance> provenance = recorder.Explain(1);
  ASSERT_TRUE(provenance.has_value());
  EXPECT_EQ(provenance->record.round, 1);
  EXPECT_TRUE(provenance->has_prev);
  EXPECT_EQ(provenance->prev_round, 0);
  EXPECT_TRUE(provenance->verdict_flipped);
  EXPECT_EQ(provenance->delta_n_variations, 1);
  EXPECT_DOUBLE_EQ(provenance->delta_mu, 0.5);
  EXPECT_DOUBLE_EQ(provenance->delta_sigma, 0.0);

  // Round 0 has no predecessor.
  const std::optional<DecisionProvenance> first = recorder.Explain(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->has_prev);

  EXPECT_FALSE(recorder.Explain(7).has_value());  // never recorded
}

TEST(FlightRecorderTest, ExplainSurvivesEvictionOfThePreviousRound) {
  FlightRecorder recorder(2, 4);
  for (int round = 0; round < 3; ++round) RecordRound(&recorder, round);
  // Ring holds rounds 1 and 2; round 1's predecessor is gone.
  const std::optional<DecisionProvenance> provenance = recorder.Explain(1);
  ASSERT_TRUE(provenance.has_value());
  EXPECT_FALSE(provenance->has_prev);
  const std::optional<DecisionProvenance> newest = recorder.Explain(2);
  ASSERT_TRUE(newest.has_value());
  EXPECT_TRUE(newest->has_prev);
}

TEST(FlightRecorderTest, ClearKeepsVectorCapacity) {
  DecisionRecord record;
  record.entered.reserve(16);
  record.entered = {1, 2, 3};
  record.exited = {4};
  record.movers = {1};
  record.round = 7;
  record.mu = 3.5;
  const size_t capacity = record.entered.capacity();
  record.Clear();
  EXPECT_EQ(record.round, -1);
  EXPECT_EQ(record.mu, 0.0);
  EXPECT_TRUE(record.entered.empty());
  EXPECT_TRUE(record.exited.empty());
  EXPECT_TRUE(record.movers.empty());
  EXPECT_GE(record.entered.capacity(), capacity);
}

TEST(FlightRecorderTest, JsonKeepsTimingsLastAndOmitsThemOnRequest) {
  DecisionRecord record;
  record.round = 3;
  record.n_variations = 2;
  record.mu = 1.5;
  record.abnormal = true;
  record.entered = {4, 7};
  record.round_seconds = 0.25;

  const std::string with_timings = DecisionRecordToJson(record);
  const std::string without = DecisionRecordToJson(record, false);

  // The deterministic prefix is everything before ,"timings"; dropping the
  // timings must reproduce it exactly (plus the closing brace).
  const size_t cut = with_timings.find(",\"timings\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_EQ(without, with_timings.substr(0, cut) + "}");

  EXPECT_NE(with_timings.find("\"round\":3"), std::string::npos);
  EXPECT_NE(with_timings.find("\"abnormal\":true"), std::string::npos);
  EXPECT_NE(with_timings.find("\"entered\":[4,7]"), std::string::npos);
  EXPECT_NE(with_timings.find("\"round_seconds\":0.25"), std::string::npos);
  EXPECT_EQ(without.find("timings"), std::string::npos);
}

TEST(FlightRecorderTest, DumpJsonlEmitsOneObjectPerHeldRound) {
  FlightRecorder recorder(3, 4);
  for (int round = 0; round < 5; ++round) RecordRound(&recorder, round);
  std::string jsonl;
  recorder.DumpJsonl(&jsonl);
  // Held rounds are 2, 3, 4 — three lines, oldest first.
  int lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(jsonl.find("\"round\":2"), jsonl.find("\"round\""));
  EXPECT_NE(jsonl.find("\"round\":4"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"round\":1"), std::string::npos);
}

TEST(FlightRecorderTest, AppendRangeJsonlSkipsEvictedRounds) {
  FlightRecorder recorder(3, 4);
  for (int round = 0; round < 5; ++round) RecordRound(&recorder, round);
  std::string jsonl;
  recorder.AppendRangeJsonl(0, 3, &jsonl);  // 0 and 1 are gone
  int lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 2);
  EXPECT_NE(jsonl.find("\"round\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"round\":3"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"round\":4"), std::string::npos);
}

TEST(FlightRecorderTest, ProvenanceJsonShapesPrevAndNull) {
  FlightRecorder recorder(4, 4);
  RecordRound(&recorder, 0);
  RecordRound(&recorder, 1);

  const std::string first = ProvenanceToJson(*recorder.Explain(0));
  EXPECT_NE(first.find("\"prev\":null"), std::string::npos);
  EXPECT_NE(first.find("\"record\":{"), std::string::npos);
  EXPECT_NE(first.find("\"timings\":{"), std::string::npos);

  const std::string second = ProvenanceToJson(*recorder.Explain(1));
  EXPECT_NE(second.find("\"prev\":{\"round\":0"), std::string::npos);
  EXPECT_NE(second.find("\"verdict_flipped\":true"), std::string::npos);
  EXPECT_NE(second.find("\"delta_n_variations\":1"), std::string::npos);
}

#if CAD_CHECK_LEVEL >= 1
struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void ThrowingHandler(const check::CheckContext& ctx,
                                  const std::string& message) {
  throw CheckFailure(check::FormatFailure(ctx, message));
}

TEST(FlightRecorderTest, CrashDumpWritesTheRingWhenACheckFails) {
  const std::string path = ::testing::TempDir() + "/cad_crash_dump.jsonl";
  std::remove(path.c_str());
  {
    FlightRecorder recorder(4, 4);
    recorder.EnableCrashDump(path);
    for (int round = 0; round < 3; ++round) RecordRound(&recorder, round);

    check::ScopedFailureHandler guard(&ThrowingHandler);
    try {
      CAD_CHECK(false, "simulated invariant violation");
    } catch (const CheckFailure&) {
    }
  }  // destruction unregisters the hook

  std::ifstream dump(path);
  ASSERT_TRUE(dump.is_open()) << "crash dump was not written to " << path;
  std::ostringstream content;
  content << dump.rdbuf();
  const std::string jsonl = content.str();
  int lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 3) << jsonl;
  EXPECT_NE(jsonl.find("\"round\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"round\":2"), std::string::npos);

  // With the recorder destroyed, another failure must not rewrite the file.
  std::remove(path.c_str());
  check::ScopedFailureHandler guard(&ThrowingHandler);
  try {
    CAD_CHECK(false, "after unregistration");
  } catch (const CheckFailure&) {
  }
  std::ifstream gone(path);
  EXPECT_FALSE(gone.is_open()) << "destroyed recorder still dumped";
}
#endif  // CAD_CHECK_LEVEL >= 1

TEST(FlightRecorderTest, HealthQueriesReportAgeAndRate) {
  FlightRecorder recorder(4, 4);
  EXPECT_TRUE(std::isinf(recorder.seconds_since_last_record()));
  EXPECT_EQ(recorder.recent_rounds_per_second(), 0.0);
  RecordRound(&recorder, 0);
  EXPECT_GE(recorder.seconds_since_last_record(), 0.0);
  EXPECT_FALSE(std::isinf(recorder.seconds_since_last_record()));
  EXPECT_EQ(recorder.recent_rounds_per_second(), 0.0);  // < 2 records
  RecordRound(&recorder, 1);
  EXPECT_GE(recorder.recent_rounds_per_second(), 0.0);
}

}  // namespace
}  // namespace cad::obs
