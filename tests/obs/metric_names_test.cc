// Metric-name hygiene gate: every instrument the pipeline registers must
// match ^cad_[a-z0-9_]+$ and be documented in DESIGN.md's metric glossary
// (the contract DESIGN.md §Observability states). The test registers the
// full production instrument set into a private registry — PipelineMetrics,
// the validator violation counters, the detector aggregates — and then
// audits the snapshot against the glossary text (CAD_DESIGN_MD points at
// the source-tree DESIGN.md).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "check/validators.h"
#include "fleet/fleet_metrics.h"
#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"

namespace cad::obs {
namespace {

bool MatchesNamePolicy(const std::string& name) {
  if (name.rfind("cad_", 0) != 0) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return name.size() > 4;  // more than just the prefix
}

std::string ReadDesignMd() {
#ifndef CAD_DESIGN_MD
#error "CAD_DESIGN_MD must point at the source-tree DESIGN.md"
#endif
  std::ifstream file(CAD_DESIGN_MD);
  EXPECT_TRUE(file.is_open()) << "cannot open " << CAD_DESIGN_MD;
  std::ostringstream content;
  content << file.rdbuf();
  return content.str();
}

// Backticked `cad_*` tokens from the glossary, with one {a,b} alternation
// expanded (the glossary writes cad_detector_{fit,score}_total as one row)
// and <placeholder> segments turned into the marker '*' (template rows like
// cad_check_<artifact>_violations).
std::vector<std::string> GlossaryNames(const std::string& design) {
  std::vector<std::string> names;
  size_t pos = 0;
  while ((pos = design.find("`cad_", pos)) != std::string::npos) {
    const size_t end = design.find('`', pos + 1);
    if (end == std::string::npos) break;
    std::string token = design.substr(pos + 1, end - pos - 1);
    pos = end + 1;

    const size_t open = token.find('{');
    const size_t close = token.find('}');
    std::vector<std::string> expanded;
    if (open != std::string::npos && close != std::string::npos &&
        close > open) {
      const std::string head = token.substr(0, open);
      const std::string tail = token.substr(close + 1);
      std::string alternatives = token.substr(open + 1, close - open - 1);
      size_t start = 0;
      while (start <= alternatives.size()) {
        size_t comma = alternatives.find(',', start);
        if (comma == std::string::npos) comma = alternatives.size();
        expanded.push_back(head + alternatives.substr(start, comma - start) +
                           tail);
        start = comma + 1;
      }
    } else {
      expanded.push_back(token);
    }
    for (std::string& name : expanded) {
      // Collapse <placeholder> template segments to a wildcard marker.
      const size_t lt = name.find('<');
      const size_t gt = name.find('>');
      if (lt != std::string::npos && gt != std::string::npos && gt > lt) {
        name = name.substr(0, lt) + "*" + name.substr(gt + 1);
      }
      names.push_back(name);
    }
  }
  return names;
}

bool GlossaryCovers(const std::vector<std::string>& glossary,
                    const std::string& name) {
  for (const std::string& entry : glossary) {
    const size_t star = entry.find('*');
    if (star == std::string::npos) {
      if (entry == name) return true;
      continue;
    }
    const std::string prefix = entry.substr(0, star);
    const std::string suffix = entry.substr(star + 1);
    if (name.size() >= prefix.size() + suffix.size() &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      return true;
    }
  }
  return false;
}

// Every production instrument, registered into `registry`.
void RegisterProductionInstruments(Registry* registry) {
  PipelineMetrics::For(*registry);
  // The fleet layer's rollups (header-only registration, so this gate does
  // not need to link cad_fleet).
  fleet::FleetMetrics::For(*registry);
  // Forcing a violation registers cad_check_violations_total and the
  // per-artifact counter (cad_check_running_stats_violations here).
  const Status violation =
      check::ValidateRunningStatsValues(-1, 0.0, 0.0, 0.0, 0.0, registry);
  EXPECT_FALSE(violation.ok()) << "count=-1 must violate";
  // The baseline Detector aggregates live in Registry::Global() behind a
  // function-local static, so they cannot be re-registered here; their names
  // are pinned by this list (keep in sync with baselines/detector.cc).
  registry->counter("cad_detector_fit_total");
  registry->counter("cad_detector_score_total");
  registry->histogram("cad_detector_fit_seconds");
  registry->histogram("cad_detector_score_seconds");
}

std::vector<std::string> SnapshotNames(const Snapshot& snapshot) {
  std::vector<std::string> names;
  for (const CounterSample& c : snapshot.counters) names.push_back(c.name);
  for (const GaugeSample& g : snapshot.gauges) names.push_back(g.name);
  for (const HistogramSample& h : snapshot.histograms) names.push_back(h.name);
  return names;
}

TEST(MetricNamesTest, EveryInstrumentMatchesTheNamePolicy) {
  Registry registry;
  RegisterProductionInstruments(&registry);
  const std::vector<std::string> names =
      SnapshotNames(registry.TakeSnapshot());
  ASSERT_GE(names.size(), 19u);  // 7+1+2 counters, 3 gauges, 5+2 histograms
  for (const std::string& name : names) {
    EXPECT_TRUE(MatchesNamePolicy(name))
        << "instrument '" << name << "' violates ^cad_[a-z0-9_]+$";
  }
}

TEST(MetricNamesTest, EveryInstrumentAppearsInTheDesignGlossary) {
  const std::vector<std::string> glossary = GlossaryNames(ReadDesignMd());
  ASSERT_GE(glossary.size(), 15u) << "glossary extraction found too little";

  Registry registry;
  RegisterProductionInstruments(&registry);
  for (const std::string& name : SnapshotNames(registry.TakeSnapshot())) {
    EXPECT_TRUE(GlossaryCovers(glossary, name))
        << "instrument '" << name
        << "' is not documented in DESIGN.md's metric glossary";
  }
}

TEST(MetricNamesTest, NamePolicyRejectsOffenders) {
  EXPECT_FALSE(MatchesNamePolicy("rounds_total"));       // missing prefix
  EXPECT_FALSE(MatchesNamePolicy("cad_Rounds_total"));   // uppercase
  EXPECT_FALSE(MatchesNamePolicy("cad_rounds-total"));   // dash
  EXPECT_FALSE(MatchesNamePolicy("cad_"));               // prefix only
  EXPECT_TRUE(MatchesNamePolicy("cad_rounds_total"));
}

}  // namespace
}  // namespace cad::obs
