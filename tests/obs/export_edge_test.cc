// Exposition edge cases: metrics that carry no observations yet, the +Inf
// bucket's cumulativity, and non-finite gauge values — the states a scraper
// sees right after startup or when a component publishes NaN.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cad::obs {
namespace {

TEST(ExportEdgeTest, ZeroObservationHistogramExposesEmptyCumulativeBuckets) {
  Registry registry;
  registry.histogram("cad_empty_seconds", {0.001, 0.01, 0.1});
  const Snapshot snapshot = registry.TakeSnapshot();

  const std::string prom = ToPrometheusText(snapshot);
  // Every bucket (finite bounds plus +Inf) exists and reads zero.
  EXPECT_NE(prom.find("cad_empty_seconds_bucket{le=\"0.001\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cad_empty_seconds_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cad_empty_seconds_sum 0\n"), std::string::npos);
  EXPECT_NE(prom.find("cad_empty_seconds_count 0\n"), std::string::npos);

  // The JSON view agrees and its mean/quantiles stay finite JSON (no NaN
  // literal leaks from 0/0).
  const std::string json = SnapshotToJson(snapshot);
  EXPECT_NE(json.find("\"cad_empty_seconds\":{\"sum\":0,\"count\":0"),
            std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ExportEdgeTest, InfBucketIsCumulativeOverAllObservations) {
  Registry registry;
  Histogram& histogram = registry.histogram("cad_latency_seconds", {0.1, 1.0});
  histogram.Observe(0.05);   // bucket 0
  histogram.Observe(0.5);    // bucket 1
  histogram.Observe(100.0);  // overflow
  histogram.Observe(200.0);  // overflow
  const std::string prom = ToPrometheusText(registry.TakeSnapshot());

  EXPECT_NE(prom.find("cad_latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cad_latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  // The +Inf bucket equals _count: cumulative over every observation.
  EXPECT_NE(prom.find("cad_latency_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("cad_latency_seconds_count 4\n"), std::string::npos);
}

TEST(ExportEdgeTest, NonFiniteGaugesSpellPrometheusAndNullJson) {
  Registry registry;
  registry.gauge("cad_nan_gauge").Set(std::nan(""));
  registry.gauge("cad_posinf_gauge").Set(
      std::numeric_limits<double>::infinity());
  registry.gauge("cad_neginf_gauge").Set(
      -std::numeric_limits<double>::infinity());
  const Snapshot snapshot = registry.TakeSnapshot();

  // Prometheus text has spellings for non-finite values.
  const std::string prom = ToPrometheusText(snapshot);
  EXPECT_NE(prom.find("cad_nan_gauge NaN\n"), std::string::npos);
  EXPECT_NE(prom.find("cad_posinf_gauge +Inf\n"), std::string::npos);
  EXPECT_NE(prom.find("cad_neginf_gauge -Inf\n"), std::string::npos);

  // JSON has none; non-finite serializes as null so the document stays
  // parseable by any strict JSON reader.
  const std::string json = SnapshotToJson(snapshot);
  EXPECT_NE(json.find("\"cad_nan_gauge\":null"), std::string::npos);
  EXPECT_NE(json.find("\"cad_posinf_gauge\":null"), std::string::npos);
  EXPECT_NE(json.find("\"cad_neginf_gauge\":null"), std::string::npos);
  EXPECT_EQ(json.find("NaN"), std::string::npos);
  EXPECT_EQ(json.find("Inf"), std::string::npos);
}

}  // namespace
}  // namespace cad::obs
