#include "obs/exposition_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "testing/http_client.h"

namespace cad::obs {
namespace {

using cad::testing::HttpGet;
using cad::testing::HttpResponse;

ExpositionServer::Handlers TestHandlers() {
  ExpositionServer::Handlers handlers;
  handlers.metrics_text = [] {
    return std::string("# TYPE cad_rounds_total counter\ncad_rounds_total 3\n");
  };
  handlers.healthz_json = [] { return std::string("{\"rounds\":3}"); };
  handlers.explain_json = [](int round) {
    if (round != 7) return std::string();  // only round 7 "exists"
    return std::string("{\"record\":{\"round\":7}}");
  };
  return handlers;
}

std::unique_ptr<ExpositionServer> StartOrDie() {
  Result<std::unique_ptr<ExpositionServer>> server =
      ExpositionServer::Start(0, TestHandlers());
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

TEST(ExpositionServerTest, ServesMetricsOnEphemeralPort) {
  std::unique_ptr<ExpositionServer> server = StartOrDie();
  ASSERT_GT(server->port(), 0);

  const HttpResponse response = HttpGet(server->port(), "/metrics");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.headers.find("text/plain"), std::string::npos);
  EXPECT_NE(response.body.find("cad_rounds_total 3"), std::string::npos);
  EXPECT_GE(server->requests_served(), 1u);
}

TEST(ExpositionServerTest, ServesHealthzAsJson) {
  std::unique_ptr<ExpositionServer> server = StartOrDie();
  const HttpResponse response = HttpGet(server->port(), "/healthz");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.headers.find("application/json"), std::string::npos);
  EXPECT_EQ(response.body, "{\"rounds\":3}");
}

TEST(ExpositionServerTest, ExplainRoutesRoundQuery) {
  std::unique_ptr<ExpositionServer> server = StartOrDie();
  const HttpResponse hit = HttpGet(server->port(), "/explain?round=7");
  ASSERT_TRUE(hit.ok);
  EXPECT_EQ(hit.status_code, 200);
  EXPECT_NE(hit.body.find("\"round\":7"), std::string::npos);

  const HttpResponse miss = HttpGet(server->port(), "/explain?round=8");
  ASSERT_TRUE(miss.ok);
  EXPECT_EQ(miss.status_code, 404);
}

TEST(ExpositionServerTest, RejectsMalformedRequests) {
  std::unique_ptr<ExpositionServer> server = StartOrDie();
  EXPECT_EQ(HttpGet(server->port(), "/explain").status_code, 400);
  EXPECT_EQ(HttpGet(server->port(), "/explain?round=abc").status_code, 400);
  EXPECT_EQ(HttpGet(server->port(), "/explain?round=-1").status_code, 400);
  EXPECT_EQ(HttpGet(server->port(), "/explain?round=1234567890123").status_code,
            400);
  EXPECT_EQ(HttpGet(server->port(), "/nowhere").status_code, 404);
  EXPECT_EQ(HttpGet(server->port(), "/").status_code, 200);  // endpoint index
}

TEST(ExpositionServerTest, StopIsIdempotentAndSafeToRace) {
  std::unique_ptr<ExpositionServer> server = StartOrDie();
  const uint16_t port = server->port();
  EXPECT_EQ(HttpGet(port, "/healthz").status_code, 200);

  std::thread racer([&server] { server->Stop(); });
  server->Stop();
  racer.join();
  server->Stop();  // and again after it is already down

  // Destruction after Stop releases the port: a new connection must fail at
  // transport level once the listener is closed.
  server.reset();
  EXPECT_FALSE(HttpGet(port, "/healthz").ok);
}

TEST(ExpositionServerTest, ConcurrentScrapesWhileHandlersMutateState) {
  // Handlers read an atomic a "producer" thread keeps bumping — the shape of
  // StreamingCad wiring (handlers racing the ingest path). Run under TSan by
  // verify_matrix.sh's obs stage.
  std::atomic<int> rounds{0};
  ExpositionServer::Handlers handlers;
  handlers.metrics_text = [&rounds] {
    return "cad_rounds_total " + std::to_string(rounds.load()) + "\n";
  };
  handlers.healthz_json = [&rounds] {
    return "{\"rounds\":" + std::to_string(rounds.load()) + "}";
  };
  handlers.explain_json = [&rounds](int round) {
    return round <= rounds.load() ? std::string("{\"round\":0}")
                                  : std::string();
  };
  Result<std::unique_ptr<ExpositionServer>> started =
      ExpositionServer::Start(0, std::move(handlers));
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<ExpositionServer> server = std::move(started).value();

  std::atomic<bool> stop{false};
  std::thread producer([&] {
    while (!stop.load()) rounds.fetch_add(1);
  });
  std::vector<std::thread> scrapers;
  std::atomic<int> failures{0};
  for (int i = 0; i < 3; ++i) {
    scrapers.emplace_back([&, i] {
      const char* const targets[] = {"/metrics", "/healthz",
                                     "/explain?round=1"};
      for (int request = 0; request < 20; ++request) {
        const HttpResponse response =
            HttpGet(server->port(), targets[i % 3]);
        if (!response.ok || response.status_code >= 500) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  stop.store(true);
  producer.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server->requests_served(), 60u);
}

}  // namespace
}  // namespace cad::obs
