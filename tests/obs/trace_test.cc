// Unit tests for the span tracer: inertness when disabled, nesting depth,
// bounded-buffer drop semantics, and the Chrome-trace_event JSON shape.
#include "obs/trace.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace cad::obs {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    Span span(tracer, "work");
    EXPECT_FALSE(span.active());
    span.AddArg("k", "v");  // no-op, must not crash
  }
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(TracerTest, EnabledSpanRecordsOneEventWithArgs) {
  Tracer tracer;
  tracer.Enable();
  {
    Span span(tracer, "round", "pipeline");
    EXPECT_TRUE(span.active());
    span.AddArg("round", "7");
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "round");
  EXPECT_EQ(events[0].category, "pipeline");
  EXPECT_GE(events[0].duration_us, 0);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "round");
  EXPECT_EQ(events[0].args[0].second, "7");
}

TEST(TracerTest, NestedSpansTrackDepthAndCompleteChildFirst) {
  Tracer tracer;
  tracer.Enable();
  {
    Span parent(tracer, "parent");
    {
      Span child(tracer, "child");
    }
  }
  const std::vector<TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Events are recorded in completion order: child ends before parent.
  EXPECT_EQ(events[0].name, "child");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "parent");
  EXPECT_EQ(events[1].depth, 0);
  // The parent interval covers the child's.
  EXPECT_LE(events[1].start_us, events[0].start_us);
}

TEST(TracerTest, EndIsIdempotent) {
  Tracer tracer;
  tracer.Enable();
  Span span(tracer, "once");
  span.End();
  span.End();  // second call must not record again
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, BufferAtCapacityDropsInsteadOfGrowing) {
  Tracer tracer(/*capacity=*/2);
  tracer.Enable();
  for (int i = 0; i < 5; ++i) {
    Span span(tracer, "s");
  }
  EXPECT_EQ(tracer.event_count(), 2u);  // prefix of the run is kept
  EXPECT_EQ(tracer.dropped(), 3u);
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, SpansStopRecordingAfterDisable) {
  Tracer tracer;
  tracer.Enable();
  { Span span(tracer, "recorded"); }
  tracer.Disable();
  { Span span(tracer, "not recorded"); }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, NowMicrosIsMonotonic) {
  Tracer tracer;
  const int64_t a = tracer.NowMicros();
  const int64_t b = tracer.NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0);
}

TEST(TraceExportTest, EventJsonIsChromeTraceShaped) {
  TraceEvent event;
  event.name = "round";
  event.category = "cad";
  event.start_us = 100;
  event.duration_us = 25;
  event.thread_id = 3;
  event.depth = 1;
  event.args.emplace_back("round", "12");

  const std::string json = TraceEventToJson(event);
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"round\":\"12\""), std::string::npos);
}

TEST(TraceExportTest, JsonLinesHasOneLinePerEvent) {
  Tracer tracer;
  tracer.Enable();
  { Span a(tracer, "a"); }
  { Span b(tracer, "b"); }
  const std::string lines = TraceToJsonLines(tracer);
  size_t newlines = 0;
  for (char c : lines) newlines += c == '\n';
  EXPECT_EQ(newlines, 2u);
}

}  // namespace
}  // namespace cad::obs
