// Pipeline-level instrumentation tests: spans and metrics emitted by
// RoundProcessor / CadDetector / StreamingCad / the Detector NVI wrappers,
// recorded into private Registry/Tracer instances through CadOptions.
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/detector.h"
#include "common/rng.h"
#include "core/cad_detector.h"
#include "core/streaming.h"
#include "datasets/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cad {
namespace {

ts::MultivariateSeries MakeSeries(int n_sensors, int length, uint64_t seed) {
  Rng rng(seed);
  datasets::GeneratorOptions options;
  options.n_sensors = n_sensors;
  options.n_communities = 3;
  datasets::SensorNetworkGenerator generator(options, &rng);
  return generator.Generate(length, &rng);
}

core::CadOptions SmallOptions(obs::Registry* registry, obs::Tracer* tracer) {
  core::CadOptions options;
  options.window = 32;
  options.step = 8;
  options.k = 3;
  options.tau = 0.3;
  options.metrics_registry = registry;
  options.tracer = tracer;
  return options;
}

std::map<std::string, int> CountByName(const std::vector<obs::TraceEvent>& events) {
  std::map<std::string, int> counts;
  for (const obs::TraceEvent& event : events) counts[event.name]++;
  return counts;
}

TEST(InstrumentationTest, OneRoundSpanPerRoundTraceEntry) {
  obs::Registry registry;
  obs::Tracer tracer;
  tracer.Enable();
  const core::CadOptions options = SmallOptions(&registry, &tracer);

  const ts::MultivariateSeries history = MakeSeries(12, 200, 1);
  const ts::MultivariateSeries live = MakeSeries(12, 400, 2);
  const core::DetectionReport report =
      core::CadDetector(options).Detect(live, &history).ValueOrDie();
  ASSERT_FALSE(report.rounds.empty());

  const std::map<std::string, int> spans = CountByName(tracer.events());
  // Exactly one "round" span per RoundTrace entry; warm-up rounds are
  // labelled separately so they cannot inflate the count.
  EXPECT_EQ(spans.at("round"), static_cast<int>(report.rounds.size()));
  EXPECT_GT(spans.at("warmup_round"), 0);
  EXPECT_EQ(spans.at("warmup"), 1);
  EXPECT_EQ(spans.at("detect"), 1);

  // Every round (warm-up included) runs the four pipeline stages as nested
  // child spans.
  const int total_rounds = spans.at("round") + spans.at("warmup_round");
  EXPECT_EQ(spans.at("correlation"), total_rounds);
  EXPECT_EQ(spans.at("knn_graph"), total_rounds);
  EXPECT_EQ(spans.at("louvain"), total_rounds);
  EXPECT_EQ(spans.at("co_appearance"), total_rounds);
  for (const obs::TraceEvent& event : tracer.events()) {
    if (event.name == "correlation" || event.name == "knn_graph" ||
        event.name == "louvain" || event.name == "co_appearance") {
      EXPECT_GT(event.depth, 0) << event.name << " must nest under a round";
    }
  }

  // The private registry saw every round; the report carries its snapshot.
  const obs::CounterSample* rounds_total =
      report.telemetry.FindCounter("cad_rounds_total");
  ASSERT_NE(rounds_total, nullptr);
  EXPECT_EQ(rounds_total->value, static_cast<uint64_t>(total_rounds));
  const obs::HistogramSample* round_seconds =
      report.telemetry.FindHistogram("cad_round_seconds");
  ASSERT_NE(round_seconds, nullptr);
  EXPECT_EQ(round_seconds->count(), static_cast<uint64_t>(total_rounds));
  ASSERT_NE(report.telemetry.FindCounter("cad_tsg_edges_pruned"), nullptr);
}

TEST(InstrumentationTest, RoundLatencySummaryIsConsistent) {
  obs::Registry registry;
  const core::CadOptions options = SmallOptions(&registry, nullptr);
  const ts::MultivariateSeries live = MakeSeries(10, 400, 3);
  const core::DetectionReport report =
      core::CadDetector(options).Detect(live, nullptr).ValueOrDie();

  EXPECT_GT(report.round_latency.mean, 0.0);
  EXPECT_DOUBLE_EQ(report.seconds_per_round, report.round_latency.mean);
  EXPECT_LE(report.round_latency.p50, report.round_latency.p95);
  EXPECT_LE(report.round_latency.p95, report.round_latency.p99);
}

TEST(InstrumentationTest, MetricsStayOffGlobalRegistryWhenPrivate) {
  obs::Registry registry;
  const uint64_t global_before =
      obs::Registry::Global().counter("cad_rounds_total").value();
  const core::CadOptions options = SmallOptions(&registry, nullptr);
  const ts::MultivariateSeries live = MakeSeries(10, 300, 4);
  core::CadDetector(options).Detect(live, nullptr).ValueOrDie();
  EXPECT_EQ(obs::Registry::Global().counter("cad_rounds_total").value(),
            global_before);
  EXPECT_GT(registry.counter("cad_rounds_total").value(), 0u);
}

TEST(InstrumentationTest, StreamingCadRecordsSamplesAndRoundLatency) {
  obs::Registry registry;
  core::CadOptions options = SmallOptions(&registry, nullptr);
  const int n_sensors = 10;
  core::StreamingCad stream(n_sensors, options);
  const ts::MultivariateSeries live = MakeSeries(n_sensors, 200, 5);

  int events = 0;
  for (int t = 0; t < live.length(); ++t) {
    std::vector<double> sample(n_sensors);
    for (int i = 0; i < n_sensors; ++i) sample[i] = live.value(i, t);
    const auto event = stream.Push(sample).ValueOrDie();
    if (event.has_value()) {
      ++events;
      EXPECT_GE(event->round_seconds, 0.0);
    }
  }
  ASSERT_GT(events, 0);

  const obs::Snapshot snapshot = stream.TelemetrySnapshot();
  EXPECT_EQ(snapshot.FindCounter("cad_stream_samples_total")->value,
            static_cast<uint64_t>(live.length()));
  EXPECT_EQ(snapshot.FindCounter("cad_rounds_total")->value,
            static_cast<uint64_t>(events));
  EXPECT_EQ(snapshot.FindHistogram("cad_round_seconds")->count(),
            static_cast<uint64_t>(events));
}

// Minimal detector to exercise the non-virtual Fit/Score wrappers.
class FakeDetector : public baselines::Detector {
 public:
  std::string name() const override { return "Fake"; }
  bool deterministic() const override { return true; }

 protected:
  Status FitImpl(const ts::MultivariateSeries&) override {
    return Status::Ok();
  }
  Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override {
    return std::vector<double>(test.length(), 0.0);
  }
};

TEST(InstrumentationTest, DetectorNviWrapsFitAndScoreInSpans) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.Enable();
  const uint64_t fit_before =
      obs::Registry::Global().counter("cad_detector_fit_total").value();

  const ts::MultivariateSeries series = MakeSeries(6, 100, 6);
  FakeDetector detector;
  ASSERT_TRUE(detector.Fit(series).ok());
  ASSERT_TRUE(detector.Score(series).ok());
  tracer.Disable();

  EXPECT_EQ(obs::Registry::Global().counter("cad_detector_fit_total").value(),
            fit_before + 1);

  bool saw_fit = false, saw_score = false;
  for (const obs::TraceEvent& event : tracer.events()) {
    const bool is_fit = event.name == "fit";
    const bool is_score = event.name == "score";
    if (!is_fit && !is_score) continue;
    (is_fit ? saw_fit : saw_score) = true;
    ASSERT_EQ(event.args.size(), 1u);
    EXPECT_EQ(event.args[0].first, "method");
    EXPECT_EQ(event.args[0].second, "Fake");
  }
  EXPECT_TRUE(saw_fit);
  EXPECT_TRUE(saw_score);
  tracer.Clear();
}

}  // namespace
}  // namespace cad
