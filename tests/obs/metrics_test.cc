// Unit tests for the obs metrics registry: counter/gauge/histogram
// semantics, snapshots, the Prometheus + JSON exporters, and concurrent
// recording through the lock-free hot path.
#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace cad::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 2.0);
  gauge.Set(7.0);  // last write wins
  EXPECT_DOUBLE_EQ(gauge.value(), 7.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // <= 1
  histogram.Observe(1.0);    // boundary: le is an upper bound, lands in [., 1]
  histogram.Observe(5.0);    // <= 10
  histogram.Observe(1000.0); // above every bound -> +Inf
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1006.5);
  histogram.Reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
}

TEST(HistogramSampleTest, MeanAndQuantiles) {
  HistogramSample sample;
  sample.bounds = {1.0, 2.0, 4.0};
  sample.counts = {0, 100, 0, 0};  // all observations in (1, 2]
  sample.sum = 150.0;
  EXPECT_EQ(sample.count(), 100u);
  EXPECT_DOUBLE_EQ(sample.mean(), 1.5);
  // Every quantile interpolates inside the (1, 2] bucket.
  EXPECT_GT(sample.Quantile(0.5), 1.0);
  EXPECT_LE(sample.Quantile(0.5), 2.0);
  EXPECT_LE(sample.Quantile(0.5), sample.Quantile(0.99));

  HistogramSample empty;
  empty.bounds = {1.0};
  empty.counts = {0, 0};
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(RegistryTest, FindOrCreateReturnsStableInstruments) {
  Registry registry;
  Counter& a = registry.counter("requests", "number of requests");
  Counter& b = registry.counter("requests", "ignored on second call");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);

  Histogram& h1 = registry.histogram("latency", {0.1, 1.0});
  Histogram& h2 = registry.histogram("latency");  // bounds fixed on first call
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotCapturesValuesAndHelp) {
  Registry registry;
  registry.counter("c", "a counter").Increment(7);
  registry.gauge("g", "a gauge").Set(1.25);
  registry.histogram("h", {1.0}, "a histogram").Observe(0.5);

  const Snapshot snapshot = registry.TakeSnapshot();
  const CounterSample* c = snapshot.FindCounter("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 7u);
  EXPECT_EQ(c->help, "a counter");
  const GaugeSample* g = snapshot.FindGauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 1.25);
  const HistogramSample* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(snapshot.FindCounter("missing"), nullptr);
}

TEST(RegistryTest, ResetValuesZeroesButKeepsRegistration) {
  Registry registry;
  Counter& counter = registry.counter("c");
  counter.Increment(5);
  registry.histogram("h", {1.0}).Observe(0.5);
  registry.ResetValues();
  EXPECT_EQ(counter.value(), 0u);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_NE(snapshot.FindCounter("c"), nullptr);  // still registered
  EXPECT_EQ(snapshot.FindHistogram("h")->count(), 0u);
}

TEST(RegistryTest, ConcurrentIncrementsAreLossless) {
  Registry registry;
  Counter& counter = registry.counter("hits");
  Histogram& histogram = registry.histogram("lat", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        histogram.Observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(histogram.count(), uint64_t{kThreads} * kPerThread);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.0 * kThreads * kPerThread);
  // All observations are 1.0: the (0.5, 1.5] bucket holds every one.
  EXPECT_EQ(histogram.bucket_counts()[1], uint64_t{kThreads} * kPerThread);
}

TEST(ExportTest, PrometheusTextExposition) {
  Registry registry;
  registry.counter("cad_rounds_total", "rounds processed").Increment(3);
  registry.gauge("cad_communities").Set(4.0);
  Histogram& h = registry.histogram("cad_round_seconds", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);

  const std::string text = ToPrometheusText(registry.TakeSnapshot());
  EXPECT_NE(text.find("# HELP cad_rounds_total rounds processed"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cad_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("cad_rounds_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cad_communities gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cad_round_seconds histogram"),
            std::string::npos);
  // Buckets are cumulative: le="1" holds 1, le="10" holds 2, +Inf holds 2.
  EXPECT_NE(text.find("cad_round_seconds_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("cad_round_seconds_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cad_round_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("cad_round_seconds_sum 5.5"), std::string::npos);
  EXPECT_NE(text.find("cad_round_seconds_count 2"), std::string::npos);
}

TEST(ExportTest, SnapshotJsonHasAllSections) {
  Registry registry;
  registry.counter("c").Increment(2);
  registry.gauge("g").Set(0.5);
  registry.histogram("h", {1.0}).Observe(2.0);

  const std::string json = SnapshotToJson(registry.TakeSnapshot());
  EXPECT_NE(json.find("\"counters\":{\"c\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"g\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"h\":{\"sum\":2"), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
}

TEST(DefaultLatencyBucketsTest, AscendingAndSpanningMicrosToSeconds) {
  const std::vector<double> buckets = DefaultLatencyBuckets();
  ASSERT_GE(buckets.size(), 8u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
  EXPECT_LE(buckets.front(), 1e-4);  // sub-100us rounds are resolvable
  EXPECT_GE(buckets.back(), 1.0);    // multi-second rounds too
}

}  // namespace
}  // namespace cad::obs
