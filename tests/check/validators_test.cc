#include "check/validators.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/cad_detector.h"
#include "core/co_appearance.h"
#include "graph/graph.h"
#include "graph/louvain.h"
#include "obs/metrics.h"
#include "stats/running_stats.h"

namespace cad::check {
namespace {

using core::Anomaly;
using core::DetectionReport;
using core::RoundTrace;
using graph::Graph;
using graph::Partition;

// Every test records violations into its own registry so the assertions on
// the cad_check_* counters are exact and isolated.
uint64_t CounterValue(const obs::Registry& registry, const char* name) {
  const obs::Snapshot snapshot = registry.TakeSnapshot();
  const obs::CounterSample* sample = snapshot.FindCounter(name);
  return sample != nullptr ? sample->value : 0;
}

// ---- ValidateGraph -------------------------------------------------------

Graph TriangleGraph() {
  Graph g(3);
  g.AddEdge(0, 1, 0.9);
  g.AddEdge(1, 2, -0.8);
  g.AddEdge(0, 2, 0.7);
  return g;
}

TEST(ValidateGraphTest, AcceptsWellFormedGraph) {
  obs::Registry registry;
  EXPECT_TRUE(ValidateGraph(TriangleGraph(), {}, &registry).ok());
  EXPECT_EQ(CounterValue(registry, "cad_check_violations_total"), 0u);
}

TEST(ValidateGraphTest, FlagsOneAsymmetricHalfEdge) {
  obs::Registry registry;
  Graph g = TriangleGraph();
  g.CorruptHalfEdgeForTesting(0, 1, 0.9);  // 0->1 now appears twice, 1->0 once
  const Status status = ValidateGraph(g, {}, &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "duplicate edge (0, 1): graph must be simple");
  EXPECT_EQ(CounterValue(registry, "cad_check_violations_total"), 1u);
  EXPECT_EQ(CounterValue(registry, "cad_check_graph_violations"), 1u);
}

TEST(ValidateGraphTest, FlagsMissingMirrorHalfEdge) {
  obs::Registry registry;
  Graph g(3);
  g.AddEdge(0, 1, 0.9);
  g.CorruptHalfEdgeForTesting(1, 2, 0.5);  // no matching 2->1 entry
  const Status status = ValidateGraph(g, {}, &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(),
            "asymmetric edge (1, 2): present in only one adjacency list");
}

TEST(ValidateGraphTest, FlagsSelfLoopAndOutOfRangeNeighbor) {
  Graph self_loop(2);
  self_loop.CorruptHalfEdgeForTesting(1, 1, 0.4);
  EXPECT_EQ(ValidateGraph(self_loop).message(), "self-loop at vertex 1");

  Graph out_of_range(2);
  out_of_range.CorruptHalfEdgeForTesting(0, 5, 0.4);
  EXPECT_EQ(ValidateGraph(out_of_range).message(),
            "vertex 0 has neighbor 5 outside [0, 2)");
}

TEST(ValidateGraphTest, FlagsNonFiniteWeightAndWeightBound) {
  Graph g(2);
  g.AddEdge(0, 1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(ValidateGraph(g).message(), "edge (0, 1) has non-finite weight");

  Graph heavy(2);
  heavy.AddEdge(0, 1, 1.5);
  GraphBounds correlation_bounds;
  correlation_bounds.max_abs_weight = 1.0;
  EXPECT_EQ(ValidateGraph(heavy, correlation_bounds).message(),
            "edge (0, 1) has |weight| 1.5 > 1");
}

TEST(ValidateGraphTest, EnforcesOptionalDegreeAndEdgeBounds) {
  GraphBounds bounds;
  bounds.max_degree = 1;
  const Status degree = ValidateGraph(TriangleGraph(), bounds);
  EXPECT_EQ(degree.message(), "vertex 0 has degree 2 > max_degree 1");

  GraphBounds edge_bounds;
  edge_bounds.max_edges = 2;
  const Status edges = ValidateGraph(TriangleGraph(), edge_bounds);
  EXPECT_EQ(edges.message(), "graph has 3 edges > max_edges 2");
}

TEST(ValidateGraphTest, MirroredWeightsMustMatch) {
  Graph g(2);
  g.CorruptHalfEdgeForTesting(0, 1, 0.5);
  g.CorruptHalfEdgeForTesting(1, 0, 0.25);
  const Status status = ValidateGraph(g);
  EXPECT_EQ(status.message(), "edge (0, 1) weight mismatch: 0.5 vs 0.25");
}

// ---- ValidatePartition ---------------------------------------------------

TEST(ValidatePartitionTest, AcceptsLouvainOutput) {
  obs::Registry registry;
  const Partition partition = graph::Louvain(TriangleGraph());
  EXPECT_TRUE(ValidatePartition(partition, 3, &registry).ok());
  EXPECT_EQ(CounterValue(registry, "cad_check_violations_total"), 0u);
}

TEST(ValidatePartitionTest, FlagsSizeMismatchAndOutOfRangeId) {
  Partition partition;
  partition.community = {0, 1};
  partition.n_communities = 2;
  EXPECT_EQ(ValidatePartition(partition, 3).message(),
            "partition covers 2 vertices, expected 3");

  partition.community = {0, 1, 2};
  EXPECT_EQ(ValidatePartition(partition, 3).message(),
            "vertex 2 assigned community 2 outside [0, 2)");
}

TEST(ValidatePartitionTest, FlagsEmptyCommunity) {
  obs::Registry registry;
  Partition partition;
  partition.community = {0, 0, 0};  // claims 2 communities, id 1 is empty
  partition.n_communities = 2;
  const Status status = ValidatePartition(partition, 3, &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "empty communities: only 1 of 2 ids have members");
  EXPECT_EQ(CounterValue(registry, "cad_check_partition_violations"), 1u);
}

TEST(ValidatePartitionTest, FlagsNonCanonicalLabeling) {
  Partition partition;
  partition.community = {1, 0, 1};  // vertex 0 must open community 0
  partition.n_communities = 2;
  EXPECT_EQ(ValidatePartition(partition, 3).message(),
            "non-canonical labeling: community 1 first appears (vertex 0) "
            "before community 0");
}

// ---- ValidateCoAppearance ------------------------------------------------

TEST(ValidateCoAppearanceTest, AcceptsConsistentCounts) {
  const std::vector<int> prev = {0, 0, 0, 1, 1};
  const std::vector<int> cur = {0, 0, 1, 1, 1};
  const std::vector<int> counts = core::CoAppearanceNumbers(prev, cur);
  EXPECT_TRUE(ValidateCoAppearance(counts, prev, cur).ok());
}

TEST(ValidateCoAppearanceTest, FlagsTamperedCount) {
  obs::Registry registry;
  const std::vector<int> prev = {0, 0, 0, 1, 1};
  const std::vector<int> cur = {0, 0, 1, 1, 1};
  std::vector<int> counts = core::CoAppearanceNumbers(prev, cur);
  counts[1] += 1;  // symmetric recount gives 1 (vertices 0 and 1 co-appear)
  const Status status = ValidateCoAppearance(counts, prev, cur, &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(),
            "vertex 1 has co-appearance count 2, recount gives 1");
  EXPECT_EQ(CounterValue(registry, "cad_check_coappearance_violations"), 1u);
}

TEST(ValidateCoAppearanceTest, FlagsCountOutsideRange) {
  const std::vector<int> prev = {0, 0};
  const std::vector<int> cur = {0, 0};
  EXPECT_EQ(ValidateCoAppearance({1, 5}, prev, cur).message(),
            "vertex 1 has co-appearance count 5 outside [0, 1]");
  EXPECT_EQ(ValidateCoAppearance({1}, prev, cur).message(),
            "shape mismatch: 1 counts, 2 previous communities, "
            "2 current communities");
}

TEST(ValidateCoAppearanceTrackerTest, AcceptsTrackerAfterTransitions) {
  core::CoAppearanceTracker tracker(4);
  tracker.Observe({0, 0, 1, 1}, {0, 0, 1, 1});
  tracker.Observe({0, 0, 1, 1}, {0, 1, 1, 1});
  EXPECT_TRUE(ValidateCoAppearanceTracker(tracker).ok());
}

// ---- ValidateRunningStats ------------------------------------------------

TEST(ValidateRunningStatsTest, AcceptsWelfordAccumulator) {
  stats::RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(0.1 * i);
  EXPECT_TRUE(ValidateRunningStats(stats).ok());
  EXPECT_TRUE(ValidateRunningStats(stats::RunningStats()).ok());  // empty
}

TEST(ValidateRunningStatsTest, FlagsNegativeVariance) {
  obs::Registry registry;
  const Status status =
      ValidateRunningStatsValues(/*count=*/10, /*mean=*/1.0,
                                 /*variance=*/-0.5, /*min=*/0.0, /*max=*/2.0,
                                 &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(), "variance -0.5 must be finite and >= 0");
  EXPECT_EQ(CounterValue(registry, "cad_check_running_stats_violations"), 1u);
}

TEST(ValidateRunningStatsTest, FlagsNonFiniteMeanAndRangeEscape) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ValidateRunningStatsValues(3, inf, 1.0, 0.0, 1.0).message(),
            "non-finite mean after 3 observations");
  EXPECT_EQ(ValidateRunningStatsValues(3, 5.0, 1.0, 0.0, 2.0).message(),
            "mean 5 outside observed range [0, 2]");
  EXPECT_EQ(ValidateRunningStatsValues(-1, 0.0, 0.0, 0.0, 0.0).message(),
            "negative observation count -1");
}

// ---- ValidateReport ------------------------------------------------------

DetectionReport SmallReport() {
  DetectionReport report;
  for (int r = 0; r < 3; ++r) {
    RoundTrace trace;
    trace.round = r;
    report.rounds.push_back(trace);
  }
  report.point_scores = {0.0, 0.5, 1.0, 0.25};
  report.point_labels = {0, 1, 1, 0};
  report.sensor_labels = {0, 1, 0};
  Anomaly anomaly;
  anomaly.sensors = {1};
  anomaly.first_round = 1;
  anomaly.last_round = 2;
  anomaly.start_time = 1;
  anomaly.end_time = 3;
  anomaly.detection_time = 2;
  report.anomalies.push_back(anomaly);
  return report;
}

TEST(ValidateReportTest, AcceptsWellFormedReport) {
  obs::Registry registry;
  EXPECT_TRUE(ValidateReport(SmallReport(), 3, &registry).ok());
  EXPECT_EQ(CounterValue(registry, "cad_check_violations_total"), 0u);
}

TEST(ValidateReportTest, FlagsUnsortedRoundTraces) {
  obs::Registry registry;
  DetectionReport report = SmallReport();
  std::swap(report.rounds[1], report.rounds[2]);
  const Status status = ValidateReport(report, 3, &registry);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(status.message(),
            "round trace 1 carries round index 2; rounds must be sorted, "
            "unique and contiguous");
  EXPECT_EQ(CounterValue(registry, "cad_check_report_violations"), 1u);
}

TEST(ValidateReportTest, FlagsScoreOutsideUnitInterval) {
  DetectionReport report = SmallReport();
  report.point_scores[2] = 1.5;
  EXPECT_EQ(ValidateReport(report, 3).message(),
            "point score at t=2 is 1.5, outside [0, 1]");
}

TEST(ValidateReportTest, FlagsSensorIdProblems) {
  DetectionReport report = SmallReport();
  report.anomalies[0].sensors = {2, 1};
  EXPECT_EQ(ValidateReport(report, 3).message(),
            "anomaly 0 sensor list must be sorted and unique (2 before 1)");

  report.anomalies[0].sensors = {7};
  EXPECT_EQ(ValidateReport(report, 3).message(),
            "anomaly 0 names sensor 7 outside [0, 3)");
}

TEST(ValidateReportTest, FlagsBrokenRoundAndTimeRanges) {
  DetectionReport report = SmallReport();
  report.anomalies[0].first_round = 2;
  report.anomalies[0].last_round = 1;
  EXPECT_EQ(ValidateReport(report, 3).message(),
            "anomaly 0 has round range [2, 1]");

  report = SmallReport();
  report.anomalies[0].detection_time = 99;
  EXPECT_EQ(ValidateReport(report, 3).message(),
            "anomaly 0 detection time 99 outside [1, 3)");
}

// ---- end-to-end: full pipeline artifacts pass ----------------------------

TEST(ValidatorsIntegrationTest, RealPipelineArtifactsValidate) {
  // Louvain on a two-clique graph, then the validators over its outputs —
  // the same calls RoundProcessor makes at CAD_CHECK_LEVEL=full.
  Graph g(6);
  for (int u = 0; u < 3; ++u) {
    for (int v = u + 1; v < 3; ++v) {
      g.AddEdge(u, v, 0.95);
      g.AddEdge(u + 3, v + 3, 0.95);
    }
  }
  g.AddEdge(2, 3, 0.55);
  GraphBounds bounds;
  bounds.max_edges = 6 * 3;
  bounds.max_abs_weight = 1.0;
  EXPECT_TRUE(ValidateGraph(g, bounds).ok());
  const Partition partition = graph::Louvain(g);
  EXPECT_TRUE(ValidatePartition(partition, 6).ok());
}

}  // namespace
}  // namespace cad::check
