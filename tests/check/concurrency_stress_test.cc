// Multi-threaded stress for the obs layer and StreamingCad — the TSan
// target of tools/verify_matrix.sh. The obs Registry promises lock-free
// recording through stable instrument pointers plus mutex-guarded
// registration and snapshots; each StreamingCad instance is single-threaded
// by contract but many streams may share one Registry and one Tracer. The
// test hammers exactly those shared seams from concurrent threads and then
// cross-checks the aggregated counters, so a data race surfaces either as a
// TSan report or as lost updates.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cad_options.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cad {
namespace {

TEST(ConcurrencyStressTest, RegistryRegistrationAndRecordingRace) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::atomic<bool> go{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      // Half the threads contend on the *same* names (find-or-create race),
      // half use private names (map-growth race against readers).
      const std::string counter_name =
          t % 2 == 0 ? "stress_shared_counter"
                     : "stress_counter_" + std::to_string(t);
      for (int i = 0; i < kIterations; ++i) {
        registry.counter(counter_name).Increment();
        registry.gauge("stress_shared_gauge").Set(static_cast<double>(i));
        registry.histogram("stress_shared_hist").Observe(1e-4 * i);
      }
    });
  }
  // One concurrent snapshotter: TakeSnapshot must see a consistent map while
  // registrations and increments are in flight.
  std::atomic<bool> stop{false};
  workers.emplace_back([&registry, &go, &stop] {
    while (!go.load(std::memory_order_acquire)) {}
    while (!stop.load(std::memory_order_acquire)) {
      const obs::Snapshot snapshot = registry.TakeSnapshot();
      ASSERT_LE(snapshot.counters.size(), 1u + kThreads);
    }
  });

  go.store(true, std::memory_order_release);
  for (int t = 0; t < kThreads; ++t) workers[static_cast<size_t>(t)].join();
  stop.store(true, std::memory_order_release);
  workers.back().join();

  const obs::Snapshot snapshot = registry.TakeSnapshot();
  const obs::CounterSample* shared =
      snapshot.FindCounter("stress_shared_counter");
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->value,
            static_cast<uint64_t>(kThreads / 2) * kIterations);
  const obs::HistogramSample* hist =
      snapshot.FindHistogram("stress_shared_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), static_cast<uint64_t>(kThreads) * kIterations);
}

TEST(ConcurrencyStressTest, ParallelStreamsShareRegistryAndTracer) {
  obs::Registry registry;
  obs::Tracer tracer(/*capacity=*/1 << 12);
  tracer.Enable();

  constexpr int kStreams = 4;
  constexpr int kSensors = 6;
  constexpr int kSamples = 240;
  std::atomic<int> rounds_seen{0};
  std::atomic<bool> go{false};

  std::vector<std::thread> streams;
  streams.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    streams.emplace_back([&registry, &tracer, &rounds_seen, &go, s] {
      core::CadOptions options;
      options.window = 32;
      options.step = 8;
      options.k = 3;
      options.tau = 0.3;
      options.metrics_registry = &registry;
      options.tracer = &tracer;
      core::StreamingCad stream(kSensors, options);

      while (!go.load(std::memory_order_acquire)) {}
      std::vector<double> sample(kSensors);
      for (int t = 0; t < kSamples; ++t) {
        for (int i = 0; i < kSensors; ++i) {
          // Deterministic correlated signal with a per-stream phase; the
          // values only need to exercise full rounds, not detect anything.
          sample[static_cast<size_t>(i)] =
              std::sin(0.1 * t + 0.5 * s) + 0.01 * i;
        }
        const Result<std::optional<core::StreamEvent>> event =
            stream.Push(sample);
        ASSERT_TRUE(event.ok()) << event.status().ToString();
        if (event.value().has_value()) {
          rounds_seen.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Concurrent observers of the shared telemetry surfaces.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&registry, &tracer, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.TakeSnapshot();
      (void)tracer.event_count();
    }
  });

  go.store(true, std::memory_order_release);
  for (std::thread& t : streams) t.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  // Lost-update detection on the lock-free counters: every pushed sample and
  // every completed round must be visible in the shared registry.
  const obs::Snapshot snapshot = registry.TakeSnapshot();
  const obs::CounterSample* samples =
      snapshot.FindCounter("cad_stream_samples_total");
  ASSERT_NE(samples, nullptr);
  EXPECT_EQ(samples->value, static_cast<uint64_t>(kStreams) * kSamples);
  const obs::CounterSample* rounds = snapshot.FindCounter("cad_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_EQ(rounds->value, static_cast<uint64_t>(rounds_seen.load()));
  EXPECT_GT(rounds_seen.load(), 0);
  // Tracer recorded spans from all streams (bounded buffer may have dropped
  // some; recorded + dropped covers every span).
  EXPECT_GT(tracer.event_count() + tracer.dropped(), 0u);
}

}  // namespace
}  // namespace cad
