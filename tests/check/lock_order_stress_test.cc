// Deadlock-freedom stress: two live StreamingCad instances sharing one
// Registry and one Tracer, each exposing the HTTP surface, scraped
// concurrently (/metrics, /healthz, /advise) while samples are in flight
// and servers start and stop. Under the `deadlock` preset this runs with
// TSan *and* the runtime lock-order tracker armed (CAD_CHECK_LEVEL=full),
// so the test sweeps every capability in the common/lock_order.h hierarchy
// — ExpositionServer::join_mu_, StreamingCad::mu_, obs::Registry::mu_,
// obs::Tracer::mu_ — through real cross-thread interleavings: any lock
// inversion CAD_FATALs with both chains, any race is a TSan report. In
// tier-1 builds the tracker is compiled out and this is a plain
// concurrency smoke over the same seams.
//
// The second test sweeps the fleet layer's ranks the same way: scheduler
// (14), workspace pool (15), tenant (16) and queue (18) mutexes interleaved
// with registry (30) telemetry across producers, the worker pool, accessor
// readers and live HTTP scrapers.
#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "core/cad_options.h"
#include "core/streaming.h"
#include "fleet/fleet_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/http_client.h"

namespace cad {
namespace {

using cad::testing::HttpGet;
using cad::testing::HttpResponse;

TEST(LockOrderStressTest, StreamsServersAndScrapersInterleave) {
  common::LockOrderTrackerResetForTest();
  obs::Registry registry;
  obs::Tracer tracer(/*capacity=*/1 << 10);
  tracer.Enable();

  constexpr int kStreams = 2;
  constexpr int kSensors = 5;
  constexpr int kSamples = 160;
  std::atomic<bool> go{false};
  std::atomic<int> ports[kStreams] = {};
  std::atomic<int> scrapes_ok{0};

  std::vector<std::thread> pushers;
  pushers.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    pushers.emplace_back([&registry, &tracer, &go, &ports, &scrapes_ok, s] {
      core::CadOptions options;
      options.window = 32;
      options.step = 8;
      options.k = 3;
      options.tau = 0.3;
      options.metrics_registry = &registry;
      options.tracer = &tracer;
      options.exposition_port = 0;
      core::StreamingCad stream(kSensors, options);
      ports[s].store(stream.exposition_port(), std::memory_order_release);

      while (!go.load(std::memory_order_acquire)) {}
      std::vector<double> sample(kSensors);
      for (int t = 0; t < kSamples; ++t) {
        for (int i = 0; i < kSensors; ++i) {
          sample[static_cast<size_t>(i)] =
              std::sin(0.1 * t + 0.7 * s) + 0.01 * i;
        }
        ASSERT_TRUE(stream.Push(sample).ok());
        if (t % 16 == 0) (void)stream.Health();
      }
      // The 160-sample burst finishes in milliseconds; on a loaded
      // machine both servers could be torn down before any scraper ever
      // connects. Hold this one live until a scrape lands (bounded), so
      // the scrapes_ok assertion below cannot race the teardown.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (scrapes_ok.load(std::memory_order_acquire) == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      // Destruction joins the serve thread (ExpositionServer::join_mu_)
      // while scrapers are still probing the other stream's surface.
    });
  }

  // Scrapers hammer every endpoint of both servers for the whole run; a
  // server that has already stopped just fails the connect, which is fine —
  // the point is concurrent lock traffic, not availability.
  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (int c = 0; c < 2; ++c) {
    scrapers.emplace_back([&ports, &stop, &scrapes_ok, c] {
      const char* const targets[] = {"/metrics", "/healthz", "/advise"};
      int turn = c;
      while (!stop.load(std::memory_order_acquire)) {
        const int port =
            ports[turn % kStreams].load(std::memory_order_acquire);
        if (port > 0) {
          const HttpResponse response = HttpGet(
              static_cast<uint16_t>(port), targets[turn % 3]);
          if (response.ok && response.status_code != 0) {
            scrapes_ok.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++turn;
      }
    });
  }

  go.store(true, std::memory_order_release);
  for (std::thread& t : pushers) t.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : scrapers) t.join();

  EXPECT_GT(scrapes_ok.load(), 0)
      << "no scrape ever reached a live exposition server";
  if (common::LockOrderTrackerActive()) {
    // The tracker watched the whole interleaving and nothing was fatal;
    // the acquired-after graph must have recorded real nesting (at least
    // StreamingCad::mu_ -> obs::Registry::mu_ from the metrics flush).
    EXPECT_GT(common::LockOrderTrackedEdgeCount(), 0u);
  }
}

TEST(LockOrderStressTest, FleetRanksSweptUnderLoad) {
  common::LockOrderTrackerResetForTest();
  constexpr int kTenants = 8;
  constexpr int kSensors = 5;

  fleet::FleetOptions fleet_options;
  fleet_options.n_workers = 3;
  fleet_options.queue_capacity = 64;
  fleet_options.quantum_samples = 8;
  fleet_options.exposition_port = 0;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  fleet::FleetEngine fleet(fleet_options);

  core::CadOptions options;
  options.window = 32;
  options.step = 8;
  options.k = 3;
  options.tau = 0.3;
  for (int t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(fleet
                    .AddTenant("tenant_" + std::to_string(t), kSensors,
                               options, 1.0 + t % 3)
                    .ok());
  }
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.exposition_port();
  ASSERT_GT(port, 0);

  // Producers exercise queue(18) -> scheduler(14); the worker pool runs
  // scheduler(14), pool(15), tenant(16){queue(18), registry(30)}
  // concurrently.
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  producers.reserve(2);
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&fleet, &stop, p] {
      std::vector<double> sample(kSensors);
      int t = 0;
      while (!stop.load(std::memory_order_acquire)) {
        for (int i = 0; i < kSensors; ++i) {
          sample[static_cast<size_t>(i)] =
              std::sin(0.1 * t + 0.5 * p) + 0.01 * i;
        }
        for (int tenant = p; tenant < kTenants; tenant += 2) {
          ASSERT_TRUE(fleet.Push(tenant, sample).ok());
        }
        ++t;
      }
    });
  }

  // Readers take the same tenant(16) / registry(30) locks from the accessor
  // and HTTP sides while the workers hold them per quantum.
  std::atomic<int> scrapes_ok{0};
  std::thread scraper([&stop, &scrapes_ok, port] {
    const char* const targets[] = {"/metrics", "/healthz",
                                   "/explain?tenant=tenant_0&round=0"};
    int turn = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const HttpResponse response =
          HttpGet(static_cast<uint16_t>(port), targets[turn % 3]);
      if (response.ok && response.status_code != 0) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      }
      ++turn;
    }
  });
  std::thread reader([&fleet, &stop] {
    int turn = 0;
    while (!stop.load(std::memory_order_acquire)) {
      (void)fleet.TenantInfo(turn % kTenants);
      if (turn % 8 == 0) (void)fleet.HealthJson();
      ++turn;
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  for (std::thread& producer : producers) producer.join();
  scraper.join();
  reader.join();
  fleet.Drain();
  fleet.Stop();

  EXPECT_GT(scrapes_ok.load(), 0)
      << "no scrape ever reached the fleet exposition server";
  EXPECT_GT(fleet.scheduler().total_quanta(), 0u);
  if (common::LockOrderTrackerActive()) {
    // The fleet nesting (tenant -> queue, tenant -> registry) must have
    // been observed on top of the solo hierarchy.
    EXPECT_GT(common::LockOrderTrackedEdgeCount(), 0u);
  }
}

}  // namespace
}  // namespace cad
