#include "check/check.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace cad {
namespace {

// The thrown-message capture used with ScopedFailureHandler: a function
// pointer cannot carry state, so the formatted line travels in the
// exception itself.
struct CheckFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void ThrowingHandler(const check::CheckContext& ctx,
                                  const std::string& message) {
  throw CheckFailure(check::FormatFailure(ctx, message));
}

TEST(CheckTest, PassingCheckIsSilent) {
  const uint64_t before = check::failure_count();
  CAD_CHECK(1 + 1 == 2);
  CAD_CHECK(true, "never rendered ", 42);
  CAD_DCHECK(true, "never rendered");
  EXPECT_EQ(check::failure_count(), before);
}

#if CAD_CHECK_LEVEL >= 1
TEST(CheckTest, FailingCheckReportsExpressionAndFormattedMessage) {
  check::ScopedFailureHandler guard(&ThrowingHandler);
  const uint64_t before = check::failure_count();
  const int k = -3;
  try {
    CAD_CHECK(k >= 1, "k must be >= 1, got ", k);
    FAIL() << "CAD_CHECK did not fire";
  } catch (const CheckFailure& failure) {
    const std::string what = failure.what();
    EXPECT_NE(what.find("`k >= 1`"), std::string::npos) << what;
    EXPECT_NE(what.find("k must be >= 1, got -3"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cc"), std::string::npos) << what;
  }
  EXPECT_EQ(check::failure_count(), before + 1);
}

TEST(CheckTest, MessageIsOptional) {
  check::ScopedFailureHandler guard(&ThrowingHandler);
  try {
    CAD_CHECK(2 < 1);
    FAIL() << "CAD_CHECK did not fire";
  } catch (const CheckFailure& failure) {
    EXPECT_NE(std::string(failure.what()).find("`2 < 1`"), std::string::npos);
  }
}

TEST(CheckDeathTest, DefaultHandlerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CAD_CHECK(false, "boom at level ", CAD_CHECK_LEVEL),
               "CAD_CHECK failed .*`false`.*boom");
}
#else
TEST(CheckTest, LevelOffCompilesConditionsOutUnevaluated) {
  int evaluations = 0;
  auto count = [&evaluations]() {
    ++evaluations;
    return false;
  };
  CAD_CHECK(count(), "must not run or fail");
  CAD_DCHECK(count(), "must not run or fail");
  EXPECT_EQ(evaluations, 0);
}
#endif

TEST(CheckDeathTest, FatalFiresAtEveryLevel) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CAD_FATAL("unhandled enum value ", 7),
               "unreachable.*unhandled enum value 7");
}

Status NeedsPositive(int x) {
  CAD_ENSURE(x > 0, InvalidArgument, "x must be positive, got ", x);
  return Status::Ok();
}

Result<int> HalvesEven(int x) {
  CAD_ENSURE(x % 2 == 0, FailedPrecondition, "x must be even, got ", x);
  return x / 2;
}

TEST(EnsureTest, PropagatesExactStatusCodeAndMessage) {
  EXPECT_TRUE(NeedsPositive(3).ok());
  const Status status = NeedsPositive(-2);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "x must be positive, got -2");
}

TEST(EnsureTest, WorksInResultReturningFunctionsAtEveryLevel) {
  // CAD_ENSURE is error handling, not assertion: it must stay active even
  // when CAD_CHECK_LEVEL=off compiles the check macros out.
  EXPECT_EQ(HalvesEven(8).value(), 4);
  const Result<int> result = HalvesEven(7);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(result.status().message(), "x must be even, got 7");
}

TEST(CheckTest, HandlerInstallIsScopedAndRestored) {
  EXPECT_EQ(check::SetFailureHandler(nullptr), nullptr);
  {
    check::ScopedFailureHandler guard(&ThrowingHandler);
    EXPECT_EQ(check::SetFailureHandler(&ThrowingHandler), &ThrowingHandler);
  }
  EXPECT_EQ(check::SetFailureHandler(nullptr), nullptr);
}

#if CAD_CHECK_LEVEL >= 1
// Counts hook invocations through the ctx pointer (hooks are plain function
// pointers, so state travels in ctx like in the failure handler).
void CountingDumpHook(void* ctx) { ++*static_cast<int*>(ctx); }

// A hook that itself fails a check — the flight recorder's crash dump runs
// validated code paths, so hook execution must not recurse.
void ReentrantDumpHook(void* ctx) {
  ++*static_cast<int*>(ctx);
  try {
    CAD_CHECK(false, "failure inside a dump hook");
  } catch (const CheckFailure&) {
    // The inner failure still reaches the handler; only hooks are suppressed.
  }
}

TEST(CheckTest, DumpHooksRunOnFailureAndDeduplicate) {
  check::ScopedFailureHandler guard(&ThrowingHandler);
  int calls = 0;
  check::AddFailureDumpHook(&CountingDumpHook, &calls);
  check::AddFailureDumpHook(&CountingDumpHook, &calls);  // dedup: same pair
  try {
    CAD_CHECK(false, "trigger the dump");
  } catch (const CheckFailure&) {
  }
  EXPECT_EQ(calls, 1) << "duplicate registration must not double-dump";

  check::RemoveFailureDumpHook(&CountingDumpHook, &calls);
  try {
    CAD_CHECK(false, "no dump this time");
  } catch (const CheckFailure&) {
  }
  EXPECT_EQ(calls, 1) << "removed hook must not run";
}

TEST(CheckTest, DumpHooksDoNotRecurseWhenTheHookItselfFails) {
  check::ScopedFailureHandler guard(&ThrowingHandler);
  int calls = 0;
  check::AddFailureDumpHook(&ReentrantDumpHook, &calls);
  try {
    CAD_CHECK(false, "outer failure");
  } catch (const CheckFailure&) {
  }
  check::RemoveFailureDumpHook(&ReentrantDumpHook, &calls);
  EXPECT_EQ(calls, 1) << "the inner failure re-entered the dump hooks";
}
#endif  // CAD_CHECK_LEVEL >= 1

}  // namespace
}  // namespace cad
