#include "stats/ecdf.h"

#include <gtest/gtest.h>

#include <vector>

namespace cad::stats {
namespace {

TEST(EcdfTest, LeftAndRightProbabilities) {
  const std::vector<double> sample = {1, 2, 3, 4, 5};
  const Ecdf ecdf(sample);
  EXPECT_DOUBLE_EQ(ecdf.Left(3.0), 0.6);   // P(X <= 3) = 3/5
  EXPECT_DOUBLE_EQ(ecdf.Right(3.0), 0.6);  // P(X >= 3) = 3/5
  EXPECT_DOUBLE_EQ(ecdf.Left(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Right(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Left(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.Right(10.0), 0.0);
}

TEST(EcdfTest, HandlesDuplicates) {
  const std::vector<double> sample = {2, 2, 2, 5};
  const Ecdf ecdf(sample);
  EXPECT_DOUBLE_EQ(ecdf.Left(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.Right(2.0), 1.0);
}

TEST(EcdfTest, EmptySampleIsZero) {
  const Ecdf ecdf(std::vector<double>{});
  EXPECT_EQ(ecdf.Left(1.0), 0.0);
  EXPECT_EQ(ecdf.Right(1.0), 0.0);
  EXPECT_EQ(ecdf.sample_size(), 0u);
}

TEST(EcdfTest, UnsortedInputAccepted) {
  const std::vector<double> sample = {5, 1, 3, 2, 4};
  const Ecdf ecdf(sample);
  EXPECT_DOUBLE_EQ(ecdf.Left(2.5), 0.4);
}

TEST(QuantileTest, MedianAndExtremes) {
  const std::vector<double> sample = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(sample, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(sample, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(sample, 0.5), 25.0);  // interpolated
}

TEST(QuantileTest, SingleElement) {
  const std::vector<double> sample = {7.0};
  EXPECT_DOUBLE_EQ(Quantile(sample, 0.25), 7.0);
}

TEST(QuantileTest, MonotoneInQ) {
  const std::vector<double> sample = {3, 1, 4, 1, 5, 9, 2, 6};
  double prev = Quantile(sample, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = Quantile(sample, q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace cad::stats
