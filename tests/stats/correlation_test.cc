#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace cad::stats {
namespace {

TEST(PearsonTest, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, KnownValue) {
  // Hand-computed: x = {1,2,3}, y = {1,3,2} -> r = 0.5.
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 3, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.5, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  const std::vector<double> x = {5, 5, 5, 5};
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
  EXPECT_EQ(PearsonCorrelation(y, x), 0.0);
}

TEST(PearsonTest, TooShortGivesZero) {
  const std::vector<double> x = {1};
  EXPECT_EQ(PearsonCorrelation(x, x), 0.0);
}

TEST(PearsonTest, AffineInvariance) {
  cad::Rng rng(3);
  std::vector<double> x(64), y(64), y_affine(64);
  for (int i = 0; i < 64; ++i) {
    x[i] = rng.Gaussian();
    y[i] = 0.7 * x[i] + 0.3 * rng.Gaussian();
    y_affine[i] = 5.0 * y[i] - 11.0;  // positive affine transform
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), PearsonCorrelation(x, y_affine),
              1e-12);
}

TEST(PearsonTest, SymmetricAndBounded) {
  cad::Rng rng(4);
  std::vector<double> x(32), y(32);
  for (int i = 0; i < 32; ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  const double r = PearsonCorrelation(x, y);
  EXPECT_NEAR(r, PearsonCorrelation(y, x), 1e-14);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(CorrelationMatrixTest, MatchesPairwise) {
  cad::Rng rng(7);
  const int n = 6, len = 40;
  ts::MultivariateSeries series(n, len);
  for (int i = 0; i < n; ++i) {
    for (int t = 0; t < len; ++t) series.set_value(i, t, rng.Gaussian());
  }
  const CorrelationMatrix corr = WindowCorrelationMatrix(series, 5, 30);
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(corr.at(i, i), 1.0);
    for (int j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(corr.at(i, j), corr.at(j, i));
      const double expected = PearsonCorrelation(series.sensor_window(i, 5, 30),
                                                 series.sensor_window(j, 5, 30));
      EXPECT_NEAR(corr.at(i, j), i == j ? 1.0 : expected, 1e-10);
    }
  }
}

TEST(CorrelationMatrixTest, DegenerateSensorRowIsZero) {
  ts::MultivariateSeries series(2, 10);
  for (int t = 0; t < 10; ++t) {
    series.set_value(0, t, 3.0);               // constant
    series.set_value(1, t, static_cast<double>(t));
  }
  const CorrelationMatrix corr = WindowCorrelationMatrix(series, 0, 10);
  EXPECT_EQ(corr.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr.at(0, 0), 1.0);
}

TEST(CorrelationMatrixTest, CorrelatedGroupDetected) {
  // Two sensors driven by one factor correlate strongly; the third is
  // independent noise.
  cad::Rng rng(11);
  const int len = 200;
  ts::MultivariateSeries series(3, len);
  for (int t = 0; t < len; ++t) {
    const double f = rng.Gaussian();
    series.set_value(0, t, f + 0.1 * rng.Gaussian());
    series.set_value(1, t, -f + 0.1 * rng.Gaussian());
    series.set_value(2, t, rng.Gaussian());
  }
  const CorrelationMatrix corr = WindowCorrelationMatrix(series, 0, len);
  EXPECT_LT(corr.at(0, 1), -0.9);
  EXPECT_LT(std::abs(corr.at(0, 2)), 0.3);
}

}  // namespace
}  // namespace cad::stats
