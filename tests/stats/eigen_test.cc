#include "stats/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace cad::stats {
namespace {

TEST(JacobiEigenTest, DiagonalMatrix) {
  SymmetricMatrix m(3);
  m.set(0, 0, 3.0);
  m.set(1, 1, 1.0);
  m.set(2, 2, 2.0);
  const EigenDecomposition eig = JacobiEigen(m);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);  // descending order
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1 with eigenvectors along
  // (1,1)/sqrt2 and (1,-1)/sqrt2.
  SymmetricMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(1, 1, 2.0);
  m.set(0, 1, 1.0);
  const EigenDecomposition eig = JacobiEigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(eig.vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiEigenTest, ReconstructsRandomSymmetricMatrix) {
  cad::Rng rng(9);
  const int n = 12;
  SymmetricMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) m.set(i, j, rng.Gaussian());
  }
  const EigenDecomposition eig = JacobiEigen(m);
  // A = sum_k lambda_k v_k v_k^T must reproduce the input.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double reconstructed = 0.0;
      for (int k = 0; k < n; ++k) {
        reconstructed += eig.values[k] * eig.vectors[k][i] * eig.vectors[k][j];
      }
      EXPECT_NEAR(reconstructed, m.at(i, j), 1e-8) << i << "," << j;
    }
  }
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  cad::Rng rng(10);
  const int n = 8;
  SymmetricMatrix m(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) m.set(i, j, rng.Uniform(-1.0, 1.0));
  }
  const EigenDecomposition eig = JacobiEigen(m);
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i) dot += eig.vectors[a][i] * eig.vectors[b][i];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(JacobiEigenTest, PsdCovarianceHasNonNegativeEigenvalues) {
  // Gram matrix of random vectors is PSD.
  cad::Rng rng(11);
  const int n = 6, samples = 40;
  std::vector<std::vector<double>> data(samples, std::vector<double>(n));
  for (auto& row : data) {
    for (double& v : row) v = rng.Gaussian();
  }
  SymmetricMatrix cov(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      double sum = 0.0;
      for (int s = 0; s < samples; ++s) sum += data[s][i] * data[s][j];
      cov.set(i, j, sum / samples);
    }
  }
  const EigenDecomposition eig = JacobiEigen(cov);
  for (double lambda : eig.values) EXPECT_GE(lambda, -1e-10);
}

}  // namespace
}  // namespace cad::stats
