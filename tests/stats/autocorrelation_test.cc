#include "stats/autocorrelation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace cad::stats {
namespace {

std::vector<double> Sine(int length, int period, double noise,
                         cad::Rng* rng) {
  std::vector<double> x(length);
  for (int t = 0; t < length; ++t) {
    x[t] = std::sin(2.0 * M_PI * t / period) +
           (rng != nullptr ? noise * rng->Gaussian() : 0.0);
  }
  return x;
}

TEST(AutocorrelationTest, LagZeroIsOne) {
  cad::Rng rng(31);
  std::vector<double> x(100);
  for (double& v : x) v = rng.Gaussian();
  const std::vector<double> acf = Autocorrelation(x, 10);
  ASSERT_EQ(acf.size(), 11u);
  EXPECT_NEAR(acf[0], 1.0, 1e-12);
}

TEST(AutocorrelationTest, ConstantSeriesAllZero) {
  const std::vector<double> x(50, 4.2);
  const std::vector<double> acf = Autocorrelation(x, 5);
  for (double v : acf) EXPECT_EQ(v, 0.0);
}

TEST(AutocorrelationTest, SinePeaksAtPeriod) {
  const std::vector<double> x = Sine(400, 20, 0.0, nullptr);
  const std::vector<double> acf = Autocorrelation(x, 50);
  // ACF of a sinusoid peaks again at the period.
  EXPECT_GT(acf[20], 0.9);
  EXPECT_LT(acf[10], 0.0);  // anti-phase at half period
}

TEST(AutocorrelationTest, MaxLagClampedToLength) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> acf = Autocorrelation(x, 100);
  EXPECT_EQ(acf.size(), 3u);  // lags 0..2
}

TEST(DominantPeriodTest, FindsSinePeriod) {
  const std::vector<double> x = Sine(600, 25, 0.0, nullptr);
  EXPECT_EQ(EstimateDominantPeriod(x, 4, 100), 25);
}

TEST(DominantPeriodTest, RobustToModerateNoise) {
  cad::Rng rng(33);
  const std::vector<double> x = Sine(800, 30, 0.3, &rng);
  const int period = EstimateDominantPeriod(x, 4, 120);
  EXPECT_NEAR(period, 30, 2);
}

TEST(DominantPeriodTest, FallsBackOnWhiteNoise) {
  cad::Rng rng(35);
  std::vector<double> x(500);
  for (double& v : x) v = rng.Gaussian();
  // White noise has no prominent ACF peak above 0.5.
  EXPECT_EQ(EstimateDominantPeriod(x, 4, 100, /*min_acf=*/0.5,
                                   /*fallback=*/77),
            77);
}

}  // namespace
}  // namespace cad::stats
