#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace cad::stats {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(7.5);
  EXPECT_EQ(stats.count(), 1);
  EXPECT_EQ(stats.mean(), 7.5);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 7.5);
  EXPECT_EQ(stats.max(), 7.5);
}

TEST(RunningStatsTest, MatchesNaiveComputation) {
  cad::Rng rng(21);
  std::vector<double> values(1000);
  RunningStats stats;
  for (double& v : values) {
    v = rng.Gaussian(3.0, 2.0);
    stats.Add(v);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= values.size();
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= values.size();
  EXPECT_NEAR(stats.mean(), mean, 1e-9);
  EXPECT_NEAR(stats.variance(), var, 1e-9);
  EXPECT_NEAR(stats.sample_variance(), var * 1000.0 / 999.0, 1e-9);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  cad::Rng rng(22);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Gaussian();
    all.Add(v);
    (i < 200 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty rhs: unchanged
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // empty lhs: becomes rhs
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(RollingStatsTest, WindowEviction) {
  RollingStats rolling(3);
  rolling.Add(1.0);
  rolling.Add(2.0);
  rolling.Add(3.0);
  EXPECT_TRUE(rolling.full());
  EXPECT_DOUBLE_EQ(rolling.mean(), 2.0);
  rolling.Add(10.0);  // evicts 1.0 -> {2, 3, 10}
  EXPECT_DOUBLE_EQ(rolling.mean(), 5.0);
  EXPECT_EQ(rolling.size(), 3u);
}

TEST(RollingStatsTest, VarianceMatchesWindow) {
  RollingStats rolling(4);
  for (double v : {2.0, 4.0, 6.0, 8.0}) rolling.Add(v);
  // Population variance of {2,4,6,8} = 5.
  EXPECT_NEAR(rolling.variance(), 5.0, 1e-12);
  EXPECT_NEAR(rolling.stddev(), std::sqrt(5.0), 1e-12);
}

TEST(RollingStatsTest, NonNegativeVarianceUnderCancellation) {
  RollingStats rolling(8);
  for (int i = 0; i < 100; ++i) rolling.Add(1e9 + 0.001 * (i % 2));
  EXPECT_GE(rolling.variance(), 0.0);
}

}  // namespace
}  // namespace cad::stats
