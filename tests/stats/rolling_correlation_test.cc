#include "stats/rolling_correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"

namespace cad::stats {
namespace {

ts::MultivariateSeries RandomSeries(int n, int length, uint64_t seed) {
  cad::Rng rng(seed);
  ts::MultivariateSeries series(n, length);
  double f = 0.0;
  for (int t = 0; t < length; ++t) {
    f = 0.7 * f + 0.7 * rng.Gaussian();
    for (int i = 0; i < n; ++i) {
      series.set_value(i, t, (i % 2 == 0 ? f : -f) + 0.3 * rng.Gaussian());
    }
  }
  return series;
}

TEST(RollingCorrelationTest, ResetMatchesDirectComputation) {
  const ts::MultivariateSeries series = RandomSeries(8, 300, 1);
  RollingCorrelationTracker tracker(8, 64);
  tracker.Reset(series, 50);
  const CorrelationMatrix rolling = tracker.Correlations();
  const CorrelationMatrix direct = WindowCorrelationMatrix(series, 50, 64);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_NEAR(rolling.at(i, j), direct.at(i, j), 1e-10);
    }
  }
}

TEST(RollingCorrelationTest, SlidesMatchDirectAtEveryStep) {
  const ts::MultivariateSeries series = RandomSeries(6, 500, 2);
  const int w = 48, s = 4;
  RollingCorrelationTracker tracker(6, w);
  tracker.Reset(series, 0);
  for (int start = s; start + w <= series.length(); start += s) {
    tracker.SlideTo(series, start);
    const CorrelationMatrix rolling = tracker.Correlations();
    const CorrelationMatrix direct = WindowCorrelationMatrix(series, start, w);
    for (int i = 0; i < 6; ++i) {
      for (int j = i + 1; j < 6; ++j) {
        ASSERT_NEAR(rolling.at(i, j), direct.at(i, j), 1e-9)
            << "start=" << start;
      }
    }
  }
}

TEST(RollingCorrelationTest, DriftBoundedOverManySlides) {
  // Hundreds of slides with step 1 — the worst case for accumulation error;
  // the periodic refresh keeps the drift microscopic.
  const ts::MultivariateSeries series = RandomSeries(4, 2000, 3);
  const int w = 64;
  RollingCorrelationTracker tracker(4, w, /*refresh_interval=*/64);
  tracker.Reset(series, 0);
  double max_error = 0.0;
  for (int start = 1; start + w <= series.length(); ++start) {
    tracker.SlideTo(series, start);
    const CorrelationMatrix rolling = tracker.Correlations();
    const CorrelationMatrix direct = WindowCorrelationMatrix(series, start, w);
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        max_error = std::max(max_error,
                             std::abs(rolling.at(i, j) - direct.at(i, j)));
      }
    }
  }
  EXPECT_LT(max_error, 1e-8);
}

TEST(RollingCorrelationTest, NonOverlappingSlideFallsBackToReset) {
  const ts::MultivariateSeries series = RandomSeries(4, 400, 4);
  RollingCorrelationTracker tracker(4, 50);
  tracker.Reset(series, 0);
  tracker.SlideTo(series, 200);  // disjoint from [0, 50): internal reset
  EXPECT_EQ(tracker.start(), 200);
  const CorrelationMatrix rolling = tracker.Correlations();
  const CorrelationMatrix direct = WindowCorrelationMatrix(series, 200, 50);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(rolling.at(i, j), direct.at(i, j), 1e-10);
    }
  }
}

TEST(RollingCorrelationTest, BackwardSlideAlsoResets) {
  const ts::MultivariateSeries series = RandomSeries(3, 300, 5);
  RollingCorrelationTracker tracker(3, 40);
  tracker.Reset(series, 100);
  tracker.SlideTo(series, 60);
  EXPECT_EQ(tracker.start(), 60);
  const CorrelationMatrix direct = WindowCorrelationMatrix(series, 60, 40);
  EXPECT_NEAR(tracker.Correlations().at(0, 1), direct.at(0, 1), 1e-10);
}

TEST(RollingCorrelationTest, ConstantSensorStaysZero) {
  ts::MultivariateSeries series(2, 200);
  cad::Rng rng(6);
  for (int t = 0; t < 200; ++t) {
    series.set_value(0, t, 5.0);
    series.set_value(1, t, rng.Gaussian());
  }
  RollingCorrelationTracker tracker(2, 32);
  tracker.Reset(series, 0);
  tracker.SlideTo(series, 8);
  EXPECT_EQ(tracker.Correlations().at(0, 1), 0.0);
}

}  // namespace
}  // namespace cad::stats
