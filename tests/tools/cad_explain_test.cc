// Spawns the real cad_explain binary over generated flight-log fixtures and
// checks each mode's output and exit code. CAD_EXPLAIN_BIN is injected by
// tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

struct BinaryResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

BinaryResult RunExplain(const std::string& args) {
  const std::string command =
      std::string(CAD_EXPLAIN_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn: " << command;
  BinaryResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

// A line in the exact shape obs::DecisionRecordToJson emits.
std::string RecordLine(int round, int n_variations, bool abnormal) {
  std::string line = "{\"round\":" + std::to_string(round);
  line += ",\"window_start\":" + std::to_string(round * 4);
  line += ",\"window_end\":" + std::to_string(round * 4 + 40);
  line += ",\"n_variations\":" + std::to_string(n_variations);
  line += ",\"mu\":1.5,\"sigma\":0.5,\"threshold\":1.5,\"score\":0.25";
  line += std::string(",\"abnormal\":") + (abnormal ? "true" : "false");
  line += ",\"anomaly_open\":false,\"n_outliers\":2,\"n_communities\":3";
  line += ",\"n_edges\":30,\"modularity\":0.66";
  line += ",\"entered\":[4,7],\"exited\":[],\"movers\":[4]";
  line += ",\"timings\":{\"correlation_seconds\":1e-05,\"knn_seconds\":2e-06";
  line += ",\"louvain_seconds\":3e-06,\"coappearance_seconds\":1e-06";
  line += ",\"round_seconds\":2e-05,\"unix_us\":1700000000000000}}";
  return line;
}

std::string WriteFixture(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream file(path);
  file << content;
  return path;
}

TEST(CadExplainTest, SummaryListsEveryRoundAndCountsAbnormal) {
  const std::string path = WriteFixture(
      "explain_summary.jsonl", RecordLine(0, 0, false) + "\n" +
                                   RecordLine(1, 4, true) + "\n" +
                                   RecordLine(2, 1, false) + "\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ABNORMAL"), std::string::npos);
  EXPECT_NE(result.output.find("3 record(s), 1 abnormal; rounds 0..2"),
            std::string::npos)
      << result.output;
}

TEST(CadExplainTest, AbnormalFilterShowsOnlyFiringRounds) {
  const std::string path = WriteFixture(
      "explain_filter.jsonl", RecordLine(0, 0, false) + "\n" +
                                  RecordLine(1, 4, true) + "\n");
  const BinaryResult result = RunExplain("--abnormal " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ABNORMAL"), std::string::npos);
  // Round 0's summary row (normal) is filtered out; only the header, the
  // abnormal row, and the trailer remain.
  EXPECT_EQ(result.output.find("     0      0"), std::string::npos)
      << result.output;
}

TEST(CadExplainTest, RoundDetailExplainsTheRuleAndDeltas) {
  const std::string path = WriteFixture(
      "explain_detail.jsonl",
      RecordLine(5, 1, false) + "\n" + RecordLine(6, 4, true) + "\n");
  const BinaryResult result = RunExplain("--round 6 " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("round 6  window [24, 64)"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("|n_r - mu| = |4 - 1.5000|"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("vs round 5"), std::string::npos);
  EXPECT_NE(result.output.find("dn_r +3"), std::string::npos);
  EXPECT_NE(result.output.find("verdict flipped"), std::string::npos);
}

TEST(CadExplainTest, MissingRoundExitsThree) {
  const std::string path =
      WriteFixture("explain_missing.jsonl", RecordLine(0, 0, false) + "\n");
  const BinaryResult result = RunExplain("--round 9 " + path);
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_NE(result.output.find("round 9 is not in"), std::string::npos);
}

TEST(CadExplainTest, ParseErrorsReportTheLineNumberAndExitTwo) {
  const std::string path = WriteFixture(
      "explain_broken.jsonl",
      RecordLine(0, 0, false) + "\nnot json at all\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find(":2:"), std::string::npos) << result.output;
}

TEST(CadExplainTest, MissingRequiredKeyIsAParseError) {
  // A valid JSON object that is not a DecisionRecord.
  const std::string path = WriteFixture("explain_not_record.jsonl",
                                        "{\"round\":1,\"mu\":0.5}\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("required key"), std::string::npos)
      << result.output;
}

TEST(CadExplainTest, UsageErrorsExitOne) {
  EXPECT_EQ(RunExplain("").exit_code, 1);
  EXPECT_EQ(RunExplain("--bogus-flag x.jsonl").exit_code, 1);
  EXPECT_EQ(RunExplain(::testing::TempDir() + "/does_not_exist.jsonl")
                .exit_code,
            1);
  // --from/--to are --advise modifiers only.
  EXPECT_EQ(RunExplain("--from 2 x.jsonl").exit_code, 1);
}

TEST(CadExplainTest, UnicodeEscapesDecodeToUtf8) {
  // \u00e9 = é (2-byte UTF-8), \ud83d\ude00 = 😀 (surrogate pair, 4-byte).
  // The schema's fixed keys never need escapes, so smuggle them through an
  // extra key the reader must still parse correctly.
  std::string line = RecordLine(0, 0, false);
  line.insert(line.find("\"round\""),
              "\"note\":\"caf\\u00e9 \\ud83d\\ude00\",");
  const std::string path = WriteFixture("explain_unicode.jsonl", line + "\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("1 record(s)"), std::string::npos)
      << result.output;
}

TEST(CadExplainTest, MalformedUnicodeEscapesAreLineNumberedErrors) {
  // A lone high surrogate is invalid; the error names line 2.
  std::string bad = RecordLine(1, 0, false);
  bad.insert(bad.find("\"round\""), "\"note\":\"\\ud83d\",");
  const std::string path = WriteFixture(
      "explain_bad_unicode.jsonl", RecordLine(0, 0, false) + "\n" + bad + "\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find(":2:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("surrogate"), std::string::npos)
      << result.output;
}

TEST(CadExplainTest, DuplicateObjectKeysAreLineNumberedErrors) {
  // Silently keeping either value would lie about the record; the reader
  // must reject the line and name it.
  std::string dup = RecordLine(1, 0, false);
  dup.insert(dup.find("\"window_start\""), "\"round\":99,");
  const std::string path = WriteFixture(
      "explain_dup_key.jsonl", RecordLine(0, 0, false) + "\n" + dup + "\n");
  const BinaryResult result = RunExplain(path);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find(":2:"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("duplicate object key 'round'"),
            std::string::npos)
      << result.output;
}

TEST(CadExplainTest, AdviseEmitsRankedReportJson) {
  const std::string path = WriteFixture(
      "explain_advise.jsonl", RecordLine(0, 0, false) + "\n" +
                                  RecordLine(1, 4, true) + "\n" +
                                  RecordLine(2, 1, false) + "\n");
  const BinaryResult result = RunExplain("--advise " + path);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  // One JSON line; the fixture's movers (sensor 4) must lead the ranking.
  EXPECT_EQ(result.output.find("{\"advice_version\":1,"), 0u) << result.output;
  EXPECT_NE(result.output.find("\"ranking\":[{\"sensor\":4,"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("\"rounds_scanned\":3"), std::string::npos);

  // Range selection and its not-found exit.
  const BinaryResult ranged = RunExplain("--advise --from 1 --to 1 " + path);
  EXPECT_EQ(ranged.exit_code, 0);
  EXPECT_NE(ranged.output.find("\"rounds_scanned\":1"), std::string::npos);
  EXPECT_EQ(RunExplain("--advise --from 7 --to 9 " + path).exit_code, 3);
}

}  // namespace
