// Tests for tools/cad_lint: the rule engine as a library (LintSource) and
// the installed binary end-to-end (exit codes, JSON report shape,
// --fix-list worklist) over the snippets in tests/lint_fixtures/, which
// hold one violating, one clean and one suppressed file per rule.
//
// CAD_LINT_BIN and CAD_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "concurrency.h"
#include "realtime.h"
#include "rules.h"

namespace cad_lint {
namespace {

struct BinaryResult {
  int exit_code = -1;
  std::string output;
};

BinaryResult RunBinary(const std::string& args) {
  const std::string command =
      std::string(CAD_LINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "failed to spawn: " << command;
  BinaryResult result;
  if (pipe == nullptr) return result;
  char buffer[4096];
  size_t n = 0;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    result.output.append(buffer, n);
  }
  const int status = pclose(pipe);
  result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string Fixture(const std::string& name) {
  return std::string(CAD_LINT_FIXTURES) + "/" + name;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule,
              bool suppressed) {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && f.suppressed == suppressed) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Library-level rule engine tests.
// ---------------------------------------------------------------------------

TEST(LintRulesTest, Cl001FlagsMutationInCheckCondition) {
  const std::vector<Finding> findings = LintSource(
      "sample.cc", "void F(int n) {\n  CAD_CHECK(n++ < 3, \"bad\");\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL001");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_FALSE(findings[0].suppressed);
}

TEST(LintRulesTest, Cl001IgnoresMessageArgumentsAndComparisons) {
  // Mutation in the *message* argument (after the comma) is evaluated
  // unconditionally by the macro, so only the condition is scanned.
  const std::vector<Finding> findings = LintSource(
      "sample.cc",
      "void F(int n) {\n  CAD_CHECK(n == 3, \"count\", n++);\n}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LintRulesTest, Cl001IgnoresDesignatedInitializers) {
  const std::vector<Finding> findings = LintSource(
      "sample.cc",
      "void F() {\n  CAD_VALIDATE(Check(Bounds{.max_edges = 5}));\n}\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LintRulesTest, Cl002IgnoresIdentifiersInsideStringLiterals) {
  const std::vector<Finding> findings = LintSource(
      "sample.cc", "const char* kDoc = \"std::rand() time(nullptr)\";\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LintRulesTest, Cl003RequiresDeclaredUnorderedContainer) {
  const std::string source =
      "#include <unordered_map>\n"
      "int F(const std::unordered_map<int, int>& m) {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : m) total += v;\n"
      "  return total;\n"
      "}\n";
  const std::vector<Finding> findings = LintSource("sample.cc", source);
  ASSERT_EQ(CountRule(findings, "CL003", /*suppressed=*/false), 1);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintRulesTest, Cl004SkipsNonHeaderFiles) {
  const std::string decl = "Status Load(const char* path);\n";
  EXPECT_EQ(LintSource("sample.cc", decl).size(), 0u);
  ASSERT_EQ(LintSource("sample.h", "#ifndef G_\n#define G_\n" + decl +
                                       "#endif  // G_\n")
                .size(),
            1u);
}

TEST(LintRulesTest, SuppressionNeedsReasonAndKnownRule) {
  const std::vector<Finding> missing_reason =
      LintSource("sample.cc", "int x;  // cad-lint: allow(CL003)\n");
  ASSERT_EQ(missing_reason.size(), 1u);
  EXPECT_EQ(missing_reason[0].rule, "CL000");

  const std::vector<Finding> unknown_rule = LintSource(
      "sample.cc", "int x;  // cad-lint: allow(CL999) bogus rule\n");
  ASSERT_EQ(unknown_rule.size(), 1u);
  EXPECT_EQ(unknown_rule[0].rule, "CL000");
}

TEST(LintRulesTest, ProseMentioningTheSyntaxIsNotASuppression) {
  // Only comments that *start* with "cad-lint:" participate; docs that
  // mention the convention mid-sentence must not emit CL000.
  const std::vector<Finding> findings = LintSource(
      "sample.cc", "// Suppress with `// cad-lint: allow(CLxxx) why`.\n");
  EXPECT_EQ(findings.size(), 0u);
}

TEST(LintRulesTest, RuleCatalogIsCompleteAndOrdered) {
  const std::vector<RuleInfo>& rules = Rules();
  ASSERT_EQ(rules.size(), 12u);
  for (size_t i = 0; i < rules.size(); ++i) {
    const std::string expect =
        (i < 10 ? "CL00" : "CL0") + std::to_string(i);
    EXPECT_EQ(rules[i].id, expect);
  }
}

// ---------------------------------------------------------------------------
// Library-level realtime rules (CL007/CL008): the tree-wide call-graph
// analysis behind the annotation contract in src/common/realtime.h.
// ---------------------------------------------------------------------------

TEST(LintRealtimeTest, DirectPrimitiveInAnnotatedRoot) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtDirect(std::vector<int>* v) CAD_REALTIME {\n"
       "  v->push_back(1);\n"
       "}\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL007");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("push_back"), std::string::npos);
  // A direct hit carries no call-path suffix.
  EXPECT_EQ(findings[0].message.find("call path"), std::string::npos);
}

TEST(LintRealtimeTest, TransitiveFindingLandsOnThePrimitiveSite) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtHelper(std::vector<int>* v) {\n"
       "  v->push_back(1);\n"
       "}\n"
       "void RtRoot(std::vector<int>* v) CAD_REALTIME {\n"
       "  RtHelper(v);\n"
       "}\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL007");
  EXPECT_EQ(findings[0].line, 2);  // the push_back, not the call site
  EXPECT_NE(findings[0].message.find("call path: RtRoot -> RtHelper"),
            std::string::npos);
}

TEST(LintRealtimeTest, OnePrimitiveSiteServesEveryRoot) {
  // Two annotated roots funnel through the same helper: the finding is
  // attributed to the primitive once, so one reasoned suppression there
  // covers both (the design contract documented in rules.h).
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtShared(std::vector<int>* v) {\n"
       "  v->push_back(1);\n"
       "}\n"
       "void RtRootOne(std::vector<int>* v) CAD_REALTIME { RtShared(v); }\n"
       "void RtRootTwo(std::vector<int>* v) CAD_REALTIME { RtShared(v); }\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintRealtimeTest, SuppressionResolvesAgainstThePrimitivesFile) {
  // Root and primitive live in different files; the allow() in the
  // *primitive's* file must silence the cross-file finding.
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtXHelper(std::vector<int>* v) {\n"
       "  // cad-lint: allow(CL007) capacity retained by the caller\n"
       "  v->push_back(1);\n"
       "}\n"},
      {"b.cc", "void RtXRoot(std::vector<int>* v) CAD_REALTIME {\n"
               "  RtXHelper(v);\n"
               "}\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].path, "a.cc");
}

TEST(LintRealtimeTest, EffectMasksDistinguishAllocFromBlock) {
  // A nonallocating-only root may block: the mutex is fine, the push_back
  // is not.
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtNonAlloc(std::mutex* mu, std::vector<int>* v)\n"
       "    CAD_NONALLOCATING {\n"
       "  std::lock_guard<std::mutex> lock(*mu);\n"
       "  v->push_back(1);\n"
       "}\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("may not allocate"), std::string::npos);
}

TEST(LintRealtimeTest, ValidateRegionsAreSkipped) {
  // CAD_VALIDATE compiles out below the full check level, so its argument
  // region is not part of the steady-state contract.
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtChecked(std::vector<int>* v) CAD_REALTIME {\n"
       "  CAD_VALIDATE(Audit(std::to_string(v->size())));\n"
       "  v->front() = 0;\n"
       "}\n"}};
  EXPECT_EQ(LintRealtime(files).size(), 0u);
}

TEST(LintRealtimeTest, Cl008FlagsWeakerAnnotatedCallee) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtWeak() CAD_NONALLOCATING {}\n"
       "void RtStrict() CAD_REALTIME {\n"
       "  RtWeak();\n"
       "}\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL008");
  EXPECT_EQ(findings[0].line, 3);  // the call site
  EXPECT_NE(findings[0].message.find("RtWeak"), std::string::npos);
}

TEST(LintRealtimeTest, Cl008FlagsOverrideDroppingTheAnnotation) {
  const std::vector<FileInput> files = {
      {"a.h",
       "class RtBase {\n"
       " public:\n"
       "  virtual void Tick() CAD_REALTIME {}\n"
       "};\n"
       "class RtDerived : public RtBase {\n"
       " public:\n"
       "  void Tick() override {}\n"
       "};\n"}};
  const std::vector<Finding> findings = LintRealtime(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL008");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].message.find("RtDerived::Tick"), std::string::npos);
}

TEST(LintRealtimeTest, CompatibleAnnotationsStayQuiet) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void RtOkCallee() CAD_REALTIME {}\n"
       "void RtOkCaller() CAD_REALTIME { RtOkCallee(); }\n"
       "void RtOkReuse(std::vector<int>* v) CAD_REALTIME {\n"
       "  v->clear();\n"
       "  v->assign(4, 0);\n"
       "  v->resize(8);\n"
       "}\n"}};
  EXPECT_EQ(LintRealtime(files).size(), 0u);
}

// ---------------------------------------------------------------------------
// Library-level concurrency rules (CL009–CL011): the acquired-while-held
// cycle search and the GCC-side thread-safety parity checks.
// ---------------------------------------------------------------------------

TEST(LintConcurrencyTest, Cl009WitnessCarriesBothSidesOfTheCycle) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void Fwd(cad::common::Mutex& a, cad::common::Mutex& b) {\n"
       "  cad::common::MutexLock one(a);\n"
       "  cad::common::MutexLock two(b);\n"
       "}\n"
       "void Bwd(cad::common::Mutex& a, cad::common::Mutex& b) {\n"
       "  cad::common::MutexLock one(b);\n"
       "  cad::common::MutexLock two(a);\n"
       "}\n"}};
  const std::vector<Finding> findings = LintConcurrency(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL009");
  EXPECT_NE(findings[0].message.find("Fwd"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Bwd"), std::string::npos);
  EXPECT_NE(findings[0].message.find("`a` -> `b` -> `a`"),
            std::string::npos);
}

TEST(LintConcurrencyTest, Cl009TransitiveWitnessNamesTheCallPath) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "cad::common::Mutex g_a;\n"
       "cad::common::Mutex g_b;\n"
       "void TakeB() { cad::common::MutexLock lock(g_b); }\n"
       "void Fwd() {\n"
       "  cad::common::MutexLock lock(g_a);\n"
       "  TakeB();\n"
       "}\n"
       "void Bwd() {\n"
       "  cad::common::MutexLock lock(g_b);\n"
       "  cad::common::MutexLock inner(g_a);\n"
       "}\n"}};
  const std::vector<Finding> findings = LintConcurrency(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL009");
  EXPECT_NE(findings[0].message.find("call path: Fwd -> TakeB"),
            std::string::npos);
}

TEST(LintConcurrencyTest, LockNamedMethodChainsNeverOpenAHeldScope) {
  // `h.lock()`, `p->lock()` and chains off temporaries are calls, not
  // lock-type declarations; if one leaked into the held set the push_back
  // would flag CL010 and the reversed pair would fake a CL009 cycle.
  const std::vector<FileInput> files = {
      {"a.cc",
       "void Chains(Handle h, Handle* p, std::vector<int>* v) {\n"
       "  h.lock();\n"
       "  p->lock();\n"
       "  h.lock().other();\n"
       "  p->lock().other().Use();\n"
       "  v->push_back(1);\n"
       "}\n"
       "void FakeBwd(Handle a, Handle b) {\n"
       "  b.lock();\n"
       "  a.lock();\n"
       "}\n"
       "void FakeFwd(Handle a, Handle b) {\n"
       "  a.lock();\n"
       "  b.lock();\n"
       "}\n"}};
  EXPECT_EQ(LintConcurrency(files).size(), 0u);
}

TEST(LintConcurrencyTest, Cl010SanctionedWaitIdiomStaysQuiet) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void Wait(cad::common::Mutex& mu, std::condition_variable& cv) {\n"
       "  std::unique_lock<std::mutex> lk(mu.native());\n"
       "  cv.wait(lk, [] { return Ready(); });\n"
       "}\n"}};
  EXPECT_EQ(LintConcurrency(files).size(), 0u);
}

TEST(LintConcurrencyTest, Cl010FlagsNativeOutsideTheWaitIdiom) {
  const std::vector<FileInput> files = {
      {"a.cc",
       "void Raw(cad::common::Mutex& mu) {\n"
       "  mu.native().lock();\n"
       "}\n"}};
  const std::vector<Finding> findings = LintConcurrency(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "CL010");
  EXPECT_NE(findings[0].message.find("native()"), std::string::npos);
}

TEST(LintConcurrencyTest, Cl011RequiresOnDeclarationCoversTheDefinition) {
  // REQUIRES lives on the header declaration; the out-of-line definition
  // must inherit it as held-from-entry or every guarded access and nested
  // call in the .cc would false-positive.
  const std::vector<FileInput> files = {
      {"w.h",
       "class Widget {\n"
       " public:\n"
       "  void Tick() REQUIRES(mu_);\n"
       "  void Step() REQUIRES(mu_);\n"
       " private:\n"
       "  cad::common::Mutex mu_;\n"
       "  int v_ GUARDED_BY(mu_) = 0;\n"
       "};\n"},
      {"w.cc",
       "void Widget::Tick() {\n"
       "  v_ = 1;\n"
       "  Step();\n"
       "}\n"
       "void Widget::Step() { v_ = 2; }\n"}};
  EXPECT_EQ(LintConcurrency(files).size(), 0u);
}

TEST(LintConcurrencyTest, Cl011FlagsGuardedAccessAndRequiresCall) {
  const std::vector<FileInput> files = {
      {"w.h",
       "class Widget {\n"
       " public:\n"
       "  int Read() const { return v_; }\n"
       "  void Tick() REQUIRES(mu_);\n"
       "  void Loose() { Tick(); }\n"
       " private:\n"
       "  mutable cad::common::Mutex mu_;\n"
       "  int v_ GUARDED_BY(mu_) = 0;\n"
       "};\n"}};
  const std::vector<Finding> findings = LintConcurrency(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "CL011");
  EXPECT_NE(findings[0].message.find("v_"), std::string::npos);
  EXPECT_EQ(findings[1].rule, "CL011");
  EXPECT_NE(findings[1].message.find("REQUIRES"), std::string::npos);
}

TEST(LintConcurrencyTest, ExplicitReceiverDoesNotInheritSelfContract) {
  // `inner_.Open()` must not resolve to the *enclosing* class's
  // EXCLUDES(mu_) overload by last-name match — the receiver is another
  // object whose type a token-level pass cannot see.
  const std::vector<FileInput> files = {
      {"a.h",
       "class Outer {\n"
       " public:\n"
       "  bool Open() const EXCLUDES(mu_) {\n"
       "    cad::common::MutexLock lock(mu_);\n"
       "    return inner_.Open();\n"
       "  }\n"
       "  bool Snapshot() const {\n"
       "    cad::common::MutexLock lock(mu_);\n"
       "    return inner_.Open();\n"
       "  }\n"
       " private:\n"
       "  mutable cad::common::Mutex mu_;\n"
       "  Inner inner_;\n"
       "};\n"}};
  EXPECT_EQ(LintConcurrency(files).size(), 0u);
}

// ---------------------------------------------------------------------------
// Fixture matrix: violating / clean / suppressed snippet per rule, driven
// through the real binary.
// ---------------------------------------------------------------------------

struct FixtureCase {
  const char* file;
  const char* rule;
  int violations;  // expected unsuppressed findings of `rule`
  int suppressed;  // expected suppressed findings of `rule`
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, BinaryMatchesExpectedOutcome) {
  const FixtureCase& c = GetParam();
  const BinaryResult result = RunBinary("--json " + Fixture(c.file));
  EXPECT_EQ(result.exit_code, c.violations > 0 ? 1 : 0) << result.output;
  const std::string violations_key =
      "\"violations\":" + std::to_string(c.violations);
  const std::string suppressed_key =
      "\"suppressed\":" + std::to_string(c.suppressed);
  EXPECT_NE(result.output.find(violations_key), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find(suppressed_key), std::string::npos)
      << result.output;
  if (c.violations + c.suppressed > 0) {
    EXPECT_NE(result.output.find(std::string("\"rule\":\"") + c.rule + "\""),
              std::string::npos)
        << result.output;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(
        FixtureCase{"cl000_bad.cc", "CL000", 1, 0},
        FixtureCase{"cl001_bad.cc", "CL001", 1, 0},
        FixtureCase{"cl001_clean.cc", "CL001", 0, 0},
        FixtureCase{"cl001_suppressed.cc", "CL001", 0, 1},
        FixtureCase{"cl002_bad.cc", "CL002", 1, 0},
        FixtureCase{"cl002_clean.cc", "CL002", 0, 0},
        FixtureCase{"cl002_suppressed.cc", "CL002", 0, 1},
        FixtureCase{"cl003_bad.cc", "CL003", 1, 0},
        FixtureCase{"cl003_clean.cc", "CL003", 0, 0},
        FixtureCase{"cl003_suppressed.cc", "CL003", 0, 1},
        FixtureCase{"cl004_bad.h", "CL004", 2, 0},
        FixtureCase{"cl004_clean.h", "CL004", 0, 0},
        FixtureCase{"cl004_suppressed.h", "CL004", 0, 1},
        FixtureCase{"cl005_bad.h", "CL005", 1, 0},
        FixtureCase{"cl005_clean.h", "CL005", 0, 0},
        FixtureCase{"cl005_suppressed.h", "CL005", 0, 1},
        FixtureCase{"cl005_method_bad.h", "CL005", 1, 0},
        FixtureCase{"cl005_method_clean.h", "CL005", 0, 0},
        FixtureCase{"cl005_method_suppressed.h", "CL005", 0, 1},
        FixtureCase{"cl006_bad.h", "CL006", 2, 0},
        FixtureCase{"cl006_clean.h", "CL006", 0, 0},
        FixtureCase{"cl006_suppressed.h", "CL006", 0, 1},
        FixtureCase{"cl007_bad.cc", "CL007", 2, 0},
        FixtureCase{"cl007_transitive_bad.cc", "CL007", 1, 0},
        FixtureCase{"cl007_clean.cc", "CL007", 0, 0},
        FixtureCase{"cl007_suppressed.cc", "CL007", 0, 1},
        FixtureCase{"cl007_rawstring_clean.cc", "CL007", 0, 0},
        FixtureCase{"cl007_digitsep_bad.cc", "CL007", 1, 0},
        FixtureCase{"cl008_bad.cc", "CL008", 1, 0},
        FixtureCase{"cl008_override_bad.cc", "CL008", 1, 0},
        FixtureCase{"cl008_clean.cc", "CL008", 0, 0},
        FixtureCase{"cl008_suppressed.cc", "CL008", 0, 1},
        FixtureCase{"cl009_bad.cc", "CL009", 1, 0},
        FixtureCase{"cl009_transitive_bad.cc", "CL009", 1, 0},
        FixtureCase{"cl009_clean.cc", "CL009", 0, 0},
        FixtureCase{"cl009_suppressed.cc", "CL009", 0, 1},
        FixtureCase{"cl009_chain_clean.cc", "CL009", 0, 0},
        // Each half of the cross-file inversion is clean alone; the pair is
        // covered by CrossFileInversionNeedsBothHalves below.
        FixtureCase{"cl009_cross_one.cc", "CL009", 0, 0},
        FixtureCase{"cl009_cross_two.cc", "CL009", 0, 0},
        FixtureCase{"cl010_bad.cc", "CL010", 4, 0},
        FixtureCase{"cl010_clean.cc", "CL010", 0, 0},
        FixtureCase{"cl010_suppressed.cc", "CL010", 0, 1},
        FixtureCase{"cl011_bad.cc", "CL011", 3, 0},
        FixtureCase{"cl011_clean.cc", "CL011", 0, 0},
        FixtureCase{"cl011_suppressed.cc", "CL011", 0, 1}),
    [](const ::testing::TestParamInfo<FixtureCase>& info) {
      std::string name = info.param.file;
      for (char& c : name) {
        if (c == '.' || c == '/') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Binary behavior: report shapes and exit codes.
// ---------------------------------------------------------------------------

TEST(LintBinaryTest, JsonReportHasStableShape) {
  const BinaryResult result =
      RunBinary("--json " + Fixture("cl003_bad.cc"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("\"tool\":\"cad_lint\""), std::string::npos);
  EXPECT_NE(result.output.find("\"version\":1"), std::string::npos);
  EXPECT_NE(result.output.find("\"files_scanned\":1"), std::string::npos);
  EXPECT_NE(result.output.find("\"findings\":[{"), std::string::npos);
  EXPECT_NE(result.output.find("\"line\":5"), std::string::npos);
  EXPECT_NE(result.output.find("\"message\":\""), std::string::npos);
  EXPECT_NE(result.output.find("\"suggestion\":\""), std::string::npos);
  EXPECT_NE(result.output.find("\"suppressed\":false"), std::string::npos);
}

TEST(LintBinaryTest, FixListIncludesSuppressedFindings) {
  const BinaryResult result =
      RunBinary("--fix-list " + Fixture("cl001_suppressed.cc"));
  // Suppressed findings keep the exit code clean but stay on the worklist.
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("\tCL001\tsuppressed\t"), std::string::npos)
      << result.output;
}

TEST(LintBinaryTest, FixListRowsAreTabSeparatedWithFiveColumns) {
  const BinaryResult result =
      RunBinary("--fix-list " + Fixture("cl004_bad.h"));
  EXPECT_EQ(result.exit_code, 1);
  size_t start = 0;
  int rows = 0;
  while (start < result.output.size()) {
    size_t end = result.output.find('\n', start);
    if (end == std::string::npos) break;
    const std::string line = result.output.substr(start, end - start);
    int tabs = 0;
    for (char c : line) {
      if (c == '\t') ++tabs;
    }
    EXPECT_EQ(tabs, 4) << line;
    ++rows;
    start = end + 1;
  }
  EXPECT_EQ(rows, 2);
}

TEST(LintBinaryTest, ListRulesPrintsTheCatalog) {
  const BinaryResult result = RunBinary("--list-rules");
  EXPECT_EQ(result.exit_code, 0);
  for (const RuleInfo& rule : Rules()) {
    EXPECT_NE(result.output.find(std::string(rule.id)), std::string::npos);
  }
}

TEST(LintBinaryTest, UsageErrorsExitTwo) {
  EXPECT_EQ(RunBinary("--definitely-not-a-flag x.cc").exit_code, 2);
  EXPECT_EQ(RunBinary("").exit_code, 2);
  EXPECT_EQ(RunBinary(Fixture("no_such_file.cc")).exit_code, 2);
  EXPECT_EQ(RunBinary("--json --fix-list " + Fixture("cl001_clean.cc"))
                .exit_code,
            2);
}

TEST(LintBinaryTest, DigitSeparatorsDoNotShiftFindingLines) {
  // 1'000'000 ahead of the violation must not start a bogus char literal;
  // the finding lands on the push_back's real line.
  const BinaryResult result =
      RunBinary("--json " + Fixture("cl007_digitsep_bad.cc"));
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.output.find("\"line\":9"), std::string::npos)
      << result.output;
}

TEST(LintBinaryTest, CrossFileInversionNeedsBothHalves) {
  // cl009_cross_one.cc locks g_one then g_two; cl009_cross_two.cc locks the
  // same extern pair in the opposite order. Either file alone is acyclic
  // (the FixtureCase rows above pin 0 findings each); only a tree-wide run
  // that merges both acquired-after edges closes the cycle. This is the
  // property that makes CL009 a *tree* gate rather than a per-file scan.
  const BinaryResult result = RunBinary(
      Fixture("cl009_cross_one.cc") + " " + Fixture("cl009_cross_two.cc"));
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("CL009"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("cl009_cross_two.cc"), std::string::npos)
      << result.output;
}

TEST(LintBinaryTest, JsonReportIsByteDeterministicAcrossRuns) {
  const std::string args = "--json " + std::string(CAD_LINT_FIXTURES);
  const BinaryResult first = RunBinary(args);
  const BinaryResult second = RunBinary(args);
  EXPECT_EQ(first.exit_code, 1);  // the *_bad fixtures
  EXPECT_EQ(first.output, second.output);
}

}  // namespace
}  // namespace cad_lint
