// Minimal blocking HTTP GET for tests that scrape obs::ExpositionServer.
// POSIX sockets only, one request per connection (the server speaks
// HTTP/1.0 with Connection: close, so reading to EOF is the framing).
#ifndef CAD_TESTS_TESTING_HTTP_CLIENT_H_
#define CAD_TESTS_TESTING_HTTP_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>

namespace cad::testing {

struct HttpResponse {
  bool ok = false;        // transport-level success (connected, got a reply)
  int status_code = 0;    // parsed from the status line
  std::string headers;    // raw header block (status line included)
  std::string body;
};

// GETs http://127.0.0.1:`port``target` and reads until the server closes.
inline HttpResponse HttpGet(uint16_t port, const std::string& target) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }

  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(fd);
      return response;
    }
    sent += static_cast<size_t>(n);
  }

  std::string raw;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n <= 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return response;
  response.headers = raw.substr(0, header_end);
  response.body = raw.substr(header_end + 4);
  // "HTTP/1.0 200 OK"
  if (std::sscanf(response.headers.c_str(), "HTTP/%*d.%*d %d",
                  &response.status_code) != 1) {
    return response;
  }
  response.ok = true;
  return response;
}

}  // namespace cad::testing

#endif  // CAD_TESTS_TESTING_HTTP_CLIENT_H_
