// Shared synthetic fixtures for core / baseline / integration tests: a small
// correlated sensor network with one injected correlation break, built on the
// library's own generator so tests exercise the same code paths as the
// benchmarks.
#ifndef CAD_TESTS_TESTING_SYNTHETIC_H_
#define CAD_TESTS_TESTING_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "datasets/anomaly_injector.h"
#include "datasets/generator.h"
#include "eval/confusion.h"
#include "ts/multivariate_series.h"

namespace cad::testing {

struct SmallScenario {
  ts::MultivariateSeries train;  // clean history
  ts::MultivariateSeries test;   // with one correlation break
  eval::Labels labels;
  std::vector<int> abnormal_sensors;
  int anomaly_start = 0;
  int anomaly_end = 0;
};

// n sensors in `communities` groups, train/test lengths, one correlation
// break in the middle of the test split affecting half of community 0.
inline SmallScenario MakeSmallScenario(int n_sensors = 12, int communities = 3,
                                       int train_len = 600, int test_len = 900,
                                       uint64_t seed = 99) {
  Rng rng(seed);
  datasets::GeneratorOptions options;
  options.n_sensors = n_sensors;
  options.n_communities = communities;
  options.noise_std = 0.1;
  datasets::SensorNetworkGenerator generator(options, &rng);

  SmallScenario scenario;
  scenario.train = generator.Generate(train_len, &rng);
  scenario.test = generator.Generate(test_len, &rng);

  datasets::AnomalyEvent event;
  event.type = datasets::AnomalyType::kCorrelationBreak;
  event.start = test_len / 2;
  event.duration = test_len / 8;
  std::vector<int> members = generator.CommunityMembers(0);
  members.resize(std::max<size_t>(2, members.size() / 2));
  event.sensors = members;
  event.magnitude = 2.5;

  scenario.labels = datasets::InjectAnomalies(generator, {event},
                                              &scenario.test, &rng);
  scenario.abnormal_sensors = event.sensors;
  scenario.anomaly_start = event.start;
  scenario.anomaly_end = event.start + event.duration;
  return scenario;
}

}  // namespace cad::testing

#endif  // CAD_TESTS_TESTING_SYNTHETIC_H_
