// Fixture: locking method annotated with EXCLUDES — clean under CL005's
// method shape.
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_METHOD_CLEAN_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_METHOD_CLEAN_H_

#include <mutex>

class Telemetry {
 public:
  int samples() const EXCLUDES(mu_) {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

 private:
  mutable std::mutex mu_;
  int samples_ GUARDED_BY(mu_) = 0;
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_METHOD_CLEAN_H_
