// Lexer regression fixture: raw strings and string-concatenation macros
// ending in R (PRIuPTR-style) must not derail the token stream. Every banned
// name below is string *content*; if the lexer mis-tracked the raw-string
// delimiter (or treated FOOPTR as a raw-string prefix) these would surface
// as CL007 primitives inside an annotated root.
#define FOOPTR "zu"

const char* Cl007RawDoc() CAD_REALTIME {
  return R"(push_back new malloc MutexLock sleep_for printf)";
}

const char* Cl007RawFormat() CAD_REALTIME {
  return "count=%" FOOPTR " emplace_back(cout)";
}
