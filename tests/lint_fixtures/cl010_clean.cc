// CL010 clean fixture: the sanctioned condition-variable wait idiom — a
// body-local unique_lock over Mutex::native() driving cv.wait — plus
// allocation hoisted out of the critical section.
#include <condition_variable>
#include <vector>

#include "common/mutex.h"

namespace fixture {

cad::common::Mutex g_mu;
std::condition_variable g_cv;
bool g_ready = false;

void WaitForReady() {
  std::unique_lock<std::mutex> lk(g_mu.native());
  g_cv.wait(lk, [] { return g_ready; });
}

void AllocOutsideLock(std::vector<int>* v) {
  v->reserve(8);
  cad::common::MutexLock lock(g_mu);
  g_ready = true;
}

}  // namespace fixture
