// CL009 cross-file fixture, half one: locks g_one before g_two. Clean in
// isolation; a cycle only appears when linted together with
// cl009_cross_two.cc, which takes the pair in the opposite order.
#include "common/mutex.h"

namespace fixture_cross {

extern cad::common::Mutex g_one;
extern cad::common::Mutex g_two;

void ForwardOrder() {
  cad::common::MutexLock first(g_one);
  cad::common::MutexLock second(g_two);
}

}  // namespace fixture_cross
