// Fixture: [[nodiscard]] present, out-of-line definitions and non-Status
// declarations are all clean under CL004.
#ifndef CAD_TESTS_LINT_FIXTURES_CL004_CLEAN_H_
#define CAD_TESTS_LINT_FIXTURES_CL004_CLEAN_H_

[[nodiscard]] Status LoadModel(const char* path);
[[nodiscard]] Result<int> ParsePort(const char* text);
void FireAndForget(int x);
using StatusCallback = void (*)(int);

#endif  // CAD_TESTS_LINT_FIXTURES_CL004_CLEAN_H_
