// Fixture: suppression without a reason is itself a violation (CL000).
int SuppressedWithoutReason() {
  int total = 0;  // cad-lint: allow(CL003)
  return total;
}
