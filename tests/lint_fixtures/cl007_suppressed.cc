// CL007 suppressed fixture: a reasoned allow() at the primitive site keeps
// the exit code clean while the finding stays on the --fix-list worklist.
#include <vector>

void Cl007SuppressedRoot(std::vector<int>* out) CAD_REALTIME {
  // cad-lint: allow(CL007) fixture: capacity is pre-reserved during warm-up
  out->push_back(1);
}
