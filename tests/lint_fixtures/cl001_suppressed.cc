// Fixture: CL001 finding silenced by an inline suppression with a reason.
void Consume(int samples) {
  // cad-lint: allow(CL001) fixture exercises the suppression path
  CAD_CHECK(samples-- > 0, "intentionally mutating");
}
