// CL009 violating fixture: the canonical ABBA deadlock — two methods take
// the same pair of mutexes in opposite orders, closing a cycle in the
// acquired-while-held graph.
#include "common/mutex.h"

namespace fixture {

class TwoLocks {
 public:
  void Forward() {
    cad::common::MutexLock first(a_);
    cad::common::MutexLock second(b_);
  }
  void Backward() {
    cad::common::MutexLock first(b_);
    cad::common::MutexLock second(a_);
  }

 private:
  cad::common::Mutex a_;
  cad::common::Mutex b_;
};

}  // namespace fixture
