// CL008 violating fixture: a nonblocking+nonallocating caller directly
// invokes a callee that only promises nonallocating — the blocking half of
// the caller's contract is unenforced across the call.
void Cl008WeakCallee() CAD_NONALLOCATING {}

void Cl008StrictCaller() CAD_REALTIME {
  Cl008WeakCallee();
}
