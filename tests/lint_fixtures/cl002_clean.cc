// Fixture: the string "rand" in a literal or member call is not a finding.
struct Clock {
  int time(int t) const { return t; }
};
int Sample(const Clock& clock) {
  const char* label = "rand";  // literals never match identifier rules
  return clock.time(label != nullptr ? 1 : 0);
}
