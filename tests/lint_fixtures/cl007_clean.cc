// CL007 clean fixture: the Clear-and-reuse idiom (assign/resize/clear into
// retained capacity) is sanctioned by the allocation policy — the dynamic
// alloc-hook tests are its enforcement — and annotated callees are trusted
// boundaries covered by their own root walk.
#include <vector>

void Cl007CleanHelper(std::vector<int>* out) CAD_REALTIME {
  out->clear();
  out->resize(8);
  out->assign(8, 0);
}

void Cl007CleanRoot(std::vector<int>* out) CAD_REALTIME {
  Cl007CleanHelper(out);
  int total = 0;
  for (int v : *out) total += v;
  out->front() = total;
}
