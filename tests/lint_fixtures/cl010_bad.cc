// CL010 violating fixture: a blocking join and a container allocation
// inside a critical section, plus a raw `Mutex::native()` use outside the
// condition-variable wait idiom (the one sanctioned escape hatch).
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace fixture {

cad::common::Mutex g_mu;
std::vector<int> g_items;

void BlockUnderLock(std::thread* t) {
  cad::common::MutexLock lock(g_mu);
  t->join();
}

void AllocUnderLock() {
  cad::common::MutexLock lock(g_mu);
  g_items.push_back(1);
}

void RawNativeEscape() {
  g_mu.native().lock();
  g_mu.native().unlock();
}

}  // namespace fixture
