// Fixture: using-namespace suppressed with a reason; guard present.
#ifndef CAD_TESTS_LINT_FIXTURES_CL006_SUPPRESSED_H_
#define CAD_TESTS_LINT_FIXTURES_CL006_SUPPRESSED_H_

using namespace std;  // cad-lint: allow(CL006) fixture exercises trailing suppression

#endif  // CAD_TESTS_LINT_FIXTURES_CL006_SUPPRESSED_H_
