// Fixture: pure condition in a check macro — clean under CL001.
void Consume(int samples) {
  CAD_CHECK(samples > 0, "no side effects; comparisons are fine: a <= b");
  CAD_DCHECK(samples != 0, "maximal munch keeps != out of the = rule");
}
