// CL008 virtual-override fixture: the base declares the method realtime-safe
// but the override drops the annotation, so a call through the base pointer
// can silently lose the contract.
class Cl008Base {
 public:
  virtual void Cl008Tick() CAD_REALTIME {}
};

class Cl008Derived : public Cl008Base {
 public:
  void Cl008Tick() override {}
};
