// Fixture: data member next to a mutex without GUARDED_BY (CL005).
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_BAD_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_BAD_H_

#include <mutex>
#include <vector>

class EventBuffer {
 public:
  void Push(double v);

 private:
  std::mutex mu_;
  std::vector<double> events_;
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_BAD_H_
