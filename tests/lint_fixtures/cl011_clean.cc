// CL011 clean fixture: the same shapes as cl011_bad.cc done right — the
// guard is held (directly or via a REQUIRES contract the caller satisfies)
// and the EXCLUDES method is entered lock-free.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  int Read() const {
    cad::common::MutexLock lock(mu_);
    return value_;
  }
  void Locked() REQUIRES(mu_) { value_ = 1; }
  void Unlocked() EXCLUDES(mu_) {
    cad::common::MutexLock lock(mu_);
    value_ = 2;
  }
  void CallsLocked() {
    cad::common::MutexLock lock(mu_);
    Locked();
  }
  void CallsUnlocked() {
    Unlocked();
  }

 private:
  mutable cad::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
