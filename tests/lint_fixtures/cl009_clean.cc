// CL009 clean fixture: both paths acquire the pair in the same order, so
// the acquired-while-held graph is a DAG — nested locking itself is fine.
#include "common/mutex.h"

namespace fixture {

class OrderedLocks {
 public:
  void PathOne() {
    cad::common::MutexLock first(a_);
    cad::common::MutexLock second(b_);
  }
  void PathTwo() {
    cad::common::MutexLock first(a_);
    cad::common::MutexLock second(b_);
  }

 private:
  cad::common::Mutex a_;
  cad::common::Mutex b_;
};

}  // namespace fixture
