// Fixture: range-for over an unordered container (CL003).
#include <unordered_map>
double Sum(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& [key, weight] : weights) total += weight;
  return total;
}
