// Fixture: order-independent reduction, suppressed with a reason.
#include <unordered_map>
int MaxValue(const std::unordered_map<int, int>& counts) {
  int best = 0;
  // cad-lint: allow(CL003) max-reduction is independent of iteration order
  for (const auto& [key, count] : counts) {
    if (count > best) best = count;
  }
  return best;
}
