// CL010 suppressed fixture: a deliberate copy-under-lock with the reasoned
// allow() at the lock site — the anchor CL010 uses so one suppression
// covers every allocating line of the scope.
#include <vector>

#include "common/mutex.h"

namespace fixture {

cad::common::Mutex g_mu;

void DeliberateCopyUnderLock(std::vector<int>* v) {
  // cad-lint: allow(CL010) fixture: bounded copy; callers tolerate the scrape-path latency
  cad::common::MutexLock lock(g_mu);
  v->push_back(1);
  v->push_back(2);
}

}  // namespace fixture
