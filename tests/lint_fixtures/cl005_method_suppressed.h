// Fixture: CL005 method shape suppressed with a reason.
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_METHOD_SUPPRESSED_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_METHOD_SUPPRESSED_H_

#include <mutex>

class Telemetry {
 public:
  // cad-lint: allow(CL005) annotation macros unavailable in this TU
  int samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

 private:
  mutable std::mutex mu_;
  int samples_ GUARDED_BY(mu_) = 0;
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_METHOD_SUPPRESSED_H_
