// Fixture: Status/Result-returning declarations without [[nodiscard]]
// (CL004). The include guard keeps CL006 quiet.
#ifndef CAD_TESTS_LINT_FIXTURES_CL004_BAD_H_
#define CAD_TESTS_LINT_FIXTURES_CL004_BAD_H_

Status LoadModel(const char* path);
Result<int> ParsePort(const char* text);

#endif  // CAD_TESTS_LINT_FIXTURES_CL004_BAD_H_
