// Fixture: every sibling of the mutex is annotated, const, static or
// atomic — clean under CL005.
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_CLEAN_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_CLEAN_H_

#include <atomic>
#include <mutex>
#include <vector>

class EventBuffer {
 public:
  void Push(double v);

 private:
  const int capacity_ = 128;
  static int instances_;
  std::atomic<bool> open_{true};
  std::mutex mu_;
  std::vector<double> events_ GUARDED_BY(mu_);
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_CLEAN_H_
