// Fixture: keyed lookups into unordered containers are fine; only
// iteration order is banned.
#include <unordered_map>
#include <vector>
double Sum(const std::unordered_map<int, double>& weights,
           const std::vector<int>& sorted_keys) {
  double total = 0.0;
  for (int key : sorted_keys) total += weights.at(key);
  return total;
}
