// Fixture: CL002 silenced from the line above.
#include <cstdlib>
int SeededLegacyPath() {
  // cad-lint: allow(CL002) fixture exercises line-above suppression
  std::srand(42);
  return 0;
}
