// Lexer regression fixture: C++14 digit separators must not start a bogus
// character literal — if they did, the push_back below would be swallowed
// (or misattributed); the finding must land on its real line.
#include <vector>

void Cl007DigitSepRoot(std::vector<int>* out) CAD_REALTIME {
  const int big = 1'000'000;
  const int mask = 0xFF'FF;
  out->push_back(big + mask);
}
