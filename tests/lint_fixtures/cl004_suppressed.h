// Fixture: CL004 suppressed with a reason.
#ifndef CAD_TESTS_LINT_FIXTURES_CL004_SUPPRESSED_H_
#define CAD_TESTS_LINT_FIXTURES_CL004_SUPPRESSED_H_

// cad-lint: allow(CL004) fixture keeps a legacy signature verbatim
Status LegacyLoad(const char* path);

#endif  // CAD_TESTS_LINT_FIXTURES_CL004_SUPPRESSED_H_
