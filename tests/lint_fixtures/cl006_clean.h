// Fixture: guarded header without using-directives — clean under CL006.
#ifndef CAD_TESTS_LINT_FIXTURES_CL006_CLEAN_H_
#define CAD_TESTS_LINT_FIXTURES_CL006_CLEAN_H_

#include <vector>

inline int Twice(int x) { return 2 * x; }

#endif  // CAD_TESTS_LINT_FIXTURES_CL006_CLEAN_H_
