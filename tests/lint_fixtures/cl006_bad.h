// Fixture: header with no include guard and a using-directive (CL006 x2).
#include <vector>

using namespace std;

inline int Twice(int x) { return 2 * x; }
