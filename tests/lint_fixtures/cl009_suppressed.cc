// CL009 suppressed fixture: the same ABBA inversion as cl009_bad.cc with a
// reasoned allow() at the acquisition the report anchors on (the witness
// edge of the cycle).
#include "common/mutex.h"

namespace fixture {

class SupLocks {
 public:
  void Forward() {
    cad::common::MutexLock first(a_);
    // cad-lint: allow(CL009) fixture: both orders are guarded by a state machine that never runs them concurrently
    cad::common::MutexLock second(b_);
  }
  void Backward() {
    cad::common::MutexLock first(b_);
    cad::common::MutexLock second(a_);
  }

 private:
  cad::common::Mutex a_;
  cad::common::Mutex b_;
};

}  // namespace fixture
