// Fixture: ad-hoc randomness (CL002).
#include <cstdlib>
int NoisySample() { return std::rand(); }
