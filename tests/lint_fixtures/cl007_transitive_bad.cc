// CL007 transitive fixture: the annotated root is clean in its own body; the
// allocation hides two calls down. The reach analysis must follow the chain
// and attribute the finding to the *primitive's* line, with the call path in
// the message.
#include <vector>

namespace cl007t {

void Cl007GrowBuffer(std::vector<int>* out) {
  out->push_back(1);
}

void Cl007Middle(std::vector<int>* out) {
  Cl007GrowBuffer(out);
}

void Cl007TransitiveRoot(std::vector<int>* out) CAD_REALTIME {
  Cl007Middle(out);
}

}  // namespace cl007t
