// Fixture: CL005 suppressed with a reason.
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_SUPPRESSED_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_SUPPRESSED_H_

#include <mutex>

class EventBuffer {
 private:
  std::mutex mu_;
  // cad-lint: allow(CL005) written once before threads start, never mutated
  int capacity_;
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_SUPPRESSED_H_
