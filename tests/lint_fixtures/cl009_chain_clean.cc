// CL009/CL010 regression fixture for member-call chains: `.lock()` /
// `->lock()` calls — including chains off temporaries like
// `h.lock().other()` and `weak.lock()->Use()` — are *calls*, not lock-type
// declarations, and must never open a held scope. If the parser
// misattributed one, the push_back below would flag CL010 (allocation
// while "held") and the reversed pair in the two helpers would fake a
// CL009 cycle.
#include <memory>
#include <vector>

namespace fixture {

struct Handle {
  Handle& lock() { return *this; }
  Handle& other() { return *this; }
  void Use() {}
};

void ChainsDoNotHold(Handle h, Handle* p, std::vector<int>* v) {
  h.lock();
  p->lock();
  h.lock().other();
  p->lock().other().Use();
  v->push_back(1);
}

void FakeForward(Handle a, Handle b) {
  a.lock();
  b.lock();
}

void FakeBackward(Handle a, Handle b) {
  b.lock();
  a.lock();
}

void WeakPtrIdiom(std::weak_ptr<Handle> weak) {
  if (auto strong = weak.lock()) strong->Use();
}

}  // namespace fixture
