// CL011 violating fixture, one shape per contract: (a) a GUARDED_BY member
// read without the guard held, (b) a call into a REQUIRES method without
// holding its lock, (c) a call into an EXCLUDES method while holding the
// lock it re-acquires (self-deadlock).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  int Read() const {
    return value_;
  }
  void Locked() REQUIRES(mu_) { value_ = 1; }
  void Unlocked() EXCLUDES(mu_) {
    cad::common::MutexLock lock(mu_);
    value_ = 2;
  }
  void CallsLocked() {
    Locked();
  }
  void CallsUnlocked() {
    cad::common::MutexLock lock(mu_);
    Unlocked();
  }

 private:
  mutable cad::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
