// Fixture: const method takes the lock in its body but its declaration has
// no EXCLUDES/REQUIRES annotation (CL005, method shape).
#ifndef CAD_TESTS_LINT_FIXTURES_CL005_METHOD_BAD_H_
#define CAD_TESTS_LINT_FIXTURES_CL005_METHOD_BAD_H_

#include <mutex>

class Telemetry {
 public:
  int samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_;
  }

 private:
  mutable std::mutex mu_;
  int samples_ GUARDED_BY(mu_) = 0;
};

#endif  // CAD_TESTS_LINT_FIXTURES_CL005_METHOD_BAD_H_
