// CL009 cross-file fixture, half two: locks g_two before g_one — the
// inversion of cl009_cross_one.cc. Each half is clean alone; the tree-wide
// run over both must report the cycle.
#include "common/mutex.h"

namespace fixture_cross {

extern cad::common::Mutex g_one;
extern cad::common::Mutex g_two;

void BackwardOrder() {
  cad::common::MutexLock first(g_two);
  cad::common::MutexLock second(g_one);
}

}  // namespace fixture_cross
