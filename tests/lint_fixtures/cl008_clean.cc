// CL008 clean fixture: annotations are compatible both across the direct
// call (equal contracts) and across the virtual override (the override
// restates the base's annotation).
void Cl008CleanCallee() CAD_REALTIME {}

void Cl008CleanCaller() CAD_REALTIME {
  Cl008CleanCallee();
}

class Cl008CleanBase {
 public:
  virtual void Cl008CleanTick() CAD_NONALLOCATING {}
};

class Cl008CleanDerived : public Cl008CleanBase {
 public:
  void Cl008CleanTick() CAD_NONALLOCATING override {}
};
