// CL008 suppressed fixture: the weaker-callee finding lands on the call
// site, so the reasoned allow() lives there.
void Cl008SupCallee() CAD_NONBLOCKING {}

void Cl008SupCaller() CAD_REALTIME {
  // cad-lint: allow(CL008) fixture: callee is alloc-free by audit, annotation upgrade tracked separately
  Cl008SupCallee();
}
