// CL011 suppressed fixture: an intentionally unsynchronized read of a
// guarded member with the mandatory reason.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class Counter {
 public:
  int ReadRacy() const {
    // cad-lint: allow(CL011) fixture: monitoring-only read; staleness is tolerated by design
    return value_;
  }
  void Write() {
    cad::common::MutexLock lock(mu_);
    value_ = 1;
  }

 private:
  mutable cad::common::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
