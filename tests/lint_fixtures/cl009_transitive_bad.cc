// CL009 violating fixture, transitive shape: each side acquires the second
// lock through a callee, so the cycle only appears once the call graph
// feeds the acquired-while-held analysis. The report must carry the call
// path that closes the cycle.
#include "common/mutex.h"

namespace fixture {

cad::common::Mutex g_first;
cad::common::Mutex g_second;

void TakeSecond() { cad::common::MutexLock lock(g_second); }

void ForwardPath() {
  cad::common::MutexLock lock(g_first);
  TakeSecond();
}

void TakeFirst() { cad::common::MutexLock lock(g_first); }

void BackwardPath() {
  cad::common::MutexLock lock(g_second);
  TakeFirst();
}

}  // namespace fixture
