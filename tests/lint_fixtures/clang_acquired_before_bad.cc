// Seeded lock-order inversion for the Clang thread-safety analysis — the
// compiler-side third of the deadlock contract (the other two: cad_lint
// CL009 flags the same shape statically in cl009_bad.cc, and the runtime
// tracker's InversionIsFatalWithBothChains unit test catches it
// dynamically). tools/verify_matrix.sh's `deadlock` stage compiles this
// file with `clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta`
// and asserts the ACQUIRED_AFTER contract produces a warning on the
// reversed acquisition below; it is not part of any CMake target and GCC
// never sees it (the annotations compile to no-ops there).
//
// Note this fixture is deliberately *clean* under cad_lint: only one
// function takes the pair, so there is no cycle — the inversion exists
// only relative to the declared ACQUIRED_AFTER hierarchy, which is
// exactly the layer this fixture exercises.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture_clang {

cad::common::Mutex g_first;
cad::common::Mutex g_second ACQUIRED_AFTER(g_first);

void Reversed() {
  cad::common::MutexLock outer(g_second);
  cad::common::MutexLock inner(g_first);  // warning: must be acquired before
}

void CallSites() { Reversed(); }

}  // namespace fixture_clang
