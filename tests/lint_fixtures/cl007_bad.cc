// CL007 violating fixture: strict realtime annotations forbid both effect
// classes — one root allocates directly (push_back), the other blocks
// directly (MutexLock). Both primitives sit in the root's own body, so the
// findings carry no call-path suffix.
#include <mutex>
#include <vector>

void Cl007BadAllocRoot(std::vector<int>* out) CAD_REALTIME {
  out->push_back(1);
}

void Cl007BadBlockRoot(std::mutex* mu) CAD_REALTIME {
  std::lock_guard<std::mutex> lock(*mu);
}
