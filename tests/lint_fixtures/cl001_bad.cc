// Fixture: side effect inside a check-macro condition (CL001).
void Consume(int samples) {
  CAD_CHECK(samples-- > 0, "consumes a sample even when checks are off");
}
