#include "core/co_appearance.h"

#include <gtest/gtest.h>

namespace cad::core {
namespace {

TEST(CoAppearanceNumbersTest, StableCommunitiesFullCoAppearance) {
  // Everyone stays in the same community: S_r(v) = group size - 1.
  const std::vector<int> prev = {0, 0, 0, 1, 1};
  const std::vector<int> cur = {0, 0, 0, 1, 1};
  const std::vector<int> s = CoAppearanceNumbers(prev, cur);
  EXPECT_EQ(s, (std::vector<int>{2, 2, 2, 1, 1}));
}

TEST(CoAppearanceNumbersTest, MoverLosesAllCoAppearances) {
  // Vertex 2 moves from community 0 to 1; nobody shares its (0, 1) pair.
  const std::vector<int> prev = {0, 0, 0, 1, 1};
  const std::vector<int> cur = {0, 0, 1, 1, 1};
  const std::vector<int> s = CoAppearanceNumbers(prev, cur);
  EXPECT_EQ(s[2], 0);
  // The two vertices remaining in 0 still co-appear with each other.
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 1);
  // 3, 4 stayed in 1 together.
  EXPECT_EQ(s[3], 1);
  EXPECT_EQ(s[4], 1);
}

TEST(CoAppearanceNumbersTest, LabelPermutationIrrelevant) {
  // Whole community relabeled (1 -> 7): co-appearance is about membership
  // stability, not label values.
  const std::vector<int> prev = {0, 0, 1, 1};
  const std::vector<int> cur = {3, 3, 7, 7};
  const std::vector<int> s = CoAppearanceNumbers(prev, cur);
  EXPECT_EQ(s, (std::vector<int>{1, 1, 1, 1}));
}

TEST(CoAppearanceNumbersTest, CommunitySplit) {
  // Community {0,1,2,3} splits into {0,1} and {2,3}.
  const std::vector<int> prev = {0, 0, 0, 0};
  const std::vector<int> cur = {0, 0, 1, 1};
  const std::vector<int> s = CoAppearanceNumbers(prev, cur);
  EXPECT_EQ(s, (std::vector<int>{1, 1, 1, 1}));
}

TEST(CoAppearanceNumbersTest, PairDefinitionMatchesDefinition4) {
  // Brute-force check of Definition 4/5 on a scrambled example.
  const std::vector<int> prev = {0, 1, 0, 1, 2, 2, 0};
  const std::vector<int> cur = {1, 1, 1, 0, 2, 2, 1};
  const std::vector<int> s = CoAppearanceNumbers(prev, cur);
  const int n = static_cast<int>(prev.size());
  for (int v = 0; v < n; ++v) {
    int expected = 0;
    for (int u = 0; u < n; ++u) {
      if (u == v) continue;
      if (prev[u] == prev[v] && cur[u] == cur[v]) ++expected;
    }
    EXPECT_EQ(s[v], expected) << "vertex " << v;
  }
}

TEST(CoAppearanceTrackerTest, RatioStartsAtOne) {
  CoAppearanceTracker tracker(5);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(tracker.ratio(v), 1.0);
  EXPECT_EQ(tracker.transitions(), 0);
}

TEST(CoAppearanceTrackerTest, StableNetworkKeepsRatioOne) {
  // Stable vertices sit at RC = 1 under community normalization regardless
  // of how many communities the graph has — the property that makes a fixed
  // theta meaningful at every scale (co_appearance.h header comment).
  CoAppearanceTracker tracker(6);
  const std::vector<int> comm = {0, 0, 0, 1, 1, 1};
  for (int r = 0; r < 5; ++r) tracker.Observe(comm, comm);
  for (int v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(tracker.ratio(v), 1.0);
}

TEST(CoAppearanceTrackerTest, RatioDropsForUnstableVertex) {
  CoAppearanceTracker tracker(4);
  const std::vector<int> a = {0, 0, 0, 1};
  const std::vector<int> b = {0, 0, 1, 1};
  tracker.Observe(a, a);  // stable round: everyone at ratio 1
  tracker.Observe(a, b);  // vertex 2 defects from community 0
  // Vertex 2: ratio_1 = 2/2 = 1, ratio_2 = 0/2 = 0 -> RC = 0.5.
  EXPECT_NEAR(tracker.ratio(2), 0.5, 1e-12);
  // Vertex 0: ratio_1 = 1, ratio_2 = 1/2 (kept only vertex 1) -> 0.75.
  EXPECT_NEAR(tracker.ratio(0), 0.75, 1e-12);
  // Vertex 3 was a singleton: nobody to co-appear with, ratio 0 both rounds
  // (the literal Eq. 3 behaviour for isolates).
  EXPECT_DOUBLE_EQ(tracker.ratio(3), 0.0);
}

TEST(CoAppearanceTrackerTest, GlobalNormalizationMatchesEquation3) {
  // Ablation mode: the literal Eq. 3 prefix average with (n-1) denominator.
  CoAppearanceOptions options;
  options.normalization = RcNormalization::kGlobal;
  options.window = 0;  // full history
  CoAppearanceTracker tracker(4, options);
  const std::vector<int> a = {0, 0, 0, 1};
  const std::vector<int> b = {0, 0, 1, 1};
  tracker.Observe(a, a);
  tracker.Observe(a, b);
  // Vertex 2: S_1 = 2, S_2 = 0 -> RC = (2 + 0) / (2 * 3) = 1/3.
  EXPECT_NEAR(tracker.ratio(2), 1.0 / 3.0, 1e-12);
  // Vertex 0: S_1 = 2, S_2 = 1 -> 0.5.
  EXPECT_NEAR(tracker.ratio(0), 0.5, 1e-12);
}

TEST(CoAppearanceTrackerTest, WindowForgetsOldHistory) {
  CoAppearanceOptions options;
  options.window = 4;
  CoAppearanceTracker tracker(4, options);
  const std::vector<int> stable = {0, 0, 0, 0};
  const std::vector<int> split = {0, 0, 1, 1};
  for (int r = 0; r < 100; ++r) tracker.Observe(stable, stable);
  EXPECT_DOUBLE_EQ(tracker.ratio(0), 1.0);
  // Defections displace the window within `window` rounds, not ~100.
  tracker.Observe(stable, split);
  tracker.Observe(split, split);
  tracker.Observe(split, split);
  tracker.Observe(split, split);
  // Vertex 0 stayed with vertex 1 throughout: ratio_i = 1/3 after the split
  // transition, then 1 within the new community.
  EXPECT_GT(tracker.ratio(0), 0.5);
  // A full window of the post-split regime: old perfect history is gone.
  EXPECT_LT(tracker.ratio(0), 1.0);
}

TEST(CoAppearanceTrackerTest, RatioAlwaysInUnitInterval) {
  CoAppearanceTracker tracker(6);
  std::vector<int> prev = {0, 1, 2, 0, 1, 2};
  for (int r = 0; r < 10; ++r) {
    std::vector<int> cur = prev;
    cur[r % 6] = (cur[r % 6] + 1) % 3;  // keep perturbing one vertex
    tracker.Observe(prev, cur);
    for (int v = 0; v < 6; ++v) {
      EXPECT_GE(tracker.ratio(v), 0.0);
      EXPECT_LE(tracker.ratio(v), 1.0);
    }
    prev = cur;
  }
}

TEST(CoAppearanceTrackerTest, ResetClearsHistory) {
  CoAppearanceTracker tracker(3);
  tracker.Observe({0, 0, 1}, {0, 1, 1});
  EXPECT_EQ(tracker.transitions(), 1);
  tracker.Reset();
  EXPECT_EQ(tracker.transitions(), 0);
  EXPECT_EQ(tracker.ratio(0), 1.0);
}

TEST(CoAppearanceTrackerTest, SingleVertexGraphIsPermanentIsolate) {
  // A lone vertex has nobody to co-appear with: ratio 0 after the first
  // transition (it becomes a permanent outlier, which only produces one
  // n_r transition ever — harmless, see co_appearance.h).
  CoAppearanceTracker tracker(1);
  EXPECT_EQ(tracker.ratio(0), 1.0);  // before any transition
  tracker.Observe({0}, {0});
  EXPECT_EQ(tracker.ratio(0), 0.0);
}

}  // namespace
}  // namespace cad::core
