#include "core/cad_options.h"

#include <gtest/gtest.h>

namespace cad::core {
namespace {

TEST(CadOptionsTest, DefaultsAreValid) {
  CadOptions options;
  EXPECT_TRUE(options.Validate(10000).ok());
}

TEST(CadOptionsTest, WindowAndStepConstraints) {
  CadOptions options;
  options.window = 0;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.window = 100;
  options.step = 0;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.step = 100;  // s must be strictly < w
  EXPECT_FALSE(options.Validate(1000).ok());
  options.step = 99;
  EXPECT_TRUE(options.Validate(1000).ok());
  EXPECT_FALSE(options.Validate(99).ok());  // window > length
}

TEST(CadOptionsTest, ThresholdRanges) {
  CadOptions options;
  options.tau = -0.1;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.tau = 1.1;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.tau = 0.5;
  options.theta = 1.5;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.theta = 0.9;
  options.eta = 0.0;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.eta = 3.0;
  options.k = 0;
  EXPECT_FALSE(options.Validate(1000).ok());
}

TEST(CadOptionsTest, RcWindowAndFixedXi) {
  CadOptions options;
  options.rc_window = -1;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.rc_window = 0;  // full history is legal
  EXPECT_TRUE(options.Validate(1000).ok());
  options.use_sigma_rule = false;
  options.fixed_xi = 0;
  EXPECT_FALSE(options.Validate(1000).ok());
  options.fixed_xi = 1;
  EXPECT_TRUE(options.Validate(1000).ok());
}

TEST(CadOptionsTest, EffectiveBurnInAuto) {
  CadOptions options;
  options.rc_window = 8;
  options.burn_in_rounds = -1;
  EXPECT_EQ(options.EffectiveBurnIn(), 8);
  options.rc_window = 1;
  EXPECT_EQ(options.EffectiveBurnIn(), 2);  // floor of 2
  options.burn_in_rounds = 5;  // explicit override wins
  EXPECT_EQ(options.EffectiveBurnIn(), 5);
  options.burn_in_rounds = 0;  // explicit zero disables burn-in
  EXPECT_EQ(options.EffectiveBurnIn(), 0);
}

TEST(CadOptionsTest, EffectiveAttributionCutAuto) {
  CadOptions options;
  options.theta = 0.8;
  options.attribution_rc_cut = -1.0;
  EXPECT_DOUBLE_EQ(options.EffectiveAttributionCut(), 0.6);
  options.attribution_rc_cut = 0.25;
  EXPECT_DOUBLE_EQ(options.EffectiveAttributionCut(), 0.25);
}

}  // namespace
}  // namespace cad::core
