// Batch-vs-streaming equivalence: the ground-truth gate of the shared
// DetectionEngine. CadDetector::Detect (Algorithm 2) and StreamingCad
// (Section IV-F) are the same round loop driven two ways, so over the same
// series they must produce *byte-identical* anomalies, n_r sequences and
// mu/sigma trajectories — not merely approximately equal ones. Doubles are
// compared at the bit level: any FP-order divergence between the two drivers
// is a refactor bug, not rounding noise.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cad_detector.h"
#include "core/streaming.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

// Bit-level double equality (EXPECT_EQ would conflate -0.0 and 0.0).
::testing::AssertionResult BitEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ at the bit level";
}

struct StreamRun {
  std::vector<int> n_variations;
  std::vector<bool> abnormal;
  std::vector<double> mu;     // statistics used for each round's decision
  std::vector<double> sigma;
  std::vector<std::vector<int>> entered;
  std::vector<Anomaly> anomalies;
  bool open_at_end = false;
};

StreamRun RunStreaming(const ts::MultivariateSeries& train,
                       const ts::MultivariateSeries& test,
                       const CadOptions& options) {
  StreamRun run;
  StreamingCad streaming(test.n_sensors(), options);
  EXPECT_TRUE(streaming.WarmUp(train).ok());
  std::vector<double> sample(test.n_sensors());
  for (int t = 0; t < test.length(); ++t) {
    for (int i = 0; i < test.n_sensors(); ++i) sample[i] = test.value(i, t);
    auto event = streaming.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;
    run.n_variations.push_back(event->n_variations);
    run.abnormal.push_back(event->abnormal);
    run.mu.push_back(event->mu);
    run.sigma.push_back(event->sigma);
    run.entered.push_back(event->entered);
  }
  run.anomalies = streaming.anomalies();
  run.open_at_end = streaming.anomaly_open();
  return run;
}

void ExpectAnomaliesIdentical(const Anomaly& batch, const Anomaly& stream,
                              size_t index) {
  SCOPED_TRACE("anomaly " + std::to_string(index));
  EXPECT_EQ(batch.sensors, stream.sensors);
  EXPECT_EQ(batch.first_round, stream.first_round);
  EXPECT_EQ(batch.last_round, stream.last_round);
  EXPECT_EQ(batch.start_time, stream.start_time);
  EXPECT_EQ(batch.end_time, stream.end_time);
  EXPECT_EQ(batch.detection_time, stream.detection_time);
}

void ExpectEquivalent(const ts::MultivariateSeries& train,
                      const ts::MultivariateSeries& test,
                      const CadOptions& options) {
  CadDetector batch(options);
  const DetectionReport report = batch.Detect(test, &train).ValueOrDie();
  const StreamRun stream = RunStreaming(train, test, options);

  // Round-for-round: n_r, the abnormal decision, and the exact mu/sigma the
  // decision was made against.
  ASSERT_EQ(stream.n_variations.size(), report.rounds.size());
  for (size_t r = 0; r < report.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    EXPECT_EQ(stream.n_variations[r], report.rounds[r].n_variations);
    EXPECT_EQ(stream.abnormal[r], report.rounds[r].abnormal);
    EXPECT_TRUE(BitEqual(stream.mu[r], report.rounds[r].mu));
    EXPECT_TRUE(BitEqual(stream.sigma[r], report.rounds[r].sigma));
  }

  // Anomaly-for-anomaly. The stream cannot close an anomaly still open when
  // the data ends; the batch driver flushes it, so the stream may trail by
  // exactly that one.
  const size_t closed = stream.anomalies.size();
  ASSERT_EQ(closed + (stream.open_at_end ? 1 : 0), report.anomalies.size());
  for (size_t i = 0; i < closed; ++i) {
    ExpectAnomaliesIdentical(report.anomalies[i], stream.anomalies[i], i);
  }
}

CadOptions BaseOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

TEST(EngineEquivalenceTest, DefaultRule) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  ExpectEquivalent(scenario.train, scenario.test, BaseOptions());
}

TEST(EngineEquivalenceTest, MinSigmaFloor) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = BaseOptions();
  options.min_sigma = 0.25;
  ExpectEquivalent(scenario.train, scenario.test, options);
}

TEST(EngineEquivalenceTest, FixedXiRule) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = BaseOptions();
  options.use_sigma_rule = false;
  options.fixed_xi = 2;
  ExpectEquivalent(scenario.train, scenario.test, options);
}

TEST(EngineEquivalenceTest, GlobalNormalizationAblation) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = BaseOptions();
  options.rc_global_normalization = true;
  options.theta = 0.25;
  ExpectEquivalent(scenario.train, scenario.test, options);
}

TEST(EngineEquivalenceTest, LargerNetworkMoreCommunities) {
  const testing::SmallScenario scenario =
      testing::MakeSmallScenario(/*n_sensors=*/24, /*communities=*/4,
                                 /*train_len=*/700, /*test_len=*/1000,
                                 /*seed=*/1234);
  CadOptions options = BaseOptions();
  options.k = 5;
  ExpectEquivalent(scenario.train, scenario.test, options);
}

}  // namespace
}  // namespace cad::core
