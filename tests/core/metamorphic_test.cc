// Metamorphic properties of CAD: transformations of the input that must not
// change what is detected.
//
//  1. Per-sensor positive affine transforms (unit changes, offsets): Pearson
//     correlation is invariant, so the whole pipeline must produce the same
//     detections.
//  2. Sensor permutation (relabeling the wiring loom): anomalies must be the
//     same up to index remapping.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/cad_detector.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

CadOptions ScenarioOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  return options;
}

ts::MultivariateSeries AffineTransform(const ts::MultivariateSeries& series,
                                       const std::vector<double>& scale,
                                       const std::vector<double>& offset) {
  ts::MultivariateSeries out = series;
  for (int i = 0; i < series.n_sensors(); ++i) {
    auto row = out.mutable_sensor(i);
    for (double& v : row) v = scale[i] * v + offset[i];
  }
  return out;
}

TEST(MetamorphicTest, PositiveAffineTransformPreservesDetections) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  Rng rng(404);
  std::vector<double> scale(scenario.test.n_sensors());
  std::vector<double> offset(scenario.test.n_sensors());
  for (int i = 0; i < scenario.test.n_sensors(); ++i) {
    scale[i] = rng.Uniform(0.5, 20.0);   // e.g. Celsius -> Fahrenheit-ish
    offset[i] = rng.Uniform(-100.0, 100.0);
  }
  const ts::MultivariateSeries train2 =
      AffineTransform(scenario.train, scale, offset);
  const ts::MultivariateSeries test2 =
      AffineTransform(scenario.test, scale, offset);

  CadDetector detector(ScenarioOptions());
  const DetectionReport original =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  const DetectionReport transformed =
      detector.Detect(test2, &train2).ValueOrDie();

  // Correlations are affine-invariant up to float rounding; any residual
  // difference would have to flip a community tie, which the scenario's
  // clear structure does not allow.
  EXPECT_EQ(original.point_labels, transformed.point_labels);
  ASSERT_EQ(original.anomalies.size(), transformed.anomalies.size());
  for (size_t i = 0; i < original.anomalies.size(); ++i) {
    EXPECT_EQ(original.anomalies[i].sensors, transformed.anomalies[i].sensors);
    EXPECT_EQ(original.anomalies[i].first_round,
              transformed.anomalies[i].first_round);
  }
}

TEST(MetamorphicTest, SignFlipPreservesDetections) {
  // |corr| drives the TSG, so inverting a sensor's polarity changes nothing.
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  std::vector<double> scale(scenario.test.n_sensors(), 1.0);
  std::vector<double> offset(scenario.test.n_sensors(), 0.0);
  scale[0] = -1.0;
  scale[5] = -1.0;
  const ts::MultivariateSeries train2 =
      AffineTransform(scenario.train, scale, offset);
  const ts::MultivariateSeries test2 =
      AffineTransform(scenario.test, scale, offset);

  CadDetector detector(ScenarioOptions());
  const DetectionReport original =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  const DetectionReport flipped =
      detector.Detect(test2, &train2).ValueOrDie();
  EXPECT_EQ(original.point_labels, flipped.point_labels);
}

TEST(MetamorphicTest, SensorPermutationRemapsAnomalies) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const int n = scenario.test.n_sensors();

  // permutation[i] = new index of original sensor i.
  Rng rng(405);
  std::vector<int> permutation(n);
  for (int i = 0; i < n; ++i) permutation[i] = i;
  rng.Shuffle(&permutation);

  auto permute = [&](const ts::MultivariateSeries& series) {
    ts::MultivariateSeries out(n, series.length());
    for (int i = 0; i < n; ++i) {
      auto src = series.sensor(i);
      auto dst = out.mutable_sensor(permutation[i]);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    return out;
  };
  const ts::MultivariateSeries train2 = permute(scenario.train);
  const ts::MultivariateSeries test2 = permute(scenario.test);

  CadDetector detector(ScenarioOptions());
  const DetectionReport original =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  const DetectionReport permuted = detector.Detect(test2, &train2).ValueOrDie();

  // Abnormal time is index-free: the label series must be identical.
  EXPECT_EQ(original.point_labels, permuted.point_labels);
  // Every anomaly's sensor set maps through the permutation.
  ASSERT_EQ(original.anomalies.size(), permuted.anomalies.size());
  for (size_t a = 0; a < original.anomalies.size(); ++a) {
    std::vector<int> mapped;
    for (int v : original.anomalies[a].sensors) mapped.push_back(permutation[v]);
    std::sort(mapped.begin(), mapped.end());
    EXPECT_EQ(mapped, permuted.anomalies[a].sensors) << "anomaly " << a;
  }
}

}  // namespace
}  // namespace cad::core
