#include "core/streaming.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cad_detector.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

CadOptions ScenarioOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

std::vector<double> SampleAt(const ts::MultivariateSeries& series, int t) {
  std::vector<double> sample(series.n_sensors());
  for (int i = 0; i < series.n_sensors(); ++i) sample[i] = series.value(i, t);
  return sample;
}

TEST(StreamingCadTest, EventsFireOnRoundBoundaries) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const CadOptions options = ScenarioOptions();
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  int events = 0;
  for (int t = 0; t < scenario.test.length(); ++t) {
    auto event = streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
    if (event.has_value()) {
      ++events;
      EXPECT_EQ(event->time_index, t);
      // Rounds fire exactly when (t+1 - window) % step == 0 past the window.
      EXPECT_GE(t + 1, options.window);
      EXPECT_EQ((t + 1 - options.window) % options.step, 0);
    }
  }
  EXPECT_EQ(events, (scenario.test.length() - options.window) / options.step + 1);
  EXPECT_EQ(streaming.rounds_completed(), events);
}

TEST(StreamingCadTest, MatchesBatchRoundStatistics) {
  // The streaming path must produce the identical n_r sequence as the batch
  // detector (paper Section IV-F: the streaming extension repeats Algorithm
  // 2's loop body).
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const CadOptions options = ScenarioOptions();

  CadDetector batch(options);
  const DetectionReport report =
      batch.Detect(scenario.test, &scenario.train).ValueOrDie();

  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  std::vector<int> streamed_variations;
  std::vector<bool> streamed_abnormal;
  for (int t = 0; t < scenario.test.length(); ++t) {
    auto event = streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
    if (event.has_value()) {
      streamed_variations.push_back(event->n_variations);
      streamed_abnormal.push_back(event->abnormal);
    }
  }

  ASSERT_EQ(streamed_variations.size(), report.rounds.size());
  for (size_t r = 0; r < report.rounds.size(); ++r) {
    EXPECT_EQ(streamed_variations[r], report.rounds[r].n_variations)
        << "round " << r;
    EXPECT_EQ(streamed_abnormal[r], report.rounds[r].abnormal) << "round " << r;
  }
}

TEST(StreamingCadTest, AnomaliesMatchBatch) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const CadOptions options = ScenarioOptions();

  CadDetector batch(options);
  const DetectionReport report =
      batch.Detect(scenario.test, &scenario.train).ValueOrDie();

  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  for (int t = 0; t < scenario.test.length(); ++t) {
    streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
  }
  // Any anomaly still open at stream end is not yet closed; batch closes it.
  const std::vector<Anomaly> stream_anomalies = streaming.anomalies();
  const size_t closed = stream_anomalies.size();
  ASSERT_LE(closed, report.anomalies.size());
  for (size_t i = 0; i < closed; ++i) {
    EXPECT_EQ(stream_anomalies[i].sensors, report.anomalies[i].sensors);
    EXPECT_EQ(stream_anomalies[i].first_round, report.anomalies[i].first_round);
    EXPECT_EQ(stream_anomalies[i].last_round, report.anomalies[i].last_round);
  }
  EXPECT_EQ(closed + (streaming.anomaly_open() ? 1 : 0),
            report.anomalies.size());
}

TEST(StreamingCadTest, WarmUpAfterPushFails) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  StreamingCad streaming(scenario.test.n_sensors(), ScenarioOptions());
  streaming.Push(SampleAt(scenario.test, 0)).ValueOrDie();
  EXPECT_EQ(streaming.WarmUp(scenario.train).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamingCadTest, RejectsWrongSampleWidth) {
  StreamingCad streaming(4, ScenarioOptions());
  const std::vector<double> bad(3, 0.0);
  EXPECT_FALSE(streaming.Push(bad).ok());
}

TEST(StreamingCadTest, MuSigmaSharpenOverStream) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  StreamingCad streaming(scenario.test.n_sensors(), ScenarioOptions());
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  const double mu_initial = streaming.mu();
  int rounds = 0;
  for (int t = 0; t < scenario.test.length() && rounds < 30; ++t) {
    auto event = streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
    if (event.has_value()) ++rounds;
  }
  // Statistics keep accumulating (count grows), values stay finite.
  EXPECT_GE(streaming.mu(), 0.0);
  EXPECT_GE(streaming.sigma(), 0.0);
  (void)mu_initial;
}

TEST(StreamingCadTest, ExplainAnswersForLiveRounds) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  StreamingCad streaming(scenario.test.n_sensors(), ScenarioOptions());
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  int last_round = -1;
  int last_n_variations = -1;
  for (int t = 0; t < scenario.test.length(); ++t) {
    auto event = streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
    if (!event.has_value()) continue;
    last_round = event->round;
    last_n_variations = event->n_variations;
  }
  ASSERT_GE(last_round, 1);

  const auto provenance = streaming.Explain(last_round);
  ASSERT_TRUE(provenance.has_value());
  EXPECT_EQ(provenance->record.round, last_round);
  EXPECT_EQ(provenance->record.n_variations, last_n_variations);
  EXPECT_TRUE(provenance->has_prev);
  EXPECT_EQ(provenance->prev_round, last_round - 1);

  EXPECT_FALSE(streaming.Explain(last_round + 1).has_value());

  // The JSONL dump holds the ring's rounds, one object per line.
  const std::string jsonl = streaming.DumpFlightLogJsonl();
  int lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, streaming.Health().flight_ring_size);
  EXPECT_NE(jsonl.find("\"round\":" + std::to_string(last_round)),
            std::string::npos);
}

TEST(StreamingCadTest, ExplainIsEmptyWhenRecordingIsDisabled) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = ScenarioOptions();
  options.flight_log_capacity = 0;
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());
  for (int t = 0; t < 200; ++t) {
    streaming.Push(SampleAt(scenario.test, t)).ValueOrDie();
  }
  EXPECT_GT(streaming.rounds_completed(), 0);
  EXPECT_FALSE(streaming.Explain(0).has_value());
  EXPECT_TRUE(streaming.DumpFlightLogJsonl().empty());
  const StreamHealth health = streaming.Health();
  EXPECT_EQ(health.flight_ring_capacity, 0);
  EXPECT_EQ(health.flight_ring_size, 0);
}

}  // namespace
}  // namespace cad::core
