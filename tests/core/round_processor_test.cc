#include "core/round_processor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

// Two correlated blocks of sensors driven by independent factors.
ts::MultivariateSeries TwoBlockSeries(int length, uint64_t seed,
                                      int block = 4) {
  Rng rng(seed);
  ts::MultivariateSeries series(2 * block, length);
  double f1 = 0.0, f2 = 0.0;
  for (int t = 0; t < length; ++t) {
    f1 = 0.9 * f1 + 0.45 * rng.Gaussian();
    f2 = 0.9 * f2 + 0.45 * rng.Gaussian();
    for (int i = 0; i < block; ++i) {
      series.set_value(i, t, f1 + 0.05 * rng.Gaussian());
      series.set_value(block + i, t, f2 + 0.05 * rng.Gaussian());
    }
  }
  return series;
}

CadOptions SmallOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

TEST(RoundProcessorTest, FirstRoundHasNoOutliersOrVariations) {
  const ts::MultivariateSeries series = TwoBlockSeries(200, 1);
  RoundProcessor processor(series.n_sensors(), SmallOptions());
  const RoundOutput out = processor.ProcessWindow(series, 0);
  EXPECT_TRUE(out.outliers.empty());  // RC is 1 before any transition
  EXPECT_EQ(out.n_variations, 0);
  EXPECT_GT(out.n_communities, 0);
  EXPECT_GT(out.n_edges, 0);
}

TEST(RoundProcessorTest, StableDataProducesNoVariations) {
  const ts::MultivariateSeries series = TwoBlockSeries(400, 2);
  RoundProcessor processor(series.n_sensors(), SmallOptions());
  for (int r = 0; r < 20; ++r) {
    const RoundOutput out = processor.ProcessWindow(series, r * 4);
    EXPECT_EQ(out.n_variations, 0) << "round " << r;
    EXPECT_TRUE(out.outliers.empty()) << "round " << r;
  }
  EXPECT_EQ(processor.rounds_processed(), 20);
}

TEST(RoundProcessorTest, DetectsCommunityStructure) {
  const ts::MultivariateSeries series = TwoBlockSeries(200, 3);
  RoundProcessor processor(series.n_sensors(), SmallOptions());
  processor.ProcessWindow(series, 0);
  const std::vector<int>& communities = processor.last_communities();
  ASSERT_EQ(communities.size(), 8u);
  // Block 0 sensors share a community; block 1 sensors share another.
  for (int i = 1; i < 4; ++i) EXPECT_EQ(communities[i], communities[0]);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(communities[i], communities[4]);
  EXPECT_NE(communities[0], communities[4]);
}

TEST(RoundProcessorTest, OutliersAppearAfterCorrelationBreak) {
  // Feed stable rounds, then rounds where half of block 0 decorrelates.
  testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = SmallOptions();
  RoundProcessor processor(scenario.test.n_sensors(), options);

  bool saw_variation_in_anomaly = false;
  for (int start = 0; start + options.window <= scenario.test.length();
       start += options.step) {
    const RoundOutput out = processor.ProcessWindow(scenario.test, start);
    const int end = start + options.window;
    const bool overlaps_anomaly =
        start < scenario.anomaly_end && end > scenario.anomaly_start;
    if (overlaps_anomaly && out.n_variations > 0) {
      saw_variation_in_anomaly = true;
    }
  }
  EXPECT_TRUE(saw_variation_in_anomaly);
}

TEST(RoundProcessorTest, ResetRestoresInitialState) {
  const ts::MultivariateSeries series = TwoBlockSeries(200, 4);
  RoundProcessor processor(series.n_sensors(), SmallOptions());
  processor.ProcessWindow(series, 0);
  processor.ProcessWindow(series, 4);
  processor.Reset();
  EXPECT_EQ(processor.rounds_processed(), 0);
  const RoundOutput out = processor.ProcessWindow(series, 0);
  EXPECT_TRUE(out.outliers.empty());
  EXPECT_EQ(out.n_variations, 0);
}

TEST(RoundProcessorTest, DeterministicAcrossInstances) {
  testing::SmallScenario scenario = testing::MakeSmallScenario();
  const CadOptions options = SmallOptions();
  RoundProcessor a(scenario.test.n_sensors(), options);
  RoundProcessor b(scenario.test.n_sensors(), options);
  for (int start = 0; start + options.window <= scenario.test.length();
       start += options.step * 3) {
    const RoundOutput oa = a.ProcessWindow(scenario.test, start);
    const RoundOutput ob = b.ProcessWindow(scenario.test, start);
    EXPECT_EQ(oa.outliers, ob.outliers);
    EXPECT_EQ(oa.n_variations, ob.n_variations);
    EXPECT_EQ(oa.n_communities, ob.n_communities);
    EXPECT_EQ(oa.n_edges, ob.n_edges);
  }
}

}  // namespace
}  // namespace cad::core
