#include "core/report_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cad::core {
namespace {

DetectionReport MakeReport() {
  DetectionReport report;
  Anomaly anomaly;
  anomaly.sensors = {1, 4, 7};
  anomaly.first_round = 10;
  anomaly.last_round = 12;
  anomaly.start_time = 100;
  anomaly.end_time = 160;
  anomaly.detection_time = 139;
  report.anomalies.push_back(anomaly);
  RoundTrace trace;
  trace.round = 0;
  trace.n_variations = 2;
  trace.mu = 0.25;
  trace.sigma = 0.5;
  trace.abnormal = true;
  report.rounds.push_back(trace);
  report.point_scores = {0.0, 0.5, 1.0};
  report.warmup_seconds = 1.5;
  report.detect_seconds = 2.25;
  report.seconds_per_round = 0.001;
  return report;
}

TEST(ReportIoTest, MinimalJsonShape) {
  const std::string json = ReportToJson(MakeReport());
  EXPECT_NE(json.find("\"anomalies\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"start\":100"), std::string::npos);
  EXPECT_NE(json.find("\"end\":160"), std::string::npos);
  EXPECT_NE(json.find("\"detection_time\":139"), std::string::npos);
  EXPECT_NE(json.find("\"sensors\":[1,4,7]"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_processed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warmup_seconds\":1.5"), std::string::npos);
  // Optional sections absent by default.
  EXPECT_EQ(json.find("\"rounds\":["), std::string::npos);
  EXPECT_EQ(json.find("\"scores\":["), std::string::npos);
  // Balanced braces / brackets (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportIoTest, OptionalSections) {
  ReportJsonOptions options;
  options.include_rounds = true;
  options.include_scores = true;
  const std::string json = ReportToJson(MakeReport(), options);
  EXPECT_NE(json.find("\"rounds\":[{\"round\":0"), std::string::npos);
  EXPECT_NE(json.find("\"abnormal\":true"), std::string::npos);
  EXPECT_NE(json.find("\"scores\":[0,0.5,1]"), std::string::npos);
}

TEST(ReportIoTest, EmptyReport) {
  const std::string json = ReportToJson(DetectionReport{});
  EXPECT_NE(json.find("\"anomalies\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"rounds_processed\":0"), std::string::npos);
}

TEST(ReportIoTest, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/cad_report.json";
  ASSERT_TRUE(WriteReportJson(MakeReport(), path).ok());
  std::ifstream file(path);
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_NE(content.str().find("\"sensors\":[1,4,7]"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportIoTest, WriteToBadPathFails) {
  EXPECT_EQ(WriteReportJson(MakeReport(), "/no/such/dir/report.json").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace cad::core
