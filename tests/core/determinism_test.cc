// Byte-determinism contract for everything the pipeline serializes.
//
// The cad_lint CL003 rule (no iteration over unordered containers in
// report/serialization paths) and the sorted-key fixes in louvain.cc,
// round_processor.cc and validators.cc exist so that two identical runs
// produce *byte-identical* artifacts — not merely numerically-close ones.
// These tests pin that contract: report JSON, metric snapshots in both
// exposition formats, and the parallel ensemble's fused scores must not
// depend on hash iteration order, FP summation order, or thread scheduling.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/hbos.h"
#include "baselines/parallel_ensemble.h"
#include "baselines/pca_detector.h"
#include "core/cad_detector.h"
#include "core/report_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

CadOptions ScenarioOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

struct RunArtifacts {
  std::string report_json;
  std::string metrics_json;
  std::string metrics_prom;
};

RunArtifacts RunPipelineOnce() {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  CadOptions options = ScenarioOptions();
  options.metrics_registry = &registry;
  CadDetector detector(options);
  DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();

  // Wall-clock measurements are the one legitimately nondeterministic part
  // of a report; zero them so the comparison pins everything else —
  // anomaly spans, sensor attribution, per-round traces, scores — to the
  // byte.
  report.warmup_seconds = 0.0;
  report.detect_seconds = 0.0;
  report.seconds_per_round = 0.0;
  report.round_latency = RoundLatencySummary{};

  const ReportJsonOptions json_options{.include_rounds = true,
                                       .include_scores = true};
  const obs::Snapshot snapshot = registry.TakeSnapshot();
  return RunArtifacts{ReportToJson(report, json_options),
                      obs::SnapshotToJson(snapshot),
                      obs::ToPrometheusText(snapshot)};
}

TEST(DeterminismTest, ReportJsonIsByteIdenticalAcrossRuns) {
  const RunArtifacts first = RunPipelineOnce();
  const RunArtifacts second = RunPipelineOnce();
  EXPECT_EQ(first.report_json, second.report_json);
}

// Wall-clock histograms (cad_*_seconds) legitimately differ between runs;
// every other exported line — counters, gauges, and histogram observation
// counts — must be byte-identical.
TEST(DeterminismTest, StructuralMetricLinesAreByteIdenticalAcrossRuns) {
  const auto structural_lines = [](const std::string& prom) {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < prom.size()) {
      size_t end = prom.find('\n', start);
      if (end == std::string::npos) end = prom.size();
      const std::string line = prom.substr(start, end - start);
      if (line.find("seconds") == std::string::npos) lines.push_back(line);
      start = end + 1;
    }
    return lines;
  };
  const RunArtifacts first = RunPipelineOnce();
  const RunArtifacts second = RunPipelineOnce();
  EXPECT_EQ(structural_lines(first.metrics_prom),
            structural_lines(second.metrics_prom));
}

// Counters and gauges carry no wall-clock component, so a snapshot
// restricted to them serializes identically.
TEST(DeterminismTest, CounterAndGaugeExportIsByteIdentical) {
  const auto run = [] {
    obs::Registry registry;
    registry.counter("cad_rounds_total", "rounds").Increment(7);
    registry.counter("cad_outlier_variations_total", "variations")
        .Increment(3);
    registry.gauge("cad_communities", "communities").Set(5);
    registry.gauge("cad_outliers", "outliers").Set(2);
    const obs::Snapshot snapshot = registry.TakeSnapshot();
    return std::make_pair(obs::SnapshotToJson(snapshot),
                          obs::ToPrometheusText(snapshot));
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

// The parallel ensemble scores members on worker threads but fuses
// sequentially in member order; thread scheduling must never leak into the
// fused scores.
TEST(DeterminismTest, ParallelEnsembleScoresAreExactlyReproducible) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const auto run = [&] {
    std::vector<std::unique_ptr<baselines::Detector>> members;
    members.push_back(std::make_unique<baselines::Hbos>());
    members.push_back(std::make_unique<baselines::PcaDetector>());
    baselines::ParallelEnsemble ensemble(std::move(members),
                                         baselines::ScoreFusion::kMean);
    EXPECT_TRUE(ensemble.Fit(scenario.train).ok());
    return ensemble.Score(scenario.test).ValueOrDie();
  };
  const std::vector<double> first = run();
  const std::vector<double> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    // Bitwise equality, not tolerance: fusion order is pinned.
    EXPECT_EQ(first[i], second[i]) << "score diverged at index " << i;
  }
}

}  // namespace
}  // namespace cad::core
