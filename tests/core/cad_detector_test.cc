#include "core/cad_detector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/synthetic.h"

namespace cad::core {
namespace {

CadOptions ScenarioOptions() {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

TEST(CadDetectorTest, DetectsInjectedCorrelationBreak) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();

  ASSERT_FALSE(report.anomalies.empty());
  // At least one detected anomaly overlaps the injected span.
  bool overlap = false;
  for (const Anomaly& anomaly : report.anomalies) {
    if (anomaly.start_time < scenario.anomaly_end &&
        anomaly.end_time > scenario.anomaly_start) {
      overlap = true;
    }
  }
  EXPECT_TRUE(overlap);
}

TEST(CadDetectorTest, IdentifiesAffectedSensors) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();

  // Most flagged sensors should be genuinely abnormal ones.
  int flagged = 0, correct = 0;
  for (int v = 0; v < scenario.test.n_sensors(); ++v) {
    if (!report.sensor_labels[v]) continue;
    ++flagged;
    if (std::find(scenario.abnormal_sensors.begin(),
                  scenario.abnormal_sensors.end(),
                  v) != scenario.abnormal_sensors.end()) {
      ++correct;
    }
  }
  ASSERT_GT(flagged, 0);
  EXPECT_GE(static_cast<double>(correct) / flagged, 0.5);
}

TEST(CadDetectorTest, CleanDataRaisesNoAlarm) {
  // Test on the (anomaly-free) training split itself.
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.train, &scenario.train).ValueOrDie();
  EXPECT_TRUE(report.anomalies.empty());
}

TEST(CadDetectorTest, DeterministicAcrossRuns) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport a =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  const DetectionReport b =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  EXPECT_EQ(a.point_labels, b.point_labels);
  EXPECT_EQ(a.point_scores, b.point_scores);
  ASSERT_EQ(a.anomalies.size(), b.anomalies.size());
  for (size_t i = 0; i < a.anomalies.size(); ++i) {
    EXPECT_EQ(a.anomalies[i].sensors, b.anomalies[i].sensors);
    EXPECT_EQ(a.anomalies[i].first_round, b.anomalies[i].first_round);
  }
}

TEST(CadDetectorTest, ScoreHalfThresholdMatchesLabels) {
  // Thresholding the score series at 0.5 must reproduce point_labels: the
  // score is calibrated so 0.5 == the eta-sigma rule.
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  for (int t = 0; t < scenario.test.length(); ++t) {
    EXPECT_EQ(report.point_scores[t] >= 0.5, report.point_labels[t] == 1)
        << "t=" << t;
  }
}

TEST(CadDetectorTest, ScoresAreInUnitInterval) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  for (double s : report.point_scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(CadDetectorTest, WorksWithoutWarmup) {
  // SMD protocol: no historical split at all.
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const Result<DetectionReport> report =
      detector.Detect(scenario.test, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().warmup_seconds, 0.0);
  EXPECT_EQ(report.value().rounds.size(),
            static_cast<size_t>((scenario.test.length() - 40) / 4 + 1));
}

TEST(CadDetectorTest, RoundTraceIsComplete) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  ASSERT_FALSE(report.rounds.empty());
  for (size_t r = 0; r < report.rounds.size(); ++r) {
    EXPECT_EQ(report.rounds[r].round, static_cast<int>(r));
    EXPECT_EQ(report.rounds[r].start_time, static_cast<int>(r) * 4);
    EXPECT_GE(report.rounds[r].n_variations, 0);
    EXPECT_GE(report.rounds[r].sigma, 0.0);
  }
  // Round 0 can never be abnormal (no preceding round).
  EXPECT_FALSE(report.rounds[0].abnormal);
}

TEST(CadDetectorTest, AnomalySensorsSortedAndUnique) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadDetector detector(ScenarioOptions());
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  for (const Anomaly& anomaly : report.anomalies) {
    EXPECT_TRUE(std::is_sorted(anomaly.sensors.begin(), anomaly.sensors.end()));
    EXPECT_TRUE(std::adjacent_find(anomaly.sensors.begin(),
                                   anomaly.sensors.end()) ==
                anomaly.sensors.end());
    EXPECT_LE(anomaly.first_round, anomaly.last_round);
    EXPECT_LT(anomaly.start_time, anomaly.end_time);
    EXPECT_GE(anomaly.detection_time, anomaly.start_time);
  }
}

TEST(CadDetectorTest, ValidationRejectsBadOptions) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = ScenarioOptions();
  options.step = options.window;  // s must be < w
  CadDetector detector(options);
  EXPECT_FALSE(detector.Detect(scenario.test, &scenario.train).ok());

  options = ScenarioOptions();
  options.window = scenario.test.length() + 1;
  EXPECT_FALSE(
      CadDetector(options).Detect(scenario.test, &scenario.train).ok());

  options = ScenarioOptions();
  options.tau = 1.5;
  EXPECT_FALSE(
      CadDetector(options).Detect(scenario.test, &scenario.train).ok());
}

TEST(CadDetectorTest, RejectsSensorCountMismatch) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  const ts::MultivariateSeries other(scenario.test.n_sensors() + 1, 600);
  CadDetector detector(ScenarioOptions());
  EXPECT_FALSE(detector.Detect(scenario.test, &other).ok());
}

TEST(CadDetectorTest, FixedXiAblationRuns) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  CadOptions options = ScenarioOptions();
  options.use_sigma_rule = false;
  options.fixed_xi = 2;
  CadDetector detector(options);
  const Result<DetectionReport> report =
      detector.Detect(scenario.test, &scenario.train);
  ASSERT_TRUE(report.ok());
  // The raw-count rule also finds the break (it is strong).
  EXPECT_FALSE(report.value().anomalies.empty());
}

}  // namespace
}  // namespace cad::core
