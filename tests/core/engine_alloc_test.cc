// Proof that steady-state detection rounds are allocation-free: this binary
// links cad_alloc_hook (global operator-new replacement counting into a
// thread-local), the engine measures the count delta across each round and
// publishes it as the `cad_round_allocs` gauge, and this test asserts the
// gauge reads zero for steady-state rounds of both drivers.
//
// Rounds that *close* an anomaly may allocate (the assembler appends the
// finished anomaly); warm-up rounds grow workspace capacity once. The test
// therefore asserts on rounds past a warm-up prefix that report no anomaly
// transition.
//
// At CAD_CHECK_LEVEL=full the CAD_VALIDATE contract validators re-derive
// structures on the side (by design, with their own allocations), so the
// zero assertion only holds in non-validating builds; under the `checked`
// preset the test downgrades to "the gauge is registered and finite".
#include <gtest/gtest.h>

#include "check/check.h"
#include "common/alloc_tracker.h"
#include "core/cad_detector.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "testing/synthetic.h"

namespace cad::core {
namespace {

CadOptions MakeOptions(obs::Registry* registry) {
  CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  options.metrics_registry = registry;
  return options;
}

double RoundAllocsGauge(const obs::Snapshot& snapshot) {
  const obs::GaugeSample* gauge = snapshot.FindGauge("cad_round_allocs");
  EXPECT_NE(gauge, nullptr) << "cad_round_allocs gauge not registered";
  return gauge != nullptr ? gauge->value : -1.0;
}

TEST(EngineAllocTest, HookIsInstalled) {
  common::LinkAllocHook();
  EXPECT_TRUE(common::AllocHookInstalled());
  const int64_t before = common::ThreadAllocCount();
  // Call the replaced operator directly: a plain new/delete pair is eligible
  // for allocation elision at -O2 and would leave the counter untouched.
  void* probe = ::operator new(16);
  const int64_t after = common::ThreadAllocCount();
  ::operator delete(probe);
  EXPECT_GT(after, before) << "operator new replacement is not counting";
}

TEST(EngineAllocTest, StreamingSteadyStateRoundsAreAllocationFree) {
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  StreamingCad streaming(scenario.test.n_sensors(), MakeOptions(&registry));
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  // The first rounds grow workspace buffers to capacity; everything after
  // must run without touching the heap.
  constexpr int kWarmupRounds = 8;
  int steady_rounds = 0;
  bool prev_abnormal = false;
  std::vector<double> sample(scenario.test.n_sensors());
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[i] = scenario.test.value(i, t);
    }
    auto event = streaming.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;
    // Rounds that open or close an anomaly may append to the assembler by
    // design; the zero contract covers steady-state rounds only.
    const bool transition = event->abnormal || prev_abnormal;
    prev_abnormal = event->abnormal;
    if (event->round < kWarmupRounds || transition) continue;
    const double allocs = RoundAllocsGauge(registry.TakeSnapshot());
#if CAD_VALIDATE_ENABLED
    EXPECT_GE(allocs, 0.0);  // validators allocate by design at level=full
#else
    EXPECT_EQ(allocs, 0.0) << "round " << event->round
                           << " allocated on the steady-state path";
#endif
    ++steady_rounds;
  }
  EXPECT_GT(steady_rounds, 50) << "scenario too short to exercise steady state";
}

TEST(EngineAllocTest, FlightRecorderWraparoundStaysAllocationFree) {
  // A deliberately tiny ring: the run wraps it many times over, so steady
  // state covers slot reuse (Clear + refill) rather than first-fill growth.
  // The flight recorder must not cost the hot path a single allocation.
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  CadOptions options = MakeOptions(&registry);
  options.flight_log_capacity = 16;
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  constexpr int kWarmupRounds = 8;
  int steady_rounds = 0;
  bool prev_abnormal = false;
  std::vector<double> sample(scenario.test.n_sensors());
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[i] = scenario.test.value(i, t);
    }
    auto event = streaming.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;
    const bool transition = event->abnormal || prev_abnormal;
    prev_abnormal = event->abnormal;
    if (event->round < kWarmupRounds || transition) continue;
    const double allocs = RoundAllocsGauge(registry.TakeSnapshot());
#if CAD_VALIDATE_ENABLED
    EXPECT_GE(allocs, 0.0);
#else
    EXPECT_EQ(allocs, 0.0) << "round " << event->round
                           << " allocated while flight recording";
#endif
    ++steady_rounds;
  }
  // The ring wrapped (rounds >> capacity) and the recorder was live.
  EXPECT_GT(streaming.rounds_completed(), 10 * options.flight_log_capacity);
  const StreamHealth health = streaming.Health();
  EXPECT_EQ(health.flight_ring_capacity, 16);
  EXPECT_EQ(health.flight_ring_size, 16);
  EXPECT_GT(steady_rounds, 50) << "scenario too short to exercise steady state";
}

TEST(EngineAllocTest, LargeNonDefaultCapacityStaysAllocationFree) {
  // The other direction from the tiny-ring test: a ring far above the 256
  // default (CadOptions::flight_log_capacity is configurable so the advisor
  // can triage long incidents). Preallocation must cover the whole capacity
  // up front — holding more rounds than the default could ever keep must not
  // put a single allocation on the steady-state path.
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  CadOptions options = MakeOptions(&registry);
  options.step = 2;  // more rounds than the 256 default would retain
  options.flight_log_capacity = 1024;
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  constexpr int kWarmupRounds = 8;
  int steady_rounds = 0;
  bool prev_abnormal = false;
  std::vector<double> sample(scenario.test.n_sensors());
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[i] = scenario.test.value(i, t);
    }
    auto event = streaming.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;
    const bool transition = event->abnormal || prev_abnormal;
    prev_abnormal = event->abnormal;
    if (event->round < kWarmupRounds || transition) continue;
    const double allocs = RoundAllocsGauge(registry.TakeSnapshot());
#if CAD_VALIDATE_ENABLED
    EXPECT_GE(allocs, 0.0);
#else
    EXPECT_EQ(allocs, 0.0) << "round " << event->round
                           << " allocated with a large flight ring";
#endif
    ++steady_rounds;
  }
  // Every round is still held — more than the default capacity could keep.
  const StreamHealth health = streaming.Health();
  EXPECT_EQ(health.flight_ring_capacity, 1024);
  EXPECT_EQ(health.flight_ring_size, streaming.rounds_completed());
  EXPECT_GT(health.flight_ring_size, CadOptions{}.flight_log_capacity);
  EXPECT_GT(steady_rounds, 50) << "scenario too short to exercise steady state";
}

// ---------------------------------------------------------------------------
// Option-variant sweep: the zero-allocation contract must hold in every
// supported telemetry/flight-recorder configuration, not just the default
// one — each variant routes the round loop through different observability
// code (private vs process-global registry, recording vs skipping the ring).
// Validators-at-full builds (CAD_CHECK_LEVEL=full) run the same sweep but
// downgrade the assertion, as the contract validators allocate by design.
// ---------------------------------------------------------------------------

struct AllocSweepCase {
  const char* name;
  bool private_registry;    // false = CadOptions::metrics_registry unset
                            // (process-global registry)
  int flight_log_capacity;  // 0 disables the recorder entirely
};

class EngineAllocSweepTest : public ::testing::TestWithParam<AllocSweepCase> {};

TEST_P(EngineAllocSweepTest, SteadyStateRoundsAreAllocationFree) {
  const AllocSweepCase& c = GetParam();
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  CadOptions options = MakeOptions(c.private_registry ? &registry : nullptr);
  options.flight_log_capacity = c.flight_log_capacity;
  StreamingCad streaming(scenario.test.n_sensors(), options);
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  constexpr int kWarmupRounds = 8;
  int steady_rounds = 0;
  bool prev_abnormal = false;
  std::vector<double> sample(scenario.test.n_sensors());
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[i] = scenario.test.value(i, t);
    }
    auto event = streaming.Push(sample).ValueOrDie();
    if (!event.has_value()) continue;
    const bool transition = event->abnormal || prev_abnormal;
    prev_abnormal = event->abnormal;
    if (event->round < kWarmupRounds || transition) continue;
    // The gauge lives wherever the engine publishes telemetry: the private
    // registry when one was supplied, the process-global one otherwise (we
    // read immediately after our own round, so the last write is ours).
    obs::Registry& gauge_home =
        c.private_registry ? registry : obs::Registry::Global();
    const double allocs = RoundAllocsGauge(gauge_home.TakeSnapshot());
#if CAD_VALIDATE_ENABLED
    EXPECT_GE(allocs, 0.0);  // validators allocate by design at level=full
#else
    EXPECT_EQ(allocs, 0.0) << "round " << event->round << " allocated under "
                           << c.name;
#endif
    ++steady_rounds;
  }
  EXPECT_GT(steady_rounds, 50) << "scenario too short to exercise steady state";
}

INSTANTIATE_TEST_SUITE_P(
    OptionVariants, EngineAllocSweepTest,
    ::testing::Values(
        AllocSweepCase{"private_registry_flight_off", true, 0},
        AllocSweepCase{"private_registry_flight_default", true, 256},
        AllocSweepCase{"global_registry_flight_off", false, 0},
        AllocSweepCase{"global_registry_flight_default", false, 256}),
    [](const ::testing::TestParamInfo<AllocSweepCase>& info) {
      return std::string(info.param.name);
    });

TEST(EngineAllocTest, ReusingPushOverloadIsAllocationFreeEndToEnd) {
  // The cad_round_allocs gauge only audits the engine's round; this test
  // audits the *whole* driver call — queue-free ingest, window
  // materialization, engine step and event fill-in — by measuring the
  // thread allocation delta across every Push(sample, &event). This is the
  // regression fence for the bench discrepancy where the harness reported
  // ~14 allocs/round while the gauge read 0: those were harness-side
  // allocations (the allocating Push overload rebuilding event vectors)
  // leaking into the measurement window. With the reusing overload, steady
  // state must be zero end to end.
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  StreamingCad streaming(scenario.test.n_sensors(), MakeOptions(&registry));
  ASSERT_TRUE(streaming.WarmUp(scenario.train).ok());

  constexpr int kWarmupRounds = 8;
  int steady_pushes = 0;
  bool anomaly_open = false;
  StreamEvent event;
  std::vector<double> sample(scenario.test.n_sensors());
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[i] = scenario.test.value(i, t);
    }
    const int64_t before = common::ThreadAllocCount();
    const bool round_done = streaming.Push(sample, &event).ValueOrDie();
    const int64_t allocs = common::ThreadAllocCount() - before;

    // Same exclusions as the gauge tests: warm-up rounds grow capacity,
    // anomaly open/close transitions append to the assembler by design.
    const bool transition =
        round_done && (event.abnormal || anomaly_open);
    if (round_done) anomaly_open = event.abnormal;
    if (streaming.rounds_completed() <= kWarmupRounds) continue;
    if (transition || anomaly_open) continue;
#if CAD_VALIDATE_ENABLED
    EXPECT_GE(allocs, 0);  // validators allocate by design at level=full
#else
    EXPECT_EQ(allocs, 0) << "Push at t=" << t
                         << (round_done ? " (round)" : " (ingest only)")
                         << " allocated on the steady-state path";
#endif
    ++steady_pushes;
  }
  EXPECT_GT(steady_pushes, 200) << "scenario too short to exercise steady state";
}

TEST(EngineAllocTest, BatchFinalRoundIsAllocationFree) {
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  obs::Registry registry;
  CadDetector detector(MakeOptions(&registry));
  const DetectionReport report =
      detector.Detect(scenario.test, &scenario.train).ValueOrDie();
  ASSERT_FALSE(report.rounds.empty());

  // The gauge holds the last completed round's count. The scenario ends on
  // normal rounds, so that round must be clean too.
  ASSERT_FALSE(report.rounds.back().abnormal)
      << "scenario must end on a normal round for this assertion";
  const double allocs = RoundAllocsGauge(report.telemetry);
#if CAD_VALIDATE_ENABLED
  EXPECT_GE(allocs, 0.0);
#else
  EXPECT_EQ(allocs, 0.0) << "final batch round allocated";
#endif
}

}  // namespace
}  // namespace cad::core
