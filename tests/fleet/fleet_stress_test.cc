// Fleet fairness / starvation stress — the ISSUE's headline scenario: one
// heavy tenant (weight 8, firehose producer) plus 63 light tenants (weight
// 1, steady trickle) on a small worker pool. Asserts the scheduler's
// documented bound end to end: light tenants keep getting serviced (no
// starvation) and their service shares stay within the stride-scheduler
// spread. Runs under TSan in the `fleet` verify_matrix stage, where it also
// doubles as a race detector over the whole producer/worker/accessor
// surface.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/fleet_engine.h"
#include "fleet/scheduler.h"

namespace cad::fleet {
namespace {

core::CadOptions MakeCadOptions() {
  core::CadOptions options;
  options.window = 32;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

TEST(FleetStressTest, HeavyTenantCannotStarveLightTenants) {
  constexpr int kLightTenants = 63;
  constexpr int kSensors = 8;
  constexpr double kHeavyWeight = 8.0;
  constexpr int kWorkers = 4;

  FleetOptions fleet_options;
  fleet_options.n_workers = kWorkers;
  fleet_options.queue_capacity = 512;
  fleet_options.quantum_samples = 16;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);

  const core::CadOptions cad_options = MakeCadOptions();
  const int heavy =
      fleet.AddTenant("heavy", kSensors, cad_options, kHeavyWeight)
          .ValueOrDie();
  std::vector<int> light;
  for (int i = 0; i < kLightTenants; ++i) {
    light.push_back(fleet
                        .AddTenant("light_" + std::to_string(i), kSensors,
                                   cad_options, 1.0)
                        .ValueOrDie());
  }

  ASSERT_TRUE(fleet.Start().ok());

  // Producers: the heavy tenant firehoses as fast as the queue accepts;
  // every light tenant pushes a steady trickle. Real sensor-ish data so the
  // engines do real correlation work per round.
  std::atomic<bool> stop_producing{false};
  std::thread heavy_producer([&] {
    Rng rng(7);
    std::vector<double> sample(kSensors);
    while (!stop_producing.load(std::memory_order_relaxed)) {
      for (double& v : sample) v = rng.Gaussian();
      (void)fleet.Push(heavy, sample).ValueOrDie();
    }
  });
  std::vector<std::thread> light_producers;
  light_producers.reserve(4);
  for (int shard = 0; shard < 4; ++shard) {
    light_producers.emplace_back([&, shard] {
      Rng rng(100 + static_cast<uint64_t>(shard));
      std::vector<double> sample(kSensors);
      while (!stop_producing.load(std::memory_order_relaxed)) {
        for (size_t i = static_cast<size_t>(shard); i < light.size();
             i += 4) {
          for (double& v : sample) v = rng.Gaussian();
          (void)fleet.Push(light[i], sample).ValueOrDie();
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Let the fleet grind until every light tenant has been serviced a decent
  // number of times (bounded by a wall-clock failsafe).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  constexpr uint64_t kMinLightQuanta = 50;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::vector<WeightedScheduler::TenantStats> stats =
        fleet.scheduler().StatsSnapshot();
    uint64_t min_light = ~0ull;
    for (int t : light) {
      min_light = std::min(min_light, stats[static_cast<size_t>(t)].quanta);
    }
    if (min_light >= kMinLightQuanta) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop_producing.store(true);
  heavy_producer.join();
  for (std::thread& producer : light_producers) producer.join();
  fleet.Drain();

  const std::vector<WeightedScheduler::TenantStats> stats =
      fleet.scheduler().StatsSnapshot();
  fleet.Stop();

  // 1) No starvation: every light tenant got real service.
  uint64_t min_light = ~0ull;
  uint64_t max_light = 0;
  for (int t : light) {
    const uint64_t quanta = stats[static_cast<size_t>(t)].quanta;
    EXPECT_GE(quanta, kMinLightQuanta)
        << "light tenant " << t << " starved";
    min_light = std::min(min_light, quanta);
    max_light = std::max(max_light, quanta);
  }

  // 2) Fairness among equal-weight tenants. The scheduler's pairwise bound
  // for weight-1 tenants is |q_i - q_j| <= 2 while both stay backlogged,
  // plus up to n_workers quanta in flight at the snapshot. Light producers
  // trickle, so a tenant can additionally sit out scheduling while its queue
  // is empty — allow a generous production-jitter slack on top, while still
  // catching starvation-grade skew (which shows up as 10-100x spread).
  const uint64_t bound =
      2 + kWorkers + std::max<uint64_t>(min_light / 2, 16);
  EXPECT_LE(max_light - min_light, bound)
      << "light-tenant service spread " << max_light << "-" << min_light
      << " exceeds the documented fairness bound";

  // 3) The heavy tenant was actually heavy: with ~8x the weight and an
  // always-full queue it must out-consume any light tenant.
  EXPECT_GT(stats[static_cast<size_t>(heavy)].quanta, max_light);
}

}  // namespace
}  // namespace cad::fleet
