// WeightedScheduler contract tests: exact weighted shares while backlogged,
// the documented pairwise fairness bound at every pick prefix, no banked
// credit for sleepers, and single-ownership of a busy tenant. These are the
// deterministic single-threaded proofs; the multi-worker starvation stress
// (run under TSan by the `fleet` verify_matrix stage) lives in
// fleet_stress_test.cc.
#include "fleet/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace cad::fleet {
namespace {

// Drives one pick on a fully-backlogged scheduler and returns the tenant.
int PickBacklogged(WeightedScheduler* scheduler) {
  int tenant = -1;
  EXPECT_TRUE(scheduler->TryAcquire(&tenant));
  scheduler->Release(tenant, /*has_more_work=*/true);
  return tenant;
}

TEST(WeightedSchedulerTest, ExactSharePerWeightSumPicksWhenBacklogged) {
  WeightedScheduler scheduler({3.0, 1.0});
  scheduler.MakeReady(0);
  scheduler.MakeReady(1);

  // Over every window of W = 3 + 1 consecutive picks, tenant 0 is served
  // exactly 3 times and tenant 1 exactly once (integer weights).
  for (int window = 0; window < 10; ++window) {
    int picks[2] = {0, 0};
    for (int i = 0; i < 4; ++i) ++picks[PickBacklogged(&scheduler)];
    EXPECT_EQ(picks[0], 3) << "window " << window;
    EXPECT_EQ(picks[1], 1) << "window " << window;
  }
}

TEST(WeightedSchedulerTest, InterleavesInsteadOfBursting) {
  // Low-discrepancy property: weights {3, 1} interleave as
  // A B A A A B A A A B ... — tenant 1 is serviced every ~4 picks instead
  // of being batched at the end. The nominal longest tenant-0 run is 3;
  // accumulated floating-point stride error can shift a tie by one pick, so
  // the assertion allows 4. True bursting (queue-draining schedulers
  // produce runs of hundreds) still trips it.
  WeightedScheduler scheduler({3.0, 1.0});
  scheduler.MakeReady(0);
  scheduler.MakeReady(1);

  int run_of_zero = 0;
  for (int i = 0; i < 200; ++i) {
    const int picked = PickBacklogged(&scheduler);
    if (picked == 0) {
      ++run_of_zero;
      EXPECT_LE(run_of_zero, 4) << "heavy tenant burst at pick " << i;
    } else {
      run_of_zero = 0;
    }
  }
}

TEST(WeightedSchedulerTest, PairwiseFairnessBoundHoldsAtEveryPrefix) {
  const std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
  WeightedScheduler scheduler(weights);
  for (int t = 0; t < scheduler.n_tenants(); ++t) scheduler.MakeReady(t);

  std::vector<uint64_t> quanta(weights.size(), 0);
  for (int pick = 0; pick < 3000; ++pick) {
    ++quanta[static_cast<size_t>(PickBacklogged(&scheduler))];
    // The documented contract (scheduler.h): while continuously backlogged,
    // |q_i/w_i - q_j/w_j| <= 1/w_i + 1/w_j at every pick boundary.
    for (size_t i = 0; i < weights.size(); ++i) {
      for (size_t j = i + 1; j < weights.size(); ++j) {
        const double normalized_gap =
            std::abs(static_cast<double>(quanta[i]) / weights[i] -
                     static_cast<double>(quanta[j]) / weights[j]);
        ASSERT_LE(normalized_gap, 1.0 / weights[i] + 1.0 / weights[j] + 1e-9)
            << "tenants " << i << "/" << j << " after pick " << pick;
      }
    }
  }
  // And the counters the scheduler exports match what we observed.
  const std::vector<WeightedScheduler::TenantStats> stats =
      scheduler.StatsSnapshot();
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_EQ(stats[i].quanta, quanta[i]);
  }
  EXPECT_EQ(scheduler.total_quanta(), 3000u);
}

TEST(WeightedSchedulerTest, SleepingTenantCannotBankCredit) {
  WeightedScheduler scheduler({1.0, 1.0});
  scheduler.MakeReady(0);

  // Tenant 0 runs alone for a long stretch while tenant 1 sleeps.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(PickBacklogged(&scheduler), 0);
  }

  // When tenant 1 wakes it rejoins at the virtual clock: it must NOT be
  // handed 100 catch-up picks. From here on service alternates.
  scheduler.MakeReady(1);
  int picks[2] = {0, 0};
  for (int i = 0; i < 20; ++i) ++picks[PickBacklogged(&scheduler)];
  EXPECT_EQ(picks[0], 10);
  EXPECT_EQ(picks[1], 10);
}

TEST(WeightedSchedulerTest, BusyTenantIsNeverHandedOutTwice) {
  WeightedScheduler scheduler({1.0});
  scheduler.MakeReady(0);

  int tenant = -1;
  ASSERT_TRUE(scheduler.TryAcquire(&tenant));
  EXPECT_EQ(tenant, 0);

  // A producer marking the busy tenant ready must not re-queue it...
  scheduler.MakeReady(0);
  int second = -1;
  EXPECT_FALSE(scheduler.TryAcquire(&second));

  // ...but the release is responsible for honoring that mark even when the
  // worker itself saw an empty queue.
  scheduler.Release(0, /*has_more_work=*/false);
  EXPECT_TRUE(scheduler.TryAcquire(&second));
  EXPECT_EQ(second, 0);
  scheduler.Release(0, /*has_more_work=*/false);
  EXPECT_TRUE(scheduler.Idle());
}

TEST(WeightedSchedulerTest, IdleReflectsQuiescence) {
  WeightedScheduler scheduler({1.0, 1.0});
  EXPECT_TRUE(scheduler.Idle());

  scheduler.MakeReady(1);
  EXPECT_FALSE(scheduler.Idle());

  int tenant = -1;
  ASSERT_TRUE(scheduler.TryAcquire(&tenant));
  EXPECT_FALSE(scheduler.Idle());  // busy counts as not-idle

  scheduler.Release(tenant, /*has_more_work=*/true);
  EXPECT_FALSE(scheduler.Idle());  // re-queued

  ASSERT_TRUE(scheduler.TryAcquire(&tenant));
  scheduler.Release(tenant, /*has_more_work=*/false);
  EXPECT_TRUE(scheduler.Idle());
}

TEST(WeightedSchedulerTest, ConcurrentWorkersNeverShareATenant) {
  constexpr int kTenants = 8;
  constexpr int kWorkers = 4;
  constexpr int kPicksPerWorker = 5000;
  WeightedScheduler scheduler(std::vector<double>(kTenants, 1.0));
  for (int t = 0; t < kTenants; ++t) scheduler.MakeReady(t);

  std::atomic<int> in_service[kTenants] = {};
  std::atomic<bool> violation{false};
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPicksPerWorker; ++i) {
        int tenant = -1;
        if (!scheduler.TryAcquire(&tenant)) {
          std::this_thread::yield();
          continue;
        }
        if (in_service[tenant].fetch_add(1) != 0) violation.store(true);
        in_service[tenant].fetch_sub(1);
        scheduler.Release(tenant, /*has_more_work=*/true);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_FALSE(violation.load()) << "a tenant was serviced by two workers";
  EXPECT_GT(scheduler.total_quanta(), 0u);
}

}  // namespace
}  // namespace cad::fleet
