// WorkspacePool contract tests: the bucket function, same-bucket arena
// reuse (one warm arena serves every tenant in its bucket), and the no-alloc
// steady path (Acquire/Release cycles on a warm bucket never touch the
// heap — this binary links cad_alloc_hook, so the counts are real).
#include "fleet/workspace_pool.h"

#include <gtest/gtest.h>

#include "check/check.h"
#include "common/alloc_tracker.h"

namespace cad::fleet {
namespace {

TEST(WorkspacePoolTest, BucketOfIsCeilLog2) {
  EXPECT_EQ(WorkspacePool::BucketOf(1), 0);
  EXPECT_EQ(WorkspacePool::BucketOf(2), 1);
  EXPECT_EQ(WorkspacePool::BucketOf(3), 2);
  EXPECT_EQ(WorkspacePool::BucketOf(4), 2);
  EXPECT_EQ(WorkspacePool::BucketOf(5), 3);
  EXPECT_EQ(WorkspacePool::BucketOf(8), 3);
  EXPECT_EQ(WorkspacePool::BucketOf(9), 4);
  EXPECT_EQ(WorkspacePool::BucketOf(16), 4);
  EXPECT_EQ(WorkspacePool::BucketOf(17), 5);
  EXPECT_EQ(WorkspacePool::BucketOf(1024), 10);
  EXPECT_EQ(WorkspacePool::BucketOf(1025), 11);
}

TEST(WorkspacePoolTest, SameBucketReusesTheSameArena) {
  WorkspacePool pool;

  WorkspacePool::PooledWorkspace* first = pool.Acquire(12);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->bucket, WorkspacePool::BucketOf(12));
  first->max_sensors = 12;
  pool.Release(first);

  // 9..16 sensors all land in bucket 4 and must get the warm arena back.
  for (int sensors : {9, 12, 16}) {
    WorkspacePool::PooledWorkspace* again = pool.Acquire(sensors);
    EXPECT_EQ(again, first) << sensors << " sensors";
    EXPECT_EQ(again->max_sensors, 12);  // high-water mark persists
    pool.Release(again);
  }

  const WorkspacePool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.created, 1u);
  EXPECT_EQ(stats.acquires, 4u);
  EXPECT_EQ(stats.in_use, 0u);
}

TEST(WorkspacePoolTest, DistinctBucketsAndConcurrentBorrowsGetDistinctArenas) {
  WorkspacePool pool;

  WorkspacePool::PooledWorkspace* small = pool.Acquire(4);    // bucket 2
  WorkspacePool::PooledWorkspace* large = pool.Acquire(100);  // bucket 7
  WorkspacePool::PooledWorkspace* small2 = pool.Acquire(3);   // bucket 2 again
  EXPECT_NE(small, large);
  EXPECT_NE(small, small2);  // small is still borrowed; a sibling is created
  EXPECT_EQ(small2->bucket, small->bucket);

  EXPECT_EQ(pool.GetStats().created, 3u);
  EXPECT_EQ(pool.GetStats().in_use, 3u);
  pool.Release(small);
  pool.Release(large);
  pool.Release(small2);
  EXPECT_EQ(pool.GetStats().in_use, 0u);
}

TEST(WorkspacePoolTest, WarmBucketCyclesAreAllocationFree) {
  common::LinkAllocHook();
  WorkspacePool pool;

  // Warm bucket 4 with two arenas (two concurrent borrowers is the worst
  // case a 2-worker pool produces) and drop them back.
  WorkspacePool::PooledWorkspace* a = pool.Acquire(12);
  WorkspacePool::PooledWorkspace* b = pool.Acquire(12);
  pool.Release(a);
  pool.Release(b);

  const int64_t before = common::ThreadAllocCount();
  for (int cycle = 0; cycle < 1000; ++cycle) {
    WorkspacePool::PooledWorkspace* x = pool.Acquire(12);
    WorkspacePool::PooledWorkspace* y = pool.Acquire(9);
    pool.Release(x);
    pool.Release(y);
  }
  const int64_t allocs = common::ThreadAllocCount() - before;

  if (common::AllocHookInstalled()) {
#if CAD_VALIDATE_ENABLED
    // At CAD_CHECK_LEVEL=full the runtime lock-order tracker allocates on
    // every mutex acquisition; only the release-tier contract is 0.
    EXPECT_GE(allocs, 0);
#else
    EXPECT_EQ(allocs, 0) << "warm Acquire/Release cycles must not allocate";
#endif
  } else {
    GTEST_SKIP() << "cad_alloc_hook not linked; steady-path audit inert";
  }
}

}  // namespace
}  // namespace cad::fleet
