// FleetEngine end-to-end tests.
//
// The load-bearing ones:
//  - Equivalence: a 1-tenant fleet produces byte-identical anomalies to a
//    solo StreamingCad fed the same stream — multiplexing through queues,
//    the scheduler and the shared workspace pool must not change a single
//    detection decision.
//  - Steady-state allocations: after warm-up, service quanta fleet-wide
//    perform zero heap allocations (this binary links cad_alloc_hook, so
//    cad_fleet_steady_allocs_total carries real counts).
//  - Backpressure: a full queue rejects instead of blocking, and the
//    rejection is accounted.
//  - Exposition: /metrics carries tenant-labelled pipeline series plus the
//    fleet rollups; /explain routes by tenant; all live over real HTTP.
#include "fleet/fleet_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "check/check.h"
#include "common/alloc_tracker.h"
#include "core/streaming.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "testing/http_client.h"
#include "testing/synthetic.h"

namespace cad::fleet {
namespace {

core::CadOptions MakeCadOptions() {
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  options.theta = 0.9;
  return options;
}

// Pushes the whole test split of `scenario` into tenant `tenant`, retrying
// rejected samples (ordering must be preserved, so a rejected sample is
// re-offered until the workers drain the queue).
void PushAll(FleetEngine* fleet, int tenant,
             const testing::SmallScenario& scenario) {
  std::vector<double> sample(
      static_cast<size_t>(scenario.test.n_sensors()));
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[static_cast<size_t>(i)] = scenario.test.value(i, t);
    }
    while (!fleet->Push(tenant, sample).ValueOrDie()) {
      std::this_thread::yield();
    }
  }
}

TEST(FleetEngineTest, SingleTenantMatchesSoloStreamingCad) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  core::CadOptions cad_options = MakeCadOptions();

  // Reference: the single-tenant facade fed directly. Both sides start cold
  // (FleetEngine has no WarmUp passthrough by design — tenants warm online),
  // so the comparison is apples to apples.
  obs::Registry solo_registry;
  core::CadOptions solo_options = cad_options;
  solo_options.metrics_registry = &solo_registry;
  core::StreamingCad solo_cold(scenario.test.n_sensors(), solo_options);
  std::vector<double> sample(
      static_cast<size_t>(scenario.test.n_sensors()));
  core::StreamEvent event;
  for (int t = 0; t < scenario.test.length(); ++t) {
    for (int i = 0; i < scenario.test.n_sensors(); ++i) {
      sample[static_cast<size_t>(i)] = scenario.test.value(i, t);
    }
    ASSERT_TRUE(solo_cold.Push(sample, &event).ok());
  }

  FleetOptions fleet_options;
  fleet_options.n_workers = 2;
  fleet_options.queue_capacity = 64;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);
  const int tenant =
      fleet.AddTenant("t0", scenario.test.n_sensors(), cad_options)
          .ValueOrDie();
  ASSERT_TRUE(fleet.Start().ok());
  PushAll(&fleet, tenant, scenario);
  fleet.Drain();
  fleet.Stop();

  const FleetEngine::TenantStatus status =
      fleet.TenantInfo(tenant).ValueOrDie();
  EXPECT_EQ(status.samples_seen, scenario.test.length());
  EXPECT_EQ(static_cast<int>(status.rounds), solo_cold.rounds_completed());

  const std::vector<core::Anomaly> fleet_anomalies =
      fleet.TenantAnomalies(tenant).ValueOrDie();
  const std::vector<core::Anomaly> solo_anomalies = solo_cold.anomalies();
  ASSERT_EQ(fleet_anomalies.size(), solo_anomalies.size());
  for (size_t i = 0; i < solo_anomalies.size(); ++i) {
    EXPECT_EQ(fleet_anomalies[i].sensors, solo_anomalies[i].sensors) << i;
    EXPECT_EQ(fleet_anomalies[i].first_round, solo_anomalies[i].first_round);
    EXPECT_EQ(fleet_anomalies[i].last_round, solo_anomalies[i].last_round);
    EXPECT_EQ(fleet_anomalies[i].start_time, solo_anomalies[i].start_time);
    EXPECT_EQ(fleet_anomalies[i].end_time, solo_anomalies[i].end_time);
    EXPECT_EQ(fleet_anomalies[i].detection_time,
              solo_anomalies[i].detection_time);
  }
}

TEST(FleetEngineTest, SteadyStateQuantaAreAllocationFreeFleetWide) {
  common::LinkAllocHook();
  const testing::SmallScenario scenario = testing::MakeSmallScenario();

  FleetOptions fleet_options;
  fleet_options.n_workers = 2;
  fleet_options.queue_capacity = 128;
  fleet_options.alloc_warmup_rounds = 24;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);

  constexpr int kTenants = 4;
  std::vector<int> tenants;
  for (int i = 0; i < kTenants; ++i) {
    tenants.push_back(fleet
                          .AddTenant("tenant_" + std::to_string(i),
                                     scenario.test.n_sensors(),
                                     MakeCadOptions())
                          .ValueOrDie());
  }
  ASSERT_TRUE(fleet.Start().ok());
  // Two full passes over the stream per tenant: the second pass is entirely
  // past warm-up, so steady quanta must accumulate.
  for (int pass = 0; pass < 2; ++pass) {
    for (int tenant : tenants) PushAll(&fleet, tenant, scenario);
  }
  fleet.Drain();
  fleet.Stop();

  const obs::Snapshot snapshot = fleet_registry.TakeSnapshot();
  const obs::CounterSample* steady_rounds =
      snapshot.FindCounter("cad_fleet_steady_rounds_total");
  const obs::CounterSample* steady_allocs =
      snapshot.FindCounter("cad_fleet_steady_allocs_total");
  ASSERT_NE(steady_rounds, nullptr);
  ASSERT_NE(steady_allocs, nullptr);
  EXPECT_GT(steady_rounds->value, 0u)
      << "no steady rounds measured; the audit never engaged";
#if CAD_VALIDATE_ENABLED
  // Contract validators allocate on the side at full check level; the audit
  // still runs but zero cannot hold.
  EXPECT_GE(steady_allocs->value, 0u);
#else
  EXPECT_EQ(steady_allocs->value, 0u)
      << "steady-state service quanta allocated on the worker threads";
#endif

  // The pool never created more arenas than could be concurrently borrowed.
  const WorkspacePool::Stats pool = fleet.pool_stats();
  EXPECT_LE(pool.created,
            static_cast<uint64_t>(fleet_options.n_workers));
  EXPECT_EQ(pool.in_use, 0u);
}

TEST(FleetEngineTest, FullQueueRejectsWithBackpressureAccounting) {
  FleetOptions fleet_options;
  fleet_options.queue_capacity = 8;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);
  core::CadOptions cad_options = MakeCadOptions();
  const int tenant = fleet.AddTenant("t0", 4, cad_options).ValueOrDie();

  // Pre-Start pushes land in the queue with no worker draining it: exactly
  // `queue_capacity` are accepted, the rest rejected.
  const std::vector<double> sample = {1.0, 2.0, 3.0, 4.0};
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    if (fleet.Push(tenant, sample).ValueOrDie()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 8);
  EXPECT_EQ(rejected, 12);

  FleetEngine::TenantStatus status = fleet.TenantInfo(tenant).ValueOrDie();
  EXPECT_EQ(status.accepted, 8u);
  EXPECT_EQ(status.rejected, 12u);
  EXPECT_EQ(status.pending, 8u);

  const obs::Snapshot snapshot = fleet_registry.TakeSnapshot();
  EXPECT_EQ(snapshot.FindCounter("cad_fleet_samples_total")->value, 8u);
  EXPECT_EQ(snapshot.FindCounter("cad_fleet_samples_rejected_total")->value,
            12u);

  // Wrong-width pushes are an error, not a silent drop.
  const std::vector<double> narrow = {1.0, 2.0};
  EXPECT_FALSE(fleet.Push(tenant, narrow).ok());
  EXPECT_FALSE(fleet.Push(99, sample).ok());

  // Starting the fleet drains the backlog.
  ASSERT_TRUE(fleet.Start().ok());
  fleet.Drain();
  fleet.Stop();
  status = fleet.TenantInfo(tenant).ValueOrDie();
  EXPECT_EQ(status.pending, 0u);
  EXPECT_EQ(status.samples_seen, 8);
}

TEST(FleetEngineTest, TenantRegistrationContract) {
  FleetOptions fleet_options;
  FleetEngine fleet(fleet_options);
  const core::CadOptions cad_options = MakeCadOptions();

  EXPECT_TRUE(fleet.AddTenant("ok_name.v1-a", 4, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant("ok_name.v1-a", 4, cad_options).ok())
      << "duplicate name";
  EXPECT_FALSE(fleet.AddTenant("", 4, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant("Bad", 4, cad_options).ok()) << "uppercase";
  EXPECT_FALSE(fleet.AddTenant("-leading", 4, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant("sp ace", 4, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant(std::string(121, 'a'), 4, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant("zero_sensors", 0, cad_options).ok());
  EXPECT_FALSE(fleet.AddTenant("bad_weight", 4, cad_options, 0.0).ok());

  EXPECT_EQ(fleet.TenantIndex("ok_name.v1-a").ValueOrDie(), 0);
  EXPECT_FALSE(fleet.TenantIndex("missing").ok());

  ASSERT_TRUE(fleet.Start().ok());
  EXPECT_FALSE(fleet.AddTenant("too_late", 4, cad_options).ok())
      << "tenant set is sealed at Start";
  fleet.Stop();
}

TEST(FleetEngineTest, InvalidOptionsFailStart) {
  FleetOptions bad;
  bad.n_workers = 0;
  FleetEngine fleet(bad);
  EXPECT_FALSE(fleet.Start().ok());
}

TEST(FleetEngineTest, ExpositionServesLabelledMetricsHealthAndExplain) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  FleetOptions fleet_options;
  fleet_options.n_workers = 2;
  fleet_options.exposition_port = 0;  // ephemeral
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);
  const core::CadOptions cad_options = MakeCadOptions();
  const int alpha =
      fleet.AddTenant("alpha", scenario.test.n_sensors(), cad_options)
          .ValueOrDie();
  (void)fleet.AddTenant("beta", scenario.test.n_sensors(), cad_options)
      .ValueOrDie();
  ASSERT_TRUE(fleet.Start().ok());
  const int port = fleet.exposition_port();
  ASSERT_GT(port, 0);

  PushAll(&fleet, alpha, scenario);
  fleet.Drain();

  const testing::HttpResponse metrics = testing::HttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.body.find("cad_fleet_rounds_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("cad_rounds_total{tenant=\"alpha\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("{tenant=\"beta\"}"), std::string::npos);

  const testing::HttpResponse health = testing::HttpGet(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status_code, 200);
  EXPECT_NE(health.body.find("\"tenants\":2"), std::string::npos);

  // A round alpha has definitely run; the flight recorder serves it.
  const FleetEngine::TenantStatus status =
      fleet.TenantInfo(alpha).ValueOrDie();
  ASSERT_GT(status.rounds, 0u);
  const int last_round = static_cast<int>(status.rounds) - 1;
  const testing::HttpResponse explain = testing::HttpGet(
      port, "/explain?tenant=alpha&round=" + std::to_string(last_round));
  ASSERT_TRUE(explain.ok);
  EXPECT_EQ(explain.status_code, 200);
  EXPECT_NE(explain.body.find("\"round\":" + std::to_string(last_round)),
            std::string::npos);

  const testing::HttpResponse unknown =
      testing::HttpGet(port, "/explain?tenant=nobody&round=0");
  ASSERT_TRUE(unknown.ok);
  EXPECT_EQ(unknown.status_code, 404);

  fleet.Stop();
  EXPECT_EQ(fleet.exposition_port(), -1);
}

TEST(FleetEngineTest, MetricsTextWithoutServerAndHealthRollup) {
  FleetOptions fleet_options;
  obs::Registry fleet_registry;
  fleet_options.metrics_registry = &fleet_registry;
  FleetEngine fleet(fleet_options);
  const core::CadOptions cad_options = MakeCadOptions();
  const int tenant = fleet.AddTenant("gamma", 4, cad_options).ValueOrDie();
  const std::vector<double> sample = {0.0, 0.0, 0.0, 0.0};
  ASSERT_TRUE(fleet.Push(tenant, sample).ValueOrDie());

  const std::string text = fleet.MetricsText();
  EXPECT_NE(text.find("cad_fleet_samples_total 1"), std::string::npos);
  EXPECT_NE(text.find("{tenant=\"gamma\"}"), std::string::npos);

  const std::string health = fleet.HealthJson();
  EXPECT_NE(health.find("\"tenants\":1"), std::string::npos);
  EXPECT_NE(health.find("\"samples_accepted\":1"), std::string::npos);
  EXPECT_NE(health.find("\"pending_samples\":1"), std::string::npos);

  EXPECT_TRUE(fleet.ExplainTenantJson("nobody", 0).empty());
  EXPECT_TRUE(fleet.ExplainTenantJson("gamma", 1234).empty());
}

}  // namespace
}  // namespace cad::fleet
