#include "common/strings.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(SplitTest, BasicFields) {
  const std::vector<std::string> fields = Split("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const std::vector<std::string> fields = Split(",x,,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "");
  EXPECT_EQ(fields[1], "x");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "");
}

TEST(SplitTest, NoSeparator) {
  const std::vector<std::string> fields = Split("whole", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "whole");
}

TEST(StripTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\r\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(89.66, 1), "89.7");
  EXPECT_EQ(FormatDouble(100.0, 1), "100.0");
  EXPECT_EQ(FormatDouble(0.1234, 3), "0.123");
}

TEST(PadTest, LeftAndRightAlignment) {
  EXPECT_EQ(Pad("ab", 5), "   ab");
  EXPECT_EQ(Pad("ab", -5), "ab   ");
  EXPECT_EQ(Pad("abcdef", 3), "abcdef");
}

}  // namespace
}  // namespace cad
