#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace cad {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.NextUint64();
  a.NextUint64();
  a.Seed(7);
  EXPECT_EQ(a.NextUint64(), first);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 2.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 2.5);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.15);
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // overwhelmingly unlikely to be identity
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  const std::vector<int> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (int idx : sample) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 100);
  }
}

// Property sweep: bounded sampling never exceeds its bound for many bounds.
class RngBoundSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundSweep, NeverExceedsBound) {
  Rng rng(GetParam());
  for (uint64_t bound : {1ull, 2ull, 3ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundSweep,
                         ::testing::Values(1, 42, 999, 123456789));

}  // namespace
}  // namespace cad
