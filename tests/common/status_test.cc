#include "common/status.h"

#include <gtest/gtest.h>

namespace cad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EachFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

// GCC 12 raises a false-positive -Wmaybe-uninitialized on the std::variant
// alternative that is provably never read here (r holds the int).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
  const Status& status = r.status();
  EXPECT_TRUE(status.ok());
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x) {
  CAD_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cad
