// Tests for the runtime lock-order tracker in common/mutex.h.
//
// The tracker only exists at CAD_CHECK_LEVEL=full (the `checked` and
// `deadlock` presets); in debug/release builds Mutex::lock compiles down to
// std::mutex::lock. Both halves are asserted here: the detection tests
// GTEST_SKIP below full, and CompiledOutBelowFull proves the inverse — an
// inversion pattern that would be fatal under the tracker runs silently
// when it is compiled out, which is what keeps the release hot path free.
//
// Detection runs on one thread on purpose: the acquired-after graph is
// process-wide, so thread 1's `a before b` plus (a serialized) `b then a`
// is exactly the inversion that deadlocks when the two interleave. The
// tracker reports it deterministically instead of relying on the unlucky
// schedule.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "check/check.h"

namespace cad::common {
namespace {

struct TrackerFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void ThrowingHandler(const check::CheckContext& /*ctx*/,
                                  const std::string& message) {
  throw TrackerFailure(message);
}

class LockOrderTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!LockOrderTrackerActive()) {
      GTEST_SKIP() << "lock-order tracker compiled out below "
                      "CAD_CHECK_LEVEL=full";
    }
    LockOrderTrackerResetForTest();
  }
  void TearDown() override { LockOrderTrackerResetForTest(); }

  check::ScopedFailureHandler guard_{&ThrowingHandler};
};

TEST_F(LockOrderTrackerTest, StraightLineNestingIsAccepted) {
  Mutex a(-1, "test.order.a");
  Mutex b(-1, "test.order.b");
  for (int round = 0; round < 3; ++round) {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  // One edge (a before b), recorded once however often it repeats.
  EXPECT_EQ(LockOrderTrackedEdgeCount(), 1u);
}

TEST_F(LockOrderTrackerTest, InversionIsFatalWithBothChains) {
  Mutex a(-1, "test.inv.a");
  Mutex b(-1, "test.inv.b");
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  MutexLock outer(b);
  try {
    MutexLock inner(a);
    FAIL() << "inversion was not detected";
  } catch (const TrackerFailure& failure) {
    const std::string message = failure.what();
    // The report must carry both sides: this thread's chain and the
    // recorded opposite order.
    EXPECT_NE(message.find("test.inv.b -> test.inv.a"), std::string::npos)
        << message;
    EXPECT_NE(message.find("`test.inv.a` before `test.inv.b`"),
              std::string::npos)
        << message;
  }
}

TEST_F(LockOrderTrackerTest, RankInversionIsFatalWithoutHistory) {
  // Ranks catch the inversion on the very first occurrence — no prior
  // acquired-after edge needed.
  Mutex lo(10, "test.rank.lo");
  Mutex hi(20, "test.rank.hi");
  MutexLock outer(hi);
  try {
    MutexLock inner(lo);
    FAIL() << "rank inversion was not detected";
  } catch (const TrackerFailure& failure) {
    EXPECT_NE(std::string(failure.what()).find("rank inversion"),
              std::string::npos)
        << failure.what();
  }
}

TEST_F(LockOrderTrackerTest, AscendingRanksAreAccepted) {
  Mutex lo(10, "test.rankok.lo");
  Mutex hi(20, "test.rankok.hi");
  MutexLock outer(lo);
  MutexLock inner(hi);
  SUCCEED();
}

TEST_F(LockOrderTrackerTest, RecursiveAcquisitionIsFatal) {
  Mutex m(-1, "test.recursive");
  MutexLock outer(m);
  EXPECT_THROW(m.lock(), TrackerFailure);
}

TEST_F(LockOrderTrackerTest, TryLockRecordsNoOrderingEdges) {
  Mutex a(-1, "test.try.a");
  Mutex b(-1, "test.try.b");
  MutexLock outer(a);
  ASSERT_TRUE(b.try_lock());
  b.unlock();
  // A failed try_lock backs off instead of deadlocking, so ordering
  // against it is not a liveness bug and must not poison the graph.
  EXPECT_EQ(LockOrderTrackedEdgeCount(), 0u);
}

TEST_F(LockOrderTrackerTest, AnonymousMutexDeathErasesItsNode) {
  Mutex named(-1, "test.anon.outer");
  {
    Mutex anon;
    MutexLock outer(named);
    MutexLock inner(anon);
    EXPECT_EQ(LockOrderTrackedEdgeCount(), 1u);
  }
  // The anonymous node dies with the object, or a later allocation at the
  // same address would inherit its edges and report phantom inversions.
  EXPECT_EQ(LockOrderTrackedEdgeCount(), 0u);
}

TEST(LockOrderTrackerBuildTest, CompiledOutBelowFull) {
  if (LockOrderTrackerActive()) {
    GTEST_SKIP() << "tracker armed in this build";
  }
  check::ScopedFailureHandler guard(&ThrowingHandler);
  // The exact pattern InversionIsFatalWithBothChains proves fatal under the
  // tracker: without it, plain std::mutex semantics — no state, no report.
  Mutex a(-1, "test.off.a");
  Mutex b(-1, "test.off.b");
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  {
    MutexLock outer(b);
    MutexLock inner(a);
  }
  EXPECT_EQ(LockOrderTrackedEdgeCount(), 0u);
}

}  // namespace
}  // namespace cad::common
