// Tests for the extension features beyond the paper's core: Spearman-based
// TSGs, multithreaded correlation, and the parallel detector ensemble the
// paper suggests in Section IV-F.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cad_adapter.h"
#include "baselines/ecod.h"
#include "baselines/iforest.h"
#include "baselines/parallel_ensemble.h"
#include "core/cad_detector.h"
#include "stats/correlation.h"
#include "testing/synthetic.h"

namespace cad {
namespace {

// ---- Spearman ------------------------------------------------------------

TEST(SpearmanTest, RankTransformWithTies) {
  const std::vector<double> x = {10.0, 20.0, 20.0, 5.0};
  const std::vector<double> ranks = stats::RankTransform(x);
  EXPECT_EQ(ranks, (std::vector<double>{2.0, 3.5, 3.5, 1.0}));
}

TEST(SpearmanTest, PerfectMonotoneRelationIsOne) {
  // y = exp(x) is nonlinear but monotone: Spearman 1, Pearson < 1.
  std::vector<double> x(50), y(50);
  for (int i = 0; i < 50; ++i) {
    x[i] = i * 0.2;
    y[i] = std::exp(x[i]);
  }
  EXPECT_NEAR(stats::SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(stats::PearsonCorrelation(x, y), 0.95);
}

TEST(SpearmanTest, RobustToSingleHugeSpike) {
  cad::Rng rng(3);
  std::vector<double> x(100), y(100);
  for (int i = 0; i < 100; ++i) {
    x[i] = rng.Gaussian();
    y[i] = x[i] + 0.2 * rng.Gaussian();
  }
  const double spearman_clean = stats::SpearmanCorrelation(x, y);
  y[50] = 1e6;  // one corrupted reading
  const double pearson_spiked = stats::PearsonCorrelation(x, y);
  const double spearman_spiked = stats::SpearmanCorrelation(x, y);
  EXPECT_LT(std::abs(pearson_spiked), 0.5);            // Pearson destroyed
  EXPECT_GT(spearman_spiked, spearman_clean - 0.1);    // Spearman survives
}

TEST(SpearmanTest, MatrixMatchesPairwise) {
  cad::Rng rng(5);
  ts::MultivariateSeries series(4, 60);
  for (int i = 0; i < 4; ++i) {
    for (int t = 0; t < 60; ++t) series.set_value(i, t, rng.Gaussian());
  }
  const stats::CorrelationMatrix corr = stats::WindowCorrelationMatrix(
      series, 10, 40, stats::CorrelationKind::kSpearman);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(corr.at(i, j),
                  stats::SpearmanCorrelation(series.sensor_window(i, 10, 40),
                                             series.sensor_window(j, 10, 40)),
                  1e-10);
    }
  }
}

TEST(SpearmanTest, CadRunsOnSpearmanTsgs) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.5;
  options.use_spearman = true;
  core::CadDetector detector(options);
  const Result<core::DetectionReport> report =
      detector.Detect(scenario.test, &scenario.train);
  ASSERT_TRUE(report.ok());
  // The injected break is still found via rank correlations.
  bool overlap = false;
  for (const core::Anomaly& anomaly : report.value().anomalies) {
    if (anomaly.start_time < scenario.anomaly_end &&
        anomaly.end_time > scenario.anomaly_start) {
      overlap = true;
    }
  }
  EXPECT_TRUE(overlap);
}

// ---- Multithreaded correlation --------------------------------------------

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, BitwiseIdenticalAcrossThreadCounts) {
  const int n_threads = GetParam();
  cad::Rng rng(7);
  ts::MultivariateSeries series(37, 200);
  for (int i = 0; i < 37; ++i) {
    for (int t = 0; t < 200; ++t) series.set_value(i, t, rng.Gaussian());
  }
  const stats::CorrelationMatrix serial = stats::WindowCorrelationMatrix(
      series, 16, 128, stats::CorrelationKind::kPearson, 1);
  const stats::CorrelationMatrix threaded = stats::WindowCorrelationMatrix(
      series, 16, 128, stats::CorrelationKind::kPearson, n_threads);
  for (int i = 0; i < 37; ++i) {
    for (int j = 0; j < 37; ++j) {
      EXPECT_EQ(serial.at(i, j), threaded.at(i, j)) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadSweep,
                         ::testing::Values(2, 3, 4, 8));

TEST(ThreadedCadTest, ReportIdenticalToSerial) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  core::CadDetector serial(options);
  options.n_threads = 4;
  core::CadDetector threaded(options);
  const core::DetectionReport a =
      serial.Detect(scenario.test, &scenario.train).ValueOrDie();
  const core::DetectionReport b =
      threaded.Detect(scenario.test, &scenario.train).ValueOrDie();
  EXPECT_EQ(a.point_labels, b.point_labels);
  EXPECT_EQ(a.point_scores, b.point_scores);
  EXPECT_EQ(a.anomalies.size(), b.anomalies.size());
}

TEST(ThreadedCadTest, OptionsValidateThreadCount) {
  core::CadOptions options;
  options.n_threads = 0;
  EXPECT_FALSE(options.Validate(1000).ok());
}

// ---- Incremental correlation ----------------------------------------------

TEST(IncrementalCadTest, MatchesDirectDetector) {
  // Float rounding differs by ~1e-12, far below every decision threshold,
  // so the detection output must be identical.
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  core::CadDetector direct(options);
  options.incremental_correlation = true;
  core::CadDetector incremental(options);
  const core::DetectionReport a =
      direct.Detect(scenario.test, &scenario.train).ValueOrDie();
  const core::DetectionReport b =
      incremental.Detect(scenario.test, &scenario.train).ValueOrDie();
  EXPECT_EQ(a.point_labels, b.point_labels);
  ASSERT_EQ(a.anomalies.size(), b.anomalies.size());
  for (size_t i = 0; i < a.anomalies.size(); ++i) {
    EXPECT_EQ(a.anomalies[i].sensors, b.anomalies[i].sensors);
    EXPECT_EQ(a.anomalies[i].first_round, b.anomalies[i].first_round);
  }
}

// ---- Parallel ensemble (paper Section IV-F) -------------------------------

core::CadOptions ScenarioCadOptions() {
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  return options;
}

TEST(ParallelEnsembleTest, NameAndDeterminism) {
  std::vector<std::unique_ptr<baselines::Detector>> members;
  members.push_back(
      std::make_unique<baselines::CadAdapter>(ScenarioCadOptions()));
  members.push_back(std::make_unique<baselines::Ecod>());
  baselines::ParallelEnsemble ensemble(std::move(members));
  EXPECT_EQ(ensemble.name(), "CAD+ECOD");
  EXPECT_TRUE(ensemble.deterministic());  // both members deterministic
}

TEST(ParallelEnsembleTest, MaxFusionCoversBothMembersAlarms) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  std::vector<std::unique_ptr<baselines::Detector>> members;
  members.push_back(
      std::make_unique<baselines::CadAdapter>(ScenarioCadOptions()));
  members.push_back(std::make_unique<baselines::Ecod>());
  baselines::ParallelEnsemble ensemble(std::move(members),
                                       baselines::ScoreFusion::kMax);
  ASSERT_TRUE(ensemble.Fit(scenario.train).ok());
  const std::vector<double> fused = ensemble.Score(scenario.test).ValueOrDie();

  // Compare against the members run standalone: after min-max fusion the
  // fused score must dominate (up to normalization) wherever a member
  // peaked; check the injected span specifically.
  baselines::Ecod ecod;
  ASSERT_TRUE(ecod.Fit(scenario.train).ok());
  const std::vector<double> ecod_scores =
      ecod.Score(scenario.test).ValueOrDie();
  double fused_peak = 0.0, ecod_peak = 0.0;
  for (int t = scenario.anomaly_start; t < scenario.anomaly_end; ++t) {
    fused_peak = std::max(fused_peak, fused[t]);
    ecod_peak = std::max(ecod_peak, ecod_scores[t]);
  }
  EXPECT_GT(fused_peak, 0.5 * ecod_peak);
  for (double v : fused) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ParallelEnsembleTest, MeanFusionRuns) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  std::vector<std::unique_ptr<baselines::Detector>> members;
  members.push_back(
      std::make_unique<baselines::CadAdapter>(ScenarioCadOptions()));
  members.push_back(std::make_unique<baselines::Ecod>());
  baselines::ParallelEnsemble ensemble(std::move(members),
                                       baselines::ScoreFusion::kMean);
  ASSERT_TRUE(ensemble.Fit(scenario.train).ok());
  EXPECT_TRUE(ensemble.Score(scenario.test).ok());
}

TEST(ParallelEnsembleTest, StochasticMemberMakesEnsembleStochastic) {
  std::vector<std::unique_ptr<baselines::Detector>> members;
  members.push_back(std::make_unique<baselines::Ecod>());
  members.push_back(std::make_unique<baselines::Iforest>());
  baselines::ParallelEnsemble ensemble(std::move(members));
  EXPECT_FALSE(ensemble.deterministic());
}

}  // namespace
}  // namespace cad
