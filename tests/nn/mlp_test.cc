#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cad::nn {
namespace {

MlpOptions SmallAutoencoder(int dim) {
  MlpOptions options;
  options.layer_sizes = {dim, 8, 3, 8, dim};
  options.output_activation = Activation::kSigmoid;
  options.learning_rate = 5e-3;
  return options;
}

TEST(MlpTest, ForwardShapeAndRange) {
  Rng rng(1);
  Mlp mlp(SmallAutoencoder(4), &rng);
  const std::vector<double> input = {0.1, 0.5, 0.9, 0.3};
  const std::vector<double> out = mlp.Forward(input);
  ASSERT_EQ(out.size(), 4u);
  for (double v : out) {
    EXPECT_GT(v, 0.0);  // sigmoid output
    EXPECT_LT(v, 1.0);
  }
}

TEST(MlpTest, DeterministicPerSeed) {
  Rng rng_a(3), rng_b(3);
  Mlp a(SmallAutoencoder(4), &rng_a);
  Mlp b(SmallAutoencoder(4), &rng_b);
  const std::vector<double> input = {0.2, 0.4, 0.6, 0.8};
  EXPECT_EQ(a.Forward(input), b.Forward(input));
}

TEST(MlpTest, DifferentSeedsDifferentNets) {
  Rng rng_a(3), rng_b(4);
  Mlp a(SmallAutoencoder(4), &rng_a);
  Mlp b(SmallAutoencoder(4), &rng_b);
  const std::vector<double> input = {0.2, 0.4, 0.6, 0.8};
  EXPECT_NE(a.Forward(input), b.Forward(input));
}

TEST(MlpTest, LearnsToReconstructAPattern) {
  Rng rng(7);
  Mlp mlp(SmallAutoencoder(6), &rng);
  // Two recurring patterns.
  const std::vector<std::vector<double>> patterns = {
      {0.9, 0.1, 0.9, 0.1, 0.9, 0.1},
      {0.1, 0.9, 0.1, 0.9, 0.1, 0.9},
  };
  double initial = 0.0;
  for (const auto& p : patterns) initial += mlp.Loss(p, p);
  for (int epoch = 0; epoch < 800; ++epoch) {
    for (const auto& p : patterns) mlp.TrainStep(p, p);
  }
  double trained = 0.0;
  for (const auto& p : patterns) trained += mlp.Loss(p, p);
  EXPECT_LT(trained, initial * 0.2);
  EXPECT_LT(trained / 2.0, 0.01);
}

TEST(MlpTest, AnomalousInputReconstructsWorse) {
  Rng rng(9);
  Mlp mlp(SmallAutoencoder(6), &rng);
  const std::vector<double> normal = {0.8, 0.2, 0.8, 0.2, 0.8, 0.2};
  for (int epoch = 0; epoch < 1000; ++epoch) mlp.TrainStep(normal, normal);
  const std::vector<double> anomaly = {0.2, 0.8, 0.2, 0.8, 0.2, 0.8};
  EXPECT_LT(mlp.Loss(normal, normal), mlp.Loss(anomaly, anomaly));
}

TEST(MlpTest, TrainStepReturnsDecreasingLoss) {
  Rng rng(11);
  MlpOptions options;
  options.layer_sizes = {3, 6, 3};
  options.output_activation = Activation::kIdentity;
  options.learning_rate = 1e-2;
  Mlp mlp(options, &rng);
  const std::vector<double> x = {1.0, -0.5, 0.25};
  const std::vector<double> y = {0.5, 0.5, -0.5};
  const double first = mlp.TrainStep(x, y);
  double last = first;
  for (int i = 0; i < 300; ++i) last = mlp.TrainStep(x, y);
  EXPECT_LT(last, first * 0.05);
}

TEST(MlpTest, InputGradientFlowsBack) {
  Rng rng(13);
  MlpOptions options;
  options.layer_sizes = {2, 4, 2};
  options.output_activation = Activation::kIdentity;
  Mlp mlp(options, &rng);
  std::vector<double> input_gradient;
  const std::vector<double> x = {0.5, -0.5};
  const std::vector<double> y = {1.0, 1.0};
  mlp.TrainStep(x, y, 1.0, &input_gradient);
  ASSERT_EQ(input_gradient.size(), 2u);
  // Gradient should be non-trivial for a random net.
  EXPECT_NE(input_gradient[0], 0.0);
}

TEST(MlpTest, LossScaleScalesUpdates) {
  // loss_scale = 0 must freeze the weights.
  Rng rng(15);
  MlpOptions options;
  options.layer_sizes = {2, 3, 2};
  options.output_activation = Activation::kIdentity;
  Mlp mlp(options, &rng);
  const std::vector<double> x = {0.3, 0.7};
  const std::vector<double> before = mlp.Forward(x);
  const std::vector<double> target = {5.0, -5.0};
  mlp.TrainStep(x, target, /*loss_scale=*/0.0);
  const std::vector<double> after = mlp.Forward(x);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i], after[i], 1e-12);
  }
}

}  // namespace
}  // namespace cad::nn
