#include "ts/normalize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cad::ts {
namespace {

TEST(NormalizeTest, ZScoreCentersAndScales) {
  auto series =
      MultivariateSeries::FromRows({{2, 4, 6, 8}, {10, 10, 10, 10}})
          .ValueOrDie();
  const Scaler scaler = FitZScore(series);
  const MultivariateSeries scaled = Apply(scaler, series);
  // Sensor 0: mean 5, population std sqrt(5).
  double mean = 0.0, var = 0.0;
  for (int t = 0; t < 4; ++t) mean += scaled.value(0, t);
  mean /= 4.0;
  for (int t = 0; t < 4; ++t) {
    var += (scaled.value(0, t) - mean) * (scaled.value(0, t) - mean);
  }
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
  // Constant sensor maps to 0, not NaN.
  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(scaled.value(1, t), 0.0);
  }
}

TEST(NormalizeTest, MinMaxMapsToUnitInterval) {
  auto series = MultivariateSeries::FromRows({{-4, 0, 4}}).ValueOrDie();
  const MultivariateSeries scaled = Apply(FitMinMax(series), series);
  EXPECT_DOUBLE_EQ(scaled.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(scaled.value(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(scaled.value(0, 2), 1.0);
}

TEST(NormalizeTest, ScalerFitOnTrainAppliesToTest) {
  auto train = MultivariateSeries::FromRows({{0, 10}}).ValueOrDie();
  auto test = MultivariateSeries::FromRows({{20}}).ValueOrDie();
  // Min-max fitted on train: test values can exceed [0, 1] — no re-fitting.
  const MultivariateSeries scaled = Apply(FitMinMax(train), test);
  EXPECT_DOUBLE_EQ(scaled.value(0, 0), 2.0);
}

TEST(NormalizeTest, ConstantSensorMinMaxSafe) {
  auto series = MultivariateSeries::FromRows({{3, 3, 3}}).ValueOrDie();
  const MultivariateSeries scaled = Apply(FitMinMax(series), series);
  for (int t = 0; t < 3; ++t) {
    EXPECT_FALSE(std::isnan(scaled.value(0, t)));
    EXPECT_EQ(scaled.value(0, t), 0.0);
  }
}

}  // namespace
}  // namespace cad::ts
