#include "ts/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace cad::ts {
namespace {

TEST(CsvTest, ParseWithHeader) {
  auto series = ParseCsv("a,b\n1,2\n3,4\n5,6\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().n_sensors(), 2);
  EXPECT_EQ(series.value().length(), 3);
  EXPECT_EQ(series.value().sensor_name(0), "a");
  EXPECT_EQ(series.value().value(1, 2), 6.0);  // sensor b, t=2
}

TEST(CsvTest, ParseWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  auto series = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().length(), 2);
  EXPECT_EQ(series.value().sensor_name(0), "s1");
}

TEST(CsvTest, SkipsBlankLines) {
  auto series = ParseCsv("a,b\n1,2\n\n3,4\n\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().length(), 2);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto series = ParseCsv("a,b\n1,2\n3\n");
  EXPECT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumeric) {
  auto series = ParseCsv("a,b\n1,two\n");
  EXPECT_FALSE(series.ok());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
  EXPECT_FALSE(ParseCsv("only,a,header\n").ok());
}

TEST(CsvTest, ParsesScientificAndNegative) {
  auto series = ParseCsv("x\n-1.5\n2e3\n+0.25\n");
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().value(0, 0), -1.5);
  EXPECT_EQ(series.value().value(0, 1), 2000.0);
  EXPECT_EQ(series.value().value(0, 2), 0.25);
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto series = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().n_sensors(), 2);
}

TEST(CsvTest, WriteReadRoundTrip) {
  auto original =
      MultivariateSeries::FromRows({{1.5, -2.25, 3}, {4, 5, 6.125}})
          .ValueOrDie();
  original.set_sensor_name(0, "pressure");
  const std::string path = ::testing::TempDir() + "/cad_csv_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().n_sensors(), 2);
  EXPECT_EQ(loaded.value().length(), 3);
  EXPECT_EQ(loaded.value().sensor_name(0), "pressure");
  for (int i = 0; i < 2; ++i) {
    for (int t = 0; t < 3; ++t) {
      EXPECT_DOUBLE_EQ(loaded.value().value(i, t), original.value(i, t));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsIoError) {
  auto series = ReadCsv("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cad::ts
