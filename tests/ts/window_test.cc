#include "ts/window.h"

#include <gtest/gtest.h>

#include <tuple>

namespace cad::ts {
namespace {

TEST(WindowPlanTest, PaperFormulaExactDivision) {
  // R = (|T| - w) / s + 1 when (|T| - w) % s == 0.
  auto plan = WindowPlan::Make(100, 20, 10).ValueOrDie();
  EXPECT_EQ(plan.rounds(), 9);
  EXPECT_EQ(plan.start(0), 0);
  EXPECT_EQ(plan.end(0), 20);
  EXPECT_EQ(plan.start(8), 80);
  EXPECT_EQ(plan.end(8), 100);
}

TEST(WindowPlanTest, TailTrimmedWhenNotDivisible) {
  // The paper drops trailing columns when (|T|-w) % s != 0.
  auto plan = WindowPlan::Make(105, 20, 10).ValueOrDie();
  EXPECT_EQ(plan.rounds(), 9);
  EXPECT_EQ(plan.end(plan.rounds() - 1), 100);  // last 5 points unused
}

TEST(WindowPlanTest, SingleRoundWhenWindowEqualsLength) {
  auto plan = WindowPlan::Make(50, 50, 5).ValueOrDie();
  EXPECT_EQ(plan.rounds(), 1);
}

TEST(WindowPlanTest, RejectsStepNotSmallerThanWindow) {
  EXPECT_FALSE(WindowPlan::Make(100, 10, 10).ok());
  EXPECT_FALSE(WindowPlan::Make(100, 10, 11).ok());
}

TEST(WindowPlanTest, RejectsNonPositive) {
  EXPECT_FALSE(WindowPlan::Make(100, 0, 1).ok());
  EXPECT_FALSE(WindowPlan::Make(100, 10, 0).ok());
}

TEST(WindowPlanTest, RejectsWindowLargerThanSeries) {
  EXPECT_FALSE(WindowPlan::Make(9, 10, 2).ok());
}

TEST(WindowPlanTest, LastCompleteRound) {
  auto plan = WindowPlan::Make(100, 20, 10).ValueOrDie();
  EXPECT_EQ(plan.LastCompleteRoundAt(10), -1);   // no window fits yet
  EXPECT_EQ(plan.LastCompleteRoundAt(19), 0);    // first window closes at 19
  EXPECT_EQ(plan.LastCompleteRoundAt(28), 0);
  EXPECT_EQ(plan.LastCompleteRoundAt(29), 1);
  EXPECT_EQ(plan.LastCompleteRoundAt(99), 8);
  EXPECT_EQ(plan.LastCompleteRoundAt(500), 8);   // clamped to last round
}

// Property sweep over many (length, window, step) combinations: every round
// must lie within the series, consecutive rounds advance by exactly `step`,
// and R matches the paper's floor formula.
class WindowSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WindowSweep, RoundsAreConsistent) {
  const auto [length, window, step] = GetParam();
  auto plan_result = WindowPlan::Make(length, window, step);
  ASSERT_TRUE(plan_result.ok());
  const WindowPlan& plan = plan_result.value();
  EXPECT_EQ(plan.rounds(), (length - window) / step + 1);
  for (int r = 0; r < plan.rounds(); ++r) {
    EXPECT_GE(plan.start(r), 0);
    EXPECT_LE(plan.end(r), length);
    EXPECT_EQ(plan.end(r) - plan.start(r), window);
    if (r > 0) {
      EXPECT_EQ(plan.start(r) - plan.start(r - 1), step);
    }
    // The round is the most recent complete round at its own end time.
    EXPECT_EQ(plan.LastCompleteRoundAt(plan.end(r) - 1) >= r, true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweep,
    ::testing::Values(std::make_tuple(100, 20, 10),
                      std::make_tuple(1000, 100, 2),
                      std::make_tuple(57, 8, 3), std::make_tuple(64, 32, 1),
                      std::make_tuple(999, 50, 7),
                      std::make_tuple(33, 32, 31)));

}  // namespace
}  // namespace cad::ts
