#include "ts/multivariate_series.h"

#include <gtest/gtest.h>

namespace cad::ts {
namespace {

TEST(MultivariateSeriesTest, ZeroInitialized) {
  MultivariateSeries series(3, 5);
  EXPECT_EQ(series.n_sensors(), 3);
  EXPECT_EQ(series.length(), 5);
  EXPECT_FALSE(series.empty());
  for (int i = 0; i < 3; ++i) {
    for (int t = 0; t < 5; ++t) EXPECT_EQ(series.value(i, t), 0.0);
  }
}

TEST(MultivariateSeriesTest, DefaultIsEmpty) {
  MultivariateSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.n_sensors(), 0);
}

TEST(MultivariateSeriesTest, FromRowsRoundTrips) {
  auto series = MultivariateSeries::FromRows({{1, 2, 3}, {4, 5, 6}});
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series.value().value(0, 2), 3.0);
  EXPECT_EQ(series.value().value(1, 0), 4.0);
}

TEST(MultivariateSeriesTest, FromRowsRejectsRagged) {
  auto series = MultivariateSeries::FromRows({{1, 2, 3}, {4, 5}});
  EXPECT_FALSE(series.ok());
  EXPECT_EQ(series.status().code(), StatusCode::kInvalidArgument);
}

TEST(MultivariateSeriesTest, SensorSpanIsContiguous) {
  auto series =
      MultivariateSeries::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}}).ValueOrDie();
  auto row = series.sensor(1);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 5.0);
  EXPECT_EQ(row[3], 8.0);
}

TEST(MultivariateSeriesTest, SensorWindowSlices) {
  auto series =
      MultivariateSeries::FromRows({{1, 2, 3, 4, 5}}).ValueOrDie();
  auto window = series.sensor_window(0, 1, 3);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0], 2.0);
  EXPECT_EQ(window[2], 4.0);
}

TEST(MultivariateSeriesTest, DefaultSensorNames) {
  MultivariateSeries series(2, 1);
  EXPECT_EQ(series.sensor_name(0), "s1");
  EXPECT_EQ(series.sensor_name(1), "s2");
  series.set_sensor_name(0, "temp");
  EXPECT_EQ(series.sensor_name(0), "temp");
}

TEST(MultivariateSeriesTest, SliceCopiesSubMatrix) {
  auto series =
      MultivariateSeries::FromRows({{1, 2, 3, 4}, {5, 6, 7, 8}}).ValueOrDie();
  auto slice = series.Slice(1, 2);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice.value().length(), 2);
  EXPECT_EQ(slice.value().value(0, 0), 2.0);
  EXPECT_EQ(slice.value().value(1, 1), 7.0);
}

TEST(MultivariateSeriesTest, SliceOutOfRangeFails) {
  MultivariateSeries series(1, 4);
  EXPECT_FALSE(series.Slice(3, 2).ok());
  EXPECT_FALSE(series.Slice(-1, 2).ok());
}

TEST(MultivariateSeriesTest, AppendInTime) {
  auto a = MultivariateSeries::FromRows({{1, 2}}).ValueOrDie();
  auto b = MultivariateSeries::FromRows({{3, 4, 5}}).ValueOrDie();
  ASSERT_TRUE(a.AppendInTime(b).ok());
  EXPECT_EQ(a.length(), 5);
  EXPECT_EQ(a.value(0, 4), 5.0);
}

TEST(MultivariateSeriesTest, AppendRejectsSensorMismatch) {
  MultivariateSeries a(2, 3), b(3, 3);
  EXPECT_FALSE(a.AppendInTime(b).ok());
}

}  // namespace
}  // namespace cad::ts
