// Tests for the data-mining baselines: LOF, ECOD, IForest, and the score
// normalization contract they share.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/detector.h"
#include "baselines/ecod.h"
#include "baselines/iforest.h"
#include "baselines/lof.h"
#include "common/rng.h"

namespace cad::baselines {
namespace {

// A 2-sensor series of correlated Gaussian noise with a burst of extreme
// values in [spike_begin, spike_end).
ts::MultivariateSeries SpikySeries(int length, int spike_begin, int spike_end,
                                   uint64_t seed, double spike_magnitude = 6.0) {
  Rng rng(seed);
  ts::MultivariateSeries series(2, length);
  for (int t = 0; t < length; ++t) {
    const double f = rng.Gaussian();
    const bool spike = t >= spike_begin && t < spike_end;
    series.set_value(0, t, f + 0.2 * rng.Gaussian() +
                               (spike ? spike_magnitude : 0.0));
    series.set_value(1, t, f + 0.2 * rng.Gaussian());
  }
  return series;
}

double MeanScore(const std::vector<double>& scores, int begin, int end) {
  double sum = 0.0;
  for (int t = begin; t < end; ++t) sum += scores[t];
  return sum / std::max(1, end - begin);
}

TEST(MinMaxNormalizeTest, MapsToUnitInterval) {
  std::vector<double> scores = {2.0, 4.0, 3.0};
  MinMaxNormalize(&scores);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[1], 1.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.5);
}

TEST(MinMaxNormalizeTest, ConstantBecomesZero) {
  std::vector<double> scores = {5.0, 5.0};
  MinMaxNormalize(&scores);
  EXPECT_EQ(scores, (std::vector<double>{0.0, 0.0}));
}

TEST(MinMaxNormalizeTest, EmptyIsFine) {
  std::vector<double> scores;
  MinMaxNormalize(&scores);
  EXPECT_TRUE(scores.empty());
}

template <typename DetectorT>
void ExpectSpikeScoredHigher(DetectorT&& detector, uint64_t seed) {
  const ts::MultivariateSeries train = SpikySeries(600, 0, 0, seed);  // clean
  const ts::MultivariateSeries test = SpikySeries(400, 150, 180, seed + 1);
  ASSERT_TRUE(detector.Fit(train).ok());
  const std::vector<double> scores = detector.Score(test).ValueOrDie();
  ASSERT_EQ(scores.size(), 400u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  const double inside = MeanScore(scores, 150, 180);
  const double outside =
      (MeanScore(scores, 0, 150) * 150 + MeanScore(scores, 180, 400) * 220) /
      370.0;
  EXPECT_GT(inside, outside + 0.2);
}

TEST(LofTest, SpikeRegionScoresHigher) { ExpectSpikeScoredHigher(Lof(), 21); }

TEST(EcodTest, SpikeRegionScoresHigher) { ExpectSpikeScoredHigher(Ecod(), 22); }

TEST(IforestTest, SpikeRegionScoresHigher) {
  ExpectSpikeScoredHigher(Iforest(), 23);
}

TEST(LofTest, UnsupervisedFallbackWithoutFit) {
  Lof lof;
  const ts::MultivariateSeries test = SpikySeries(300, 100, 120, 31);
  const std::vector<double> scores = lof.Score(test).ValueOrDie();
  EXPECT_GT(MeanScore(scores, 100, 120), MeanScore(scores, 0, 100));
}

TEST(LofTest, RejectsTinyTrainingData) {
  Lof lof(LofOptions{.k = 20, .max_train_points = 0});
  EXPECT_FALSE(lof.Fit(SpikySeries(10, 0, 0, 1)).ok());
}

TEST(LofTest, RejectsSensorMismatchAfterFit) {
  Lof lof;
  ASSERT_TRUE(lof.Fit(SpikySeries(200, 0, 0, 3)).ok());
  const ts::MultivariateSeries wrong(3, 100);
  EXPECT_FALSE(lof.Score(wrong).ok());
}

TEST(LofTest, DeterministicAcrossRuns) {
  const ts::MultivariateSeries train = SpikySeries(300, 0, 0, 5);
  const ts::MultivariateSeries test = SpikySeries(200, 80, 100, 6);
  Lof a, b;
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_EQ(a.Score(test).ValueOrDie(), b.Score(test).ValueOrDie());
}

TEST(LofTest, SubsamplingCapRespected) {
  LofOptions options;
  options.max_train_points = 100;
  Lof lof(options);
  ASSERT_TRUE(lof.Fit(SpikySeries(1000, 0, 0, 7)).ok());
  // Still functional after subsampling.
  const ts::MultivariateSeries test = SpikySeries(150, 50, 70, 8);
  EXPECT_TRUE(lof.Score(test).ok());
}

TEST(EcodTest, ProvidesSensorScoresForAffectedSensorOnly) {
  Ecod ecod;
  const ts::MultivariateSeries train = SpikySeries(600, 0, 0, 41);
  // Spike only on sensor 0 (SpikySeries construction).
  const ts::MultivariateSeries test = SpikySeries(300, 100, 130, 42);
  ASSERT_TRUE(ecod.Fit(train).ok());
  ASSERT_TRUE(ecod.provides_sensor_scores());
  const auto sensor_scores = ecod.SensorScores(test).ValueOrDie();
  ASSERT_EQ(sensor_scores.size(), 2u);
  const double s0_inside = MeanScore(sensor_scores[0], 100, 130);
  const double s0_outside = MeanScore(sensor_scores[0], 0, 100);
  EXPECT_GT(s0_inside, s0_outside + 0.3);
}

TEST(EcodTest, DeterministicAcrossRuns) {
  const ts::MultivariateSeries test = SpikySeries(300, 100, 120, 43);
  Ecod a, b;
  EXPECT_EQ(a.Score(test).ValueOrDie(), b.Score(test).ValueOrDie());
}

TEST(IforestTest, SeedChangesScores) {
  const ts::MultivariateSeries train = SpikySeries(400, 0, 0, 51);
  const ts::MultivariateSeries test = SpikySeries(200, 80, 100, 52);
  Iforest a(IforestOptions{.n_trees = 50, .subsample = 128, .seed = 1});
  Iforest b(IforestOptions{.n_trees = 50, .subsample = 128, .seed = 2});
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_NE(a.Score(test).ValueOrDie(), b.Score(test).ValueOrDie());
}

TEST(IforestTest, SameSeedSameScores) {
  const ts::MultivariateSeries train = SpikySeries(400, 0, 0, 53);
  const ts::MultivariateSeries test = SpikySeries(200, 80, 100, 54);
  Iforest a(IforestOptions{.seed = 9});
  Iforest b(IforestOptions{.seed = 9});
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_EQ(a.Score(test).ValueOrDie(), b.Score(test).ValueOrDie());
}

TEST(IforestTest, HandlesConstantFeatures) {
  ts::MultivariateSeries train(3, 300);
  Rng rng(55);
  for (int t = 0; t < 300; ++t) {
    train.set_value(0, t, 1.0);  // constant feature
    train.set_value(1, t, rng.Gaussian());
    train.set_value(2, t, rng.Gaussian());
  }
  Iforest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  EXPECT_TRUE(forest.Score(train).ok());
}

}  // namespace
}  // namespace cad::baselines
