// Tests for the deep reconstruction baselines (USAD, RCoders) and the CAD
// adapter + method registry.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/cad_adapter.h"
#include "baselines/method_registry.h"
#include "baselines/rcoders.h"
#include "baselines/usad.h"
#include "testing/synthetic.h"

namespace cad::baselines {
namespace {

double MeanScore(const std::vector<double>& scores, int begin, int end) {
  double sum = 0.0;
  for (int t = begin; t < end; ++t) sum += scores[t];
  return sum / (end - begin);
}

UsadOptions FastUsad(uint64_t seed) {
  UsadOptions options;
  options.epochs = 4;
  options.hidden = 24;
  options.latent = 8;
  options.max_train_windows = 600;
  options.seed = seed;
  return options;
}

RcodersOptions FastRcoders(uint64_t seed) {
  RcodersOptions options;
  options.epochs = 4;
  options.hidden = 24;
  options.latent = 8;
  options.max_train_windows = 600;
  options.seed = seed;
  return options;
}

TEST(UsadTest, ScoresAnomalyRegionHigher) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario(
      /*n_sensors=*/8, /*communities=*/2, /*train_len=*/700, /*test_len=*/800,
      /*seed=*/301);
  Usad usad(FastUsad(1));
  ASSERT_TRUE(usad.Fit(scenario.train).ok());
  const std::vector<double> scores = usad.Score(scenario.test).ValueOrDie();
  ASSERT_EQ(scores.size(), 800u);
  const double inside =
      MeanScore(scores, scenario.anomaly_start, scenario.anomaly_end);
  const double outside = MeanScore(scores, 50, scenario.anomaly_start);
  EXPECT_GT(inside, outside);
}

TEST(UsadTest, RequiresFitBeforeScore) {
  Usad usad(FastUsad(1));
  const ts::MultivariateSeries test(4, 100);
  EXPECT_EQ(usad.Score(test).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(UsadTest, SeedChangesOutput) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario(
      8, 2, 500, 400, 302);
  Usad a(FastUsad(1)), b(FastUsad(2));
  ASSERT_TRUE(a.Fit(scenario.train).ok());
  ASSERT_TRUE(b.Fit(scenario.train).ok());
  EXPECT_NE(a.Score(scenario.test).ValueOrDie(),
            b.Score(scenario.test).ValueOrDie());
}

TEST(UsadTest, RejectsShortTraining) {
  Usad usad(FastUsad(1));
  EXPECT_FALSE(usad.Fit(ts::MultivariateSeries(3, 5)).ok());
}

TEST(RcodersTest, ScoresAnomalyRegionHigher) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario(
      8, 2, 700, 800, 303);
  Rcoders rcoders(FastRcoders(1));
  ASSERT_TRUE(rcoders.Fit(scenario.train).ok());
  const std::vector<double> scores = rcoders.Score(scenario.test).ValueOrDie();
  const double inside =
      MeanScore(scores, scenario.anomaly_start, scenario.anomaly_end);
  const double outside = MeanScore(scores, 50, scenario.anomaly_start);
  EXPECT_GT(inside, outside);
}

TEST(RcodersTest, SensorScoresLocalizeTheBreak) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario(
      8, 2, 700, 800, 304);
  Rcoders rcoders(FastRcoders(2));
  ASSERT_TRUE(rcoders.Fit(scenario.train).ok());
  ASSERT_TRUE(rcoders.provides_sensor_scores());
  const auto sensor_scores =
      rcoders.SensorScores(scenario.test).ValueOrDie();
  ASSERT_EQ(sensor_scores.size(), 8u);

  // Mean in-anomaly error of affected sensors should exceed that of the
  // unaffected sensors.
  double affected = 0.0, unaffected = 0.0;
  int n_affected = 0, n_unaffected = 0;
  for (int v = 0; v < 8; ++v) {
    const double m = MeanScore(sensor_scores[v], scenario.anomaly_start,
                               scenario.anomaly_end);
    const bool is_abnormal =
        std::find(scenario.abnormal_sensors.begin(),
                  scenario.abnormal_sensors.end(),
                  v) != scenario.abnormal_sensors.end();
    if (is_abnormal) {
      affected += m;
      ++n_affected;
    } else {
      unaffected += m;
      ++n_unaffected;
    }
  }
  ASSERT_GT(n_affected, 0);
  ASSERT_GT(n_unaffected, 0);
  EXPECT_GT(affected / n_affected, unaffected / n_unaffected);
}

TEST(CadAdapterTest, ScoreMatchesDetectorAndKeepsReport) {
  const testing::SmallScenario scenario = testing::MakeSmallScenario();
  core::CadOptions options;
  options.window = 40;
  options.step = 4;
  options.k = 3;
  options.tau = 0.55;
  CadAdapter adapter(options);
  ASSERT_TRUE(adapter.Fit(scenario.train).ok());
  const std::vector<double> scores = adapter.Score(scenario.test).ValueOrDie();
  ASSERT_TRUE(adapter.last_report().has_value());
  EXPECT_EQ(scores, adapter.last_report()->point_scores);
  EXPECT_TRUE(adapter.deterministic());

  const auto sensor_scores = adapter.SensorScores(scenario.test).ValueOrDie();
  ASSERT_EQ(sensor_scores.size(), static_cast<size_t>(scenario.test.n_sensors()));
  // Sensor scores are 1 exactly inside detected anomalies for flagged sensors.
  for (const core::Anomaly& anomaly : adapter.last_report()->anomalies) {
    for (int v : anomaly.sensors) {
      EXPECT_EQ(sensor_scores[v][anomaly.start_time], 1.0);
    }
  }
}

TEST(MethodRegistryTest, AllTenMethodsInstantiate) {
  const std::vector<std::string> names = AllMethodNames();
  ASSERT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "CAD");
  core::CadOptions options;
  for (const std::string& name : names) {
    auto method = MakeMethod(name, options, 7);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
  }
}

TEST(MethodRegistryTest, DeterminismFlagsMatchPaperTable8) {
  // Table VIII: CAD, LOF, ECOD, S2G are the four deterministic methods.
  core::CadOptions options;
  const std::vector<std::string> deterministic = {"CAD", "LOF", "ECOD", "S2G"};
  const std::vector<std::string> stochastic = {"IForest", "USAD",  "RCoders",
                                               "SAND",    "SAND*", "NormA"};
  for (const std::string& name : deterministic) {
    EXPECT_TRUE(MakeMethod(name, options, 1)->deterministic()) << name;
  }
  for (const std::string& name : stochastic) {
    EXPECT_FALSE(MakeMethod(name, options, 1)->deterministic()) << name;
  }
}

}  // namespace
}  // namespace cad::baselines
