// Tests for the univariate methods (S2G, SAND, SAND*, NormA), the shared
// subsequence utilities, and the MTS ensemble adapter.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/norma.h"
#include "baselines/s2g.h"
#include "baselines/sand.h"
#include "baselines/subsequence.h"
#include "common/rng.h"

namespace cad::baselines {
namespace {

// A periodic signal with one dissonant stretch.
std::vector<double> PeriodicWithAnomaly(int length, int period,
                                        int anomaly_begin, int anomaly_end,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(length);
  for (int t = 0; t < length; ++t) {
    if (t >= anomaly_begin && t < anomaly_end) {
      x[t] = 2.0 * rng.Gaussian();  // pattern destroyed
    } else {
      x[t] = std::sin(2.0 * M_PI * t / period) + 0.1 * rng.Gaussian();
    }
  }
  return x;
}

double MeanScore(const std::vector<double>& scores, int begin, int end) {
  double sum = 0.0;
  for (int t = begin; t < end; ++t) sum += scores[t];
  return sum / (end - begin);
}

template <typename DetectorT>
void ExpectAnomalousStretchScoresHigher(DetectorT&& detector) {
  const std::vector<double> test =
      PeriodicWithAnomaly(1200, 24, 700, 800, 71);
  const std::vector<double> scores = detector.ScoreSeries({}, test);
  ASSERT_EQ(scores.size(), test.size());
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  const double inside = MeanScore(scores, 700, 800);
  const double outside =
      (MeanScore(scores, 100, 700) * 600 + MeanScore(scores, 800, 1100) * 300) /
      900.0;
  EXPECT_GT(inside, outside + 0.1);
}

TEST(S2gTest, AnomalousStretchScoresHigher) {
  ExpectAnomalousStretchScoresHigher(S2g());
}

TEST(SandTest, AnomalousStretchScoresHigher) {
  ExpectAnomalousStretchScoresHigher(Sand());
}

TEST(SandStarTest, AnomalousStretchScoresHigher) {
  ExpectAnomalousStretchScoresHigher(SandStar());
}

TEST(NormaTest, AnomalousStretchScoresHigher) {
  ExpectAnomalousStretchScoresHigher(Norma());
}

TEST(S2gTest, Deterministic) {
  const std::vector<double> test = PeriodicWithAnomaly(800, 20, 500, 560, 72);
  S2g a, b;
  EXPECT_EQ(a.ScoreSeries({}, test), b.ScoreSeries({}, test));
}

TEST(SandTest, SeedDependent) {
  const std::vector<double> test = PeriodicWithAnomaly(800, 20, 500, 560, 73);
  SandOptions opt_a, opt_b;
  opt_a.seed = 1;
  opt_b.seed = 2;
  Sand a(opt_a), b(opt_b);
  EXPECT_NE(a.ScoreSeries({}, test), b.ScoreSeries({}, test));
}

TEST(NormaTest, TrainHistoryUsedAsNormalModel) {
  const std::vector<double> train = PeriodicWithAnomaly(800, 20, 0, 0, 74);
  const std::vector<double> test = PeriodicWithAnomaly(600, 20, 300, 380, 75);
  Norma norma;
  const std::vector<double> scores = norma.ScoreSeries(train, test);
  EXPECT_GT(MeanScore(scores, 300, 380), MeanScore(scores, 50, 300));
}

TEST(SubsequenceTest, ZNormalizeProperties) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  ZNormalize(&x);
  double mean = 0.0, var = 0.0;
  for (double v : x) mean += v;
  mean /= x.size();
  for (double v : x) var += (v - mean) * (v - mean);
  var /= x.size();
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
  std::vector<double> flat = {2, 2, 2};
  ZNormalize(&flat);
  EXPECT_EQ(flat, (std::vector<double>{0, 0, 0}));
}

TEST(SubsequenceTest, ExtractDropsTail) {
  const std::vector<double> x = {0, 1, 2, 3, 4, 5, 6};
  const auto subs = ExtractSubsequences(x, 3, 2);
  ASSERT_EQ(subs.size(), 3u);  // starts 0, 2, 4; start 6 would overrun
  EXPECT_EQ(subs[2], (std::vector<double>{4, 5, 6}));
}

TEST(SubsequenceTest, SbdZeroForIdenticalShapes) {
  std::vector<double> a = {0, 1, 0, -1, 0, 1, 0, -1};
  ZNormalize(&a);
  EXPECT_NEAR(ShapeBasedDistance(a, a, 2), 0.0, 1e-9);
}

TEST(SubsequenceTest, SbdFindsShiftedMatch) {
  // b is a circularly shifted version of a; with enough shift allowance the
  // distance is much smaller than the unshifted mismatch.
  std::vector<double> a(32), b(32);
  for (int i = 0; i < 32; ++i) {
    a[i] = std::sin(2.0 * M_PI * i / 16.0);
    b[i] = std::sin(2.0 * M_PI * (i + 4) / 16.0);
  }
  ZNormalize(&a);
  ZNormalize(&b);
  const double aligned = ShapeBasedDistance(a, b, 8);
  const double unaligned = ShapeBasedDistance(a, b, 0);
  EXPECT_LT(aligned, unaligned * 0.5);
}

TEST(SubsequenceTest, SbdRange) {
  std::vector<double> a = {1, -1, 1, -1};
  std::vector<double> b = {-1, 1, -1, 1};
  ZNormalize(&a);
  ZNormalize(&b);
  const double d = ShapeBasedDistance(a, b, 0);
  EXPECT_NEAR(d, 2.0, 1e-9);  // perfectly anti-correlated, no shift allowed
}

TEST(SubsequenceTest, SpreadAveragesCoverage) {
  // Two subsequences of length 3 stride 2 over length 5: scores {1, 3}.
  // Coverage: t0,t1 by sub0; t2 by both; t3,t4 by sub1.
  const std::vector<double> point =
      SpreadSubsequenceScores({1.0, 3.0}, 3, 2, 5);
  EXPECT_DOUBLE_EQ(point[0], 1.0);
  EXPECT_DOUBLE_EQ(point[2], 2.0);
  EXPECT_DOUBLE_EQ(point[4], 3.0);
}

TEST(UnivariateEnsembleTest, AveragesAcrossSensors) {
  // Ensemble over a 3-sensor MTS where only sensor 0 carries the anomaly;
  // the mean still rises inside the anomalous stretch.
  ts::MultivariateSeries test(3, 900);
  Rng rng(76);
  const std::vector<double> anomalous =
      PeriodicWithAnomaly(900, 24, 500, 580, 77);
  for (int t = 0; t < 900; ++t) {
    test.set_value(0, t, anomalous[t]);
    test.set_value(1, t, std::sin(2.0 * M_PI * t / 24) + 0.1 * rng.Gaussian());
    test.set_value(2, t, std::cos(2.0 * M_PI * t / 24) + 0.1 * rng.Gaussian());
  }
  auto ensemble = MakeS2gEnsemble();
  EXPECT_EQ(ensemble->name(), "S2G");
  EXPECT_TRUE(ensemble->deterministic());
  const std::vector<double> scores = ensemble->Score(test).ValueOrDie();
  EXPECT_GT(MeanScore(scores, 500, 580), MeanScore(scores, 100, 500));
}

TEST(UnivariateEnsembleTest, RejectsEmptySeries) {
  auto ensemble = MakeNormaEnsemble();
  EXPECT_FALSE(ensemble->Score(ts::MultivariateSeries()).ok());
}

}  // namespace
}  // namespace cad::baselines
