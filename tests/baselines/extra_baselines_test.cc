// Tests for the extended related-work baselines: kNN, HBOS, COPOD, PCA,
// LODA and the Matrix Profile.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/copod.h"
#include "baselines/hbos.h"
#include "baselines/knn.h"
#include "baselines/loda.h"
#include "baselines/matrix_profile.h"
#include "baselines/method_registry.h"
#include "baselines/pca_detector.h"
#include "common/rng.h"

namespace cad::baselines {
namespace {

ts::MultivariateSeries SpikySeries(int length, int spike_begin, int spike_end,
                                   uint64_t seed, double magnitude = 6.0) {
  Rng rng(seed);
  ts::MultivariateSeries series(3, length);
  for (int t = 0; t < length; ++t) {
    const double f = rng.Gaussian();
    const bool spike = t >= spike_begin && t < spike_end;
    series.set_value(0, t, f + 0.2 * rng.Gaussian() + (spike ? magnitude : 0.0));
    series.set_value(1, t, f + 0.2 * rng.Gaussian());
    series.set_value(2, t, -f + 0.2 * rng.Gaussian());
  }
  return series;
}

double MeanScore(const std::vector<double>& scores, int begin, int end) {
  double sum = 0.0;
  for (int t = begin; t < end; ++t) sum += scores[t];
  return sum / (end - begin);
}

template <typename DetectorT>
void ExpectSpikeScoredHigher(DetectorT&& detector, uint64_t seed) {
  const ts::MultivariateSeries train = SpikySeries(500, 0, 0, seed);
  const ts::MultivariateSeries test = SpikySeries(400, 150, 180, seed + 1);
  ASSERT_TRUE(detector.Fit(train).ok());
  const std::vector<double> scores = detector.Score(test).ValueOrDie();
  ASSERT_EQ(scores.size(), 400u);
  const double inside = MeanScore(scores, 150, 180);
  const double outside =
      (MeanScore(scores, 0, 150) * 150 + MeanScore(scores, 180, 400) * 220) /
      370.0;
  EXPECT_GT(inside, outside + 0.2) << "detector failed to rank the spike";
}

TEST(KnnDetectorTest, SpikeScoredHigher) {
  ExpectSpikeScoredHigher(KnnDetector(), 61);
}
TEST(HbosTest, SpikeScoredHigher) { ExpectSpikeScoredHigher(Hbos(), 62); }
TEST(CopodTest, SpikeScoredHigher) { ExpectSpikeScoredHigher(Copod(), 63); }
TEST(PcaDetectorTest, SpikeScoredHigher) {
  ExpectSpikeScoredHigher(PcaDetector(), 64);
}
TEST(LodaTest, SpikeScoredHigher) { ExpectSpikeScoredHigher(Loda(), 65); }

TEST(PcaDetectorTest, CatchesCorrelationViolationWithNormalMarginals) {
  // Sensors 1 and 2 are anti-correlated (see SpikySeries). Breaking that
  // relation without extreme values is invisible to per-dimension methods
  // (HBOS) but visible to PCA's minor components.
  Rng rng(66);
  const ts::MultivariateSeries train = SpikySeries(600, 0, 0, 67);
  ts::MultivariateSeries test = SpikySeries(400, 0, 0, 68);
  for (int t = 150; t < 180; ++t) {
    // Make sensor 2 follow +f instead of -f: marginally unremarkable,
    // jointly impossible.
    test.set_value(2, t, -test.value(2, t));
  }
  PcaDetector pca;
  ASSERT_TRUE(pca.Fit(train).ok());
  const std::vector<double> pca_scores = pca.Score(test).ValueOrDie();
  // Scores are min-max compressed (the anomaly peak defines 1.0), so compare
  // relatively: the violation region scores many times above the baseline.
  EXPECT_GT(MeanScore(pca_scores, 150, 180),
            5.0 * MeanScore(pca_scores, 0, 150));

  Hbos hbos;
  ASSERT_TRUE(hbos.Fit(train).ok());
  const std::vector<double> hbos_scores = hbos.Score(test).ValueOrDie();
  EXPECT_LT(MeanScore(hbos_scores, 150, 180),
            MeanScore(hbos_scores, 0, 150) + 0.2);
}

TEST(LodaTest, SeedDependent) {
  const ts::MultivariateSeries train = SpikySeries(400, 0, 0, 70);
  const ts::MultivariateSeries test = SpikySeries(300, 100, 120, 71);
  Loda a(LodaOptions{.n_projections = 20, .seed = 1});
  Loda b(LodaOptions{.n_projections = 20, .seed = 2});
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  EXPECT_NE(a.Score(test).ValueOrDie(), b.Score(test).ValueOrDie());
}

TEST(MatrixProfileTest, SelfJoinFindsPlantedDiscord) {
  // A periodic signal with one dissonant stretch: the discord subsequences
  // carry the largest profile values.
  Rng rng(72);
  std::vector<double> x(800);
  for (int t = 0; t < 800; ++t) {
    if (t >= 500 && t < 540) {
      x[t] = 1.5 * rng.Gaussian();
    } else {
      x[t] = std::sin(2.0 * M_PI * t / 20.0) + 0.05 * rng.Gaussian();
    }
  }
  const std::vector<double> profile = SelfJoinMatrixProfile(x, 40);
  int argmax = 0;
  for (size_t i = 1; i < profile.size(); ++i) {
    if (profile[i] > profile[argmax]) argmax = static_cast<int>(i);
  }
  // The discord subsequence overlaps the planted stretch.
  EXPECT_GE(argmax + 40, 500);
  EXPECT_LE(argmax, 540);
}

TEST(MatrixProfileTest, PerfectlyPeriodicSignalHasLowProfile) {
  std::vector<double> x(400);
  for (int t = 0; t < 400; ++t) x[t] = std::sin(2.0 * M_PI * t / 25.0);
  const std::vector<double> profile = SelfJoinMatrixProfile(x, 50);
  for (double v : profile) EXPECT_LT(v, 0.5);
}

TEST(MatrixProfileTest, DetectorScoresAnomalousStretchHigher) {
  Rng rng(73);
  std::vector<double> test(900);
  for (int t = 0; t < 900; ++t) {
    test[t] = (t >= 600 && t < 680)
                  ? 2.0 * rng.Gaussian()
                  : std::sin(2.0 * M_PI * t / 24.0) + 0.1 * rng.Gaussian();
  }
  MatrixProfileDetector detector;
  const std::vector<double> scores = detector.ScoreSeries({}, test);
  EXPECT_GT(MeanScore(scores, 600, 680), MeanScore(scores, 100, 600) + 0.15);
}

TEST(ExtendedRegistryTest, AllSixteenMethodsInstantiate) {
  const std::vector<std::string> names = ExtendedMethodNames();
  ASSERT_EQ(names.size(), 16u);
  core::CadOptions options;
  for (const std::string& name : names) {
    auto method = MakeMethod(name, options, 3);
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
  }
}

TEST(ExtendedRegistryTest, NewDeterminismFlags) {
  core::CadOptions options;
  for (const char* name : {"kNN", "HBOS", "COPOD", "PCA", "MP"}) {
    EXPECT_TRUE(MakeMethod(name, options, 1)->deterministic()) << name;
  }
  EXPECT_FALSE(MakeMethod("LODA", options, 1)->deterministic());
}

}  // namespace
}  // namespace cad::baselines
