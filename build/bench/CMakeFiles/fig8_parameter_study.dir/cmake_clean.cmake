file(REMOVE_RECURSE
  "CMakeFiles/fig8_parameter_study.dir/fig8_parameter_study.cc.o"
  "CMakeFiles/fig8_parameter_study.dir/fig8_parameter_study.cc.o.d"
  "fig8_parameter_study"
  "fig8_parameter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_parameter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
