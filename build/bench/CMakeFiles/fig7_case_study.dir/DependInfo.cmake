
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_case_study.cc" "bench/CMakeFiles/fig7_case_study.dir/fig7_case_study.cc.o" "gcc" "bench/CMakeFiles/fig7_case_study.dir/fig7_case_study.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cad_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cad_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cad_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/datasets/CMakeFiles/cad_datasets.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cad_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/cad_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/cad_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
