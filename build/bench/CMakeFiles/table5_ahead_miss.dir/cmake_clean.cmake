file(REMOVE_RECURSE
  "CMakeFiles/table5_ahead_miss.dir/table5_ahead_miss.cc.o"
  "CMakeFiles/table5_ahead_miss.dir/table5_ahead_miss.cc.o.d"
  "table5_ahead_miss"
  "table5_ahead_miss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ahead_miss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
