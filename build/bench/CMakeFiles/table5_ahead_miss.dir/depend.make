# Empty dependencies file for table5_ahead_miss.
# This may be replaced when dependencies are built.
