# Empty dependencies file for extended_methods.
# This may be replaced when dependencies are built.
