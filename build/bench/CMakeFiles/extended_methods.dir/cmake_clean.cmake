file(REMOVE_RECURSE
  "CMakeFiles/extended_methods.dir/extended_methods.cc.o"
  "CMakeFiles/extended_methods.dir/extended_methods.cc.o.d"
  "extended_methods"
  "extended_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
