file(REMOVE_RECURSE
  "CMakeFiles/table3_abnormal_time.dir/table3_abnormal_time.cc.o"
  "CMakeFiles/table3_abnormal_time.dir/table3_abnormal_time.cc.o.d"
  "table3_abnormal_time"
  "table3_abnormal_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_abnormal_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
