# Empty compiler generated dependencies file for table3_abnormal_time.
# This may be replaced when dependencies are built.
