file(REMOVE_RECURSE
  "CMakeFiles/table8_robustness.dir/table8_robustness.cc.o"
  "CMakeFiles/table8_robustness.dir/table8_robustness.cc.o.d"
  "table8_robustness"
  "table8_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
