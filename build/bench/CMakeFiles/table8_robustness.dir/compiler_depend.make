# Empty compiler generated dependencies file for table8_robustness.
# This may be replaced when dependencies are built.
