file(REMOVE_RECURSE
  "libcad_bench_harness.a"
)
