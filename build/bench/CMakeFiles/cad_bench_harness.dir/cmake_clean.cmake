file(REMOVE_RECURSE
  "CMakeFiles/cad_bench_harness.dir/harness/harness.cc.o"
  "CMakeFiles/cad_bench_harness.dir/harness/harness.cc.o.d"
  "libcad_bench_harness.a"
  "libcad_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
