# Empty compiler generated dependencies file for cad_bench_harness.
# This may be replaced when dependencies are built.
