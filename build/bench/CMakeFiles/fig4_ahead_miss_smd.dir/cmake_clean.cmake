file(REMOVE_RECURSE
  "CMakeFiles/fig4_ahead_miss_smd.dir/fig4_ahead_miss_smd.cc.o"
  "CMakeFiles/fig4_ahead_miss_smd.dir/fig4_ahead_miss_smd.cc.o.d"
  "fig4_ahead_miss_smd"
  "fig4_ahead_miss_smd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ahead_miss_smd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
