# Empty dependencies file for fig4_ahead_miss_smd.
# This may be replaced when dependencies are built.
