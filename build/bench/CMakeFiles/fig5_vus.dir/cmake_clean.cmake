file(REMOVE_RECURSE
  "CMakeFiles/fig5_vus.dir/fig5_vus.cc.o"
  "CMakeFiles/fig5_vus.dir/fig5_vus.cc.o.d"
  "fig5_vus"
  "fig5_vus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
