# Empty compiler generated dependencies file for fig5_vus.
# This may be replaced when dependencies are built.
