# Empty dependencies file for table6_training_time.
# This may be replaced when dependencies are built.
