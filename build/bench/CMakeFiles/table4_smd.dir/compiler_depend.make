# Empty compiler generated dependencies file for table4_smd.
# This may be replaced when dependencies are built.
