file(REMOVE_RECURSE
  "CMakeFiles/table4_smd.dir/table4_smd.cc.o"
  "CMakeFiles/table4_smd.dir/table4_smd.cc.o.d"
  "table4_smd"
  "table4_smd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_smd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
