# Empty compiler generated dependencies file for table7_testing_time.
# This may be replaced when dependencies are built.
