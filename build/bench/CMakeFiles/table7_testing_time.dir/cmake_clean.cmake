file(REMOVE_RECURSE
  "CMakeFiles/table7_testing_time.dir/table7_testing_time.cc.o"
  "CMakeFiles/table7_testing_time.dir/table7_testing_time.cc.o.d"
  "table7_testing_time"
  "table7_testing_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_testing_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
