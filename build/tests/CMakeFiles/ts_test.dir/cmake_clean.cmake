file(REMOVE_RECURSE
  "CMakeFiles/ts_test.dir/ts/csv_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/csv_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/multivariate_series_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/multivariate_series_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/normalize_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/normalize_test.cc.o.d"
  "CMakeFiles/ts_test.dir/ts/window_test.cc.o"
  "CMakeFiles/ts_test.dir/ts/window_test.cc.o.d"
  "ts_test"
  "ts_test.pdb"
  "ts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
