# Empty dependencies file for detect_csv.
# This may be replaced when dependencies are built.
