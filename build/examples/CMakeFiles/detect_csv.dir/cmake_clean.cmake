file(REMOVE_RECURSE
  "CMakeFiles/detect_csv.dir/detect_csv.cpp.o"
  "CMakeFiles/detect_csv.dir/detect_csv.cpp.o.d"
  "detect_csv"
  "detect_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
