file(REMOVE_RECURSE
  "libcad_eval.a"
)
