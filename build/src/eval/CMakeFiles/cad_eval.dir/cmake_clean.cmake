file(REMOVE_RECURSE
  "CMakeFiles/cad_eval.dir/adjust.cc.o"
  "CMakeFiles/cad_eval.dir/adjust.cc.o.d"
  "CMakeFiles/cad_eval.dir/ahead_miss.cc.o"
  "CMakeFiles/cad_eval.dir/ahead_miss.cc.o.d"
  "CMakeFiles/cad_eval.dir/range_metrics.cc.o"
  "CMakeFiles/cad_eval.dir/range_metrics.cc.o.d"
  "CMakeFiles/cad_eval.dir/sensor_eval.cc.o"
  "CMakeFiles/cad_eval.dir/sensor_eval.cc.o.d"
  "CMakeFiles/cad_eval.dir/threshold.cc.o"
  "CMakeFiles/cad_eval.dir/threshold.cc.o.d"
  "libcad_eval.a"
  "libcad_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
