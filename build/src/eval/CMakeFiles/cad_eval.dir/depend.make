# Empty dependencies file for cad_eval.
# This may be replaced when dependencies are built.
