
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/adjust.cc" "src/eval/CMakeFiles/cad_eval.dir/adjust.cc.o" "gcc" "src/eval/CMakeFiles/cad_eval.dir/adjust.cc.o.d"
  "/root/repo/src/eval/ahead_miss.cc" "src/eval/CMakeFiles/cad_eval.dir/ahead_miss.cc.o" "gcc" "src/eval/CMakeFiles/cad_eval.dir/ahead_miss.cc.o.d"
  "/root/repo/src/eval/range_metrics.cc" "src/eval/CMakeFiles/cad_eval.dir/range_metrics.cc.o" "gcc" "src/eval/CMakeFiles/cad_eval.dir/range_metrics.cc.o.d"
  "/root/repo/src/eval/sensor_eval.cc" "src/eval/CMakeFiles/cad_eval.dir/sensor_eval.cc.o" "gcc" "src/eval/CMakeFiles/cad_eval.dir/sensor_eval.cc.o.d"
  "/root/repo/src/eval/threshold.cc" "src/eval/CMakeFiles/cad_eval.dir/threshold.cc.o" "gcc" "src/eval/CMakeFiles/cad_eval.dir/threshold.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
