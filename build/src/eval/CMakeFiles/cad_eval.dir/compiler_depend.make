# Empty compiler generated dependencies file for cad_eval.
# This may be replaced when dependencies are built.
