# Empty compiler generated dependencies file for cad_baselines.
# This may be replaced when dependencies are built.
