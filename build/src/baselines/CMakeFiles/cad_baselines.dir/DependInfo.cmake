
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/copod.cc" "src/baselines/CMakeFiles/cad_baselines.dir/copod.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/copod.cc.o.d"
  "/root/repo/src/baselines/detector.cc" "src/baselines/CMakeFiles/cad_baselines.dir/detector.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/detector.cc.o.d"
  "/root/repo/src/baselines/ecod.cc" "src/baselines/CMakeFiles/cad_baselines.dir/ecod.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/ecod.cc.o.d"
  "/root/repo/src/baselines/hbos.cc" "src/baselines/CMakeFiles/cad_baselines.dir/hbos.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/hbos.cc.o.d"
  "/root/repo/src/baselines/iforest.cc" "src/baselines/CMakeFiles/cad_baselines.dir/iforest.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/iforest.cc.o.d"
  "/root/repo/src/baselines/knn.cc" "src/baselines/CMakeFiles/cad_baselines.dir/knn.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/knn.cc.o.d"
  "/root/repo/src/baselines/loda.cc" "src/baselines/CMakeFiles/cad_baselines.dir/loda.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/loda.cc.o.d"
  "/root/repo/src/baselines/lof.cc" "src/baselines/CMakeFiles/cad_baselines.dir/lof.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/lof.cc.o.d"
  "/root/repo/src/baselines/matrix_profile.cc" "src/baselines/CMakeFiles/cad_baselines.dir/matrix_profile.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/matrix_profile.cc.o.d"
  "/root/repo/src/baselines/method_registry.cc" "src/baselines/CMakeFiles/cad_baselines.dir/method_registry.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/method_registry.cc.o.d"
  "/root/repo/src/baselines/norma.cc" "src/baselines/CMakeFiles/cad_baselines.dir/norma.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/norma.cc.o.d"
  "/root/repo/src/baselines/parallel_ensemble.cc" "src/baselines/CMakeFiles/cad_baselines.dir/parallel_ensemble.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/parallel_ensemble.cc.o.d"
  "/root/repo/src/baselines/pca_detector.cc" "src/baselines/CMakeFiles/cad_baselines.dir/pca_detector.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/pca_detector.cc.o.d"
  "/root/repo/src/baselines/rcoders.cc" "src/baselines/CMakeFiles/cad_baselines.dir/rcoders.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/rcoders.cc.o.d"
  "/root/repo/src/baselines/s2g.cc" "src/baselines/CMakeFiles/cad_baselines.dir/s2g.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/s2g.cc.o.d"
  "/root/repo/src/baselines/sand.cc" "src/baselines/CMakeFiles/cad_baselines.dir/sand.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/sand.cc.o.d"
  "/root/repo/src/baselines/subsequence.cc" "src/baselines/CMakeFiles/cad_baselines.dir/subsequence.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/subsequence.cc.o.d"
  "/root/repo/src/baselines/univariate.cc" "src/baselines/CMakeFiles/cad_baselines.dir/univariate.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/univariate.cc.o.d"
  "/root/repo/src/baselines/usad.cc" "src/baselines/CMakeFiles/cad_baselines.dir/usad.cc.o" "gcc" "src/baselines/CMakeFiles/cad_baselines.dir/usad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/cad_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cad_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cad_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cad_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
