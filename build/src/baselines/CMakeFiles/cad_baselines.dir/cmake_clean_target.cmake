file(REMOVE_RECURSE
  "libcad_baselines.a"
)
