
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cad_detector.cc" "src/core/CMakeFiles/cad_core.dir/cad_detector.cc.o" "gcc" "src/core/CMakeFiles/cad_core.dir/cad_detector.cc.o.d"
  "/root/repo/src/core/co_appearance.cc" "src/core/CMakeFiles/cad_core.dir/co_appearance.cc.o" "gcc" "src/core/CMakeFiles/cad_core.dir/co_appearance.cc.o.d"
  "/root/repo/src/core/report_io.cc" "src/core/CMakeFiles/cad_core.dir/report_io.cc.o" "gcc" "src/core/CMakeFiles/cad_core.dir/report_io.cc.o.d"
  "/root/repo/src/core/round_processor.cc" "src/core/CMakeFiles/cad_core.dir/round_processor.cc.o" "gcc" "src/core/CMakeFiles/cad_core.dir/round_processor.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/cad_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/cad_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/cad_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/cad_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cad_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
