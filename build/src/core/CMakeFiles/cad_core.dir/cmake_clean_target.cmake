file(REMOVE_RECURSE
  "libcad_core.a"
)
