# Empty dependencies file for cad_core.
# This may be replaced when dependencies are built.
