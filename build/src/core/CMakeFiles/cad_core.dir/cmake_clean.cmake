file(REMOVE_RECURSE
  "CMakeFiles/cad_core.dir/cad_detector.cc.o"
  "CMakeFiles/cad_core.dir/cad_detector.cc.o.d"
  "CMakeFiles/cad_core.dir/co_appearance.cc.o"
  "CMakeFiles/cad_core.dir/co_appearance.cc.o.d"
  "CMakeFiles/cad_core.dir/report_io.cc.o"
  "CMakeFiles/cad_core.dir/report_io.cc.o.d"
  "CMakeFiles/cad_core.dir/round_processor.cc.o"
  "CMakeFiles/cad_core.dir/round_processor.cc.o.d"
  "CMakeFiles/cad_core.dir/streaming.cc.o"
  "CMakeFiles/cad_core.dir/streaming.cc.o.d"
  "libcad_core.a"
  "libcad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
