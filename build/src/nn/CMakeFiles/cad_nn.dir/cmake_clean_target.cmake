file(REMOVE_RECURSE
  "libcad_nn.a"
)
