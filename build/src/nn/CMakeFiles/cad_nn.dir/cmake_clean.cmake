file(REMOVE_RECURSE
  "CMakeFiles/cad_nn.dir/mlp.cc.o"
  "CMakeFiles/cad_nn.dir/mlp.cc.o.d"
  "libcad_nn.a"
  "libcad_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
