# Empty dependencies file for cad_nn.
# This may be replaced when dependencies are built.
