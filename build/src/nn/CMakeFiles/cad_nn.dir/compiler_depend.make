# Empty compiler generated dependencies file for cad_nn.
# This may be replaced when dependencies are built.
