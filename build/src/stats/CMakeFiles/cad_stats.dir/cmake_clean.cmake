file(REMOVE_RECURSE
  "CMakeFiles/cad_stats.dir/autocorrelation.cc.o"
  "CMakeFiles/cad_stats.dir/autocorrelation.cc.o.d"
  "CMakeFiles/cad_stats.dir/correlation.cc.o"
  "CMakeFiles/cad_stats.dir/correlation.cc.o.d"
  "CMakeFiles/cad_stats.dir/eigen.cc.o"
  "CMakeFiles/cad_stats.dir/eigen.cc.o.d"
  "CMakeFiles/cad_stats.dir/rolling_correlation.cc.o"
  "CMakeFiles/cad_stats.dir/rolling_correlation.cc.o.d"
  "libcad_stats.a"
  "libcad_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
