
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cc" "src/stats/CMakeFiles/cad_stats.dir/autocorrelation.cc.o" "gcc" "src/stats/CMakeFiles/cad_stats.dir/autocorrelation.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/cad_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/cad_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/eigen.cc" "src/stats/CMakeFiles/cad_stats.dir/eigen.cc.o" "gcc" "src/stats/CMakeFiles/cad_stats.dir/eigen.cc.o.d"
  "/root/repo/src/stats/rolling_correlation.cc" "src/stats/CMakeFiles/cad_stats.dir/rolling_correlation.cc.o" "gcc" "src/stats/CMakeFiles/cad_stats.dir/rolling_correlation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ts/CMakeFiles/cad_ts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
