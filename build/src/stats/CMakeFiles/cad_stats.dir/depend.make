# Empty dependencies file for cad_stats.
# This may be replaced when dependencies are built.
