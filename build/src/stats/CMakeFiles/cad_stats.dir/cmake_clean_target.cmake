file(REMOVE_RECURSE
  "libcad_stats.a"
)
