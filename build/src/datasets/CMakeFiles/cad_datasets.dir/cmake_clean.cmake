file(REMOVE_RECURSE
  "CMakeFiles/cad_datasets.dir/anomaly_injector.cc.o"
  "CMakeFiles/cad_datasets.dir/anomaly_injector.cc.o.d"
  "CMakeFiles/cad_datasets.dir/dataset_io.cc.o"
  "CMakeFiles/cad_datasets.dir/dataset_io.cc.o.d"
  "CMakeFiles/cad_datasets.dir/generator.cc.o"
  "CMakeFiles/cad_datasets.dir/generator.cc.o.d"
  "CMakeFiles/cad_datasets.dir/registry.cc.o"
  "CMakeFiles/cad_datasets.dir/registry.cc.o.d"
  "libcad_datasets.a"
  "libcad_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
