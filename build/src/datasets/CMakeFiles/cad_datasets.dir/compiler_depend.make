# Empty compiler generated dependencies file for cad_datasets.
# This may be replaced when dependencies are built.
