file(REMOVE_RECURSE
  "libcad_datasets.a"
)
