# Empty dependencies file for cad_graph.
# This may be replaced when dependencies are built.
