file(REMOVE_RECURSE
  "libcad_graph.a"
)
