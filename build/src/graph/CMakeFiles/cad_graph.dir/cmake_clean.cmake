file(REMOVE_RECURSE
  "CMakeFiles/cad_graph.dir/knn_graph.cc.o"
  "CMakeFiles/cad_graph.dir/knn_graph.cc.o.d"
  "CMakeFiles/cad_graph.dir/louvain.cc.o"
  "CMakeFiles/cad_graph.dir/louvain.cc.o.d"
  "libcad_graph.a"
  "libcad_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
