file(REMOVE_RECURSE
  "CMakeFiles/cad_ts.dir/csv.cc.o"
  "CMakeFiles/cad_ts.dir/csv.cc.o.d"
  "CMakeFiles/cad_ts.dir/normalize.cc.o"
  "CMakeFiles/cad_ts.dir/normalize.cc.o.d"
  "libcad_ts.a"
  "libcad_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
