file(REMOVE_RECURSE
  "libcad_ts.a"
)
