# Empty compiler generated dependencies file for cad_ts.
# This may be replaced when dependencies are built.
