# Empty dependencies file for cad_ts.
# This may be replaced when dependencies are built.
