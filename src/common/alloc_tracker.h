// Thread-local heap-allocation counting, used to *prove* (not estimate) that
// the steady-state detection round performs zero allocations.
//
// Two halves:
//  - This header: a thread-local counter plus accessors. Always available,
//    costs nothing unless something bumps it.
//  - The optional `cad_alloc_hook` library (src/common/alloc_hook.cc): a
//    global operator new/delete replacement that bumps the counter on every
//    heap allocation made by the linking binary. Only binaries that link the
//    hook *and* call LinkAllocHook() observe real counts; everywhere else
//    ThreadAllocCount() stays at its last value (0) and the
//    `cad_round_allocs` gauge derived from it reads 0 trivially.
//
// The counter is thread-local so one instrumented round measured on the
// calling thread is not polluted by concurrent allocations elsewhere.
#ifndef CAD_COMMON_ALLOC_TRACKER_H_
#define CAD_COMMON_ALLOC_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace cad::common {

namespace internal {
inline thread_local int64_t g_thread_allocs = 0;
inline std::atomic<bool> g_alloc_hook_installed{false};
}  // namespace internal

// Number of heap allocations observed on this thread since it started
// (monotonic; callers measure deltas). 0 forever unless the hook is linked.
inline int64_t ThreadAllocCount() { return internal::g_thread_allocs; }

// Called by the replaced operator new in alloc_hook.cc.
inline void BumpThreadAllocCount() { ++internal::g_thread_allocs; }

// True once LinkAllocHook() has run, i.e. the binary really replaces
// operator new. Lets tests distinguish "zero allocations" from "not
// measuring".
inline bool AllocHookInstalled() {
  return internal::g_alloc_hook_installed.load(std::memory_order_relaxed);
}

// Defined in alloc_hook.cc. Calling it forces the hook's object file (and
// with it the operator new/delete replacement) into the link, and marks the
// hook installed. Binaries that want real counts call this once at startup.
void LinkAllocHook();

}  // namespace cad::common

#endif  // CAD_COMMON_ALLOC_TRACKER_H_
