// Status and Result<T>: lightweight, exception-free error handling in the
// style of RocksDB/Arrow. Library entry points that can fail return a Status
// (or a Result<T> when they also produce a value); internal invariant
// violations abort via CAD_CHECK (check/check.h, which also provides the
// Status-propagating CAD_ENSURE built on the factories below).
#ifndef CAD_COMMON_STATUS_H_
#define CAD_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace cad {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

// Value-semantic status: kOk or an error code plus message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or an error Status. ValueOrDie() aborts on error
// with the status message, mirroring Arrow's Result semantics.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(payload_); }

  [[nodiscard]] const Status& status() const {
    static const Status kOk = Status::Ok();
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::get<T>(std::move(payload_));
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(payload_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace cad

// Propagates a non-OK Status from an expression.
#define CAD_RETURN_NOT_OK(expr)                \
  do {                                         \
    ::cad::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // CAD_COMMON_STATUS_H_
