// Wall-clock stopwatch used by the benchmark harness to report training /
// testing times in the same units as the paper (seconds, milliseconds).
#ifndef CAD_COMMON_STOPWATCH_H_
#define CAD_COMMON_STOPWATCH_H_

#include <chrono>

namespace cad {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// RAII timer: adds the elapsed seconds of its scope to `*sink` on
// destruction. Replaces hand-rolled Stopwatch start/stop pairs; see
// obs::ScopedHistogramTimer for the histogram-recording flavor.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (sink_ != nullptr) *sink_ += watch_.ElapsedSeconds();
  }

 private:
  Stopwatch watch_;
  double* sink_;
};

}  // namespace cad

#endif  // CAD_COMMON_STOPWATCH_H_
