// Real-time-safety function annotations (tier 6 of the static analysis
// stack, DESIGN.md "Real-time safety layers").
//
// The engine's headline property — the allocation-free, lock-disciplined
// round loop — is a *contract*, not an accident of the current code. These
// macros turn it into a machine-checked one, at two independent layers:
//
//  1. Compiler layer (Clang 20+). CAD_REALTIME / CAD_NONALLOCATING /
//     CAD_NONBLOCKING map to the function-effect attributes
//     [[clang::nonblocking]] / [[clang::nonallocating]]; with
//     -Wfunction-effects (promoted to an error by the top-level
//     CMakeLists when the compiler supports it) Clang verifies the whole
//     call graph at compile time. RealtimeSanitizer (-fsanitize=realtime,
//     the `rtsan` preset) enforces the same attributes dynamically.
//     Anywhere else — GCC, older Clang — every macro compiles to nothing.
//
//  2. Linter layer (every toolchain). tools/cad_lint rules CL007/CL008
//     scan the whole tree's token-level call graph: a function carrying
//     any of these annotations must not reach allocating or blocking
//     primitives through in-tree callees (CL007), and annotations must be
//     mutually compatible along calls and overrides (CL008). This layer
//     has no compiler dependency, so the contract holds on a GCC-only CI
//     exactly as it does under Clang.
//
// Tier semantics:
//
//   CAD_REALTIME          may neither allocate nor block. The strongest
//                         contract; carries [[clang::nonblocking]] (which
//                         subsumes nonallocating in Clang's effect
//                         system).
//   CAD_NONALLOCATING     may not allocate, but may block (e.g. a
//                         lock-taking accessor on a cold path).
//   CAD_NONBLOCKING       may not block, but may allocate.
//   CAD_REALTIME_AUDITED  the same contract as CAD_REALTIME for the
//                         linter and the human reader, but deliberately
//                         carries NO compiler attribute. Use it for
//                         functions whose zero-allocation property is a
//                         dynamic *capacity* invariant — push_back into a
//                         buffer whose capacity was grown during warm-up,
//                         Clear()-and-reuse workspaces — which Clang's
//                         type-level effect analysis cannot express (it
//                         must assume vector::push_back allocates). The
//                         invariant is still enforced twice: CL007 audits
//                         every such site (reasoned suppressions
//                         required), and the cad_alloc_hook operator-new
//                         counter proves 0 allocs/round dynamically
//                         (tests/core/engine_alloc_test.cc).
//
// Placement: like the Clang thread-safety macros, these are declaration
// attributes — put them after the parameter list, on the declaration AND
// on any out-of-line definition (the effect attributes are part of the
// function type, so the redeclarations must agree):
//
//   EngineRound Step(...) CAD_REALTIME_AUDITED;           // header
//   EngineRound DetectionEngine::Step(...) CAD_REALTIME_AUDITED { ... }
#ifndef CAD_COMMON_REALTIME_H_
#define CAD_COMMON_REALTIME_H_

#if defined(__has_cpp_attribute)
#if __has_cpp_attribute(clang::nonblocking) && \
    __has_cpp_attribute(clang::nonallocating)
#define CAD_REALTIME_ATTRIBUTES_ENABLED 1
#endif
#endif
#ifndef CAD_REALTIME_ATTRIBUTES_ENABLED
#define CAD_REALTIME_ATTRIBUTES_ENABLED 0
#endif

#if CAD_REALTIME_ATTRIBUTES_ENABLED
// nonblocking subsumes nonallocating: anything that may allocate may block
// on the allocator's lock, so Clang folds the weaker effect into the
// stronger one.
#define CAD_REALTIME [[clang::nonblocking]]
#define CAD_NONALLOCATING [[clang::nonallocating]]
#define CAD_NONBLOCKING [[clang::nonblocking]]
#else
#define CAD_REALTIME       // no-op: compiler lacks function-effect analysis
#define CAD_NONALLOCATING  // no-op
#define CAD_NONBLOCKING    // no-op
#endif

// Lint-enforced only, on every compiler — see the header comment for when
// this tier is the right one.
#define CAD_REALTIME_AUDITED

#endif  // CAD_COMMON_REALTIME_H_
