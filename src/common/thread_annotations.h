// Clang thread-safety-analysis attribute macros (tier 4 of the static
// analysis stack, DESIGN.md "Static analysis layers").
//
// The macros follow the modern capability vocabulary from
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html: a mutex is a
// CAPABILITY, data it protects is GUARDED_BY it, functions that expect it
// held are REQUIRES, lock/unlock primitives are ACQUIRE/RELEASE. Under
// Clang the analysis runs at compile time (-Wthread-safety, promoted to an
// error by the top-level CMakeLists), so a forgotten lock is a build break
// instead of a TSan sample; under GCC every macro expands to nothing.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// against it directly would flag every correctly-locked access. Use
// cad::common::Mutex / MutexLock (common/mutex.h) instead — an annotated
// shim over std::mutex with identical cost.
#ifndef CAD_COMMON_THREAD_ANNOTATIONS_H_
#define CAD_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CAD_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CAD_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

// Type attribute: this class is a synchronization capability (e.g. "mutex").
#define CAPABILITY(x) CAD_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Type attribute: RAII object that acquires a capability at construction and
// releases it at destruction (scoped lock guards).
#define SCOPED_CAPABILITY CAD_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Data member attribute: reads and writes require holding `x`.
#define GUARDED_BY(x) CAD_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer member attribute: the pointed-to data (not the pointer) is guarded.
#define PT_GUARDED_BY(x) CAD_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Function attribute: callers must hold the listed capabilities.
#define REQUIRES(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

// Function attribute: callers must NOT hold the listed capabilities
// (deadlock prevention for functions that acquire them internally).
#define EXCLUDES(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Capability attributes: lock-order hierarchy edges. A mutex declared
// ACQUIRED_BEFORE(other) must always be taken first when both are held;
// ACQUIRED_AFTER is the mirror. Clang checks these under
// -Wthread-safety-beta (the ordering analysis is still a beta diagnostic);
// the project's own linter (CL009) and the runtime lock-order tracker
// (common/mutex.h, CAD_CHECK_LEVEL=full) enforce the same hierarchy on
// every toolchain. Ranks for the global hierarchy live in
// common/lock_order.h.
#define ACQUIRED_BEFORE(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

// Function attributes for lock primitives: the function acquires / releases
// the listed capabilities (or `this` when the list is empty).
#define ACQUIRE(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define RELEASE(...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Function attribute: acquires the capability only when returning `ret`.
#define TRY_ACQUIRE(ret, ...) \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

// Function attribute: returns a reference to the given capability (lets the
// analysis see through accessor functions like `Mutex& mu()`).
#define RETURN_CAPABILITY(x) CAD_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use needs a
// comment explaining why the analysis cannot see the invariant.
#define NO_THREAD_SAFETY_ANALYSIS \
  CAD_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CAD_COMMON_THREAD_ANNOTATIONS_H_
