// Annotated mutex shim for Clang thread-safety analysis.
//
// std::mutex in libstdc++ carries no capability attributes, so GUARDED_BY
// members locked through std::lock_guard are invisible to -Wthread-safety.
// cad::common::Mutex wraps std::mutex with ACQUIRE/RELEASE-annotated
// lock/unlock and MutexLock is the annotated lock_guard equivalent; both
// compile to exactly the std:: primitives (no extra state, no virtual
// calls), so swapping them in costs nothing at runtime.
#ifndef CAD_COMMON_MUTEX_H_
#define CAD_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace cad::common {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // For condition-variable interop; using the native handle bypasses the
  // analysis, so confine it to wait loops that already REQUIRES(mutex).
  std::mutex& native() RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

// RAII scoped lock over Mutex, visible to the analysis (std::lock_guard on
// the shim would acquire the capability without telling Clang).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace cad::common

#endif  // CAD_COMMON_MUTEX_H_
