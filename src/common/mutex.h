// Annotated mutex shim for Clang thread-safety analysis, plus the runtime
// lock-order tracker (tier 7 of the static analysis stack, DESIGN.md
// "Concurrency contracts").
//
// std::mutex in libstdc++ carries no capability attributes, so GUARDED_BY
// members locked through std::lock_guard are invisible to -Wthread-safety.
// cad::common::Mutex wraps std::mutex with ACQUIRE/RELEASE-annotated
// lock/unlock and MutexLock is the annotated lock_guard equivalent; in
// release builds both compile to exactly the std:: primitives (no extra
// state, no virtual calls), so swapping them in costs nothing at runtime.
//
// Lock-order contract. A Mutex may carry a rank and a name from the global
// hierarchy in common/lock_order.h: `Mutex mu_{lock_order::kFoo,
// "Foo::mu_"}`. Three enforcers consume them:
//   * Clang (ACQUIRED_BEFORE/ACQUIRED_AFTER, -Wthread-safety-beta) and
//   * tools/cad_lint CL009 (tree-wide acquired-while-held cycle search)
//     prove ordering statically;
//   * at CAD_CHECK_LEVEL=full this header arms a dynamic tracker: every
//     thread keeps a stack of held Mutexes, every acquisition feeds a
//     process-wide acquired-after graph, and the first inversion —
//     acquiring out of rank order, or closing a cycle in the graph —
//     CAD_FATALs with both conflicting lock chains. Below `full` the
//     tracker is compiled out entirely (an empty-body if-constexpr-free
//     #if), which the alloc-hook tests prove: the round loop stays
//     0 allocs/round because Mutex::lock *is* std::mutex::lock.
//
// try_lock acquisitions update the held stack but record no graph edges: a
// failed try_lock backs off instead of deadlocking, so ordering against it
// is not a liveness bug. native() bypasses the tracker (and the Clang
// analysis) entirely — lint rule CL010 confines it to the
// condition-variable wait idiom.
#ifndef CAD_COMMON_MUTEX_H_
#define CAD_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

// The build injects CAD_CHECK_LEVEL globally (root CMakeLists); default to
// debug for standalone compilation, mirroring check/check.h.
#ifndef CAD_CHECK_LEVEL
#define CAD_CHECK_LEVEL 1
#endif

#if CAD_CHECK_LEVEL >= 2
#include <cstddef>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#endif

namespace cad::common {

// True when this translation unit was built with the runtime lock-order
// tracker armed (CAD_CHECK_LEVEL=full). The whole build shares one level
// (add_compile_definitions), so this is a build property, not a TU one.
constexpr bool LockOrderTrackerActive() { return CAD_CHECK_LEVEL >= 2; }

#if CAD_CHECK_LEVEL >= 2
namespace lock_debug {

// One entry of a thread's held-lock stack.
struct HeldLock {
  const void* instance = nullptr;  // identity of the Mutex object
  std::string key;                 // graph node: name, or "anon:<ptr>"
  int rank = -1;
};

// The process-wide acquired-after graph. Nodes are lock *classes* (named
// mutexes share one node per name, lockdep-style; anonymous mutexes get a
// per-instance node that dies with them). An edge A -> B means "B was
// acquired while A was held", stamped with the full held chain that first
// recorded it so inversion reports can show both sides.
struct Graph {
  std::mutex mu;  // raw std::mutex: the tracker must not track itself
  // Both maps are guarded by the raw `mu` above. GUARDED_BY needs an
  // annotated capability, and annotating the tracker's own lock would make
  // the tracker track itself.
  // cad-lint: allow(CL005) guarded by raw `mu`; an annotated guard would self-track
  std::map<std::string, std::set<std::string>> edges;
  // cad-lint: allow(CL005) guarded by raw `mu`; an annotated guard would self-track
  std::map<std::pair<std::string, std::string>, std::string> edge_chain;
};

// Leaked singletons: mutexes lock during static destruction (stream and
// server teardown), so the tracker state must outlive every static.
inline Graph& GlobalGraph() {
  static Graph* graph = new Graph();
  return *graph;
}

inline std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

inline std::string ChainText(const std::vector<HeldLock>& held,
                             const std::string& next) {
  std::string out;
  for (const HeldLock& h : held) {
    out += h.key;
    out += " -> ";
  }
  out += next;
  return out;
}

// Depth-first path search `from` => `to` over the edge graph; returns the
// node path (inclusive) or empty when unreachable. Caller holds graph.mu.
inline bool FindPath(const Graph& graph, const std::string& from,
                     const std::string& to, std::set<std::string>* seen,
                     std::vector<std::string>* path) {
  path->push_back(from);
  if (from == to) return true;
  seen->insert(from);
  auto it = graph.edges.find(from);
  if (it != graph.edges.end()) {
    for (const std::string& next : it->second) {
      if (seen->count(next) > 0) continue;
      if (FindPath(graph, next, to, seen, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

// Pre-acquisition check + graph update. Runs *before* blocking on the
// underlying mutex so an inversion is reported instead of deadlocking.
// `record_edges` is false for try_lock (see header comment).
inline void OnAcquire(const void* mutex, const std::string& key, int rank,
                      bool record_edges) {
  std::vector<HeldLock>& held = HeldStack();
  for (const HeldLock& h : held) {
    if (h.instance == mutex) {
      CAD_FATAL("lock-order tracker: recursive acquisition of `", key,
                "` (already held by this thread; chain: ",
                ChainText(held, key), ")");
    }
    if (rank >= 0 && h.rank >= 0 && h.rank >= rank) {
      CAD_FATAL("lock-order tracker: rank inversion acquiring `", key,
                "` (rank ", rank, ") while holding `", h.key, "` (rank ",
                h.rank,
                "); ranks must strictly increase along a thread's chain "
                "(common/lock_order.h). Chain: ",
                ChainText(held, key));
    }
  }
  if (held.empty() || !record_edges) return;

  // Cycle check: adding h.key -> key for every held lock; if key already
  // reaches any held lock, the new edge closes a cycle. Report outside the
  // graph lock (the failure handler may throw).
  std::string conflict;
  {
    Graph& graph = GlobalGraph();
    // cad-lint: allow(CL010) bounded tracker-metadata update, CAD_CHECK_LEVEL=full only
    std::lock_guard<std::mutex> lock(graph.mu);
    for (const HeldLock& h : held) {
      std::set<std::string> seen;
      std::vector<std::string> path;
      if (FindPath(graph, key, h.key, &seen, &path)) {
        conflict = "lock-order tracker: inversion acquiring `" + key +
                   "` while holding `" + h.key + "`.\n  this thread: " +
                   ChainText(held, key) + "\n  recorded order: ";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const auto edge = std::make_pair(path[i], path[i + 1]);
          auto chain_it = graph.edge_chain.find(edge);
          if (i > 0) conflict += "; ";
          conflict += "`" + path[i] + "` before `" + path[i + 1] + "`";
          if (chain_it != graph.edge_chain.end()) {
            conflict += " (chain: " + chain_it->second + ")";
          }
        }
        break;
      }
    }
    if (conflict.empty()) {
      // Tracker bookkeeping exists only at CAD_CHECK_LEVEL=full; release
      // builds compile Mutex::lock down to std::mutex::lock
      // (engine_alloc_test proves the round loop stays 0 allocs/round).
      for (const HeldLock& h : held) {
        // cad-lint: allow(CL007) debug-tier-only bookkeeping, absent from release builds
        if (graph.edges[h.key].insert(key).second) {
          graph.edge_chain[{h.key, key}] = ChainText(held, key);
        }
      }
    }
  }
  if (!conflict.empty()) {
    CAD_FATAL(conflict);
  }
}

inline void OnAcquired(const void* mutex, std::string key, int rank) {
  HeldStack().push_back(HeldLock{mutex, std::move(key), rank});
}

inline void OnRelease(const void* mutex) {
  std::vector<HeldLock>& held = HeldStack();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].instance == mutex) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

// Anonymous mutexes key the graph by address; when one dies its node must
// go with it or a later allocation at the same address inherits stale
// edges and reports phantom inversions.
inline void OnDestroy(const std::string& key) {
  Graph& graph = GlobalGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  graph.edges.erase(key);
  for (auto& [node, targets] : graph.edges) targets.erase(key);
  for (auto it = graph.edge_chain.begin(); it != graph.edge_chain.end();) {
    if (it->first.first == key || it->first.second == key) {
      it = graph.edge_chain.erase(it);
    } else {
      ++it;
    }
  }
}

inline std::string AnonKey(const void* mutex) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "anon:%p", mutex);
  return buf;
}

}  // namespace lock_debug

// Test hook: forgets every recorded acquired-after edge (unit tests seed
// deliberate inversions and must not poison later tests). The per-thread
// held stacks are left alone — they are empty between tests by RAII.
inline void LockOrderTrackerResetForTest() {
  lock_debug::Graph& graph = lock_debug::GlobalGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  graph.edges.clear();
  graph.edge_chain.clear();
}

// Number of distinct acquired-after edges observed so far (test visibility).
inline size_t LockOrderTrackedEdgeCount() {
  lock_debug::Graph& graph = lock_debug::GlobalGraph();
  std::lock_guard<std::mutex> lock(graph.mu);
  size_t count = 0;
  for (const auto& [node, targets] : graph.edges) count += targets.size();
  return count;
}
#else
// Tracker compiled out: the hooks must still be callable from tests that
// assert on the build mode.
inline void LockOrderTrackerResetForTest() {}
inline size_t LockOrderTrackedEdgeCount() { return 0; }
#endif  // CAD_CHECK_LEVEL >= 2

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  // Places this mutex in the global lock-order hierarchy: `rank` from
  // common/lock_order.h (strictly increasing along any thread's chain),
  // `name` the diagnostic label shared by all instances of the same lock
  // class ("StreamingCad::mu_"). Below CAD_CHECK_LEVEL=full both are
  // discarded at compile time.
#if CAD_CHECK_LEVEL >= 2
  explicit Mutex(int rank, const char* name) : rank_(rank), name_(name) {}
  ~Mutex() {
    if (name_ == nullptr || name_[0] == '\0') {
      lock_debug::OnDestroy(lock_debug::AnonKey(this));
    }
  }

  void lock() ACQUIRE() {
    const std::string key = OrderKey();
    lock_debug::OnAcquire(this, key, rank_, /*record_edges=*/true);
    mu_.lock();
    lock_debug::OnAcquired(this, key, rank_);
  }
  void unlock() RELEASE() {
    lock_debug::OnRelease(this);
    mu_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    lock_debug::OnAcquire(this, OrderKey(), rank_, /*record_edges=*/false);
    if (!mu_.try_lock()) return false;
    lock_debug::OnAcquired(this, OrderKey(), rank_);
    return true;
  }

  int rank() const { return rank_; }
  const char* name() const { return name_ != nullptr ? name_ : ""; }
#else
  explicit Mutex(int /*rank*/, const char* /*name*/) {}

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  int rank() const { return -1; }
  const char* name() const { return ""; }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // For condition-variable interop; using the native handle bypasses both
  // the Clang analysis and the lock-order tracker, so lint rule CL010
  // confines it to wait loops that already REQUIRES(mutex).
  std::mutex& native() RETURN_CAPABILITY(this) { return mu_; }

 private:
#if CAD_CHECK_LEVEL >= 2
  std::string OrderKey() const {
    return name_ != nullptr && name_[0] != '\0' ? std::string(name_)
                                                : lock_debug::AnonKey(this);
  }

  const int rank_ = -1;
  const char* const name_ = nullptr;
#endif
  std::mutex mu_;
};

// RAII scoped lock over Mutex, visible to the analysis (std::lock_guard on
// the shim would acquire the capability without telling Clang).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace cad::common

#endif  // CAD_COMMON_MUTEX_H_
