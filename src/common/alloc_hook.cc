// Global operator new/delete replacement counting heap allocations into the
// thread-local counter of common/alloc_tracker.h.
//
// Lives in its own static library (`cad_alloc_hook`) so only binaries that
// opt in — the engine allocation test and bench/engine_bench — replace the
// allocator; the libraries themselves stay hook-free. A static-library
// object is only pulled into the link when one of its symbols is referenced,
// so opting in means calling cad::common::LinkAllocHook() once at startup
// (which also lets tests verify the hook is live via AllocHookInstalled()).
//
// The replacement forwards to malloc/free, which keeps it compatible with
// ASan/TSan/UBSan builds: the sanitizers intercept malloc underneath us.
#include <cstdlib>
#include <new>

#include "common/alloc_tracker.h"

namespace cad::common {

void LinkAllocHook() {
  internal::g_alloc_hook_installed.store(true, std::memory_order_relaxed);
}

}  // namespace cad::common

namespace {

void* AllocOrThrow(std::size_t size) {
  cad::common::BumpThreadAllocCount();
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* AllocAligned(std::size_t size, std::size_t alignment) {
  cad::common::BumpThreadAllocCount();
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return AllocOrThrow(size); }
void* operator new[](std::size_t size) { return AllocOrThrow(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  cad::common::BumpThreadAllocCount();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  cad::common::BumpThreadAllocCount();
  return std::malloc(size == 0 ? 1 : size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  return AllocAligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return AllocAligned(size, static_cast<std::size_t>(alignment));
}

// posix_memalign memory is free()-compatible, so every delete funnels to
// free regardless of size/alignment arguments.
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
