// Small string helpers shared by the CSV reader and bench table printers.
#ifndef CAD_COMMON_STRINGS_H_
#define CAD_COMMON_STRINGS_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace cad {

// Splits `s` on `sep`, keeping empty fields.
inline std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

// Strips ASCII whitespace from both ends.
inline std::string_view StripAsciiWhitespace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// Formats a double with fixed precision, e.g. FormatDouble(89.66, 1) == "89.7".
inline std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Left-pads or right-pads `s` with spaces to `width` (positive width pads on
// the left / right-aligns).
inline std::string Pad(const std::string& s, int width) {
  const int w = width >= 0 ? width : -width;
  if (static_cast<int>(s.size()) >= w) return s;
  std::string pad(w - s.size(), ' ');
  return width >= 0 ? pad + s : s + pad;
}

}  // namespace cad

#endif  // CAD_COMMON_STRINGS_H_
