// Deterministic pseudo-random number generation (xoshiro256**).
//
// CAD itself is deterministic, but the synthetic dataset generators and the
// stochastic baselines (IForest, USAD, SAND, ...) need reproducible yet
// high-quality randomness. std::mt19937_64 output differs across standard
// library implementations for distributions, so all distribution sampling
// here is implemented directly on top of the raw generator.
#ifndef CAD_COMMON_RNG_H_
#define CAD_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace cad {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
// implementation), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to fill the state from a single word.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
    has_gauss_ = false;
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < n) {
      uint64_t t = (0 - n) % n;
      while (l < t) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  int UniformInt(int lo, int hi_exclusive) {
    return lo + static_cast<int>(NextBounded(
                    static_cast<uint64_t>(hi_exclusive - lo)));
  }

  // Standard normal via Marsaglia polar method (cached pair).
  double Gaussian() {
    if (has_gauss_) {
      has_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * factor;
    has_gauss_ = true;
    return u * factor;
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  // In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  // Samples `count` distinct indices from [0, n) (count <= n).
  std::vector<int> SampleWithoutReplacement(int n, int count) {
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    Shuffle(&pool);
    pool.resize(count);
    return pool;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_gauss_ = false;
  double cached_gauss_ = 0.0;
};

}  // namespace cad

#endif  // CAD_COMMON_RNG_H_
