// common::BoundedSampleQueue — the per-tenant ingestion primitive of the
// fleet layer (src/fleet/): a fixed-capacity ring of equal-width samples
// with explicit backpressure accounting.
//
// A sample is one time point's readings for every sensor of one stream
// (`sample_width` doubles). The ring is sized once at construction and never
// reallocates, so steady-state pushes and pops are pure copies into reserved
// storage — the queue participates in the fleet's zero-allocation contract.
//
// Backpressure is a *rejected push*, not a blocked producer: TryPush returns
// false when the ring is full and counts the rejection, so ingestion never
// stalls the caller and the drop rate is observable (FleetEngine surfaces the
// counters as cad_fleet_samples_rejected_total). There is deliberately no
// blocking push — a slow tenant must shed its own load, not wedge the
// producer thread that feeds every other tenant.
//
// Synchronization: one internal mutex at rank lock_order::kFleetQueue.
// Producers take it with nothing else held; the servicing fleet worker pops
// while holding its tenant lock (rank kFleetTenant, strictly below), so the
// acquisition order is covered by the ranked hierarchy, CL009-CL011 and the
// runtime lock-order tracker like every other lock in the tree.
#ifndef CAD_COMMON_BOUNDED_QUEUE_H_
#define CAD_COMMON_BOUNDED_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cad::common {

class BoundedSampleQueue {
 public:
  // A ring of `capacity_samples` slots, each `sample_width` doubles wide.
  BoundedSampleQueue(int sample_width, int capacity_samples)
      : sample_width_(sample_width),
        capacity_(capacity_samples),
        slots_(static_cast<size_t>(sample_width) * capacity_samples, 0.0) {}

  // Appends one sample; false (and a rejected() tick) when the ring is full.
  // `sample.size()` must equal sample_width().
  [[nodiscard]] bool TryPush(std::span<const double> sample) EXCLUDES(mu_) {
    // cad-lint: allow(CL009) name-collision: the lock tracker's OnAcquire calls vector empty()/size(), which the tree-wide resolver conflates with this queue's accessors
    MutexLock lock(mu_);
    if (size_ == capacity_) {
      ++rejected_;
      return false;
    }
    const int slot = (head_ + size_) % capacity_;
    std::copy(sample.begin(), sample.end(),
              slots_.begin() + static_cast<size_t>(slot) * sample_width_);
    ++size_;
    ++accepted_;
    return true;
  }

  // Copies the oldest sample into `dst` (sample_width() doubles); false when
  // the ring is empty.
  [[nodiscard]] bool PopInto(double* dst) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (size_ == 0) return false;
    const double* src =
        slots_.data() + static_cast<size_t>(head_) * sample_width_;
    std::copy(src, src + sample_width_, dst);
    head_ = (head_ + 1) % capacity_;
    --size_;
    return true;
  }

  int size() const EXCLUDES(mu_) {
    // cad-lint: allow(CL007) name-collision: realtime-annotated engine code calls container size(), which the tree-wide resolver conflates with this accessor; nothing realtime reaches the queue
    MutexLock lock(mu_);
    return size_;
  }
  bool empty() const EXCLUDES(mu_) { return size() == 0; }

  // Lifetime totals for backpressure accounting.
  uint64_t accepted() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return accepted_;
  }
  uint64_t rejected() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rejected_;
  }

  int sample_width() const { return sample_width_; }
  int capacity() const { return capacity_; }

 private:
  const int sample_width_;
  const int capacity_;

  // Rank 18 (common/lock_order.h): producers hold nothing else; the fleet
  // worker pops under its tenant lock (rank 16), never the other way around.
  mutable Mutex mu_{lock_order::kFleetQueue,
                    "common::BoundedSampleQueue::mu_"};
  std::vector<double> slots_ GUARDED_BY(mu_);  // ring storage, never resized
  int head_ GUARDED_BY(mu_) = 0;               // index of the oldest sample
  int size_ GUARDED_BY(mu_) = 0;
  uint64_t accepted_ GUARDED_BY(mu_) = 0;
  uint64_t rejected_ GUARDED_BY(mu_) = 0;
};

}  // namespace cad::common

#endif  // CAD_COMMON_BOUNDED_QUEUE_H_
