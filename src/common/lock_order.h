// The global lock-order hierarchy (tier 7 of the static analysis stack,
// DESIGN.md "Concurrency contracts").
//
// Deadlock freedom in this tree is a *ranked hierarchy* invariant: every
// mutex carries a rank, and a thread may only acquire a mutex whose rank is
// strictly greater than the rank of every ranked mutex it already holds.
// Because the relation is a total order, no cycle of acquired-while-held
// edges can ever form, so the process cannot deadlock on these locks.
//
// The hierarchy, outermost first (a lower rank is acquired earlier):
//
//   rank | capability                          | why it sits here
//   -----+-------------------------------------+---------------------------
//    10  | obs::ExpositionServer::join_mu_     | Stop() holds it across the
//         |                                     | serve-thread join; handler
//         |                                     | code on that thread takes
//         |                                     | every lock below, so this
//         |                                     | one must never be taken
//         |                                     | while any of them is held.
//    20  | core::StreamingCad::mu_             | the per-stream driver lock;
//         |                                     | a round records telemetry
//         |                                     | and spans while holding it.
//    30  | obs::Registry::mu_                  | registration + snapshot of
//         |                                     | the metrics registry,
//         |                                     | taken inside a round.
//    31  | obs::Tracer::mu_                    | span buffer append, taken
//         |                                     | inside a round alongside
//         |                                     | the registry.
//    40  | baselines::ParallelEnsemble errors  | leaf: the worker error
//         |                                     | slot; scoring workers hold
//         |                                     | nothing else.
//
// Three independent enforcers consume this table:
//   * Clang thread-safety (ACQUIRED_BEFORE / ACQUIRED_AFTER in
//     thread_annotations.h, checked under -Wthread-safety-beta),
//   * tools/cad_lint rule CL009 (token-level acquired-while-held graph over
//     the whole tree; any cycle is a finding with the full lock chain), and
//   * the runtime lock-order tracker in common/mutex.h (CAD_CHECK_LEVEL=full
//     builds CAD_FATAL on the first inversion, with both conflicting
//     chains).
//
// Adding a mutex: pick a rank from this table (or add a row), construct the
// Mutex with it — `common::Mutex mu_{lock_order::kMyRank, "Class::mu_"}` —
// and keep the gaps: unassigned values between existing ranks leave room to
// slot new locks into the middle of the hierarchy without renumbering.
// Unranked mutexes (default constructor) are exempt from the rank check but
// still feed the tracker's acquired-after graph, so inversions among them
// are caught too.
#ifndef CAD_COMMON_LOCK_ORDER_H_
#define CAD_COMMON_LOCK_ORDER_H_

namespace cad::common::lock_order {

// obs::ExpositionServer::join_mu_ — held across the serve-thread join.
inline constexpr int kExpositionJoin = 10;

// core::StreamingCad::mu_ — the streaming driver's round/state lock.
inline constexpr int kStreamingCad = 20;

// obs::Registry::mu_ — metrics registration and snapshots.
inline constexpr int kObsRegistry = 30;

// obs::Tracer::mu_ — span buffer writes and snapshots.
inline constexpr int kObsTracer = 31;

// baselines::ParallelEnsemble's scoring-worker error slot (leaf).
inline constexpr int kEnsembleErrors = 40;

}  // namespace cad::common::lock_order

#endif  // CAD_COMMON_LOCK_ORDER_H_
