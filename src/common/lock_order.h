// The global lock-order hierarchy (tier 7 of the static analysis stack,
// DESIGN.md "Concurrency contracts").
//
// Deadlock freedom in this tree is a *ranked hierarchy* invariant: every
// mutex carries a rank, and a thread may only acquire a mutex whose rank is
// strictly greater than the rank of every ranked mutex it already holds.
// Because the relation is a total order, no cycle of acquired-while-held
// edges can ever form, so the process cannot deadlock on these locks.
//
// The hierarchy, outermost first (a lower rank is acquired earlier):
//
//   rank | capability                          | why it sits here
//   -----+-------------------------------------+---------------------------
//    10  | obs::ExpositionServer::join_mu_     | Stop() holds it across the
//         |                                     | serve-thread join; handler
//         |                                     | code on that thread takes
//         |                                     | every lock below, so this
//         |                                     | one must never be taken
//         |                                     | while any of them is held.
//    14  | fleet::WeightedScheduler::mu_       | pick/release bookkeeping;
//         |                                     | always taken with nothing
//         |                                     | else held — workers pick,
//         |                                     | release, *then* lock the
//         |                                     | tenant they were handed.
//    15  | fleet::WorkspacePool::mu_           | arena free-list pops; taken
//         |                                     | between scheduler release
//         |                                     | and the tenant lock, never
//         |                                     | nested under either.
//    16  | fleet::FleetEngine Tenant::mu       | per-tenant engine + window
//         |                                     | state, held for a whole
//         |                                     | service quantum; a round
//         |                                     | records telemetry (rank 30)
//         |                                     | and pops the tenant's
//         |                                     | ingestion queue (rank 18)
//         |                                     | while holding it.
//    18  | common::BoundedSampleQueue::mu_     | per-tenant ingestion ring;
//         |                                     | producers take it alone,
//         |                                     | the servicing worker takes
//         |                                     | it under the tenant lock.
//    20  | core::StreamingCad::mu_             | the per-stream driver lock;
//         |                                     | a round records telemetry
//         |                                     | and spans while holding it.
//    30  | obs::Registry::mu_                  | registration + snapshot of
//         |                                     | the metrics registry,
//         |                                     | taken inside a round.
//    31  | obs::Tracer::mu_                    | span buffer append, taken
//         |                                     | inside a round alongside
//         |                                     | the registry.
//    40  | baselines::ParallelEnsemble errors  | leaf: the worker error
//         |                                     | slot; scoring workers hold
//         |                                     | nothing else.
//
// Three independent enforcers consume this table:
//   * Clang thread-safety (ACQUIRED_BEFORE / ACQUIRED_AFTER in
//     thread_annotations.h, checked under -Wthread-safety-beta),
//   * tools/cad_lint rule CL009 (token-level acquired-while-held graph over
//     the whole tree; any cycle is a finding with the full lock chain), and
//   * the runtime lock-order tracker in common/mutex.h (CAD_CHECK_LEVEL=full
//     builds CAD_FATAL on the first inversion, with both conflicting
//     chains).
//
// Adding a mutex: pick a rank from this table (or add a row), construct the
// Mutex with it — `common::Mutex mu_{lock_order::kMyRank, "Class::mu_"}` —
// and keep the gaps: unassigned values between existing ranks leave room to
// slot new locks into the middle of the hierarchy without renumbering.
// Unranked mutexes (default constructor) are exempt from the rank check but
// still feed the tracker's acquired-after graph, so inversions among them
// are caught too.
#ifndef CAD_COMMON_LOCK_ORDER_H_
#define CAD_COMMON_LOCK_ORDER_H_

namespace cad::common::lock_order {

// obs::ExpositionServer::join_mu_ — held across the serve-thread join.
inline constexpr int kExpositionJoin = 10;

// fleet::WeightedScheduler::mu_ — tenant pick/release bookkeeping. Workers
// acquire it with no other lock held and release it before touching the
// picked tenant, so it never nests inside the rest of the fleet hierarchy.
inline constexpr int kFleetScheduler = 14;

// fleet::WorkspacePool::mu_ — RoundWorkspace arena free lists, taken alone
// between the scheduler handoff and the tenant lock.
inline constexpr int kFleetWorkspacePool = 15;

// fleet::FleetEngine's per-tenant state lock (engine, ingest window), held
// for a whole service quantum; queue pops (rank 18) and telemetry (rank 30+)
// happen under it.
inline constexpr int kFleetTenant = 16;

// common::BoundedSampleQueue::mu_ — the per-tenant bounded ingestion ring.
// Producers take it alone; the servicing worker takes it while holding the
// tenant lock, so it must rank above kFleetTenant.
inline constexpr int kFleetQueue = 18;

// core::StreamingCad::mu_ — the streaming driver's round/state lock.
inline constexpr int kStreamingCad = 20;

// obs::Registry::mu_ — metrics registration and snapshots.
inline constexpr int kObsRegistry = 30;

// obs::Tracer::mu_ — span buffer writes and snapshots.
inline constexpr int kObsTracer = 31;

// baselines::ParallelEnsemble's scoring-worker error slot (leaf).
inline constexpr int kEnsembleErrors = 40;

}  // namespace cad::common::lock_order

#endif  // CAD_COMMON_LOCK_ORDER_H_
