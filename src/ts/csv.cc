#include "ts/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace cad::ts {

namespace {

Result<double> ParseField(std::string_view field, size_t line_no) {
  field = StripAsciiWhitespace(field);
  if (field.empty()) {
    return Status::InvalidArgument("empty field at line " +
                                   std::to_string(line_no));
  }
  std::string buf(field);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("non-numeric field '" + buf + "' at line " +
                                   std::to_string(line_no));
  }
  return v;
}

}  // namespace

Result<MultivariateSeries> ParseCsv(const std::string& content,
                                    const CsvOptions& options) {
  std::istringstream in(content);
  std::string line;
  size_t line_no = 0;
  std::vector<std::string> names;
  // columns[j] accumulates sensor j's series across time rows.
  std::vector<std::vector<double>> columns;
  bool expect_header = options.has_header;

  while (std::getline(in, line)) {
    ++line_no;
    std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    std::vector<std::string> fields = Split(stripped, options.delimiter);
    if (expect_header) {
      for (auto& f : fields) names.emplace_back(StripAsciiWhitespace(f));
      columns.resize(names.size());
      expect_header = false;
      continue;
    }
    if (columns.empty()) columns.resize(fields.size());
    if (fields.size() != columns.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(columns.size()));
    }
    for (size_t j = 0; j < fields.size(); ++j) {
      Result<double> v = ParseField(fields[j], line_no);
      if (!v.ok()) return v.status();
      columns[j].push_back(v.value());
    }
  }

  if (columns.empty() || columns[0].empty()) {
    return Status::InvalidArgument("CSV has no data rows");
  }
  Result<MultivariateSeries> series = MultivariateSeries::FromRows(columns);
  if (!series.ok()) return series.status();
  MultivariateSeries out = std::move(series).value();
  if (!names.empty()) {
    for (int i = 0; i < out.n_sensors(); ++i) out.set_sensor_name(i, names[i]);
  }
  return out;
}

Result<MultivariateSeries> ReadCsv(const std::string& path,
                                   const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << file.rdbuf();
  return ParseCsv(buf.str(), options);
}

Status WriteCsv(const MultivariateSeries& series, const std::string& path,
                const CsvOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  if (options.has_header) {
    for (int i = 0; i < series.n_sensors(); ++i) {
      if (i > 0) file << options.delimiter;
      file << series.sensor_name(i);
    }
    file << '\n';
  }
  std::ostringstream row;
  for (int t = 0; t < series.length(); ++t) {
    row.str("");
    for (int i = 0; i < series.n_sensors(); ++i) {
      if (i > 0) row << options.delimiter;
      row << series.value(i, t);
    }
    row << '\n';
    file << row.str();
  }
  if (!file) {
    return Status::IoError("write failed for '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace cad::ts
