// MultivariateSeries: the sensor-based MTS T = (s_1, ..., s_n)^T from the
// paper (Section III-A). Each row is one sensor's univariate series; all
// sensors share the same length and a uniform sampling interval.
//
// Storage is sensor-major (each sensor's readings are contiguous), which is
// the access pattern of every consumer in this codebase: window extraction,
// Pearson correlation, and the univariate baselines all stream one sensor at
// a time.
#ifndef CAD_TS_MULTIVARIATE_SERIES_H_
#define CAD_TS_MULTIVARIATE_SERIES_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/check.h"
#include "common/status.h"

namespace cad::ts {

class MultivariateSeries {
 public:
  MultivariateSeries() = default;

  // An n_sensors x length series filled with zeros.
  MultivariateSeries(int n_sensors, int length)
      : n_sensors_(n_sensors), length_(length) {
    CAD_CHECK(n_sensors >= 0 && length >= 0, "negative shape");
    data_.assign(static_cast<size_t>(n_sensors) * length, 0.0);
    for (int i = 0; i < n_sensors; ++i) {
      // Built with += rather than "s" + to_string(...): the rvalue
      // operator+ overload trips GCC 12's -Wrestrict false positive
      // (PR105651) under -Werror.
      std::string name = "s";
      name += std::to_string(i + 1);
      sensor_names_.push_back(std::move(name));
    }
  }

  // Builds from per-sensor rows; all rows must have equal length.
  [[nodiscard]] static Result<MultivariateSeries> FromRows(
      const std::vector<std::vector<double>>& rows) {
    MultivariateSeries series(static_cast<int>(rows.size()),
                              rows.empty() ? 0 : static_cast<int>(rows[0].size()));
    for (size_t i = 0; i < rows.size(); ++i) {
      if (static_cast<int>(rows[i].size()) != series.length()) {
        return Status::InvalidArgument(
            "row " + std::to_string(i) + " has length " +
            std::to_string(rows[i].size()) + ", expected " +
            std::to_string(series.length()));
      }
      std::copy(rows[i].begin(), rows[i].end(),
                series.data_.begin() + static_cast<size_t>(i) * series.length());
    }
    return series;
  }

  int n_sensors() const { return n_sensors_; }
  int length() const { return length_; }
  bool empty() const { return n_sensors_ == 0 || length_ == 0; }

  double value(int sensor, int t) const {
    return data_[static_cast<size_t>(sensor) * length_ + t];
  }
  void set_value(int sensor, int t, double v) {
    data_[static_cast<size_t>(sensor) * length_ + t] = v;
  }

  // The full series of one sensor.
  std::span<const double> sensor(int i) const {
    return {data_.data() + static_cast<size_t>(i) * length_,
            static_cast<size_t>(length_)};
  }
  std::span<double> mutable_sensor(int i) {
    return {data_.data() + static_cast<size_t>(i) * length_,
            static_cast<size_t>(length_)};
  }

  // The readings of sensor `i` within window [start, start + w).
  std::span<const double> sensor_window(int i, int start, int w) const {
    return {data_.data() + static_cast<size_t>(i) * length_ + start,
            static_cast<size_t>(w)};
  }

  const std::string& sensor_name(int i) const { return sensor_names_[i]; }
  void set_sensor_name(int i, std::string name) {
    sensor_names_[i] = std::move(name);
  }
  const std::vector<std::string>& sensor_names() const { return sensor_names_; }

  // Copies the sub-matrix T[t0 : t0 + len) across all sensors.
  [[nodiscard]] Result<MultivariateSeries> Slice(int t0, int len) const {
    if (t0 < 0 || len < 0 || t0 + len > length_) {
      return Status::OutOfRange("slice [" + std::to_string(t0) + ", " +
                                std::to_string(t0 + len) + ") out of [0, " +
                                std::to_string(length_) + ")");
    }
    MultivariateSeries out(n_sensors_, len);
    for (int i = 0; i < n_sensors_; ++i) {
      auto src = sensor_window(i, t0, len);
      std::copy(src.begin(), src.end(), out.mutable_sensor(i).begin());
    }
    out.sensor_names_ = sensor_names_;
    return out;
  }

  // Appends `other` in time (same sensor set required).
  [[nodiscard]] Status AppendInTime(const MultivariateSeries& other) {
    if (other.n_sensors_ != n_sensors_) {
      return Status::InvalidArgument("sensor count mismatch in AppendInTime");
    }
    MultivariateSeries merged(n_sensors_, length_ + other.length_);
    for (int i = 0; i < n_sensors_; ++i) {
      auto dst = merged.mutable_sensor(i);
      auto a = sensor(i);
      auto b = other.sensor(i);
      std::copy(a.begin(), a.end(), dst.begin());
      std::copy(b.begin(), b.end(), dst.begin() + length_);
    }
    merged.sensor_names_ = sensor_names_;
    *this = std::move(merged);
    return Status::Ok();
  }

 private:
  int n_sensors_ = 0;
  int length_ = 0;
  std::vector<double> data_;               // sensor-major, n_sensors_ * length_
  std::vector<std::string> sensor_names_;  // size n_sensors_
};

}  // namespace cad::ts

#endif  // CAD_TS_MULTIVARIATE_SERIES_H_
