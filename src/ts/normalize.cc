#include "ts/normalize.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>

namespace cad::ts {

namespace {
constexpr double kEpsilon = 1e-12;
}  // namespace

Scaler FitZScore(const MultivariateSeries& series) {
  Scaler scaler;
  scaler.offset.resize(series.n_sensors());
  scaler.scale.resize(series.n_sensors());
  for (int i = 0; i < series.n_sensors(); ++i) {
    auto x = series.sensor(i);
    double mean = 0.0;
    for (double v : x) mean += v;
    mean /= static_cast<double>(x.size());
    double var = 0.0;
    for (double v : x) var += (v - mean) * (v - mean);
    var /= static_cast<double>(x.size());
    double std = std::sqrt(var);
    scaler.offset[i] = mean;
    scaler.scale[i] = std > kEpsilon ? std : 1.0;
  }
  return scaler;
}

Scaler FitMinMax(const MultivariateSeries& series) {
  Scaler scaler;
  scaler.offset.resize(series.n_sensors());
  scaler.scale.resize(series.n_sensors());
  for (int i = 0; i < series.n_sensors(); ++i) {
    auto x = series.sensor(i);
    auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
    double lo = *lo_it, hi = *hi_it;
    scaler.offset[i] = lo;
    scaler.scale[i] = (hi - lo) > kEpsilon ? (hi - lo) : 1.0;
  }
  return scaler;
}

MultivariateSeries Apply(const Scaler& scaler, const MultivariateSeries& series) {
  CAD_CHECK(static_cast<int>(scaler.offset.size()) == series.n_sensors(),
            "scaler fitted on a different sensor count");
  MultivariateSeries out = series;
  for (int i = 0; i < series.n_sensors(); ++i) {
    auto row = out.mutable_sensor(i);
    const double offset = scaler.offset[i];
    const double scale = scaler.scale[i];
    for (double& v : row) v = (v - offset) / scale;
  }
  return out;
}

}  // namespace cad::ts
