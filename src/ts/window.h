// Sliding-window partitioning of an MTS (paper Section III-B).
//
// Given a window w and step s (s < w), a series of length |T| is cut into
// R = floor((|T| - w) / s) + 1 overlapping sub-matrices T_1 .. T_R with
// T_r = T[1 + (r-1)s : w + (r-1)s]. When (|T| - w) is not divisible by s the
// paper drops the trailing columns, which the floor above implements.
#ifndef CAD_TS_WINDOW_H_
#define CAD_TS_WINDOW_H_

#include "common/status.h"

namespace cad::ts {

class WindowPlan {
 public:
  // Validates the paper's constraints: 0 < s < w <= length.
  [[nodiscard]] static Result<WindowPlan> Make(int length, int window, int step) {
    if (window <= 0 || step <= 0) {
      return Status::InvalidArgument("window and step must be positive");
    }
    if (step >= window) {
      return Status::InvalidArgument("step must be smaller than window");
    }
    if (window > length) {
      return Status::InvalidArgument("window larger than series length");
    }
    return WindowPlan(length, window, step);
  }

  int length() const { return length_; }
  int window() const { return window_; }
  int step() const { return step_; }

  // Number of rounds R.
  int rounds() const { return (length_ - window_) / step_ + 1; }

  // Start index (0-based) of round r in [0, rounds()).
  int start(int round) const { return round * step_; }

  // One-past-the-end time index of round r.
  int end(int round) const { return start(round) + window_; }

  // The last round whose window ends at or before time t+1; in other words,
  // the most recent round fully observable once time point t has arrived.
  // Returns -1 if no window fits yet.
  int LastCompleteRoundAt(int t) const {
    if (t + 1 < window_) return -1;
    int r = (t + 1 - window_) / step_;
    return r >= rounds() ? rounds() - 1 : r;
  }

 private:
  WindowPlan(int length, int window, int step)
      : length_(length), window_(window), step_(step) {}

  int length_;
  int window_;
  int step_;
};

}  // namespace cad::ts

#endif  // CAD_TS_WINDOW_H_
