// CSV import/export for MultivariateSeries.
//
// On-disk layout follows the common MTS dataset convention: one row per time
// point, one column per sensor, optional header row with sensor names. This
// is the transpose of the in-memory sensor-major layout.
#ifndef CAD_TS_CSV_H_
#define CAD_TS_CSV_H_

#include <string>

#include "common/status.h"
#include "ts/multivariate_series.h"

namespace cad::ts {

struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
};

// Reads a CSV file into a series; every row must have the same field count
// and every field must parse as a double.
[[nodiscard]] Result<MultivariateSeries> ReadCsv(const std::string& path,
                                   const CsvOptions& options = {});

// Parses CSV content from a string (used by tests and small fixtures).
[[nodiscard]] Result<MultivariateSeries> ParseCsv(const std::string& content,
                                    const CsvOptions& options = {});

// Writes a series to CSV (time-major rows, header of sensor names).
[[nodiscard]] Status WriteCsv(const MultivariateSeries& series, const std::string& path,
                const CsvOptions& options = {});

}  // namespace cad::ts

#endif  // CAD_TS_CSV_H_
