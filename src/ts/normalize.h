// Per-sensor normalization utilities. The deep-learning baselines (USAD,
// RCoders) and the distance-based baselines (LOF, kNN) require z-scored or
// min-max-scaled input; CAD itself is scale-free because Pearson correlation
// is invariant to affine transforms of each sensor.
#ifndef CAD_TS_NORMALIZE_H_
#define CAD_TS_NORMALIZE_H_

#include "ts/multivariate_series.h"

namespace cad::ts {

// Per-sensor affine parameters fitted on one series (typically the training /
// historical split) and applied to another, so the test data never leaks into
// the fit.
struct Scaler {
  std::vector<double> offset;  // subtract
  std::vector<double> scale;   // then divide (>= epsilon)
};

// Fits z-score parameters (mean, std) per sensor. Constant sensors get
// scale 1 so they map to zero rather than NaN.
Scaler FitZScore(const MultivariateSeries& series);

// Fits min-max parameters mapping each sensor to [0, 1].
Scaler FitMinMax(const MultivariateSeries& series);

// Returns (x - offset) / scale applied element-wise per sensor.
MultivariateSeries Apply(const Scaler& scaler, const MultivariateSeries& series);

}  // namespace cad::ts

#endif  // CAD_TS_NORMALIZE_H_
