#include "graph/knn_graph.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cad::graph {

void BuildKnnGraphInto(const stats::CorrelationMatrix& corr,
                       const KnnGraphOptions& options, KnnScratch* scratch,
                       Graph* out, KnnGraphStats* stats) CAD_REALTIME_AUDITED {
  const int n = corr.size();
  CAD_CHECK(options.k >= 1, "k must be >= 1");
  out->Reset(n);
  Graph& graph = *out;

  // Candidate neighbour list per vertex: the k largest |corr| entries above
  // tau. selected[u * n + v] marks directed picks; the final edge set is the
  // symmetric union with each undirected edge added once.
  std::vector<uint8_t>& selected = scratch->selected;
  selected.assign(static_cast<size_t>(n) * n, 0);
  std::vector<int>& order = scratch->order;
  // cad-lint: allow(CL007) KnnScratch retains capacity across rounds; the reserve is a no-op after the first round
  order.reserve(n > 0 ? n - 1 : 0);
  int directed_candidates = 0;
  for (int u = 0; u < n; ++u) {
    order.clear();
    for (int v = 0; v < n; ++v) {
      if (v == u) continue;
      // cad-lint: allow(CL007) pushes into the reserved KnnScratch capacity above
      if (std::abs(corr.at(u, v)) >= options.tau) order.push_back(v);
    }
    directed_candidates += static_cast<int>(order.size());
    const int take = std::min<int>(options.k, static_cast<int>(order.size()));
    // Deterministic selection: strongest |corr| first, index as tie-break.
    std::partial_sort(order.begin(), order.begin() + take, order.end(),
                      [&](int a, int b) {
                        const double wa = std::abs(corr.at(u, a));
                        const double wb = std::abs(corr.at(u, b));
                        if (wa != wb) return wa > wb;
                        return a < b;
                      });
    for (int idx = 0; idx < take; ++idx) {
      selected[static_cast<size_t>(u) * n + order[idx]] = 1;
    }
  }

  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (selected[static_cast<size_t>(u) * n + v] ||
          selected[static_cast<size_t>(v) * n + u]) {
        graph.AddEdge(u, v, corr.at(u, v));
      }
    }
  }
  if (stats != nullptr) {
    // |corr| is symmetric, so every candidate pair was counted from both
    // endpoints.
    stats->candidate_pairs = directed_candidates / 2;
    stats->kept_edges = static_cast<int>(graph.n_edges());
  }
}

Graph BuildKnnGraph(const stats::CorrelationMatrix& corr,
                    const KnnGraphOptions& options, KnnGraphStats* stats) {
  Graph graph;
  KnnScratch scratch;
  BuildKnnGraphInto(corr, options, &scratch, &graph, stats);
  return graph;
}

}  // namespace cad::graph
