// Weighted undirected graph with a fixed vertex set.
//
// This is the substrate for the paper's Time-Series Graphs (TSGs): vertices
// are sensors, edges connect highly correlated sensors, and the edge weight
// is the Pearson correlation within one window (possibly negative).
#ifndef CAD_GRAPH_GRAPH_H_
#define CAD_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.h"
#include "common/status.h"

namespace cad::graph {

struct Edge {
  int u = 0;
  int v = 0;
  double weight = 0.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n_vertices) : adjacency_(n_vertices) {}

  // Re-shapes to `n_vertices` isolated vertices. Inner adjacency capacity is
  // retained, so a graph rebuilt every round stops allocating once it has
  // seen its peak per-vertex degree.
  void Reset(int n_vertices) {
    if (static_cast<int>(adjacency_.size()) != n_vertices) {
      adjacency_.resize(n_vertices);
    }
    for (auto& adjacency : adjacency_) adjacency.clear();
    n_edges_ = 0;
  }

  int n_vertices() const { return static_cast<int>(adjacency_.size()); }
  int64_t n_edges() const { return n_edges_; }

  // Adds an undirected edge; u != v, both in range. Duplicate edges are the
  // caller's responsibility (the kNN builder never produces them).
  void AddEdge(int u, int v, double weight) {
    CAD_CHECK(u != v, "self-loop");
    CAD_CHECK(u >= 0 && u < n_vertices() && v >= 0 && v < n_vertices(),
              "edge endpoint out of range");
    // cad-lint: allow(CL007) adjacency capacity is retained across Reset(); steady-state rebuilds push into reserved storage (engine_alloc_test)
    adjacency_[u].push_back({v, weight});
    adjacency_[v].push_back({u, weight});
    ++n_edges_;
  }

  struct Neighbor {
    int vertex;
    double weight;
  };

  const std::vector<Neighbor>& neighbors(int u) const { return adjacency_[u]; }

  int degree(int u) const { return static_cast<int>(adjacency_[u].size()); }

  // Sum of |weight| over incident edges; Louvain and modularity operate on
  // absolute weights because correlation edges may be negative and a strong
  // anti-correlation is still a strong tie.
  double WeightedDegree(int u) const {
    double sum = 0.0;
    for (const Neighbor& nb : adjacency_[u]) sum += std::abs(nb.weight);
    return sum;
  }

  // Total |weight| over all edges (each edge counted once).
  double TotalWeight() const {
    double sum = 0.0;
    for (int u = 0; u < n_vertices(); ++u) sum += WeightedDegree(u);
    return sum / 2.0;
  }

  // All edges with u < v, sorted lexicographically (useful for tests and for
  // deterministic serialization). The Into form reuses `edges`' capacity.
  void SortedEdgesInto(std::vector<Edge>* edges) const {
    edges->clear();
    // cad-lint: allow(CL007) reserve into retained capacity: the caller's workspace vector keeps its storage across rounds
    edges->reserve(static_cast<size_t>(n_edges_));
    for (int u = 0; u < n_vertices(); ++u) {
      for (const Neighbor& nb : adjacency_[u]) {
        if (u < nb.vertex) edges->push_back({u, nb.vertex, nb.weight});
      }
    }
    std::sort(edges->begin(), edges->end(), [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
  }

  std::vector<Edge> SortedEdges() const {
    std::vector<Edge> edges;
    SortedEdgesInto(&edges);
    return edges;
  }

  bool HasEdge(int u, int v) const {
    for (const Neighbor& nb : adjacency_[u]) {
      if (nb.vertex == v) return true;
    }
    return false;
  }

  // Test-only back door: appends one directed half-edge, bypassing the
  // AddEdge invariants and the n_edges() bookkeeping. Exists so the
  // check/validators.h tests can construct minimally-corrupted graphs;
  // production code must use AddEdge.
  void CorruptHalfEdgeForTesting(int u, int v, double weight) {
    adjacency_[u].push_back({v, weight});
  }

 private:
  std::vector<std::vector<Neighbor>> adjacency_;
  int64_t n_edges_ = 0;
};

}  // namespace cad::graph

#endif  // CAD_GRAPH_GRAPH_H_
