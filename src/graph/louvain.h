// Louvain community detection (Blondel et al. 2008), Phase 1 of CAD's
// per-round OutlierDetection (paper Algorithm 1, line 2).
//
// The implementation is fully deterministic: vertices are visited in index
// order and modularity-gain ties are broken by the smallest community id, so
// repeated runs on the same TSG produce identical partitions. The paper
// leans on this determinism for CAD's stability claim (Table VIII).
//
// Correlation edges may be negative; community detection runs on |weight|
// because a strong anti-correlation is still a strong structural tie between
// two sensors of the same machine.
#ifndef CAD_GRAPH_LOUVAIN_H_
#define CAD_GRAPH_LOUVAIN_H_

#include <vector>

#include "common/realtime.h"
#include "graph/graph.h"

namespace cad::graph {

struct LouvainOptions {
  // Stop a local-moving sweep when the modularity gain over one full pass
  // drops below this threshold.
  double min_modularity_gain = 1e-7;
  // Safety cap on local-moving passes per level.
  int max_passes_per_level = 64;
  // Safety cap on aggregation levels.
  int max_levels = 32;
};

struct Partition {
  // community[v] is the community id of vertex v; ids are dense in
  // [0, n_communities) and canonicalized so communities are numbered by
  // their smallest member vertex.
  std::vector<int> community;
  int n_communities = 0;
  // Newman modularity of this partition on the input graph (the same value
  // the per-level improvement gate computed, so exposing it is free);
  // invariant under canonical relabeling. 0 for an edgeless graph.
  double modularity = 0.0;
};

// Reusable buffers for LouvainInto. Every vector Louvain needs — per-level
// communities, local-moving accumulators, aggregation entries, the two
// ping-ponged aggregated graphs — lives here with clear()-and-reuse
// semantics, so steady-state rounds run the full multi-level method without
// touching the heap.
struct LouvainWorkspace {
  // One inter-community mass contribution of the level being aggregated;
  // `seq` preserves sorted-edge order within a key so the per-key FP sums
  // accumulate in exactly the order the map-based implementation used.
  struct AggEntry {
    int64_t key = 0;  // min(cu,cv) * n_communities + max(cu,cv)
    int seq = 0;
    double weight = 0.0;
  };

  std::vector<Edge> level_edges;  // SortedEdgesInto of the current level
  std::vector<Edge> mod_edges;    // SortedEdgesInto of the original graph
  std::vector<double> vertex_weight;
  std::vector<double> community_total;
  std::vector<double> weight_to_community;
  std::vector<int> touched;
  std::vector<int> remap;  // Canonicalize old-id -> dense-id table
  std::vector<int> level_community;
  std::vector<int> candidate;
  std::vector<int> mapping;
  std::vector<double> self_weight;
  std::vector<double> next_self;
  std::vector<double> community_degree;  // Modularity label-order accumulator
  std::vector<AggEntry> agg;
  Graph level_graph;
  Graph next_graph;
};

// Newman modularity of a partition under absolute edge weights. Isolated
// vertices contribute nothing; an edgeless graph has modularity 0.
double Modularity(const Graph& graph, const std::vector<int>& community);

// Runs the full multi-level Louvain method.
Partition Louvain(const Graph& graph, const LouvainOptions& options = {});

// Allocation-free form: identical partition (byte-identical modularity
// arithmetic included), with all scratch drawn from `workspace` and the
// result written into `out`.
void LouvainInto(const Graph& graph, const LouvainOptions& options,
                 LouvainWorkspace* workspace,
                 Partition* out) CAD_REALTIME_AUDITED;

// Connected components (ignores weights); used by tests as a coarse
// consistency check against Louvain (every community is within a component).
Partition ConnectedComponents(const Graph& graph);

}  // namespace cad::graph

#endif  // CAD_GRAPH_LOUVAIN_H_
