// k-NN graph construction from a correlation matrix (paper Section III-B).
//
// Each vertex is connected to its k highest-|correlation| neighbours; edges
// whose absolute weight falls below the correlation threshold tau are pruned.
// The result of both steps is the paper's Time-Series Graph (TSG).
#ifndef CAD_GRAPH_KNN_GRAPH_H_
#define CAD_GRAPH_KNN_GRAPH_H_

#include "common/realtime.h"
#include "graph/graph.h"
#include "stats/correlation.h"

namespace cad::graph {

struct KnnGraphOptions {
  int k = 10;          // neighbours per vertex
  double tau = 0.5;    // prune edges with |corr| < tau
};

// Construction statistics, fed into the cad_tsg_edges_* metrics.
struct KnnGraphStats {
  int candidate_pairs = 0;  // undirected pairs with |corr| >= tau
  int kept_edges = 0;       // edges in the resulting TSG
  int pruned_pairs() const { return candidate_pairs - kept_edges; }
};

// Reusable buffers for BuildKnnGraphInto; capacity is retained across
// rounds so steady-state TSG construction touches no heap.
struct KnnScratch {
  std::vector<uint8_t> selected;  // n x n directed pick marks
  std::vector<int> order;         // candidate neighbour indices of one vertex
};

// Builds the TSG: the union of every vertex's k strongest-|corr| neighbour
// edges, then pruned by tau. Edge weights keep the signed correlation.
// Deterministic: ties in correlation magnitude are broken by vertex index.
Graph BuildKnnGraph(const stats::CorrelationMatrix& corr,
                    const KnnGraphOptions& options,
                    KnnGraphStats* stats = nullptr);

// Allocation-free form: Reset()s `graph` and rebuilds it in place using
// `scratch`'s buffers. Identical output to BuildKnnGraph.
void BuildKnnGraphInto(const stats::CorrelationMatrix& corr,
                       const KnnGraphOptions& options, KnnScratch* scratch,
                       Graph* graph,
                       KnnGraphStats* stats = nullptr) CAD_REALTIME_AUDITED;

}  // namespace cad::graph

#endif  // CAD_GRAPH_KNN_GRAPH_H_
