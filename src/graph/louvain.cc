#include "graph/louvain.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace cad::graph {

namespace {

// Renumbers community ids densely; communities are ordered by their smallest
// member so the labeling is canonical and deterministic. `remap` is an
// old-id -> dense-id table; ids are always < community->size() here (they
// start as vertex ids and only ever shrink through aggregation).
int CanonicalizeWith(std::vector<int>* community, std::vector<int>* remap) {
  const int n = static_cast<int>(community->size());
  remap->assign(n, -1);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    CAD_DCHECK((*community)[v] >= 0 && (*community)[v] < n,
               "community id out of dense range");
    int& slot = (*remap)[(*community)[v]];
    if (slot < 0) slot = next++;
    (*community)[v] = slot;
  }
  return next;
}

// Modularity over a pre-sorted edge list (u < v, lexicographic) so callers
// that hold the graph's edges can amortize the sort. The arithmetic — intra
// sum in sorted-edge order, k_c^2 in dense label order — is exactly the
// public Modularity's (cad_lint CL003: hash-order FP accumulation is
// forbidden on this path).
double ModularityOverEdges(const Graph& graph,
                           const std::vector<int>& community,
                           const std::vector<Edge>& sorted_edges,
                           std::vector<double>* community_degree) {
  CAD_CHECK(static_cast<int>(community.size()) == graph.n_vertices(),
            "community size mismatch");
  const double m = graph.TotalWeight();
  if (m <= 0.0) return 0.0;
  double intra = 0.0;
  for (const Edge& e : sorted_edges) {
    if (community[e.u] == community[e.v]) intra += std::abs(e.weight);
  }
  int max_label = -1;
  for (int c : community) max_label = std::max(max_label, c);
  community_degree->assign(static_cast<size_t>(max_label + 1), 0.0);
  for (int v = 0; v < graph.n_vertices(); ++v) {
    (*community_degree)[static_cast<size_t>(community[static_cast<size_t>(v)])] +=
        graph.WeightedDegree(v);
  }
  double degree_term = 0.0;
  for (double k : *community_degree) degree_term += k * k;
  return intra / m - degree_term / (4.0 * m * m);
}

// One Louvain level: local moving on `graph`, writing the found community per
// vertex into `community`. Returns true if any vertex moved. `self_weight`
// carries the intra-community mass folded into each aggregated vertex: it
// adds 2*s to the vertex's weighted degree and s to the total weight (the
// standard self-loop convention), but never to w(v -> c) since it moves with
// the vertex.
bool LocalMoving(const Graph& graph, const std::vector<double>& self_weight,
                 const LouvainOptions& options, std::vector<int>* community,
                 LouvainWorkspace* ws) {
  const int n = graph.n_vertices();
  double total_weight = graph.TotalWeight();  // m
  for (double s : self_weight) total_weight += s;
  if (total_weight <= 0.0) return false;
  const double two_m = 2.0 * total_weight;

  std::vector<double>& vertex_weight = ws->vertex_weight;  // k_i
  vertex_weight.resize(n);
  for (int v = 0; v < n; ++v) {
    vertex_weight[v] = graph.WeightedDegree(v) + 2.0 * self_weight[v];
  }

  // Sum of k_i over members of each community.
  std::vector<double>& community_total = ws->community_total;
  community_total.assign(n, 0.0);
  for (int v = 0; v < n; ++v) community_total[(*community)[v]] += vertex_weight[v];

  bool any_move = false;
  std::vector<double>& weight_to_community = ws->weight_to_community;
  weight_to_community.assign(n, 0.0);
  std::vector<int>& touched = ws->touched;

  for (int pass = 0; pass < options.max_passes_per_level; ++pass) {
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      const int old_community = (*community)[v];

      // Accumulate |w|(v -> community) over v's neighbours.
      touched.clear();
      for (const Graph::Neighbor& nb : graph.neighbors(v)) {
        const int c = (*community)[nb.vertex];
        // cad-lint: allow(CL007) LouvainWorkspace buffer with clear()-and-reuse semantics, bounded by the community count
        if (weight_to_community[c] == 0.0) touched.push_back(c);
        weight_to_community[c] += std::abs(nb.weight);
      }

      community_total[old_community] -= vertex_weight[v];

      // Gain of joining community c (relative to staying isolated):
      //   dQ = w(v->c)/m - k_v * tot_c / (2 m^2); comparing across c we can
      // drop the common 1/m factor.
      int best_community = old_community;
      double best_gain = weight_to_community[old_community] -
                         vertex_weight[v] * community_total[old_community] / two_m;
      for (int c : touched) {
        const double gain =
            weight_to_community[c] - vertex_weight[v] * community_total[c] / two_m;
        if (gain > best_gain + 1e-12 ||
            (std::abs(gain - best_gain) <= 1e-12 && c < best_community)) {
          best_gain = gain;
          best_community = c;
        }
      }

      community_total[best_community] += vertex_weight[v];
      if (best_community != old_community) {
        (*community)[v] = best_community;
        ++moves;
        any_move = true;
      }

      for (int c : touched) weight_to_community[c] = 0.0;
      weight_to_community[old_community] = 0.0;
    }
    if (moves == 0) break;
  }
  return any_move;
}

// Builds the aggregated graph whose vertices are the communities of the
// level whose sorted edges are `level_edges`. Intra-community weight becomes
// self-loop mass which Graph cannot store; the caller re-derives it into the
// companion self_weight vector (see LouvainInto). Inter-community mass is
// accumulated per community pair in sorted-edge order: entries are tagged
// with their edge sequence number and sorted by (key, seq), so each pair's
// FP sum adds contributions in exactly the order the map-based
// implementation did, and edges are emitted in ascending key order exactly
// as the sorted map emit did.
void AggregateInto(const std::vector<Edge>& level_edges,
                   const std::vector<int>& community, int n_communities,
                   LouvainWorkspace* ws, Graph* out) {
  std::vector<LouvainWorkspace::AggEntry>& agg = ws->agg;
  agg.clear();
  int seq = 0;
  for (const Edge& e : level_edges) {
    const int cu = community[e.u];
    const int cv = community[e.v];
    if (cu == cv) continue;
    const int a = std::min(cu, cv), b = std::max(cu, cv);
    // cad-lint: allow(CL007) LouvainWorkspace buffer with clear()-and-reuse semantics, bounded by the level's edge count
    agg.push_back({static_cast<int64_t>(a) * n_communities + b, seq++,
                   std::abs(e.weight)});
  }
  std::sort(agg.begin(), agg.end(),
            [](const LouvainWorkspace::AggEntry& x,
               const LouvainWorkspace::AggEntry& y) {
              return x.key != y.key ? x.key < y.key : x.seq < y.seq;
            });

  out->Reset(n_communities);
  size_t i = 0;
  while (i < agg.size()) {
    const int64_t key = agg[i].key;
    double w = 0.0;
    for (; i < agg.size() && agg[i].key == key; ++i) w += agg[i].weight;
    out->AddEdge(static_cast<int>(key / n_communities),
                 static_cast<int>(key % n_communities), w);
  }
}

}  // namespace

double Modularity(const Graph& graph, const std::vector<int>& community) {
  std::vector<Edge> edges;
  graph.SortedEdgesInto(&edges);
  std::vector<double> community_degree;
  return ModularityOverEdges(graph, community, edges, &community_degree);
}

void LouvainInto(const Graph& graph, const LouvainOptions& options,
                 LouvainWorkspace* ws, Partition* out) CAD_REALTIME_AUDITED {
  const int n = graph.n_vertices();
  out->community.resize(n);
  std::iota(out->community.begin(), out->community.end(), 0);
  if (n == 0) {
    out->n_communities = 0;
    out->modularity = 0.0;
    return;
  }

  // The original graph never changes, so its sorted edges — consumed by the
  // per-level true-modularity gate — are materialized once.
  graph.SortedEdgesInto(&ws->mod_edges);

  // level_graph points at the graph of the current level; aggregation
  // ping-pongs between the two workspace graphs. mapping[v] tracks each
  // original vertex's current-level vertex.
  const Graph* level_graph = &graph;
  ws->mapping.resize(n);
  std::iota(ws->mapping.begin(), ws->mapping.end(), 0);
  // Self-loop weights accumulated by aggregation (not representable in
  // Graph); they only add to a vertex's weighted degree and to the total
  // weight, never to inter-community moves, so we thread them explicitly.
  ws->self_weight.assign(n, 0.0);

  double previous_modularity = ModularityOverEdges(
      graph, out->community, ws->mod_edges, &ws->community_degree);

  for (int level = 0; level < options.max_levels; ++level) {
    const int n_level = level_graph->n_vertices();
    ws->level_community.resize(n_level);
    std::iota(ws->level_community.begin(), ws->level_community.end(), 0);

    const bool moved = LocalMoving(*level_graph, ws->self_weight, options,
                                   &ws->level_community, ws);
    if (!moved) break;

    const int n_level_communities =
        CanonicalizeWith(&ws->level_community, &ws->remap);

    // Tentatively project onto original vertices; keep the level only if it
    // improves true modularity on the original graph.
    ws->candidate.resize(n);
    for (int v = 0; v < n; ++v) {
      ws->candidate[v] = ws->level_community[ws->mapping[v]];
    }
    const double modularity = ModularityOverEdges(
        graph, ws->candidate, ws->mod_edges, &ws->community_degree);
    if (modularity <= previous_modularity + options.min_modularity_gain) {
      break;  // out->community keeps the previous (better) level
    }
    out->community.assign(ws->candidate.begin(), ws->candidate.end());
    previous_modularity = modularity;

    // Aggregate for the next level.
    level_graph->SortedEdgesInto(&ws->level_edges);
    Graph* next =
        (level_graph == &ws->level_graph) ? &ws->next_graph : &ws->level_graph;
    AggregateInto(ws->level_edges, ws->level_community, n_level_communities,
                  ws, next);
    ws->next_self.assign(n_level_communities, 0.0);
    for (const Edge& e : ws->level_edges) {
      if (ws->level_community[e.u] == ws->level_community[e.v]) {
        ws->next_self[ws->level_community[e.u]] += std::abs(e.weight);
      }
    }
    for (int v = 0; v < n_level; ++v) {
      ws->next_self[ws->level_community[v]] += ws->self_weight[v];
    }
    std::swap(ws->self_weight, ws->next_self);
    level_graph = next;
    for (int v = 0; v < n; ++v) ws->mapping[v] = out->community[v];

    if (level_graph->n_vertices() <= 1) break;
  }

  out->n_communities = CanonicalizeWith(&out->community, &ws->remap);
  out->modularity = previous_modularity;  // relabeling cannot change it
}

Partition Louvain(const Graph& graph, const LouvainOptions& options) {
  Partition result;
  LouvainWorkspace workspace;
  LouvainInto(graph, options, &workspace, &result);
  return result;
}

Partition ConnectedComponents(const Graph& graph) {
  const int n = graph.n_vertices();
  Partition result;
  result.community.assign(n, -1);
  std::vector<int> stack;
  int next_component = 0;
  for (int start = 0; start < n; ++start) {
    if (result.community[start] != -1) continue;
    stack.push_back(start);
    result.community[start] = next_component;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const Graph::Neighbor& nb : graph.neighbors(v)) {
        if (result.community[nb.vertex] == -1) {
          result.community[nb.vertex] = next_component;
          stack.push_back(nb.vertex);
        }
      }
    }
    ++next_component;
  }
  result.n_communities = next_component;
  return result;
}

}  // namespace cad::graph
