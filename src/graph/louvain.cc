#include "graph/louvain.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>
#include <vector>

namespace cad::graph {

namespace {

// Renumbers community ids densely; communities are ordered by their smallest
// member so the labeling is canonical and deterministic.
int Canonicalize(std::vector<int>* community) {
  const int n = static_cast<int>(community->size());
  std::unordered_map<int, int> remap;
  remap.reserve(n);
  int next = 0;
  for (int v = 0; v < n; ++v) {
    auto [it, inserted] = remap.emplace((*community)[v], next);
    if (inserted) ++next;
    (*community)[v] = it->second;
  }
  return next;
}

// One Louvain level: local moving on `graph`, writing the found community per
// vertex into `community`. Returns true if any vertex moved. `self_weight`
// carries the intra-community mass folded into each aggregated vertex: it
// adds 2*s to the vertex's weighted degree and s to the total weight (the
// standard self-loop convention), but never to w(v -> c) since it moves with
// the vertex.
bool LocalMoving(const Graph& graph, const std::vector<double>& self_weight,
                 const LouvainOptions& options, std::vector<int>* community) {
  const int n = graph.n_vertices();
  double total_weight = graph.TotalWeight();  // m
  for (double s : self_weight) total_weight += s;
  if (total_weight <= 0.0) return false;
  const double two_m = 2.0 * total_weight;

  std::vector<double> vertex_weight(n);  // k_i (absolute weighted degree)
  for (int v = 0; v < n; ++v) {
    vertex_weight[v] = graph.WeightedDegree(v) + 2.0 * self_weight[v];
  }

  // Sum of k_i over members of each community.
  std::vector<double> community_total(n, 0.0);
  for (int v = 0; v < n; ++v) community_total[(*community)[v]] += vertex_weight[v];

  bool any_move = false;
  std::vector<double> weight_to_community(n, 0.0);
  std::vector<int> touched;

  for (int pass = 0; pass < options.max_passes_per_level; ++pass) {
    int moves = 0;
    for (int v = 0; v < n; ++v) {
      const int old_community = (*community)[v];

      // Accumulate |w|(v -> community) over v's neighbours.
      touched.clear();
      for (const Graph::Neighbor& nb : graph.neighbors(v)) {
        const int c = (*community)[nb.vertex];
        if (weight_to_community[c] == 0.0) touched.push_back(c);
        weight_to_community[c] += std::abs(nb.weight);
      }

      community_total[old_community] -= vertex_weight[v];

      // Gain of joining community c (relative to staying isolated):
      //   dQ = w(v->c)/m - k_v * tot_c / (2 m^2); comparing across c we can
      // drop the common 1/m factor.
      int best_community = old_community;
      double best_gain = weight_to_community[old_community] -
                         vertex_weight[v] * community_total[old_community] / two_m;
      for (int c : touched) {
        const double gain =
            weight_to_community[c] - vertex_weight[v] * community_total[c] / two_m;
        if (gain > best_gain + 1e-12 ||
            (std::abs(gain - best_gain) <= 1e-12 && c < best_community)) {
          best_gain = gain;
          best_community = c;
        }
      }

      community_total[best_community] += vertex_weight[v];
      if (best_community != old_community) {
        (*community)[v] = best_community;
        ++moves;
        any_move = true;
      }

      for (int c : touched) weight_to_community[c] = 0.0;
      weight_to_community[old_community] = 0.0;
    }
    if (moves == 0) break;
  }
  return any_move;
}

// Builds the aggregated graph whose vertices are the communities of `graph`.
Graph Aggregate(const Graph& graph, const std::vector<int>& community,
                int n_communities) {
  // Accumulate inter-community |weight|; intra-community weight becomes a
  // self-loop which we fold into vertex weight via an explicit trick: Graph
  // forbids self-loops, so we carry intra weights in a parallel vector and
  // re-add them as paired half-edges. Louvain only needs k_i and w(v->c),
  // both of which survive if we model the self-loop as extra weighted degree.
  // To keep Graph simple we instead encode the self-loop as an edge to a
  // phantom twin; simpler: store aggregated weights densely here and emit a
  // graph with an extra "self weight" channel folded into WeightedDegree by
  // duplicating the mass on a dedicated structure.
  //
  // In practice CAD's TSGs aggregate to tiny graphs, so we keep a dense map.
  std::unordered_map<int64_t, double> agg;
  std::vector<double> self_weight(n_communities, 0.0);
  for (const Edge& e : graph.SortedEdges()) {
    const int cu = community[e.u];
    const int cv = community[e.v];
    const double w = std::abs(e.weight);
    if (cu == cv) {
      self_weight[cu] += w;
    } else {
      const int a = std::min(cu, cv), b = std::max(cu, cv);
      agg[static_cast<int64_t>(a) * n_communities + b] += w;
    }
  }
  // Graph cannot store self-loops; we emulate each community self-loop of
  // weight s as a pair of vertices? No — instead we return the inter-edges
  // and attach self weights through the companion vector in LouvainImpl.
  Graph out(n_communities);
  std::vector<std::pair<int64_t, double>> sorted(agg.begin(), agg.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [key, w] : sorted) {
    out.AddEdge(static_cast<int>(key / n_communities),
                static_cast<int>(key % n_communities), w);
  }
  // self_weight is re-derived by the caller; see LouvainImpl.
  return out;
}

}  // namespace

double Modularity(const Graph& graph, const std::vector<int>& community) {
  CAD_CHECK(static_cast<int>(community.size()) == graph.n_vertices(),
            "community size mismatch");
  const double m = graph.TotalWeight();
  if (m <= 0.0) return 0.0;
  double intra = 0.0;
  for (const Edge& e : graph.SortedEdges()) {
    if (community[e.u] == community[e.v]) intra += std::abs(e.weight);
  }
  // Dense accumulation in label order: summing k_c^2 in unordered_map
  // iteration order would make the FP rounding (and thus mu/sigma and every
  // serialized report downstream) depend on hash layout — cad_lint CL003.
  int max_label = -1;
  for (int c : community) max_label = std::max(max_label, c);
  std::vector<double> community_degree(static_cast<size_t>(max_label + 1),
                                       0.0);
  for (int v = 0; v < graph.n_vertices(); ++v) {
    community_degree[static_cast<size_t>(community[static_cast<size_t>(v)])] +=
        graph.WeightedDegree(v);
  }
  double degree_term = 0.0;
  for (double k : community_degree) degree_term += k * k;
  return intra / m - degree_term / (4.0 * m * m);
}

Partition Louvain(const Graph& graph, const LouvainOptions& options) {
  const int n = graph.n_vertices();
  Partition result;
  result.community.resize(n);
  std::iota(result.community.begin(), result.community.end(), 0);
  if (n == 0) {
    result.n_communities = 0;
    return result;
  }

  // level_community maps current-level vertices to communities; mapping[v]
  // tracks each original vertex's current-level vertex.
  Graph level_graph = graph;
  std::vector<int> mapping(n);
  std::iota(mapping.begin(), mapping.end(), 0);
  // Self-loop weights accumulated by aggregation (not representable in
  // Graph); they only add to a vertex's weighted degree and to the total
  // weight, never to inter-community moves, so we thread them explicitly.
  std::vector<double> self_weight(n, 0.0);

  double previous_modularity = Modularity(graph, result.community);

  for (int level = 0; level < options.max_levels; ++level) {
    std::vector<int> level_community(level_graph.n_vertices());
    std::iota(level_community.begin(), level_community.end(), 0);

    const bool moved =
        LocalMoving(level_graph, self_weight, options, &level_community);
    if (!moved) break;

    const int n_level_communities = Canonicalize(&level_community);

    // Tentatively project onto original vertices; keep the level only if it
    // improves true modularity on the original graph.
    std::vector<int> candidate(n);
    for (int v = 0; v < n; ++v) {
      candidate[v] = level_community[mapping[v]];
    }
    const double modularity = Modularity(graph, candidate);
    if (modularity <= previous_modularity + options.min_modularity_gain) {
      break;  // result.community keeps the previous (better) level
    }
    result.community = std::move(candidate);
    previous_modularity = modularity;

    // Aggregate for the next level.
    Graph next = Aggregate(level_graph, level_community, n_level_communities);
    std::vector<double> next_self(n_level_communities, 0.0);
    for (const Edge& e : level_graph.SortedEdges()) {
      if (level_community[e.u] == level_community[e.v]) {
        next_self[level_community[e.u]] += std::abs(e.weight);
      }
    }
    for (int v = 0; v < level_graph.n_vertices(); ++v) {
      next_self[level_community[v]] += self_weight[v];
    }
    level_graph = std::move(next);
    self_weight = std::move(next_self);
    for (int v = 0; v < n; ++v) mapping[v] = result.community[v];

    if (level_graph.n_vertices() <= 1) break;
  }

  result.n_communities = Canonicalize(&result.community);
  return result;
}

Partition ConnectedComponents(const Graph& graph) {
  const int n = graph.n_vertices();
  Partition result;
  result.community.assign(n, -1);
  std::vector<int> stack;
  int next_component = 0;
  for (int start = 0; start < n; ++start) {
    if (result.community[start] != -1) continue;
    stack.push_back(start);
    result.community[start] = next_component;
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const Graph::Neighbor& nb : graph.neighbors(v)) {
        if (result.community[nb.vertex] == -1) {
          result.community[nb.vertex] = next_component;
          stack.push_back(nb.vertex);
        }
      }
    }
    ++next_component;
  }
  result.n_communities = next_component;
  return result;
}

}  // namespace cad::graph
