// cad::obs::ExpositionServer — dependency-free HTTP/1.0 exposition of the
// pipeline's observability surface.
//
// A deliberately tiny, blocking poll-loop server (POSIX sockets only, no
// third-party code) that serves GET requests on 127.0.0.1:
//
//   /metrics           Prometheus text exposition of a Registry snapshot
//   /healthz           JSON liveness: last-round age, rounds/sec, ring
//                      occupancy (whatever the owner's healthz handler says)
//   /explain?round=r   JSON decision provenance for round r (404 when the
//                      round is not in the flight-recorder ring, 400 on a
//                      malformed round)
//   /explain?tenant=name&round=r
//                      same, routed to one tenant of a fleet (404 on an
//                      unknown tenant; requires the owner to install the
//                      tenant-aware handler — without one the tenant
//                      parameter is a 404, since the surface has no tenants)
//   /advise?from=..&to=..  JSON root-cause advice over the round range
//                      [from, to]; both bounds optional (default: the whole
//                      ring). 400 on a malformed bound, 404 when the range
//                      selects no recorded rounds.
//   /                  plain-text index of the endpoints
//
// Content is produced by caller-supplied handlers, so the server knows
// nothing about the engine; StreamingCad wires its own lock-taking closures
// in. Handlers run on the server thread — they must be thread-safe against
// the owner's mutators and must not block indefinitely.
//
// Lifecycle: Start() binds (port 0 picks an ephemeral port, reported by
// port()), spawns the serve thread, and returns; Stop() (or destruction)
// wakes the poll loop through a self-pipe and joins. One connection is
// served at a time — scrape traffic is rare and tiny, and serial handling
// keeps the server trivially correct under TSan.
#ifndef CAD_OBS_EXPOSITION_SERVER_H_
#define CAD_OBS_EXPOSITION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cad::obs {

class ExpositionServer {
 public:
  struct Handlers {
    // Body for /metrics (Prometheus text exposition format).
    std::function<std::string()> metrics_text;
    // Body for /healthz (a JSON object).
    std::function<std::string()> healthz_json;
    // Body for /explain?round=r, or empty when the round is unknown (404).
    std::function<std::string(int round)> explain_json;
    // Body for /explain?tenant=name&round=r — the fleet's tenant-routed
    // provenance. Empty when the tenant is unknown or the round is not in
    // that tenant's flight-recorder ring (404). A request carrying tenant=
    // on a surface without this handler is a 404 (no such tenant).
    std::function<std::string(const std::string& tenant, int round)>
        explain_tenant_json;
    // Body for /advise?from=..&to=.. — root-cause advice over the inclusive
    // round range [from_round, to_round], -1 meaning unbounded on that side.
    // Empty when the range selects no recorded rounds (404).
    std::function<std::string(int from_round, int to_round)> advise_json;
  };

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the serve thread.
  ~ExpositionServer();
  [[nodiscard]] static Result<std::unique_ptr<ExpositionServer>> Start(
      uint16_t port, Handlers handlers);
  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  // The bound port (the actual one when constructed with port 0).
  uint16_t port() const { return port_; }
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  // Idempotent and safe to race; wakes the poll loop and joins the serve
  // thread.
  void Stop() EXCLUDES(join_mu_);

 private:
  ExpositionServer(int listen_fd, int wake_read_fd, int wake_write_fd,
                   uint16_t port, Handlers handlers);

  void Serve();
  void HandleConnection(int fd);
  std::string BuildResponse(const std::string& request_line);

  const int listen_fd_;
  const int wake_read_fd_;   // self-pipe: Stop() writes, poll loop wakes
  const int wake_write_fd_;
  const uint16_t port_;
  const Handlers handlers_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};
  // Rank 10 (common/lock_order.h), the outermost rank: Stop() holds it
  // across the serve-thread join, and handler code on that thread takes
  // every other ranked lock — so this one must never be acquired while any
  // of them is held.
  common::Mutex join_mu_{common::lock_order::kExpositionJoin,
                         "obs::ExpositionServer::join_mu_"};
  std::thread thread_ GUARDED_BY(join_mu_);  // joined at most once
};

}  // namespace cad::obs

#endif  // CAD_OBS_EXPOSITION_SERVER_H_
