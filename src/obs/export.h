// cad::obs exporters: Prometheus text exposition and dependency-free JSON
// for metric snapshots, Chrome-trace_event JSONL for span traces, and the
// combined machine-readable run-telemetry files behind the bench harness's
// --telemetry-out flag.
#ifndef CAD_OBS_EXPORT_H_
#define CAD_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cad::obs {

// Prometheus text exposition format (# TYPE lines, _bucket/_sum/_count
// series for histograms, cumulative le="" buckets).
std::string ToPrometheusText(const Snapshot& snapshot);

// One labelled registry snapshot for ToPrometheusTextLabeled: the fleet
// exposes each tenant's private Registry under `{tenant="<label_value>"}`.
struct LabeledSnapshot {
  std::string label_value;
  Snapshot snapshot;
};

// Prometheus text exposition for N labelled snapshots sharing one metric
// namespace (the fleet's per-tenant registries all carry the same cad_*
// instrument set). Emits # HELP / # TYPE once per metric name — valid
// exposition requires a single TYPE line per name — then one labelled series
// per snapshot that carries the name. Histogram buckets merge the label with
// `le` ({<key>="<value>",le="..."}). Label values are escaped per the
// exposition format (backslash, double quote, newline).
std::string ToPrometheusTextLabeled(
    const std::string& label_key,
    const std::vector<LabeledSnapshot>& snapshots);

// JSON object:
// {"counters": {name: value, ...}, "gauges": {name: value, ...},
//  "histograms": {name: {"sum": s, "count": n, "mean": m,
//                        "p50": ..., "p95": ..., "p99": ...,
//                        "buckets": [{"le": bound|"+Inf", "count": c}, ...]}}}
std::string SnapshotToJson(const Snapshot& snapshot);

// One Chrome trace_event "complete" event ({"ph":"X",...}) as a single-line
// JSON object.
std::string TraceEventToJson(const TraceEvent& event);

// All recorded spans, one JSON object per line (JSONL). Wrap in [...] (e.g.
// `jq -s . trace.jsonl`) to load in chrome://tracing; Perfetto's UI accepts
// the JSONL directly.
std::string TraceToJsonLines(const Tracer& tracer);

// Writes the full telemetry of a run:
//   <path>              {"metrics": <SnapshotToJson>, "spans": [events...],
//                        "dropped_spans": n}   (one JSON document)
//   <path>.trace.jsonl  the spans as Chrome-trace JSONL
//   <path>.prom         the metrics in Prometheus text format
[[nodiscard]] Status WriteTelemetry(const std::string& path, const Snapshot& snapshot,
                      const Tracer& tracer);

}  // namespace cad::obs

#endif  // CAD_OBS_EXPORT_H_
