// Internal JSON/Prometheus text-building helpers shared by the cad::obs
// exporters (export.cc, flight_recorder.cc) and the drivers' health
// endpoints. Append-style into a caller-owned string so exporters can build
// large documents without intermediate temporaries.
//
// Number policy: JSON has no representation for NaN or the infinities, so
// AppendJsonNumber emits `null` for non-finite values; Prometheus text
// exposition does ("NaN", "+Inf", "-Inf"), so AppendPromNumber emits those.
#ifndef CAD_OBS_JSON_UTIL_H_
#define CAD_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace cad::obs {

// Shortest-ish round-trippable rendering used by every exporter; callers
// relying on byte-determinism (the serialization contract) get the same
// bytes for the same double on every platform with IEEE doubles.
inline void AppendRawDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

// JSON number; non-finite values become `null` (JSON has no NaN/Inf).
inline void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  AppendRawDouble(out, v);
}

// Prometheus sample value; non-finite values use the exposition-format
// spellings ("NaN", "+Inf", "-Inf") scrapers understand.
inline void AppendPromNumber(std::string* out, double v) {
  if (std::isnan(v)) {
    *out += "NaN";
  } else if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
  } else {
    AppendRawDouble(out, v);
  }
}

inline void AppendJsonString(std::string* out, std::string_view s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace cad::obs

#endif  // CAD_OBS_JSON_UTIL_H_
