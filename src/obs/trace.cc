#include "obs/trace.h"

namespace cad::obs {

namespace {

// Stable small per-thread ordinals: nicer tids in trace viewers than raw
// pthread handles, and deterministic in single-threaded tests.
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// Current span nesting depth of this thread (incremented while a recording
// span is open).
thread_local int t_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives all users
  return *tracer;
}

void Tracer::Record(TraceEvent event) {
  // cad-lint: allow(CL007) only reached when a tracer is attached to the span; tracing is opt-in diagnostics, off on the default hot path
  common::MutexLock lock(mu_);  // cad-lint: allow(CL010) capacity-capped span-buffer append; opt-in diagnostics path
  if (events_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // cad-lint: allow(CL007) tracer-attached diagnostics path only; capacity-capped ring append
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  common::MutexLock lock(mu_);
  return events_;
}

size_t Tracer::event_count() const {
  common::MutexLock lock(mu_);
  return events_.size();
}

void Tracer::Clear() {
  // cad-lint: allow(CL007) name-resolution over-approximation: the round loop's `.Clear()` calls hit RoundOutput/DecisionRecord, never the tracer's test-only reset
  common::MutexLock lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Span::Span(Tracer* tracer, std::string_view name, std::string_view category) {
  if (tracer == nullptr || !tracer->enabled()) return;  // inert span
  tracer_ = tracer;
  event_.name = name;
  event_.category = category;
  event_.thread_id = ThreadOrdinal();
  event_.depth = t_span_depth++;
  event_.start_us = tracer->NowMicros();
}

void Span::AddArg(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  // cad-lint: allow(CL007) inert unless a tracer is attached (opt-in diagnostics); guarded by the nullptr check above
  event_.args.emplace_back(std::string(key), std::move(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  event_.duration_us = tracer_->NowMicros() - event_.start_us;
  --t_span_depth;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->Record(std::move(event_));
}

}  // namespace cad::obs
