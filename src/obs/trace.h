// cad::obs — span tracer: nested begin/end events with labels, exportable as
// Chrome-`trace_event`-compatible JSONL (loadable in Perfetto / about:tracing
// after wrapping the lines in a JSON array, see DESIGN.md "Observability").
//
// The tracer is compiled in but *disabled by default*: constructing a Span
// against a disabled tracer costs one pointer test plus one relaxed atomic
// load and records nothing, so instrumentation can stay in the hot path
// permanently. When enabled, completed spans are appended to a bounded
// in-memory buffer under a mutex; once the buffer is full further spans are
// counted as dropped instead of recorded (the trace stays a prefix of the
// run, never a random sample).
#ifndef CAD_OBS_TRACE_H_
#define CAD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cad::obs {

// One completed span, in the vocabulary of Chrome's trace_event format
// ("ph":"X" complete events): a named interval on a thread, with string
// labels carried as `args`.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;     // microseconds since the tracer's epoch
  int64_t duration_us = 0;  // wall-clock duration
  uint32_t thread_id = 0;   // stable per-thread ordinal (tid in the JSON)
  int depth = 0;            // span nesting depth on this thread, 0 = root
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 18;  // ~262k spans

  explicit Tracer(size_t capacity = kDefaultCapacity) : capacity_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // The process-wide tracer. Off until something calls Enable() (e.g. the
  // bench harness when --telemetry-out is given).
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Appends a completed span; drops (and counts) when at capacity.
  void Record(TraceEvent event) EXCLUDES(mu_);

  // Copy of the recorded spans, in completion order.
  std::vector<TraceEvent> events() const EXCLUDES(mu_);
  size_t event_count() const EXCLUDES(mu_);
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear() EXCLUDES(mu_);

  // Microseconds since this tracer's construction (the trace epoch).
  int64_t NowMicros() const;

 private:
  std::atomic<bool> enabled_{false};
  // Rank 31 (common/lock_order.h): span-buffer lock, taken inside a
  // streaming round (under StreamingCad::mu_, rank 20) next to the metrics
  // registry (rank 30); leaf — never held while acquiring another lock.
  mutable common::Mutex mu_{common::lock_order::kObsTracer,
                            "obs::Tracer::mu_"};
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  const size_t capacity_;  // immutable after construction, lock-free reads
  std::atomic<uint64_t> dropped_{0};
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

// nullptr-tolerant accessor mirroring ResolveRegistry: components take an
// optional Tracer* and fall back to the global (disabled-by-default) one.
inline Tracer& ResolveTracer(Tracer* tracer) {
  return tracer != nullptr ? *tracer : Tracer::Global();
}

// RAII span. When the tracer is disabled at construction the span is inert:
// every later member call is a no-op guarded by a single branch. When
// enabled, destruction (or End()) records one TraceEvent covering the
// constructor-to-end interval, with per-thread nesting depth tracked so
// child spans render nested under their parents.
class Span {
 public:
  Span(Tracer* tracer, std::string_view name, std::string_view category = "cad");
  Span(Tracer& tracer, std::string_view name, std::string_view category = "cad")
      : Span(&tracer, name, category) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  // Attaches a label exported under the event's `args`.
  void AddArg(std::string_view key, std::string value);

  bool active() const { return tracer_ != nullptr; }

  // Completes the span now; idempotent.
  void End();

 private:
  Tracer* tracer_ = nullptr;  // null when recording is off → everything no-ops
  TraceEvent event_;
};

}  // namespace cad::obs

#endif  // CAD_OBS_TRACE_H_
