#include "obs/flight_recorder.h"

#include <chrono>
#include <cstdio>
#include <limits>

#include "check/check.h"
#include "obs/json_util.h"

namespace cad::obs {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendIntArray(std::string* out, const std::vector<int>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += std::to_string(values[i]);
  }
  *out += ']';
}

}  // namespace

void DecisionRecord::Clear() CAD_REALTIME_AUDITED {
  round = -1;
  window_start = 0;
  window_end = 0;
  n_variations = 0;
  mu = 0.0;
  sigma = 0.0;
  threshold = 0.0;
  score = 0.0;
  abnormal = false;
  anomaly_open = false;
  n_outliers = 0;
  n_communities = 0;
  n_edges = 0;
  modularity = 0.0;
  entered.clear();
  exited.clear();
  movers.clear();
  correlation_seconds = 0.0;
  knn_seconds = 0.0;
  louvain_seconds = 0.0;
  coappearance_seconds = 0.0;
  round_seconds = 0.0;
  unix_us = 0;
}

DecisionProvenance MakeProvenance(const DecisionRecord& record,
                                  const DecisionRecord* previous) {
  DecisionProvenance provenance;
  provenance.record = record;
  if (previous != nullptr) {
    provenance.has_prev = true;
    provenance.prev_round = previous->round;
    provenance.verdict_flipped = previous->abnormal != record.abnormal;
    provenance.delta_n_variations = record.n_variations - previous->n_variations;
    provenance.delta_mu = record.mu - previous->mu;
    provenance.delta_sigma = record.sigma - previous->sigma;
    provenance.delta_threshold = record.threshold - previous->threshold;
    provenance.delta_score = record.score - previous->score;
  }
  return provenance;
}

std::string DecisionRecordToJson(const DecisionRecord& record,
                                 bool include_timings) {
  std::string json = "{\"round\":" + std::to_string(record.round);
  json += ",\"window_start\":" + std::to_string(record.window_start);
  json += ",\"window_end\":" + std::to_string(record.window_end);
  json += ",\"n_variations\":" + std::to_string(record.n_variations);
  json += ",\"mu\":";
  AppendJsonNumber(&json, record.mu);
  json += ",\"sigma\":";
  AppendJsonNumber(&json, record.sigma);
  json += ",\"threshold\":";
  AppendJsonNumber(&json, record.threshold);
  json += ",\"score\":";
  AppendJsonNumber(&json, record.score);
  json += ",\"abnormal\":";
  json += record.abnormal ? "true" : "false";
  json += ",\"anomaly_open\":";
  json += record.anomaly_open ? "true" : "false";
  json += ",\"n_outliers\":" + std::to_string(record.n_outliers);
  json += ",\"n_communities\":" + std::to_string(record.n_communities);
  json += ",\"n_edges\":" + std::to_string(record.n_edges);
  json += ",\"modularity\":";
  AppendJsonNumber(&json, record.modularity);
  json += ",\"entered\":";
  AppendIntArray(&json, record.entered);
  json += ",\"exited\":";
  AppendIntArray(&json, record.exited);
  json += ",\"movers\":";
  AppendIntArray(&json, record.movers);
  if (include_timings) {
    json += ",\"timings\":{\"correlation_seconds\":";
    AppendJsonNumber(&json, record.correlation_seconds);
    json += ",\"knn_seconds\":";
    AppendJsonNumber(&json, record.knn_seconds);
    json += ",\"louvain_seconds\":";
    AppendJsonNumber(&json, record.louvain_seconds);
    json += ",\"coappearance_seconds\":";
    AppendJsonNumber(&json, record.coappearance_seconds);
    json += ",\"round_seconds\":";
    AppendJsonNumber(&json, record.round_seconds);
    json += ",\"unix_us\":" + std::to_string(record.unix_us);
    json += '}';
  }
  json += '}';
  return json;
}

std::string ProvenanceToJson(const DecisionProvenance& provenance) {
  std::string json = "{\"record\":";
  json += DecisionRecordToJson(provenance.record, /*include_timings=*/false);
  json += ",\"prev\":";
  if (provenance.has_prev) {
    json += "{\"round\":" + std::to_string(provenance.prev_round);
    json += ",\"verdict_flipped\":";
    json += provenance.verdict_flipped ? "true" : "false";
    json += ",\"delta_n_variations\":" +
            std::to_string(provenance.delta_n_variations);
    json += ",\"delta_mu\":";
    AppendJsonNumber(&json, provenance.delta_mu);
    json += ",\"delta_sigma\":";
    AppendJsonNumber(&json, provenance.delta_sigma);
    json += ",\"delta_threshold\":";
    AppendJsonNumber(&json, provenance.delta_threshold);
    json += ",\"delta_score\":";
    AppendJsonNumber(&json, provenance.delta_score);
    json += '}';
  } else {
    json += "null";
  }
  json += ",\"timings\":{\"correlation_seconds\":";
  AppendJsonNumber(&json, provenance.record.correlation_seconds);
  json += ",\"knn_seconds\":";
  AppendJsonNumber(&json, provenance.record.knn_seconds);
  json += ",\"louvain_seconds\":";
  AppendJsonNumber(&json, provenance.record.louvain_seconds);
  json += ",\"coappearance_seconds\":";
  AppendJsonNumber(&json, provenance.record.coappearance_seconds);
  json += ",\"round_seconds\":";
  AppendJsonNumber(&json, provenance.record.round_seconds);
  json += ",\"unix_us\":" + std::to_string(provenance.record.unix_us);
  json += "}}";
  return json;
}

FlightRecorder::FlightRecorder(int capacity, int n_sensors)
    : capacity_(capacity > 0 ? capacity : 0) {
  CAD_CHECK(capacity >= 0, "flight recorder capacity must be >= 0");
  if (capacity_ == 0) return;
  ring_.resize(static_cast<size_t>(capacity_));
  steady_us_.assign(static_cast<size_t>(capacity_), 0);
  const size_t reserve = n_sensors > 0 ? static_cast<size_t>(n_sensors) : 0;
  for (DecisionRecord& record : ring_) {
    record.entered.reserve(reserve);
    record.exited.reserve(reserve);
    record.movers.reserve(reserve);
  }
}

FlightRecorder::~FlightRecorder() {
  if (crash_hook_registered_) {
    check::RemoveFailureDumpHook(&FlightRecorder::CrashDumpTrampoline, this);
  }
}

int FlightRecorder::size() const {
  return static_cast<int>(
      total_ < static_cast<int64_t>(capacity_) ? total_ : capacity_);
}

int64_t FlightRecorder::total_records() const { return total_; }

DecisionRecord& FlightRecorder::BeginRecord() CAD_REALTIME_AUDITED {
  CAD_CHECK(enabled(), "BeginRecord on a disabled flight recorder");
  DecisionRecord& record = ring_[static_cast<size_t>(slot(total_))];
  record.Clear();
  return record;
}

void FlightRecorder::Commit() CAD_REALTIME_AUDITED {
  CAD_CHECK(enabled(), "Commit on a disabled flight recorder");
  const size_t index = static_cast<size_t>(slot(total_));
  ring_[index].unix_us = WallNowUs();
  steady_us_[index] = SteadyNowUs();
  ++total_;
}

const DecisionRecord* FlightRecorder::latest() const {
  if (total_ == 0) return nullptr;
  return &ring_[static_cast<size_t>(slot(total_ - 1))];
}

const DecisionRecord* FlightRecorder::Find(int round) const {
  if (!enabled() || round < 0) return nullptr;
  const DecisionRecord& candidate = ring_[static_cast<size_t>(slot(round))];
  return candidate.round == round ? &candidate : nullptr;
}

std::optional<DecisionProvenance> FlightRecorder::Explain(int round) const {
  const DecisionRecord* record = Find(round);
  if (record == nullptr) return std::nullopt;
  return MakeProvenance(*record, Find(round - 1));
}

double FlightRecorder::seconds_since_last_record() const {
  if (total_ == 0) return std::numeric_limits<double>::infinity();
  const int64_t last = steady_us_[static_cast<size_t>(slot(total_ - 1))];
  return static_cast<double>(SteadyNowUs() - last) * 1e-6;
}

double FlightRecorder::recent_rounds_per_second() const {
  const int held = size();
  if (held < 2) return 0.0;
  const int64_t newest = steady_us_[static_cast<size_t>(slot(total_ - 1))];
  const int64_t oldest = steady_us_[static_cast<size_t>(slot(total_ - held))];
  if (newest <= oldest) return 0.0;
  return static_cast<double>(held - 1) /
         (static_cast<double>(newest - oldest) * 1e-6);
}

void FlightRecorder::DumpJsonl(std::string* out) const {
  const int held = size();
  for (int i = 0; i < held; ++i) {
    const DecisionRecord& record =
        ring_[static_cast<size_t>(slot(total_ - held + i))];
    *out += DecisionRecordToJson(record);
    *out += '\n';
  }
}

void FlightRecorder::AppendRangeJsonl(int first_round, int last_round,
                                      std::string* out) const {
  for (int round = first_round; round <= last_round; ++round) {
    const DecisionRecord* record = Find(round);
    if (record == nullptr) continue;  // evicted or never recorded
    *out += DecisionRecordToJson(*record);
    *out += '\n';
  }
}

std::vector<DecisionRecord> FlightRecorder::Records() const {
  std::vector<DecisionRecord> records;
  const int held = size();
  records.reserve(static_cast<size_t>(held));
  for (int i = 0; i < held; ++i) {
    records.push_back(ring_[static_cast<size_t>(slot(total_ - held + i))]);
  }
  return records;
}

void FlightRecorder::EnableCrashDump(std::string path) {
  crash_dump_path_ = std::move(path);
  const bool want = enabled() && !crash_dump_path_.empty();
  if (want && !crash_hook_registered_) {
    check::AddFailureDumpHook(&FlightRecorder::CrashDumpTrampoline, this);
    crash_hook_registered_ = true;
  } else if (!want && crash_hook_registered_) {
    check::RemoveFailureDumpHook(&FlightRecorder::CrashDumpTrampoline, this);
    crash_hook_registered_ = false;
  }
}

void FlightRecorder::CrashDumpTrampoline(void* self) {
  static_cast<const FlightRecorder*>(self)->WriteCrashDump();
}

void FlightRecorder::WriteCrashDump() const {
  std::string jsonl;
  DumpJsonl(&jsonl);
  std::FILE* file = std::fopen(crash_dump_path_.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr,
                 "cad::obs: flight-recorder crash dump failed to open %s\n",
                 crash_dump_path_.c_str());
    return;
  }
  std::fwrite(jsonl.data(), 1, jsonl.size(), file);
  std::fclose(file);
  std::fprintf(stderr,
               "cad::obs: flight recorder dumped %d round(s) to %s\n",
               size(), crash_dump_path_.c_str());
}

}  // namespace cad::obs
