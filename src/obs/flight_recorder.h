// cad::obs flight recorder — per-round decision provenance for the
// detection engine.
//
// The engine's verdict for a round is one bit derived from a rich internal
// state (n_r, the running mu/sigma, the eta-sigma threshold of Theorem 1,
// the outlier-variation set, the TSG's community structure). The
// FlightRecorder keeps the last `capacity` rounds of that state as
// structured DecisionRecords in a fixed ring so "why did round r fire (or
// stay silent)?" is answerable after the fact:
//
//   - on demand        DumpJsonl / the drivers' flight-log accessors
//   - per anomaly      the engine appends the closed anomaly's rounds to
//                      CadOptions::flight_log_path (JSONL)
//   - on CAD_CHECK     EnableCrashDump registers a check::FailureDumpHook
//     violation        that writes the whole ring before the process dies
//
// Allocation discipline: the ring and every per-record vector are sized at
// construction (capacity slots, each with room for n_sensors ids), so
// steady-state recording performs zero heap allocations — the same contract
// the engine's round hot path keeps, proved by tests/core/engine_alloc_test.
//
// The recorder is NOT synchronized; it is engine-owned state and inherits
// the engine's threading contract (drivers that need concurrent queries,
// i.e. StreamingCad, wrap engine access in their own lock). The crash-dump
// hook runs on the failing thread, which already owns any driver lock.
#ifndef CAD_OBS_FLIGHT_RECORDER_H_
#define CAD_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/realtime.h"

namespace cad::obs {

// Everything one engine round's decision was made from. The deterministic
// fields (everything except the trailing wall-clock timings) are
// byte-identical across the batch and streaming drivers for the same input
// — the serialization keeps the timings last so consumers can compare the
// deterministic prefix directly.
struct DecisionRecord {
  int round = -1;
  int window_start = 0;  // window span [start, end) on the driver time axis
  int window_end = 0;
  int n_variations = 0;  // n_r (Definition 8)
  double mu = 0.0;       // statistics the decision was judged against
  double sigma = 0.0;
  double threshold = 0.0;  // deviation threshold actually applied (0 when
                           // the round was not judged: round 0 / burn-in)
  double score = 0.0;      // normalized deviation in [0, 1]; 0.5 = boundary
  bool abnormal = false;
  bool anomaly_open = false;  // assembler state after this round
  int n_outliers = 0;         // |O_r|
  int n_communities = 0;      // c_r
  int n_edges = 0;            // TSG edges after tau pruning
  double modularity = 0.0;    // Newman modularity of the round's partition
  std::vector<int> entered;   // outlier variations: sensors that joined O_r
  std::vector<int> exited;    // outlier variations: sensors that left O_r
  std::vector<int> movers;    // Definition 2 subset of `entered`
  // Wall-clock facts (non-deterministic; serialized last, under "timings").
  double correlation_seconds = 0.0;
  double knn_seconds = 0.0;
  double louvain_seconds = 0.0;
  double coappearance_seconds = 0.0;
  double round_seconds = 0.0;
  int64_t unix_us = 0;  // wall-clock commit time, microseconds since epoch

  // Resets values but keeps vector capacity (ring-slot reuse).
  void Clear() CAD_REALTIME_AUDITED;
};

// A record plus the delta against the preceding round — the "what changed
// that flipped (or could have flipped) the verdict" view served by
// /explain and Explain().
struct DecisionProvenance {
  DecisionRecord record;
  bool has_prev = false;
  int prev_round = -1;
  bool verdict_flipped = false;  // abnormal differs from the previous round
  int delta_n_variations = 0;
  double delta_mu = 0.0;
  double delta_sigma = 0.0;
  double delta_threshold = 0.0;
  double delta_score = 0.0;
};

DecisionProvenance MakeProvenance(const DecisionRecord& record,
                                  const DecisionRecord* previous);

// One-line JSON object. Field order is fixed and the wall-clock facts come
// last (under "timings"), so everything before `,"timings"` is the
// deterministic provenance.
std::string DecisionRecordToJson(const DecisionRecord& record,
                                 bool include_timings = true);

// {"record":{...no timings...},"prev":{...deltas...}|null,"timings":{...}}.
std::string ProvenanceToJson(const DecisionProvenance& provenance);

class FlightRecorder {
 public:
  // Disabled recorder: zero capacity, every query comes back empty.
  FlightRecorder() = default;
  // `capacity` ring slots, each preallocated for `n_sensors` sensor ids.
  FlightRecorder(int capacity, int n_sensors);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  ~FlightRecorder();

  bool enabled() const { return capacity_ > 0; }
  int capacity() const { return capacity_; }
  // Records currently held (ring occupancy, <= capacity).
  int size() const;
  // Records ever committed (evicted ones included).
  int64_t total_records() const;

  // The slot the next round should fill, Clear()ed. Callers fill it and then
  // Commit(); Begin without Commit overwrites the same slot. Must not be
  // called on a disabled recorder.
  DecisionRecord& BeginRecord() CAD_REALTIME_AUDITED;
  void Commit() CAD_REALTIME_AUDITED;

  // Newest committed record; nullptr while empty.
  const DecisionRecord* latest() const;
  // The record of `round`, or nullptr when it was never recorded or has
  // been evicted by the ring.
  const DecisionRecord* Find(int round) const;
  // Record + delta vs the previous round (when still in the ring).
  std::optional<DecisionProvenance> Explain(int round) const;

  // Seconds since the last Commit on the process steady clock; +inf while
  // empty. Drives the /healthz last-round age.
  double seconds_since_last_record() const;
  // Throughput over the rounds currently in the ring; 0 with fewer than two.
  double recent_rounds_per_second() const;

  // All held records, oldest to newest, one JSON object per line.
  void DumpJsonl(std::string* out) const;
  // The held subset of rounds [first_round, last_round], oldest to newest.
  void AppendRangeJsonl(int first_round, int last_round,
                        std::string* out) const;

  // Copies the held records, oldest to newest (DetectionReport::flight_log).
  std::vector<DecisionRecord> Records() const;

  // Registers a check::FailureDumpHook that writes the whole ring to `path`
  // (truncating) when a CAD_CHECK fails, before the process aborts. The hook
  // unregisters in the destructor. Empty path disables.
  void EnableCrashDump(std::string path);

 private:
  static void CrashDumpTrampoline(void* self);
  void WriteCrashDump() const;

  int slot(int64_t index) const {
    return static_cast<int>(index % capacity_);
  }

  int capacity_ = 0;
  std::vector<DecisionRecord> ring_;
  // Steady-clock commit stamps (microseconds), parallel to ring_; used for
  // age/rate queries so wall-clock steps cannot corrupt them.
  std::vector<int64_t> steady_us_;
  int64_t total_ = 0;
  std::string crash_dump_path_;
  bool crash_hook_registered_ = false;
};

}  // namespace cad::obs

#endif  // CAD_OBS_FLIGHT_RECORDER_H_
