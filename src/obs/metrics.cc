#include "obs/metrics.h"

#include <algorithm>

#include "check/check.h"
#include "common/status.h"

namespace cad::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CAD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()),
            "histogram bounds must be ascending");
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double value) CAD_REALTIME {
  // Branchless-ish bucket lookup; bucket i holds values <= bounds_[i].
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    total += counts_[i].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBuckets() {
  // 1e-5 s .. ~40 s, factor 2.5 per step — covers micro-round latencies on
  // small sensor counts up to full warm-up phases on IS-5-scale runs.
  std::vector<double> bounds;
  for (double b = 1e-5; b < 50.0; b *= 2.5) bounds.push_back(b);
  return bounds;
}

uint64_t HistogramSample::count() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

double HistogramSample::mean() const {
  const uint64_t n = count();
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double HistogramSample::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0 || counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target && counts[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // The +Inf bucket has no upper bound; report its lower edge.
      if (i >= bounds.size()) return lo;
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(cumulative)) / counts[i];
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

const CounterSample* Snapshot::FindCounter(std::string_view name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSample* Snapshot::FindGauge(std::string_view name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSample* Snapshot::FindHistogram(std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  // cad-lint: allow(CL010) cold-path instrument registration; callers cache the returned reference
  common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      Named<Counter>{std::make_unique<Counter>(),
                                     std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  // cad-lint: allow(CL010) cold-path instrument registration; callers cache the returned reference
  common::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      Named<Gauge>{std::make_unique<Gauge>(), std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds,
                               std::string_view help) {
  // cad-lint: allow(CL010) cold-path instrument registration; callers cache the returned reference
  common::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultLatencyBuckets();
    it = histograms_
             .emplace(std::string(name),
                      Named<Histogram>{
                          std::make_unique<Histogram>(std::move(bounds)),
                          std::string(help)})
             .first;
  }
  return *it->second.instrument;
}

Snapshot Registry::TakeSnapshot() const {
  // cad-lint: allow(CL010) snapshot copy-under-lock is the exposition design: scrape-rate cold path, bounded by instrument count
  common::MutexLock lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, named] : counters_) {
    snapshot.counters.push_back({name, named.help, named.instrument->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, named] : gauges_) {
    snapshot.gauges.push_back({name, named.help, named.instrument->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, named] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.help = named.help;
    sample.bounds = named.instrument->bounds();
    sample.counts = named.instrument->bucket_counts();
    sample.sum = named.instrument->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void Registry::ResetValues() {
  common::MutexLock lock(mu_);
  for (auto& [name, named] : counters_) named.instrument->Reset();
  for (auto& [name, named] : gauges_) named.instrument->Reset();
  for (auto& [name, named] : histograms_) named.instrument->Reset();
}

}  // namespace cad::obs
