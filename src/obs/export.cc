#include "obs/export.h"

#include <algorithm>
#include <fstream>

#include "obs/json_util.h"

namespace cad::obs {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << content;
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

// Prometheus exposition-format label-value escaping: backslash, double
// quote, newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// Sorted union of the sample names of one instrument kind across snapshots.
// Snapshot vectors are already name-sorted (Registry iterates a std::map),
// so per-snapshot lookups below can binary-search.
template <typename Sample, typename Project>
std::vector<std::string> NameUnion(
    const std::vector<LabeledSnapshot>& snapshots, Project project) {
  std::vector<std::string> names;
  for (const LabeledSnapshot& labeled : snapshots) {
    for (const Sample& sample : project(labeled.snapshot)) {
      names.push_back(sample.name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

template <typename Sample>
const Sample* FindByName(const std::vector<Sample>& samples,
                         const std::string& name) {
  const auto it = std::lower_bound(
      samples.begin(), samples.end(), name,
      [](const Sample& sample, const std::string& key) {
        return sample.name < key;
      });
  if (it == samples.end() || it->name != name) return nullptr;
  return &*it;
}

}  // namespace

std::string ToPrometheusText(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendPromNumber(&out, g.value);
    out += "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name + "_bucket{le=\"";
      if (i < h.bounds.size()) {
        AppendPromNumber(&out, h.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum ";
    AppendPromNumber(&out, h.sum);
    out += "\n" + h.name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string ToPrometheusTextLabeled(
    const std::string& label_key,
    const std::vector<LabeledSnapshot>& snapshots) {
  std::string out;
  // One "{key=\"value\"" prefix per snapshot, reused for every series.
  std::vector<std::string> label_prefixes;
  label_prefixes.reserve(snapshots.size());
  for (const LabeledSnapshot& labeled : snapshots) {
    label_prefixes.push_back('{' + label_key + "=\"" +
                             EscapeLabelValue(labeled.label_value) + '"');
  }

  const std::vector<std::string> counter_names =
      NameUnion<CounterSample>(snapshots, [](const Snapshot& s) -> const auto& {
        return s.counters;
      });
  for (const std::string& name : counter_names) {
    bool typed = false;
    for (size_t s = 0; s < snapshots.size(); ++s) {
      const CounterSample* c = FindByName(snapshots[s].snapshot.counters, name);
      if (c == nullptr) continue;
      if (!typed) {
        if (!c->help.empty()) out += "# HELP " + name + " " + c->help + "\n";
        out += "# TYPE " + name + " counter\n";
        typed = true;
      }
      out += name + label_prefixes[s] + "} " + std::to_string(c->value) + "\n";
    }
  }

  const std::vector<std::string> gauge_names =
      NameUnion<GaugeSample>(snapshots, [](const Snapshot& s) -> const auto& {
        return s.gauges;
      });
  for (const std::string& name : gauge_names) {
    bool typed = false;
    for (size_t s = 0; s < snapshots.size(); ++s) {
      const GaugeSample* g = FindByName(snapshots[s].snapshot.gauges, name);
      if (g == nullptr) continue;
      if (!typed) {
        if (!g->help.empty()) out += "# HELP " + name + " " + g->help + "\n";
        out += "# TYPE " + name + " gauge\n";
        typed = true;
      }
      out += name + label_prefixes[s] + "} ";
      AppendPromNumber(&out, g->value);
      out += "\n";
    }
  }

  const std::vector<std::string> histogram_names = NameUnion<HistogramSample>(
      snapshots, [](const Snapshot& s) -> const auto& {
        return s.histograms;
      });
  for (const std::string& name : histogram_names) {
    bool typed = false;
    for (size_t s = 0; s < snapshots.size(); ++s) {
      const HistogramSample* h =
          FindByName(snapshots[s].snapshot.histograms, name);
      if (h == nullptr) continue;
      if (!typed) {
        if (!h->help.empty()) out += "# HELP " + name + " " + h->help + "\n";
        out += "# TYPE " + name + " histogram\n";
        typed = true;
      }
      uint64_t cumulative = 0;
      for (size_t i = 0; i < h->counts.size(); ++i) {
        cumulative += h->counts[i];
        out += name + "_bucket" + label_prefixes[s] + ",le=\"";
        if (i < h->bounds.size()) {
          AppendPromNumber(&out, h->bounds[i]);
        } else {
          out += "+Inf";
        }
        out += "\"} " + std::to_string(cumulative) + "\n";
      }
      out += name + "_sum" + label_prefixes[s] + "} ";
      AppendPromNumber(&out, h->sum);
      out += "\n" + name + "_count" + label_prefixes[s] + "} " +
             std::to_string(h->count()) + "\n";
    }
  }
  return out;
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  std::string json = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) json += ',';
    AppendJsonString(&json, snapshot.counters[i].name);
    json += ':' + std::to_string(snapshot.counters[i].value);
  }
  json += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) json += ',';
    AppendJsonString(&json, snapshot.gauges[i].name);
    json += ':';
    AppendJsonNumber(&json, snapshot.gauges[i].value);
  }
  json += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) json += ',';
    AppendJsonString(&json, h.name);
    json += ":{\"sum\":";
    AppendJsonNumber(&json, h.sum);
    json += ",\"count\":" + std::to_string(h.count());
    json += ",\"mean\":";
    AppendJsonNumber(&json, h.mean());
    json += ",\"p50\":";
    AppendJsonNumber(&json, h.Quantile(0.50));
    json += ",\"p95\":";
    AppendJsonNumber(&json, h.Quantile(0.95));
    json += ",\"p99\":";
    AppendJsonNumber(&json, h.Quantile(0.99));
    json += ",\"buckets\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) json += ',';
      json += "{\"le\":";
      if (b < h.bounds.size()) {
        AppendJsonNumber(&json, h.bounds[b]);
      } else {
        json += "\"+Inf\"";
      }
      json += ",\"count\":" + std::to_string(h.counts[b]) + '}';
    }
    json += "]}";
  }
  json += "}}";
  return json;
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string json = "{\"name\":";
  AppendJsonString(&json, event.name);
  json += ",\"cat\":";
  AppendJsonString(&json, event.category);
  json += ",\"ph\":\"X\",\"ts\":" + std::to_string(event.start_us);
  json += ",\"dur\":" + std::to_string(event.duration_us);
  json += ",\"pid\":1,\"tid\":" + std::to_string(event.thread_id);
  json += ",\"args\":{\"depth\":\"" + std::to_string(event.depth) + "\"";
  for (const auto& [key, value] : event.args) {
    json += ',';
    AppendJsonString(&json, key);
    json += ':';
    AppendJsonString(&json, value);
  }
  json += "}}";
  return json;
}

std::string TraceToJsonLines(const Tracer& tracer) {
  std::string out;
  for (const TraceEvent& event : tracer.events()) {
    out += TraceEventToJson(event);
    out += '\n';
  }
  return out;
}

Status WriteTelemetry(const std::string& path, const Snapshot& snapshot,
                      const Tracer& tracer) {
  std::string combined = "{\"metrics\":" + SnapshotToJson(snapshot);
  combined += ",\"spans\":[";
  const std::vector<TraceEvent> events = tracer.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) combined += ',';
    combined += TraceEventToJson(events[i]);
  }
  combined += "],\"dropped_spans\":" + std::to_string(tracer.dropped()) + "}\n";
  CAD_RETURN_NOT_OK(WriteFile(path, combined));
  CAD_RETURN_NOT_OK(WriteFile(path + ".trace.jsonl", TraceToJsonLines(tracer)));
  return WriteFile(path + ".prom", ToPrometheusText(snapshot));
}

}  // namespace cad::obs
