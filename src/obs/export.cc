#include "obs/export.h"

#include <fstream>

#include "obs/json_util.h"

namespace cad::obs {

namespace {

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << content;
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

}  // namespace

std::string ToPrometheusText(const Snapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    if (!c.help.empty()) out += "# HELP " + c.name + " " + c.help + "\n";
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    if (!g.help.empty()) out += "# HELP " + g.name + " " + g.help + "\n";
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendPromNumber(&out, g.value);
    out += "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    if (!h.help.empty()) out += "# HELP " + h.name + " " + h.help + "\n";
    out += "# TYPE " + h.name + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      out += h.name + "_bucket{le=\"";
      if (i < h.bounds.size()) {
        AppendPromNumber(&out, h.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += h.name + "_sum ";
    AppendPromNumber(&out, h.sum);
    out += "\n" + h.name + "_count " + std::to_string(h.count()) + "\n";
  }
  return out;
}

std::string SnapshotToJson(const Snapshot& snapshot) {
  std::string json = "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) json += ',';
    AppendJsonString(&json, snapshot.counters[i].name);
    json += ':' + std::to_string(snapshot.counters[i].value);
  }
  json += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) json += ',';
    AppendJsonString(&json, snapshot.gauges[i].name);
    json += ':';
    AppendJsonNumber(&json, snapshot.gauges[i].value);
  }
  json += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& h = snapshot.histograms[i];
    if (i > 0) json += ',';
    AppendJsonString(&json, h.name);
    json += ":{\"sum\":";
    AppendJsonNumber(&json, h.sum);
    json += ",\"count\":" + std::to_string(h.count());
    json += ",\"mean\":";
    AppendJsonNumber(&json, h.mean());
    json += ",\"p50\":";
    AppendJsonNumber(&json, h.Quantile(0.50));
    json += ",\"p95\":";
    AppendJsonNumber(&json, h.Quantile(0.95));
    json += ",\"p99\":";
    AppendJsonNumber(&json, h.Quantile(0.99));
    json += ",\"buckets\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) json += ',';
      json += "{\"le\":";
      if (b < h.bounds.size()) {
        AppendJsonNumber(&json, h.bounds[b]);
      } else {
        json += "\"+Inf\"";
      }
      json += ",\"count\":" + std::to_string(h.counts[b]) + '}';
    }
    json += "]}";
  }
  json += "}}";
  return json;
}

std::string TraceEventToJson(const TraceEvent& event) {
  std::string json = "{\"name\":";
  AppendJsonString(&json, event.name);
  json += ",\"cat\":";
  AppendJsonString(&json, event.category);
  json += ",\"ph\":\"X\",\"ts\":" + std::to_string(event.start_us);
  json += ",\"dur\":" + std::to_string(event.duration_us);
  json += ",\"pid\":1,\"tid\":" + std::to_string(event.thread_id);
  json += ",\"args\":{\"depth\":\"" + std::to_string(event.depth) + "\"";
  for (const auto& [key, value] : event.args) {
    json += ',';
    AppendJsonString(&json, key);
    json += ':';
    AppendJsonString(&json, value);
  }
  json += "}}";
  return json;
}

std::string TraceToJsonLines(const Tracer& tracer) {
  std::string out;
  for (const TraceEvent& event : tracer.events()) {
    out += TraceEventToJson(event);
    out += '\n';
  }
  return out;
}

Status WriteTelemetry(const std::string& path, const Snapshot& snapshot,
                      const Tracer& tracer) {
  std::string combined = "{\"metrics\":" + SnapshotToJson(snapshot);
  combined += ",\"spans\":[";
  const std::vector<TraceEvent> events = tracer.events();
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) combined += ',';
    combined += TraceEventToJson(events[i]);
  }
  combined += "],\"dropped_spans\":" + std::to_string(tracer.dropped()) + "}\n";
  CAD_RETURN_NOT_OK(WriteFile(path, combined));
  CAD_RETURN_NOT_OK(WriteFile(path + ".trace.jsonl", TraceToJsonLines(tracer)));
  return WriteFile(path + ".prom", ToPrometheusText(snapshot));
}

}  // namespace cad::obs
