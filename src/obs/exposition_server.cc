#include "obs/exposition_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cad::obs {

namespace {

constexpr int kPollTimeoutMs = 250;   // backstop; Stop() wakes via the pipe
constexpr size_t kMaxRequestBytes = 4096;

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::string response = "HTTP/1.0 ";
  response += std::to_string(code);
  response += ' ';
  response += reason;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: ";
  response += std::to_string(body.size());
  response += "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

// Outcome of looking up one integer query parameter.
enum class QueryParam { kAbsent, kOk, kMalformed };

// Finds `key` ("name=") in the query string and parses its decimal value;
// kMalformed covers empty, non-digit and overflowing values.
QueryParam ParseIntParam(const std::string& query, const std::string& key,
                         int* value) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, key.size(), key) == 0) {
      const std::string text = query.substr(pos + key.size(),
                                            end - pos - key.size());
      if (text.empty() || text.size() > 9) return QueryParam::kMalformed;
      long parsed = 0;
      for (char c : text) {
        if (c < '0' || c > '9') return QueryParam::kMalformed;
        parsed = parsed * 10 + (c - '0');
      }
      *value = static_cast<int>(parsed);
      return QueryParam::kOk;
    }
    pos = end + 1;
  }
  return QueryParam::kAbsent;
}

// Finds `key` ("name=") in the query string and copies its raw value;
// kMalformed only when the value is empty.
QueryParam ParseStringParam(const std::string& query, const std::string& key,
                            std::string* value) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    if (query.compare(pos, key.size(), key) == 0) {
      *value = query.substr(pos + key.size(), end - pos - key.size());
      return value->empty() ? QueryParam::kMalformed : QueryParam::kOk;
    }
    pos = end + 1;
  }
  return QueryParam::kAbsent;
}

}  // namespace

Result<std::unique_ptr<ExpositionServer>> ExpositionServer::Start(
    uint16_t port, Handlers handlers) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // exposition is local-only
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd);
    return Status::IoError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (::listen(listen_fd, 8) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd);
    return Status::IoError("listen: " + err);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd);
    return Status::IoError("getsockname: " + err);
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const std::string err = std::strerror(errno);
    CloseFd(listen_fd);
    return Status::IoError("pipe: " + err);
  }

  return std::unique_ptr<ExpositionServer>(
      new ExpositionServer(listen_fd, pipe_fds[0], pipe_fds[1],
                           ntohs(bound.sin_port), std::move(handlers)));
}

ExpositionServer::ExpositionServer(int listen_fd, int wake_read_fd,
                                   int wake_write_fd, uint16_t port,
                                   Handlers handlers)
    : listen_fd_(listen_fd),
      wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      port_(port),
      handlers_(std::move(handlers)) {
  thread_ = std::thread([this] { Serve(); });
}

ExpositionServer::~ExpositionServer() {
  Stop();
  CloseFd(listen_fd_);
  CloseFd(wake_read_fd_);
  CloseFd(wake_write_fd_);
}

void ExpositionServer::Stop() {
  stopping_.store(true, std::memory_order_release);
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  common::MutexLock lock(join_mu_);
  // cad-lint: allow(CL010) the documented shutdown pattern: join_mu_ exists solely to serialize concurrent Stop() calls around this join; the serve thread never takes it
  if (thread_.joinable()) thread_.join();
}

void ExpositionServer::Serve() {
  pollfd fds[2];
  fds[0].fd = listen_fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_read_fd_;
  fds[1].events = POLLIN;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds[0].revents = 0;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, kPollTimeoutMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;  // poll is irrecoverably broken; exposition goes dark
    }
    if (fds[1].revents != 0) return;  // Stop() wake
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    CloseFd(conn);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  // Read until the request line is complete; HTTP/1.0, headers ignored.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t eol = request.find('\n');
  if (eol == std::string::npos) return;
  std::string line = request.substr(0, eol);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  const std::string response = BuildResponse(line);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n = ::write(fd, response.data() + sent,
                              response.size() - sent);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

std::string ExpositionServer::BuildResponse(const std::string& request_line) {
  // "GET <target> HTTP/1.x"
  const size_t method_end = request_line.find(' ');
  if (method_end == std::string::npos) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  if (request_line.compare(0, method_end, "GET") != 0) {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }
  const size_t target_end = request_line.find(' ', method_end + 1);
  std::string target =
      target_end == std::string::npos
          ? request_line.substr(method_end + 1)
          : request_line.substr(method_end + 1, target_end - method_end - 1);

  std::string query;
  const size_t question = target.find('?');
  if (question != std::string::npos) {
    query = target.substr(question + 1);
    target.resize(question);
  }

  if (target == "/metrics") {
    const std::string body =
        handlers_.metrics_text ? handlers_.metrics_text() : std::string();
    return HttpResponse(200, "OK", "text/plain; version=0.0.4", body);
  }
  if (target == "/healthz") {
    const std::string body =
        handlers_.healthz_json ? handlers_.healthz_json() : "{}";
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (target == "/explain") {
    std::string tenant;
    const QueryParam tenant_param =
        ParseStringParam(query, "tenant=", &tenant);
    if (tenant_param == QueryParam::kMalformed) {
      return HttpResponse(400, "Bad Request", "text/plain",
                          "usage: /explain?tenant=<name>&round=<round>\n");
    }
    int round = -1;
    if (ParseIntParam(query, "round=", &round) != QueryParam::kOk) {
      return HttpResponse(
          400, "Bad Request", "text/plain",
          tenant_param == QueryParam::kOk
              ? "usage: /explain?tenant=<name>&round=<non-negative integer>\n"
              : "usage: /explain?round=<non-negative integer>\n");
    }
    if (tenant_param == QueryParam::kOk) {
      const std::string body =
          handlers_.explain_tenant_json
              ? handlers_.explain_tenant_json(tenant, round)
              : std::string();
      if (body.empty()) {
        return HttpResponse(404, "Not Found", "text/plain",
                            "tenant '" + tenant + "' is unknown or round " +
                                std::to_string(round) +
                                " is not in its flight-recorder ring\n");
      }
      return HttpResponse(200, "OK", "application/json", body);
    }
    const std::string body =
        handlers_.explain_json ? handlers_.explain_json(round) : std::string();
    if (body.empty()) {
      return HttpResponse(404, "Not Found", "text/plain",
                          "round " + std::to_string(round) +
                              " is not in the flight-recorder ring\n");
    }
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (target == "/advise") {
    int from_round = -1;
    int to_round = -1;
    if (ParseIntParam(query, "from=", &from_round) == QueryParam::kMalformed ||
        ParseIntParam(query, "to=", &to_round) == QueryParam::kMalformed) {
      return HttpResponse(
          400, "Bad Request", "text/plain",
          "usage: /advise?from=<round>&to=<round> (both optional)\n");
    }
    const std::string body = handlers_.advise_json
                                 ? handlers_.advise_json(from_round, to_round)
                                 : std::string();
    if (body.empty()) {
      return HttpResponse(404, "Not Found", "text/plain",
                          "no recorded rounds in the requested range\n");
    }
    return HttpResponse(200, "OK", "application/json", body);
  }
  if (target == "/") {
    return HttpResponse(200, "OK", "text/plain",
                        "cad exposition endpoints:\n"
                        "  /metrics                      Prometheus text\n"
                        "  /healthz                      liveness JSON\n"
                        "  /explain?round=r              decision provenance JSON\n"
                        "  /explain?tenant=name&round=r  fleet tenant provenance\n"
                        "  /advise?from=a&to=b           root-cause advice JSON\n");
  }
  return HttpResponse(404, "Not Found", "text/plain", "unknown endpoint\n");
}

}  // namespace cad::obs
