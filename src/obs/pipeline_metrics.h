// Named instrument handles for the CAD pipeline. Resolved once per component
// (map lookup + mutex) so the per-round hot path touches only stable atomic
// instruments. The metric-name glossary lives in DESIGN.md "Observability".
#ifndef CAD_OBS_PIPELINE_METRICS_H_
#define CAD_OBS_PIPELINE_METRICS_H_

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace cad::obs {

struct PipelineMetrics {
  // Counters.
  Counter* rounds_total = nullptr;          // cad_rounds_total
  Counter* abnormal_rounds_total = nullptr; // cad_abnormal_rounds_total
  Counter* outlier_variations = nullptr;    // cad_outlier_variations
  Counter* tsg_edges_pruned = nullptr;      // cad_tsg_edges_pruned
  Counter* tsg_edges_kept = nullptr;        // cad_tsg_edges_kept
  Counter* anomalies_total = nullptr;       // cad_anomalies_total
  Counter* stream_samples_total = nullptr;  // cad_stream_samples_total
  // Gauges (state of the most recent round).
  Gauge* communities = nullptr;             // cad_communities
  Gauge* outliers = nullptr;                // cad_outliers
  Gauge* round_allocs = nullptr;            // cad_round_allocs
  // Latency histograms (seconds).
  Histogram* round_seconds = nullptr;         // cad_round_seconds
  Histogram* correlation_seconds = nullptr;   // cad_correlation_seconds
  Histogram* knn_build_seconds = nullptr;     // cad_knn_build_seconds
  Histogram* louvain_seconds = nullptr;       // cad_louvain_seconds
  Histogram* coappearance_seconds = nullptr;  // cad_coappearance_seconds

  static PipelineMetrics For(Registry& registry) {
    PipelineMetrics m;
    m.rounds_total = &registry.counter(
        "cad_rounds_total", "OutlierDetection rounds processed");
    m.abnormal_rounds_total = &registry.counter(
        "cad_abnormal_rounds_total", "rounds flagged by the eta-sigma rule");
    m.outlier_variations = &registry.counter(
        "cad_outlier_variations", "cumulative outlier variations (sum of n_r)");
    m.tsg_edges_pruned = &registry.counter(
        "cad_tsg_edges_pruned",
        "candidate TSG edges above tau dropped by k-NN selection");
    m.tsg_edges_kept = &registry.counter(
        "cad_tsg_edges_kept", "TSG edges kept after k-NN selection and tau");
    m.anomalies_total = &registry.counter(
        "cad_anomalies_total", "anomalies Z = (V_Z, R_Z) closed");
    m.stream_samples_total = &registry.counter(
        "cad_stream_samples_total", "samples pushed into StreamingCad");
    m.communities = &registry.gauge(
        "cad_communities", "Louvain communities c_r of the latest round");
    m.outliers = &registry.gauge(
        "cad_outliers", "outlier-set size |O_r| of the latest round");
    m.round_allocs = &registry.gauge(
        "cad_round_allocs",
        "heap allocations in the latest engine round (0 in steady state; "
        "real counts only in binaries linking cad_alloc_hook)");
    m.round_seconds = &registry.histogram(
        "cad_round_seconds", {}, "latency of one OutlierDetection round");
    m.correlation_seconds = &registry.histogram(
        "cad_correlation_seconds", {}, "window correlation-matrix latency");
    m.knn_build_seconds = &registry.histogram(
        "cad_knn_build_seconds", {}, "TSG k-NN graph construction latency");
    m.louvain_seconds = &registry.histogram(
        "cad_louvain_seconds", {}, "Louvain community-detection latency");
    m.coappearance_seconds = &registry.histogram(
        "cad_coappearance_seconds",
        {}, "co-appearance mining + variation-analysis latency");
    return m;
  }
};

// RAII timer observing its scope's wall-clock duration into a Histogram
// (and, optionally, accumulating into a plain double) on destruction — the
// histogram-flavored sibling of cad::ScopedTimer.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram, double* also = nullptr)
      : histogram_(histogram), also_(also) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
  ~ScopedHistogramTimer() {
    const double seconds = watch_.ElapsedSeconds();
    if (histogram_ != nullptr) histogram_->Observe(seconds);
    if (also_ != nullptr) *also_ += seconds;
  }

 private:
  Stopwatch watch_;
  Histogram* histogram_;
  double* also_;
};

}  // namespace cad::obs

#endif  // CAD_OBS_PIPELINE_METRICS_H_
