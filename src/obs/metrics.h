// cad::obs — process-wide metrics registry (counters, gauges, fixed-bucket
// latency histograms).
//
// Every instrument is lock-free on the hot path: counters and gauges are a
// single relaxed atomic RMW, histograms are two relaxed RMWs (bucket count +
// sum). The registry itself takes a mutex only on *registration* — callers
// resolve their instruments once (see pipeline_metrics.h) and then record
// through stable pointers, so the parallel ensemble and the bench harness
// can record concurrently without contention.
//
// `Registry::Global()` is the process-wide instance used when a component is
// not handed an explicit registry (CadOptions::metrics_registry == nullptr).
// Counters are cumulative across runs, Prometheus-style; per-run deltas are
// obtained by snapshotting before and after, or by giving the run its own
// Registry.
#ifndef CAD_OBS_METRICS_H_
#define CAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/realtime.h"
#include "common/thread_annotations.h"

namespace cad::obs {

// Monotonically increasing integer metric (Prometheus counter semantics).
class Counter {
 public:
  void Increment(uint64_t delta = 1) CAD_REALTIME {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous value metric (last write wins).
class Gauge {
 public:
  void Set(double v) CAD_REALTIME { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) CAD_REALTIME {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: cumulative counts are derived at snapshot time,
// storage is one non-cumulative atomic count per bucket plus the +Inf
// overflow bucket and the running sum. Bucket bounds are upper bounds (le).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value) CAD_REALTIME;

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  // Non-cumulative per-bucket counts; size bounds().size() + 1 (+Inf last).
  std::vector<uint64_t> bucket_counts() const;
  void Reset();

 private:
  std::vector<double> bounds_;                     // ascending upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

// Default buckets for second-valued latencies: exponential 10us .. ~40s.
std::vector<double> DefaultLatencyBuckets();

// ---- snapshots -----------------------------------------------------------

struct CounterSample {
  std::string name;
  std::string help;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  std::vector<double> bounds;    // upper bounds, ascending; +Inf implicit
  std::vector<uint64_t> counts;  // per-bucket (non-cumulative), size bounds+1
  double sum = 0.0;

  uint64_t count() const;
  double mean() const;
  // Quantile estimate (q in [0, 1]) by linear interpolation inside the
  // bucket that contains the q-th observation. Exact only up to the bucket
  // resolution; returns 0 when the histogram is empty.
  double Quantile(double q) const;
};

// Point-in-time copy of every instrument in a Registry. Value-semantic and
// self-contained: reports can carry it after the registry is gone.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

// ---- registry ------------------------------------------------------------

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry.
  static Registry& Global();

  // Find-or-create by name. Returned references stay valid for the lifetime
  // of the registry. On the first call the help string (and, for histograms,
  // the bucket bounds) are fixed; later calls with the same name return the
  // existing instrument unchanged.
  Counter& counter(std::string_view name, std::string_view help = "")
      EXCLUDES(mu_);
  Gauge& gauge(std::string_view name, std::string_view help = "")
      EXCLUDES(mu_);
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {},
                       std::string_view help = "") EXCLUDES(mu_);

  Snapshot TakeSnapshot() const EXCLUDES(mu_);

  // Zeroes every instrument (instruments stay registered). Intended for
  // tests and per-run delta measurement on private registries.
  void ResetValues() EXCLUDES(mu_);

 private:
  template <typename T>
  struct Named {
    std::unique_ptr<T> instrument;
    std::string help;
  };

  // Guards registration (map growth) only; recording goes through the stable
  // instrument pointers and their relaxed atomics, never this mutex.
  // Rank 30 (common/lock_order.h): registration/snapshot lock, taken inside
  // a streaming round (under StreamingCad::mu_, rank 20); never held while
  // acquiring another ranked lock.
  mutable common::Mutex mu_{common::lock_order::kObsRegistry,
                            "obs::Registry::mu_"};
  std::map<std::string, Named<Counter>, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, Named<Gauge>, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, Named<Histogram>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

// nullptr-tolerant accessor used by components that accept an optional
// registry: nullptr means the process-wide one.
inline Registry& ResolveRegistry(Registry* registry) {
  return registry != nullptr ? *registry : Registry::Global();
}

}  // namespace cad::obs

#endif  // CAD_OBS_METRICS_H_
