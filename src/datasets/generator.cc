#include "datasets/generator.h"

#include "check/check.h"

#include <cmath>
#include <numeric>

namespace cad::datasets {

SensorNetworkGenerator::SensorNetworkGenerator(const GeneratorOptions& options,
                                               Rng* rng)
    : options_(options) {
  CAD_CHECK(options.n_sensors > 0, "need at least one sensor");
  CAD_CHECK(options.n_communities > 0, "need at least one community");
  CAD_CHECK(options.factor_smoothness >= 0.0 && options.factor_smoothness < 1.0,
            "factor_smoothness must lie in [0, 1)");
  const int n = options.n_sensors;

  // Balanced community assignment, shuffled so ids are not block-ordered.
  community_of_.resize(n);
  for (int i = 0; i < n; ++i) community_of_[i] = i % options.n_communities;
  rng->Shuffle(&community_of_);

  loading_.resize(n);
  offset_.resize(n);
  for (int i = 0; i < n; ++i) {
    double a = rng->Uniform(options.min_loading, options.max_loading);
    if (rng->NextDouble() < options.negative_loading_fraction) a = -a;
    loading_[i] = a;
    offset_[i] = rng->Uniform(-2.0, 2.0);
  }

  seasonal_phase_.resize(options.n_communities);
  for (double& phase : seasonal_phase_) phase = rng->Uniform(0.0, 2.0 * M_PI);

  factor_state_.assign(options.n_communities, 0.0);
  for (double& f : factor_state_) f = rng->Gaussian();
  idio_state_.assign(n, 0.0);
  drift_state_.assign(n, 0.0);
}

std::vector<int> SensorNetworkGenerator::CommunityMembers(int c) const {
  std::vector<int> members;
  for (int i = 0; i < options_.n_sensors; ++i) {
    if (community_of_[i] == c) members.push_back(i);
  }
  return members;
}

double SensorNetworkGenerator::SensorStd(int i) const {
  // Var = a_i^2 * (1 + seasonal^2/2) + noise^2 under the unit-variance AR(1)
  // factor; the seasonal sinusoid has variance amplitude^2 / 2.
  const double seasonal_var =
      options_.seasonal_period > 0
          ? options_.seasonal_amplitude * options_.seasonal_amplitude / 2.0
          : 0.0;
  return std::sqrt(loading_[i] * loading_[i] * (1.0 + seasonal_var) +
                   options_.noise_std * options_.noise_std);
}

ts::MultivariateSeries SensorNetworkGenerator::Generate(int length, Rng* rng) {
  const int n = options_.n_sensors;
  ts::MultivariateSeries series(n, length);
  const double phi = options_.factor_smoothness;
  const double innovation = std::sqrt(1.0 - phi * phi);

  for (int t = 0; t < length; ++t) {
    // Advance latent factors.
    for (int c = 0; c < options_.n_communities; ++c) {
      factor_state_[c] = phi * factor_state_[c] + innovation * rng->Gaussian();
    }
    const int global_t = time_offset_ + t;
    for (int i = 0; i < n; ++i) {
      const int c = community_of_[i];
      double factor = factor_state_[c];
      if (options_.seasonal_period > 0) {
        factor += options_.seasonal_amplitude *
                  std::sin(2.0 * M_PI * global_t /
                               static_cast<double>(options_.seasonal_period) +
                           seasonal_phase_[c]);
      }
      idio_state_[i] = phi * idio_state_[i] + innovation * rng->Gaussian();
      if (options_.baseline_drift_std > 0.0) {
        drift_state_[i] += options_.baseline_drift_std * rng->Gaussian();
      }
      series.set_value(i, t,
                       loading_[i] * factor +
                           options_.noise_std * idio_state_[i] + offset_[i] +
                           drift_state_[i]);
    }
  }
  time_offset_ += length;
  return series;
}

}  // namespace cad::datasets
