#include "datasets/registry.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>

namespace cad::datasets {

std::vector<DatasetProfile> StandardProfiles() {
  // Sensor counts and k match paper Table II; lengths are the paper's scaled
  // by roughly 1/30 (public sets) and 1/4 (IS sets) — see EXPERIMENTS.md.
  return {
      {.name = "PSM", .n_sensors = 26, .train_length = 4400,
       .test_length = 3000, .k = 10, .n_anomalies = 10, .n_communities = 4,
       .noise_std = 0.35, .drift_std = 0.05, .seasonal_period = 200, .seed = 1001},
      {.name = "SWaT", .n_sensors = 51, .train_length = 6000,
       .test_length = 5000, .k = 20, .n_anomalies = 8, .n_communities = 6,
       .noise_std = 0.40, .drift_std = 0.05, .seasonal_period = 400, .seed = 1002},
      {.name = "IS-1", .n_sensors = 143, .train_length = 1400,
       .test_length = 2900, .k = 20, .n_anomalies = 5, .n_communities = 8,
       .noise_std = 0.30, .drift_std = 0.04, .seasonal_period = 0, .seed = 1003},
      {.name = "IS-2", .n_sensors = 264, .train_length = 1400,
       .test_length = 3000, .k = 20, .n_anomalies = 6, .n_communities = 10,
       .noise_std = 0.35, .drift_std = 0.04, .seasonal_period = 0, .seed = 1004},
      {.name = "IS-3", .n_sensors = 406, .train_length = 1200,
       .test_length = 2600, .k = 30, .n_anomalies = 6, .n_communities = 12,
       .noise_std = 0.40, .drift_std = 0.04, .seasonal_period = 0, .seed = 1005},
      {.name = "IS-4", .n_sensors = 702, .train_length = 1200,
       .test_length = 2400, .k = 50, .n_anomalies = 6, .n_communities = 16,
       .noise_std = 0.45, .drift_std = 0.04, .seasonal_period = 0, .seed = 1006},
      {.name = "IS-5", .n_sensors = 1266, .train_length = 1000,
       .test_length = 2200, .k = 50, .n_anomalies = 6, .n_communities = 20,
       .noise_std = 0.50, .drift_std = 0.04, .seasonal_period = 0, .seed = 1007},
  };
}

Result<DatasetProfile> ProfileByName(const std::string& name) {
  for (const DatasetProfile& profile : StandardProfiles()) {
    if (profile.name == name) return profile;
  }
  return Status::NotFound("unknown dataset profile '" + name + "'");
}

DatasetProfile SmdSubsetProfile(int index) {
  CAD_CHECK(index >= 1 && index <= 28, "SMD subset index must be in [1, 28]");
  DatasetProfile profile;
  profile.name = "SMD-" + std::to_string(index);
  profile.n_sensors = 38;  // Table II
  // The paper runs CAD on SMD *without warm-up*, but the baselines still
  // train on SMD's training split — so the profile carries one; the bench
  // harness passes cad_warmup=false for Table IV.
  profile.train_length = 1200;
  profile.test_length = 3000;
  profile.k = 10;
  profile.n_anomalies = 4;
  profile.n_communities = 5;
  // Vary difficulty across subsets like the real SMD machines do: noise
  // climbs from 0.25 to 0.52 across the 28 subsets.
  profile.noise_std = 0.25 + 0.01 * static_cast<double>(index - 1);
  profile.drift_std = 0.05;
  profile.seasonal_period = index % 3 == 0 ? 150 : 0;
  profile.seed = 2000 + static_cast<uint64_t>(index);
  return profile;
}

LabeledDataset MakeDataset(const DatasetProfile& profile) {
  Rng rng(profile.seed);

  GeneratorOptions gen_options;
  gen_options.n_sensors = profile.n_sensors;
  gen_options.n_communities = profile.n_communities;
  gen_options.noise_std = profile.noise_std;
  gen_options.baseline_drift_std = profile.drift_std;
  gen_options.seasonal_period = profile.seasonal_period;
  SensorNetworkGenerator generator(gen_options, &rng);

  LabeledDataset dataset;
  dataset.name = profile.name;
  if (profile.train_length > 0) {
    dataset.train = generator.Generate(profile.train_length, &rng);
  }
  dataset.test = generator.Generate(profile.test_length, &rng);

  // Recommended CAD options per the paper's parameter study (Section VI-H):
  // w ~ 2% of |T|, s ~ 2% of w, tau = 0.5; theta = 0.9 is the community-
  // normalized equivalent of the paper's 0.3 (see cad_options.h).
  core::CadOptions options;
  options.window = std::max(48, profile.test_length / 30);
  options.step = std::max(1, options.window / 50);
  options.k = profile.k;
  options.tau = 0.55;
  options.theta = 0.9;
  // Require at least ~2 simultaneous outlier variations before alarming:
  // single-vertex membership flickers are the synthetic networks' noise
  // floor (the eta-sigma rule adapts above this floor as rounds accumulate).
  options.min_sigma = 0.3;
  dataset.recommended = options;

  // Anomaly plan: durations of one to three windows (shorter events never
  // fill a correlation window and are undetectable by construction for any
  // windowed method), separated by at least 1.5 windows of normal data.
  const int min_gap = options.window * 3 / 2;
  const int slot = (profile.test_length - min_gap) /
                   std::max(1, profile.n_anomalies);
  const int max_duration =
      std::min(3 * options.window, slot - min_gap - 10);
  const int min_duration =
      std::min(std::max(options.window, profile.test_length * 15 / 1000),
               max_duration - 1);
  CAD_CHECK(min_duration >= 10 && max_duration > min_duration,
            "profile too short for its anomaly plan");
  std::vector<AnomalyEvent> events =
      PlanEvents(generator, profile.test_length, profile.n_anomalies,
                 min_duration, max_duration, min_gap, &rng);
  dataset.labels = InjectAnomalies(generator, events, &dataset.test, &rng);
  dataset.anomalies = ToGroundTruth(events);
  return dataset;
}

}  // namespace cad::datasets
