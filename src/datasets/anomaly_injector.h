// Anomaly injection into a generated MTS, with ground truth.
//
// Four anomaly families cover the failure modes the paper's datasets
// exhibit (Section VI-G case study):
//  - kCorrelationBreak: the affected sensors detach from their community's
//    latent factor and follow an independent AR(1) with the same marginal
//    spread; amplitudes stay plausible, only the *correlation* breaks — the
//    regime CAD targets and magnitude-based detectors struggle with early.
//  - kLevelShift: a constant offset of `magnitude` sensor-sigmas.
//  - kTrendDrift: a linear ramp reaching `magnitude` sigmas at the end.
//  - kSpike: short random impulses of ±`magnitude` sigmas.
// kMixed combines a correlation break with a drift.
#ifndef CAD_DATASETS_ANOMALY_INJECTOR_H_
#define CAD_DATASETS_ANOMALY_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "datasets/generator.h"
#include "eval/sensor_eval.h"
#include "ts/multivariate_series.h"

namespace cad::datasets {

enum class AnomalyType {
  kCorrelationBreak,
  kLevelShift,
  kTrendDrift,
  kSpike,
  kMixed,
};

struct AnomalyEvent {
  AnomalyType type = AnomalyType::kCorrelationBreak;
  int start = 0;
  int duration = 0;
  std::vector<int> sensors;  // affected sensors, ascending
  double magnitude = 2.0;    // in units of each sensor's marginal sigma
  // Fraction of the duration over which a correlation break fades in (the
  // affected sensor blends from its community signal to the independent
  // walk). Real faults develop gradually (paper Section I): early on the
  // *values* barely deviate while the correlation is already decaying —
  // the regime where windowed correlation analysis leads point-based
  // detectors. 0 = abrupt break.
  double onset_fraction = 0.4;
};

// Applies `events` in place and returns per-point labels (1 inside any
// event's [start, start + duration)). Events must lie within the series.
// The generator supplies per-sensor sigmas and its smoothness parameter so
// injected signals match the nominal dynamics.
eval::Labels InjectAnomalies(const SensorNetworkGenerator& generator,
                             const std::vector<AnomalyEvent>& events,
                             ts::MultivariateSeries* series, Rng* rng);

// Converts events to the evaluation ground-truth records. Events whose time
// spans touch or overlap are merged (their sensor sets union), matching how
// ExtractSegments would fuse their labels.
std::vector<eval::SensorGroundTruth> ToGroundTruth(
    const std::vector<AnomalyEvent>& events);

// Stable per-incident ground truth for root-cause evaluation: exactly what
// was injected and when, one entry per event (never merged — the advisor is
// judged incident by incident), sorted by onset then sensors ascending.
// `onset_sample`/`end_sample` are on the series time axis; the eval layer
// maps them to round indices (eval/root_cause.h FirstRoundCovering, or
// advisor::WindowForSamples against a concrete flight log).
struct InjectedGroundTruth {
  AnomalyType type = AnomalyType::kCorrelationBreak;
  int onset_sample = 0;      // first affected sample (event.start)
  int end_sample = 0;        // one past the last affected sample
  std::vector<int> sensors;  // injected (true root-cause) sensors, ascending
};

[[nodiscard]] std::vector<InjectedGroundTruth> ExportGroundTruth(
    const std::vector<AnomalyEvent>& events);

// Plans `n_events` non-overlapping events over [warmup_margin, length), each
// affecting a random fraction of one random community, with at least
// `min_gap` normal points between consecutive events. Types cycle through
// the anomaly families with correlation breaks dominating.
std::vector<AnomalyEvent> PlanEvents(const SensorNetworkGenerator& generator,
                                     int length, int n_events, int min_duration,
                                     int max_duration, int min_gap, Rng* rng);

}  // namespace cad::datasets

#endif  // CAD_DATASETS_ANOMALY_INJECTOR_H_
