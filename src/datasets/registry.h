// Registry of the eight benchmark dataset profiles (paper Table II),
// instantiated as synthetic analogues (DESIGN.md §1). Sensor counts and the
// per-dataset k mirror the paper; series lengths are scaled to laptop-class
// budgets (the scale factors are recorded in EXPERIMENTS.md).
#ifndef CAD_DATASETS_REGISTRY_H_
#define CAD_DATASETS_REGISTRY_H_

#include <string>
#include <vector>

#include "core/cad_options.h"
#include "datasets/anomaly_injector.h"
#include "eval/confusion.h"
#include "eval/sensor_eval.h"
#include "ts/multivariate_series.h"

namespace cad::datasets {

// A ready-to-evaluate dataset: anomaly-free historical split (may be empty,
// e.g. for SMD subsets which the paper runs without warm-up), labelled test
// split, and the paper-style recommended CAD options.
struct LabeledDataset {
  std::string name;
  ts::MultivariateSeries train;
  ts::MultivariateSeries test;
  eval::Labels labels;                              // per test time point
  std::vector<eval::SensorGroundTruth> anomalies;   // time + sensor truth
  core::CadOptions recommended;

  bool has_train() const { return train.length() > 0; }
};

// Static description of one profile.
struct DatasetProfile {
  std::string name;
  int n_sensors = 0;
  int train_length = 0;  // |T_his| (0 = no warm-up split)
  int test_length = 0;   // |T|
  int k = 10;            // Table II's per-dataset k
  int n_anomalies = 0;
  int n_communities = 4;
  double noise_std = 0.15;
  double drift_std = 0.0;  // slow baseline drift (see GeneratorOptions)
  int seasonal_period = 0;
  uint64_t seed = 42;
};

// The Table II roster: PSM, SWaT, IS-1..IS-5 (SMD subsets are separate, see
// SmdSubsetProfile).
std::vector<DatasetProfile> StandardProfiles();

// Profile by name ("PSM", "SWaT", "IS-1", ..., "IS-5").
[[nodiscard]] Result<DatasetProfile> ProfileByName(const std::string& name);

// One of the 28 SMD subsets (index in [1, 28]), mirroring the paper's
// machine-1-1 .. machine-3-11 naming as SMD i. No warm-up split.
DatasetProfile SmdSubsetProfile(int index);

// Materializes a profile: generates the network, the train split (clean) and
// the test split with injected anomalies + ground truth, and fills in the
// recommended CAD options (w ~ 2% of |T|, s ~ 2% of w, tau = 0.5,
// theta = 0.9, k from the profile).
LabeledDataset MakeDataset(const DatasetProfile& profile);

}  // namespace cad::datasets

#endif  // CAD_DATASETS_REGISTRY_H_
