// LabeledDataset persistence: export a generated benchmark dataset to a
// directory (CSV series + plain-text metadata) and load it back. This lets
// the synthetic benchmarks be consumed by external tools (or frozen for
// regression testing) and custom datasets be fed into the bench harness.
//
// Layout of <dir>/:
//   meta.txt       key/value lines: name + the recommended CadOptions
//   train.csv      historical split (absent when the dataset has none)
//   test.csv       labelled split
//   labels.csv     one column, 0/1 per test time point
//   anomalies.csv  begin,end,sensors (sensors separated by '|')
#ifndef CAD_DATASETS_DATASET_IO_H_
#define CAD_DATASETS_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "datasets/registry.h"

namespace cad::datasets {

// Writes all files into `dir` (which must already exist).
[[nodiscard]] Status SaveDataset(const LabeledDataset& dataset, const std::string& dir);

// Loads a dataset previously written by SaveDataset.
[[nodiscard]] Result<LabeledDataset> LoadDataset(const std::string& dir);

}  // namespace cad::datasets

#endif  // CAD_DATASETS_DATASET_IO_H_
