#include "datasets/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "ts/csv.h"

namespace cad::datasets {

namespace {

Status WriteMeta(const LabeledDataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "'");
  const core::CadOptions& o = dataset.recommended;
  file << "name " << dataset.name << '\n'
       << "window " << o.window << '\n'
       << "step " << o.step << '\n'
       << "k " << o.k << '\n'
       << "tau " << o.tau << '\n'
       << "theta " << o.theta << '\n'
       << "eta " << o.eta << '\n'
       << "min_sigma " << o.min_sigma << '\n'
       << "rc_window " << o.rc_window << '\n'
       << "window_mark_fraction " << o.window_mark_fraction << '\n';
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

Status ReadMeta(const std::string& path, LabeledDataset* dataset) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "'");
  core::CadOptions& o = dataset->recommended;
  std::string line;
  while (std::getline(file, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "name") {
      fields >> dataset->name;
    } else if (key == "window") {
      fields >> o.window;
    } else if (key == "step") {
      fields >> o.step;
    } else if (key == "k") {
      fields >> o.k;
    } else if (key == "tau") {
      fields >> o.tau;
    } else if (key == "theta") {
      fields >> o.theta;
    } else if (key == "eta") {
      fields >> o.eta;
    } else if (key == "min_sigma") {
      fields >> o.min_sigma;
    } else if (key == "rc_window") {
      fields >> o.rc_window;
    } else if (key == "window_mark_fraction") {
      fields >> o.window_mark_fraction;
    } else if (!key.empty()) {
      return Status::InvalidArgument("unknown meta key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status WriteAnomalies(const LabeledDataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "'");
  file << "begin,end,sensors\n";
  for (const eval::SensorGroundTruth& anomaly : dataset.anomalies) {
    file << anomaly.segment.begin << ',' << anomaly.segment.end << ',';
    for (size_t i = 0; i < anomaly.sensors.size(); ++i) {
      if (i > 0) file << '|';
      file << anomaly.sensors[i];
    }
    file << '\n';
  }
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

Status ReadAnomalies(const std::string& path, LabeledDataset* dataset) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "'");
  std::string line;
  std::getline(file, line);  // header
  while (std::getline(file, line)) {
    if (StripAsciiWhitespace(line).empty()) continue;
    const std::vector<std::string> fields = Split(line, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument("bad anomalies row: '" + line + "'");
    }
    eval::SensorGroundTruth anomaly;
    anomaly.segment.begin = std::atoi(fields[0].c_str());
    anomaly.segment.end = std::atoi(fields[1].c_str());
    if (!fields[2].empty()) {
      for (const std::string& id : Split(fields[2], '|')) {
        anomaly.sensors.push_back(std::atoi(id.c_str()));
      }
    }
    dataset->anomalies.push_back(std::move(anomaly));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  std::ifstream file(path);
  return static_cast<bool>(file);
}

}  // namespace

Status SaveDataset(const LabeledDataset& dataset, const std::string& dir) {
  if (dataset.labels.size() != static_cast<size_t>(dataset.test.length())) {
    return Status::InvalidArgument("labels do not match the test length");
  }
  CAD_RETURN_NOT_OK(WriteMeta(dataset, dir + "/meta.txt"));
  if (dataset.has_train()) {
    CAD_RETURN_NOT_OK(ts::WriteCsv(dataset.train, dir + "/train.csv"));
  }
  CAD_RETURN_NOT_OK(ts::WriteCsv(dataset.test, dir + "/test.csv"));
  {
    ts::MultivariateSeries labels(1, dataset.test.length());
    labels.set_sensor_name(0, "label");
    for (int t = 0; t < dataset.test.length(); ++t) {
      labels.set_value(0, t, dataset.labels[t]);
    }
    CAD_RETURN_NOT_OK(ts::WriteCsv(labels, dir + "/labels.csv"));
  }
  return WriteAnomalies(dataset, dir + "/anomalies.csv");
}

Result<LabeledDataset> LoadDataset(const std::string& dir) {
  LabeledDataset dataset;
  CAD_RETURN_NOT_OK(ReadMeta(dir + "/meta.txt", &dataset));

  if (FileExists(dir + "/train.csv")) {
    Result<ts::MultivariateSeries> train = ts::ReadCsv(dir + "/train.csv");
    if (!train.ok()) return train.status();
    dataset.train = std::move(train).value();
  }
  Result<ts::MultivariateSeries> test = ts::ReadCsv(dir + "/test.csv");
  if (!test.ok()) return test.status();
  dataset.test = std::move(test).value();

  Result<ts::MultivariateSeries> labels = ts::ReadCsv(dir + "/labels.csv");
  if (!labels.ok()) return labels.status();
  if (labels.value().length() != dataset.test.length()) {
    return Status::InvalidArgument("labels.csv length mismatch");
  }
  dataset.labels.resize(dataset.test.length());
  for (int t = 0; t < dataset.test.length(); ++t) {
    dataset.labels[t] = labels.value().value(0, t) != 0.0 ? 1 : 0;
  }

  CAD_RETURN_NOT_OK(ReadAnomalies(dir + "/anomalies.csv", &dataset));
  return dataset;
}

}  // namespace cad::datasets
