#include "datasets/anomaly_injector.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>

namespace cad::datasets {

namespace {

void ApplyCorrelationBreak(const SensorNetworkGenerator& generator,
                           const AnomalyEvent& event,
                           ts::MultivariateSeries* series, Rng* rng) {
  const double phi = generator.options().factor_smoothness;
  const double innovation = std::sqrt(1.0 - phi * phi);
  for (int sensor : event.sensors) {
    const double sigma = generator.SensorStd(sensor);
    auto row = series->mutable_sensor(sensor);
    // Start the replacement walk at the current value so there is no jump;
    // the signal then wanders independently of the community factor.
    double state = row[event.start];
    // Estimate the local level to wander around (mean of the pre-window).
    const int pre_begin = std::max(0, event.start - 50);
    double level = 0.0;
    for (int t = pre_begin; t < event.start; ++t) level += row[t];
    level = event.start > pre_begin
                ? level / static_cast<double>(event.start - pre_begin)
                : state;
    const int ramp =
        std::max(1, static_cast<int>(event.duration * event.onset_fraction));
    for (int t = event.start; t < event.start + event.duration; ++t) {
      state = level + phi * (state - level) + innovation * sigma * rng->Gaussian();
      // Fade from the healthy signal into the independent walk so the fault
      // develops gradually (see AnomalyEvent::onset_fraction).
      const double alpha =
          std::min(1.0, static_cast<double>(t - event.start + 1) / ramp);
      row[t] = (1.0 - alpha) * row[t] + alpha * state;
    }
  }
}

void ApplyLevelShift(const SensorNetworkGenerator& generator,
                     const AnomalyEvent& event,
                     ts::MultivariateSeries* series) {
  for (int sensor : event.sensors) {
    const double delta = event.magnitude * generator.SensorStd(sensor);
    auto row = series->mutable_sensor(sensor);
    for (int t = event.start; t < event.start + event.duration; ++t) {
      row[t] += delta;
    }
  }
}

void ApplyTrendDrift(const SensorNetworkGenerator& generator,
                     const AnomalyEvent& event,
                     ts::MultivariateSeries* series) {
  for (int sensor : event.sensors) {
    const double peak = event.magnitude * generator.SensorStd(sensor);
    auto row = series->mutable_sensor(sensor);
    for (int t = event.start; t < event.start + event.duration; ++t) {
      const double progress = static_cast<double>(t - event.start + 1) /
                              static_cast<double>(event.duration);
      row[t] += peak * progress;
    }
  }
}

void ApplySpike(const SensorNetworkGenerator& generator,
                const AnomalyEvent& event, ts::MultivariateSeries* series,
                Rng* rng) {
  for (int sensor : event.sensors) {
    const double amp = event.magnitude * generator.SensorStd(sensor);
    auto row = series->mutable_sensor(sensor);
    // A handful of impulses spread across the event span.
    const int n_spikes = std::max(1, event.duration / 10);
    for (int i = 0; i < n_spikes; ++i) {
      const int t = event.start + static_cast<int>(rng->NextBounded(
                                      static_cast<uint64_t>(event.duration)));
      row[t] += rng->NextDouble() < 0.5 ? amp : -amp;
    }
  }
}

}  // namespace

eval::Labels InjectAnomalies(const SensorNetworkGenerator& generator,
                             const std::vector<AnomalyEvent>& events,
                             ts::MultivariateSeries* series, Rng* rng) {
  eval::Labels labels(series->length(), 0);
  for (const AnomalyEvent& event : events) {
    CAD_CHECK(event.start >= 0 &&
                  event.start + event.duration <= series->length(),
              "anomaly event out of series range");
    CAD_CHECK(event.duration > 0, "anomaly event must have positive duration");
    switch (event.type) {
      case AnomalyType::kCorrelationBreak:
        ApplyCorrelationBreak(generator, event, series, rng);
        break;
      case AnomalyType::kLevelShift:
        ApplyLevelShift(generator, event, series);
        break;
      case AnomalyType::kTrendDrift:
        ApplyTrendDrift(generator, event, series);
        break;
      case AnomalyType::kSpike:
        ApplySpike(generator, event, series, rng);
        break;
      case AnomalyType::kMixed:
        ApplyCorrelationBreak(generator, event, series, rng);
        ApplyTrendDrift(generator, event, series);
        break;
    }
    for (int t = event.start; t < event.start + event.duration; ++t) {
      labels[t] = 1;
    }
  }
  return labels;
}

std::vector<eval::SensorGroundTruth> ToGroundTruth(
    const std::vector<AnomalyEvent>& events) {
  std::vector<AnomalyEvent> sorted = events;
  std::sort(sorted.begin(), sorted.end(),
            [](const AnomalyEvent& a, const AnomalyEvent& b) {
              return a.start < b.start;
            });
  std::vector<eval::SensorGroundTruth> truth;
  for (const AnomalyEvent& event : sorted) {
    const int end = event.start + event.duration;
    if (!truth.empty() && event.start <= truth.back().segment.end) {
      // Touching/overlapping events fuse into one labelled segment.
      eval::SensorGroundTruth& last = truth.back();
      last.segment.end = std::max(last.segment.end, end);
      last.sensors.insert(last.sensors.end(), event.sensors.begin(),
                          event.sensors.end());
      std::sort(last.sensors.begin(), last.sensors.end());
      last.sensors.erase(std::unique(last.sensors.begin(), last.sensors.end()),
                         last.sensors.end());
      continue;
    }
    eval::SensorGroundTruth record;
    record.segment = {event.start, end};
    record.sensors = event.sensors;
    std::sort(record.sensors.begin(), record.sensors.end());
    truth.push_back(std::move(record));
  }
  return truth;
}

std::vector<InjectedGroundTruth> ExportGroundTruth(
    const std::vector<AnomalyEvent>& events) {
  std::vector<InjectedGroundTruth> truth;
  truth.reserve(events.size());
  for (const AnomalyEvent& event : events) {
    InjectedGroundTruth record;
    record.type = event.type;
    record.onset_sample = event.start;
    record.end_sample = event.start + event.duration;
    record.sensors = event.sensors;
    std::sort(record.sensors.begin(), record.sensors.end());
    truth.push_back(std::move(record));
  }
  std::sort(truth.begin(), truth.end(),
            [](const InjectedGroundTruth& a, const InjectedGroundTruth& b) {
              return a.onset_sample < b.onset_sample;
            });
  return truth;
}

std::vector<AnomalyEvent> PlanEvents(const SensorNetworkGenerator& generator,
                                     int length, int n_events, int min_duration,
                                     int max_duration, int min_gap, Rng* rng) {
  CAD_CHECK(min_duration > 0 && max_duration >= min_duration, "bad durations");
  std::vector<AnomalyEvent> events;
  // Lay events out over evenly sized slots so they never overlap and keep
  // min_gap normal points between them.
  const int usable = length - min_gap;
  const int slot = n_events > 0 ? usable / n_events : 0;
  CAD_CHECK(slot > max_duration + min_gap,
            "series too short for the requested anomaly plan");

  // Correlation breaks dominate; the other families appear in rotation.
  static constexpr AnomalyType kCycle[] = {
      AnomalyType::kCorrelationBreak, AnomalyType::kCorrelationBreak,
      AnomalyType::kMixed,            AnomalyType::kCorrelationBreak,
      AnomalyType::kTrendDrift,       AnomalyType::kCorrelationBreak,
      AnomalyType::kLevelShift,       AnomalyType::kSpike,
  };

  for (int e = 0; e < n_events; ++e) {
    AnomalyEvent event;
    event.type = kCycle[e % (sizeof(kCycle) / sizeof(kCycle[0]))];
    event.duration = min_duration + static_cast<int>(rng->NextBounded(
                                        static_cast<uint64_t>(
                                            max_duration - min_duration + 1)));
    const int slot_begin = min_gap + e * slot;
    const int wiggle = slot - event.duration - min_gap;
    event.start = slot_begin + static_cast<int>(rng->NextBounded(
                                   static_cast<uint64_t>(std::max(1, wiggle))));
    // Affect 40-80% of one random community.
    const int community = static_cast<int>(rng->NextBounded(
        static_cast<uint64_t>(generator.options().n_communities)));
    std::vector<int> members = generator.CommunityMembers(community);
    rng->Shuffle(&members);
    const int take = std::max(
        1, static_cast<int>(members.size() * rng->Uniform(0.4, 0.8)));
    members.resize(take);
    std::sort(members.begin(), members.end());
    event.sensors = std::move(members);
    event.magnitude = rng->Uniform(1.5, 3.0);
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace cad::datasets
