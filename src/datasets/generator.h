// Synthetic correlated sensor-network generator (DESIGN.md §1).
//
// This stands in for the paper's eight datasets (PSM, SMD, SWaT, IS-1..5),
// which are either not redistributable or private. The generator mimics the
// property CAD exploits: sensors on the same machine are correlated and form
// community structures (paper Section I and III-C references [1], [18],
// [21], [22], [89]).
//
// Model: each community c has a latent factor f_c(t) — an AR(1) process with
// unit stationary variance plus an optional seasonal sinusoid. Sensor i in
// community c reads
//   x_i(t) = a_i * f_c(t) + noise_std * g_i(t) + b_i,
// with a random loading a_i (sign flips allowed, producing anti-correlated
// pairs), an idiosyncratic AR(1) noise g_i and a random offset b_i.
#ifndef CAD_DATASETS_GENERATOR_H_
#define CAD_DATASETS_GENERATOR_H_

#include <vector>

#include "common/rng.h"
#include "ts/multivariate_series.h"

namespace cad::datasets {

struct GeneratorOptions {
  int n_sensors = 26;
  int n_communities = 4;
  // AR(1) coefficient of the latent factors; close to 1 = smooth series.
  // The default keeps the decorrelation time (1+phi)/(1-phi) ~ 6 points,
  // well inside CAD-scale windows, so window correlations estimate the true
  // community structure instead of sampling noise.
  double factor_smoothness = 0.55;
  // Idiosyncratic noise level relative to the unit-variance factor signal.
  double noise_std = 0.15;
  // Optional seasonal component period (0 disables it).
  int seasonal_period = 0;
  double seasonal_amplitude = 0.5;
  // Per-step standard deviation of an independent per-sensor random-walk
  // baseline offset — the slow distribution drift real sensor deployments
  // exhibit (paper Section I: "the data distributions often change
  // constantly"). Over T points the offset wanders ~drift*sqrt(T) signal
  // sigmas: training-distribution methods go stale while windowed
  // correlations are unaffected. 0 disables drift.
  double baseline_drift_std = 0.0;
  // Loadings are drawn from ±[min_loading, max_loading].
  double min_loading = 0.6;
  double max_loading = 1.4;
  // Fraction of sensors whose loading sign is flipped (anti-correlated).
  double negative_loading_fraction = 0.2;
};

class SensorNetworkGenerator {
 public:
  // Community layout, loadings and offsets are drawn once from `rng` at
  // construction, so several series generated from one generator share the
  // same network (train/test splits of one "machine").
  SensorNetworkGenerator(const GeneratorOptions& options, Rng* rng);

  const GeneratorOptions& options() const { return options_; }

  // Community id of each sensor (balanced round-robin assignment shuffled
  // once at construction).
  const std::vector<int>& community_of() const { return community_of_; }

  // Sensors belonging to community c.
  std::vector<int> CommunityMembers(int c) const;

  // Generates `length` time points, continuing factor state across calls so
  // consecutive calls produce one seamless stream.
  ts::MultivariateSeries Generate(int length, Rng* rng);

  // Marginal standard deviation of sensor i implied by the model (used by
  // the anomaly injector to express magnitudes in sigma units).
  double SensorStd(int i) const;

 private:
  GeneratorOptions options_;
  std::vector<int> community_of_;
  std::vector<double> loading_;
  std::vector<double> offset_;
  std::vector<double> seasonal_phase_;  // per community
  std::vector<double> factor_state_;    // per community, persists across calls
  std::vector<double> idio_state_;      // per sensor
  std::vector<double> drift_state_;     // per sensor baseline offset
  int time_offset_ = 0;                 // for seasonal continuity
};

}  // namespace cad::datasets

#endif  // CAD_DATASETS_GENERATOR_H_
