// Named instrument handles for the fleet layer, resolved once per
// FleetEngine into its fleet-level Registry (tenant-level pipeline metrics
// live in each tenant's private Registry and are exposed tenant-labelled;
// see fleet_engine.h). Header-only so the metric-name hygiene gate
// (tests/obs/metric_names_test.cc) can register the set without linking
// cad_fleet. The glossary entries live in DESIGN.md "Fleet architecture".
#ifndef CAD_FLEET_FLEET_METRICS_H_
#define CAD_FLEET_FLEET_METRICS_H_

#include "obs/metrics.h"

namespace cad::fleet {

struct FleetMetrics {
  // Counters.
  obs::Counter* samples_total = nullptr;           // cad_fleet_samples_total
  obs::Counter* samples_rejected_total = nullptr;  // cad_fleet_samples_rejected_total
  obs::Counter* rounds_total = nullptr;            // cad_fleet_rounds_total
  obs::Counter* quanta_total = nullptr;            // cad_fleet_quanta_total
  obs::Counter* steady_rounds_total = nullptr;     // cad_fleet_steady_rounds_total
  obs::Counter* steady_allocs_total = nullptr;     // cad_fleet_steady_allocs_total
  // Gauges.
  obs::Gauge* tenants = nullptr;                   // cad_fleet_tenants
  obs::Gauge* workers = nullptr;                   // cad_fleet_workers
  // Latency histograms (seconds).
  obs::Histogram* round_seconds = nullptr;         // cad_fleet_round_seconds

  static FleetMetrics For(obs::Registry& registry) {
    FleetMetrics m;
    m.samples_total = &registry.counter(
        "cad_fleet_samples_total",
        "samples accepted into tenant ingestion queues");
    m.samples_rejected_total = &registry.counter(
        "cad_fleet_samples_rejected_total",
        "samples rejected by full tenant queues (backpressure)");
    m.rounds_total = &registry.counter(
        "cad_fleet_rounds_total", "detection rounds run across all tenants");
    m.quanta_total = &registry.counter(
        "cad_fleet_quanta_total",
        "scheduler service quanta completed by the worker pool");
    m.steady_rounds_total = &registry.counter(
        "cad_fleet_steady_rounds_total",
        "rounds counted by the steady-state allocation audit (quanta past "
        "tenant warm-up with a warm workspace and no anomaly transition)");
    m.steady_allocs_total = &registry.counter(
        "cad_fleet_steady_allocs_total",
        "worker-thread heap allocations during steady-state quanta (0 by "
        "contract; real counts only in binaries linking cad_alloc_hook)");
    m.tenants = &registry.gauge(
        "cad_fleet_tenants", "tenant streams hosted by this fleet");
    m.workers = &registry.gauge(
        "cad_fleet_workers", "worker threads servicing the fleet");
    m.round_seconds = &registry.histogram(
        "cad_fleet_round_seconds", {},
        "latency of one tenant detection round on the shared worker pool "
        "(queue pop + window materialization + engine step)");
    return m;
  }
};

}  // namespace cad::fleet

#endif  // CAD_FLEET_FLEET_METRICS_H_
