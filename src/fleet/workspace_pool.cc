#include "fleet/workspace_pool.h"

#include <bit>

#include "check/check.h"

namespace cad::fleet {

WorkspacePool::~WorkspacePool() {
  common::MutexLock lock(mu_);
  CAD_DCHECK(in_use_ == 0, "workspaces still borrowed at pool destruction");
}

int WorkspacePool::BucketOf(int n_sensors) {
  if (n_sensors <= 1) return 0;
  return std::bit_width(static_cast<unsigned>(n_sensors) - 1u);
}

WorkspacePool::PooledWorkspace* WorkspacePool::Acquire(int n_sensors) {
  const int bucket = BucketOf(n_sensors);
  const size_t b = static_cast<size_t>(bucket);
  // cad-lint: allow(CL010) allocation under the lock is the cold bucket-growth path only (once per bucket high-water); the warm path pops the reserved free list
  common::MutexLock lock(mu_);
  ++acquires_;
  ++in_use_;
  if (b >= free_.size()) {
    free_.resize(b + 1);
    created_per_bucket_.resize(b + 1, 0);
  }
  if (!free_[b].empty()) {
    PooledWorkspace* ws = free_[b].back().release();
    free_[b].pop_back();
    return ws;
  }
  // cad-lint: allow(CL007) cold-bucket growth: at most one construction per bucket per concurrent worker, excluded from steady-state accounting
  auto created = std::make_unique<PooledWorkspace>();
  created->bucket = bucket;
  ++created_;
  ++created_per_bucket_[b];
  // Keep the free list's capacity ahead of the bucket's population so the
  // push_back in Release never reallocates on the hot path.
  free_[b].reserve(static_cast<size_t>(created_per_bucket_[b]));
  return created.release();
}

void WorkspacePool::Release(PooledWorkspace* ws) {
  CAD_DCHECK(ws != nullptr);
  const size_t b = static_cast<size_t>(ws->bucket);
  // cad-lint: allow(CL010) the emplace_back pushes into capacity Acquire reserved ahead of the bucket's population; no reallocation on the warm path
  common::MutexLock lock(mu_);
  CAD_DCHECK(b < free_.size());
  CAD_DCHECK(in_use_ > 0);
  --in_use_;
  free_[b].emplace_back(ws);
}

WorkspacePool::Stats WorkspacePool::GetStats() const {
  common::MutexLock lock(mu_);
  Stats stats;
  stats.created = created_;
  stats.acquires = acquires_;
  stats.in_use = in_use_;
  return stats;
}

}  // namespace cad::fleet
