// fleet::WorkspacePool — shared arena pool of core::RoundWorkspace scratch,
// bucketed by sensor count so steady state stays 0-alloc fleet-wide.
//
// A RoundWorkspace is per-round scratch, not cross-round state (see
// core/round_processor.h): every buffer is overwritten before it is read,
// so workspaces are freely interchangeable between tenants. The pool
// exploits exactly that — instead of one workspace per tenant (10k tenants
// x dozens of vectors), workers borrow one per service quantum, bounded by
// the worker count, not the tenant count.
//
// Buckets are next-power-of-two sensor counts: a workspace that has served
// an N-sensor round has every vector grown to ~N capacity, and any tenant in
// the same bucket (N/2, N] reuses those capacities without growth. Mixing
// buckets would either waste 2x memory (small tenant on a big arena is fine,
// but the converse grows) or re-grow constantly; bucketing makes each
// arena's high-water mark converge after one warm round per bucket.
//
// Growth accounting: Acquire reports whether the arena has already served
// the caller's problem size (`max_sensors` / `max_window` high-water marks).
// A quantum on a cold arena is expected to allocate and is excluded from the
// fleet's steady-state allocation audit; callers update the high-water marks
// before Release.
//
// Synchronization: one mutex at rank lock_order::kFleetWorkspacePool, taken
// alone (after the scheduler lock is dropped, before the tenant lock is
// taken). Free-list pushes never allocate: each bucket's free list reserves
// capacity for every workspace ever created in it at creation time.
#ifndef CAD_FLEET_WORKSPACE_POOL_H_
#define CAD_FLEET_WORKSPACE_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/round_processor.h"

namespace cad::fleet {

class WorkspacePool {
 public:
  struct PooledWorkspace {
    core::RoundWorkspace workspace;
    // High-water problem size this arena has served; callers raise these
    // before Release. A quantum whose tenant exceeds either bound is a
    // growth quantum (allowed to allocate, excluded from steady-state
    // accounting).
    int max_sensors = 0;
    int max_window = 0;
    int bucket = 0;
  };

  struct Stats {
    uint64_t created = 0;   // workspaces ever constructed
    uint64_t acquires = 0;  // quanta served
    uint64_t in_use = 0;    // currently borrowed
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;
  ~WorkspacePool();

  // Borrows a workspace from the bucket covering `n_sensors`, creating one
  // if the bucket's free list is empty (the only allocating path; it happens
  // at most once per bucket per concurrent worker). Never returns null.
  PooledWorkspace* Acquire(int n_sensors) EXCLUDES(mu_);

  // Returns a borrowed workspace to its bucket's free list (no allocation:
  // the list's capacity covers every workspace created in the bucket).
  void Release(PooledWorkspace* ws) EXCLUDES(mu_);

  Stats GetStats() const EXCLUDES(mu_);

  // Bucket index covering `n_sensors`: ceil(log2(n)), so bucket b spans
  // (2^(b-1), 2^b] sensors.
  static int BucketOf(int n_sensors);

 private:
  // Rank 15 (common/lock_order.h): taken alone between the scheduler and
  // tenant locks, never while either is held.
  mutable common::Mutex mu_{common::lock_order::kFleetWorkspacePool,
                            "fleet::WorkspacePool::mu_"};
  // free_[b] owns the idle workspaces of bucket b; borrowed ones are owned
  // by the borrowing worker until Release.
  std::vector<std::vector<std::unique_ptr<PooledWorkspace>>> free_
      GUARDED_BY(mu_);
  std::vector<uint64_t> created_per_bucket_ GUARDED_BY(mu_);
  uint64_t created_ GUARDED_BY(mu_) = 0;
  uint64_t acquires_ GUARDED_BY(mu_) = 0;
  uint64_t in_use_ GUARDED_BY(mu_) = 0;
};

}  // namespace cad::fleet

#endif  // CAD_FLEET_WORKSPACE_POOL_H_
