// fleet::WeightedScheduler — weighted, low-discrepancy round-robin over
// ready tenants (stride scheduling / start-time fair queuing).
//
// Every tenant carries a weight w_i > 0 and a virtual time v_i that advances
// by the tenant's *stride* 1/w_i each time it is serviced. Ready tenants sit
// in a min-heap keyed by (v_i, tenant id); a worker always services the
// smallest virtual time. The per-tenant stride is an additive low-discrepancy
// sequence, so service interleaves as evenly as arithmetic allows instead of
// bursting: with weights {3, 1} the pick sequence is A B A A A B A A A B ...,
// never AAAB repeated back to back.
//
// Fairness bound (documented contract, asserted by
// tests/fleet/scheduler_test.cc and the starvation stress in
// tests/fleet/fleet_stress_test.cc, reported by bench/fleet_bench):
//
//   For any two tenants i, j that stay continuously backlogged across an
//   interval, the normalized service counts observed at any pick boundary
//   satisfy  |q_i / w_i - q_j / w_j|  <=  1/w_i + 1/w_j  quanta,
//   and over any interval in which the scheduler performs exactly
//   W = sum(w) picks with all tenants backlogged, tenant i is picked
//   exactly w_i times (integer weights). With P workers, up to P quanta are
//   additionally in flight at an observation point, so a raw spread
//   measurement adds at most P — plus however long any single quantum
//   stalls: an acquired tenant is owned by exactly one worker, so a worker
//   descheduled mid-quantum holds its tenant's service hostage until it
//   releases, and a snapshot taken meanwhile sees that tenant lag by the
//   horizon's advance. The lag is credit deferred, not lost: on release the
//   tenant's earned vtime is below the horizon and it is serviced
//   back-to-back until it catches up.
//
// Consequently a heavy tenant cannot starve light ones: a backlogged
// tenant's wait is bounded by W/w_i picks regardless of how much load any
// other tenant offers.
//
// A tenant that went idle and becomes ready again rejoins at
// max(v_i, virtual clock), so sleeping never banks credit it could later
// spend monopolizing the pool. The floor applies only on that wake-up path:
// a continuously-backlogged tenant re-queues at its earned vtime, because
// with several workers in flight the virtual clock can transiently run
// ahead of an active tenant, and flooring there would tax whichever tenant
// trails the race (see MakeReady in scheduler.cc).
//
// Synchronization: one mutex at rank lock_order::kFleetScheduler. Callers
// hold nothing else across any call here — workers acquire a tenant, release
// the scheduler lock, and only then lock the tenant itself.
#ifndef CAD_FLEET_SCHEDULER_H_
#define CAD_FLEET_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cad::fleet {

class WeightedScheduler {
 public:
  struct TenantStats {
    double weight = 0.0;
    uint64_t quanta = 0;  // service quanta granted (counted at acquire)
    bool busy = false;    // currently held by a worker
    bool ready = false;   // has (or may have) queued work
  };

  // One entry per tenant; weights must be > 0.
  explicit WeightedScheduler(std::vector<double> weights);

  // Marks a tenant as having work. Idempotent; called by producers after
  // every accepted sample and by workers releasing a tenant that still has
  // a backlog.
  void MakeReady(int tenant) EXCLUDES(mu_);

  // Hands the caller the ready tenant with the smallest virtual time and
  // marks it busy (a tenant is never serviced by two workers at once).
  // Returns false when no tenant is ready.
  [[nodiscard]] bool TryAcquire(int* tenant) EXCLUDES(mu_);

  // Returns a tenant after a service quantum, advancing its virtual time by
  // its stride. `has_more_work` re-queues it (the worker observed a
  // non-empty queue after draining its quantum).
  void Release(int tenant, bool has_more_work) EXCLUDES(mu_);

  // True when no tenant is busy and none is ready — with producers quiesced
  // this means every accepted sample has been serviced (FleetEngine::Drain).
  bool Idle() const EXCLUDES(mu_);

  uint64_t total_quanta() const EXCLUDES(mu_);

  // Consistent point-in-time copy of every tenant's counters, taken under
  // the scheduler lock (so the counts are a prefix of the pick sequence and
  // the documented fairness bound applies to them directly).
  std::vector<TenantStats> StatsSnapshot() const EXCLUDES(mu_);

  int n_tenants() const { return static_cast<int>(n_tenants_); }

 private:
  struct Tenant {
    double weight = 1.0;
    double stride = 1.0;  // 1 / weight
    double vtime = 0.0;
    uint64_t quanta = 0;
    bool busy = false;
    bool ready = false;
    bool queued = false;  // sitting in the heap
  };

  void Enqueue(int tenant) REQUIRES(mu_);

  const size_t n_tenants_;

  // Rank 14 (common/lock_order.h): always taken with nothing else held.
  mutable common::Mutex mu_{common::lock_order::kFleetScheduler,
                            "fleet::WeightedScheduler::mu_"};
  std::vector<Tenant> tenants_ GUARDED_BY(mu_);
  // Min-heap of (vtime, tenant id) over queued tenants; capacity reserved at
  // construction (each tenant is queued at most once) so pushes never
  // reallocate.
  std::vector<std::pair<double, int>> heap_ GUARDED_BY(mu_);
  double vclock_ GUARDED_BY(mu_) = 0.0;  // vtime of the latest acquire
  uint64_t total_quanta_ GUARDED_BY(mu_) = 0;
  int busy_count_ GUARDED_BY(mu_) = 0;
  int ready_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace cad::fleet

#endif  // CAD_FLEET_SCHEDULER_H_
