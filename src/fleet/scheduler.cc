#include "fleet/scheduler.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "check/check.h"

namespace cad::fleet {

WeightedScheduler::WeightedScheduler(std::vector<double> weights)
    : n_tenants_(weights.size()) {
  tenants_.resize(n_tenants_);
  heap_.reserve(n_tenants_);  // each tenant is queued at most once
  for (size_t i = 0; i < n_tenants_; ++i) {
    CAD_CHECK(weights[i] > 0.0, "scheduler weights must be positive");
    tenants_[i].weight = weights[i];
    tenants_[i].stride = 1.0 / weights[i];
  }
}

void WeightedScheduler::Enqueue(int tenant) {
  Tenant& t = tenants_[static_cast<size_t>(tenant)];
  CAD_DCHECK(!t.queued && !t.busy);
  t.queued = true;
  // cad-lint: allow(CL010) pushes into capacity reserved at construction (each tenant is queued at most once, heap_ reserves n_tenants)
  heap_.emplace_back(t.vtime, tenant);
  std::push_heap(heap_.begin(), heap_.end(),
                 std::greater<std::pair<double, int>>());
}

void WeightedScheduler::MakeReady(int tenant) {
  CAD_DCHECK(tenant >= 0 && static_cast<size_t>(tenant) < n_tenants_);
  common::MutexLock lock(mu_);
  Tenant& t = tenants_[static_cast<size_t>(tenant)];
  if (!t.ready) {
    t.ready = true;
    ++ready_count_;
  }
  if (!t.busy && !t.queued) {
    // Re-entry floor, applied ONLY on the wake-up path: a tenant that slept
    // cannot bank virtual time it could later spend monopolizing the pool.
    // The floor must not apply to the continuously-backlogged re-queue in
    // Release: with several workers in flight, pops are not vtime-monotone,
    // so vclock can transiently run ahead of an active tenant's earned
    // vtime — flooring there would silently tax whichever tenants trail the
    // race, and the lost credit compounds into real unfairness (measured:
    // ~40% service skew at 1k tenants before this distinction).
    t.vtime = std::max(t.vtime, vclock_);
    Enqueue(tenant);
  }
}

bool WeightedScheduler::TryAcquire(int* tenant) {
  common::MutexLock lock(mu_);
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(),
                std::greater<std::pair<double, int>>());
  const int id = heap_.back().second;
  heap_.pop_back();
  Tenant& t = tenants_[static_cast<size_t>(id)];
  t.queued = false;
  t.busy = true;
  ++busy_count_;
  if (t.ready) {
    t.ready = false;
    --ready_count_;
  }
  vclock_ = std::max(vclock_, t.vtime);
  ++t.quanta;
  ++total_quanta_;
  *tenant = id;
  return true;
}

void WeightedScheduler::Release(int tenant, bool has_more_work) {
  common::MutexLock lock(mu_);
  Tenant& t = tenants_[static_cast<size_t>(tenant)];
  CAD_DCHECK(t.busy);
  t.busy = false;
  --busy_count_;
  t.vtime += t.stride;
  if (has_more_work && !t.ready) {
    t.ready = true;
    ++ready_count_;
  }
  // A producer may have marked the tenant ready mid-service (MakeReady saw
  // busy and could not enqueue); the release is responsible for re-queuing.
  if (t.ready && !t.queued) Enqueue(tenant);
}

bool WeightedScheduler::Idle() const {
  common::MutexLock lock(mu_);
  return busy_count_ == 0 && ready_count_ == 0;
}

uint64_t WeightedScheduler::total_quanta() const {
  common::MutexLock lock(mu_);
  return total_quanta_;
}

std::vector<WeightedScheduler::TenantStats>
WeightedScheduler::StatsSnapshot() const {
  std::vector<TenantStats> stats(n_tenants_);
  common::MutexLock lock(mu_);
  for (size_t i = 0; i < n_tenants_; ++i) {
    stats[i].weight = tenants_[i].weight;
    stats[i].quanta = tenants_[i].quanta;
    stats[i].busy = tenants_[i].busy;
    stats[i].ready = tenants_[i].ready;
  }
  return stats;
}

}  // namespace cad::fleet
