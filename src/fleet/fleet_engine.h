// fleet::FleetEngine — thousands of tenant streams, one process, one shared
// worker pool.
//
// Hosts N independent core::DetectionEngine instances (one per tenant
// stream) behind a fixed pool of worker threads:
//
//   producers --TryPush--> per-tenant BoundedSampleQueue   (backpressure)
//                               |
//   WeightedScheduler (stride; heavy tenants cannot starve light ones)
//                               |
//   worker: drain a quantum of samples -> SampleWindow -> engine.Step
//           with a RoundWorkspace borrowed from the shared WorkspacePool
//
// Each tenant owns a private obs::Registry, so the per-tenant pipeline
// metrics (cad_rounds_total, cad_round_seconds, ...) never contend across
// tenants; the fleet exposes them tenant-labelled from one aggregated
// ExpositionServer (`/metrics` with {tenant="..."} labels, `/healthz`
// rollup, `/explain?tenant=..&round=..` routing). Fleet-level rollups
// (cad_fleet_*, fleet_metrics.h) live in a separate registry.
//
// Steady-state allocation contract: after a tenant's warm-up rounds, a
// service quantum on a warm arena performs zero heap allocations — queue
// pop, window materialization, the whole engine round, and telemetry all
// reuse capacity. The audit is live: every steady quantum's worker-thread
// allocation delta feeds cad_fleet_steady_allocs_total (0 by contract,
// asserted by tests/fleet/fleet_engine_test.cc and bench/fleet_bench).
// Excluded from "steady": quanta during a tenant's first
// FleetOptions::alloc_warmup_rounds rounds, quanta that grow a pooled
// arena past its high-water mark, and quanta with an anomaly open/close
// transition (those push onto the anomaly list by design).
//
// Lock discipline (ranks in common/lock_order.h; enforced by Clang
// thread-safety analysis, cad_lint CL009-CL011 and the runtime order
// tracker): a worker takes scheduler(14) alone, pool(15) alone, then holds
// tenant(16) across the quantum, inside which queue(18) pops and registry
// (30) / tracer(31) telemetry nest. Producers take queue(18) alone, then
// scheduler(14) alone — sequential scopes, never nested.
//
// Threading contract: AddTenant, Start, and any pre-Start Push run on one
// setup thread (pre-filling queues for deterministic tests/benches). After
// Start, Push may be called from any number of producer threads; accessors
// and the exposition handlers are safe any time after Start.
#ifndef CAD_FLEET_FLEET_ENGINE_H_
#define CAD_FLEET_FLEET_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cad_options.h"
#include "core/engine.h"
#include "core/sample_window.h"
#include "fleet/fleet_metrics.h"
#include "fleet/scheduler.h"
#include "fleet/workspace_pool.h"
#include "obs/exposition_server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "ts/multivariate_series.h"

namespace cad::fleet {

struct FleetOptions {
  // Worker threads servicing every tenant (the paper's one-detector-per-
  // stream model becomes one *engine* per stream, multiplexed here).
  int n_workers = 4;
  // Per-tenant ingestion queue capacity, in samples. A push against a full
  // queue is rejected (counted as backpressure), never blocked.
  int queue_capacity = 256;
  // Max samples a worker drains from one tenant per service quantum. Small
  // enough that a quantum is short (fairness granularity), large enough to
  // amortize the scheduler round trip.
  int quantum_samples = 32;
  // A tenant's first rounds warm its vector capacities (and the arena
  // bucket's); quanta running rounds below this index are excluded from the
  // steady-state allocation audit.
  int alloc_warmup_rounds = 16;
  // Aggregated exposition server port (-1 = none, 0 = ephemeral).
  int exposition_port = -1;
  // Registry for the fleet-level cad_fleet_* rollups (nullptr = the global
  // registry). Tenant registries are always private per tenant.
  obs::Registry* metrics_registry = nullptr;

  [[nodiscard]] Status Validate() const {
    if (n_workers <= 0) {
      return Status::InvalidArgument("n_workers must be positive");
    }
    if (queue_capacity <= 0) {
      return Status::InvalidArgument("queue_capacity must be positive");
    }
    if (quantum_samples <= 0) {
      return Status::InvalidArgument("quantum_samples must be positive");
    }
    if (alloc_warmup_rounds < 0) {
      return Status::InvalidArgument("alloc_warmup_rounds must be >= 0");
    }
    return Status::Ok();
  }
};

class FleetEngine {
 public:
  explicit FleetEngine(const FleetOptions& options);
  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;
  ~FleetEngine();  // Stop()s

  // Registers a tenant stream before the fleet is sealed (first Push or
  // Start). `name` becomes the Prometheus {tenant="..."} label value and the
  // /explain routing key: [a-z0-9_] first, then [a-z0-9_.-], at most 120
  // chars, unique. `weight` > 0 sets its scheduler share. Returns the tenant
  // index used by Push.
  [[nodiscard]] Result<int> AddTenant(const std::string& name, int n_sensors,
                                      const core::CadOptions& cad_options,
                                      double weight = 1.0);

  // Seals the tenant set, spawns the workers and (when configured) the
  // aggregated exposition server.
  [[nodiscard]] Status Start();

  // Stops the exposition server and joins the workers. Queued samples may
  // remain; Start cannot be called again. Idempotent.
  void Stop();

  // Blocks until every accepted sample has been serviced and all workers are
  // idle. Producers must be quiesced, or this can wait forever.
  void Drain();

  // Offers one time point of `readings` to tenant `tenant`'s queue. Returns
  // true when accepted, false when the queue was full (backpressure — the
  // sample is dropped and counted in cad_fleet_samples_rejected_total).
  [[nodiscard]] Result<bool> Push(int tenant, std::span<const double> readings);

  [[nodiscard]] Result<int> TenantIndex(const std::string& name) const;
  int n_tenants() const { return static_cast<int>(tenants_.size()); }
  // -1 when no server is running (not requested or failed to bind).
  int exposition_port() const {
    return server_ != nullptr ? server_->port() : -1;
  }

  struct TenantStatus {
    std::string name;
    double weight = 0.0;
    int n_sensors = 0;
    int samples_seen = 0;     // samples serviced into the tenant's window
    uint64_t rounds = 0;
    uint64_t accepted = 0;    // queue accepts
    uint64_t rejected = 0;    // queue rejections (backpressure)
    uint64_t pending = 0;     // samples waiting in the queue
    bool anomaly_open = false;
  };
  [[nodiscard]] Result<TenantStatus> TenantInfo(int tenant) const;

  // Anomalies the tenant's engine has fully closed so far (a copy, taken
  // under the tenant lock).
  [[nodiscard]] Result<std::vector<core::Anomaly>> TenantAnomalies(
      int tenant) const;

  // The /metrics body: fleet-level rollups followed by every tenant's
  // pipeline metrics as {tenant="name"}-labelled series.
  std::string MetricsText() const;
  // The /healthz body: fleet-wide rollup JSON.
  std::string HealthJson() const;
  // The /explain?tenant=..&round=.. body; empty when the tenant is unknown
  // or the round is not in its flight-recorder ring (404 upstream).
  std::string ExplainTenantJson(const std::string& tenant, int round) const;

  const WeightedScheduler& scheduler() const { return *scheduler_; }
  WorkspacePool::Stats pool_stats() const { return pool_.GetStats(); }
  const FleetMetrics& metrics() const { return metrics_; }

 private:
  // One tenant stream: its queue, its engine, and the ingest state the
  // worker drives under `mu` during a service quantum.
  struct Tenant {
    Tenant(std::string tenant_name, int sensors, const core::CadOptions& opts,
           double tenant_weight, int queue_capacity);

    const std::string name;
    const int n_sensors;
    const double weight;
    // Private per-tenant registry: pipeline metrics never contend across
    // tenants and are exposed tenant-labelled by MetricsText(). Declared
    // before `options`/`engine`, which capture it.
    const std::unique_ptr<obs::Registry> registry;
    const core::CadOptions options;  // caller's options + private registry

    // cad-lint: allow(CL005) internally synchronized: the queue owns its own rank-18 mutex (common/bounded_queue.h); producers use it without the tenant lock
    common::BoundedSampleQueue queue;  // internally synchronized (rank 18)

    // Rank 16 (common/lock_order.h): held by the servicing worker across a
    // quantum; queue(18) pops and telemetry(30/31) nest inside it. The
    // scheduler's busy flag means at most one worker contends with the
    // occasional accessor/exposition reader.
    mutable common::Mutex mu;
    core::SampleWindow ingest GUARDED_BY(mu);
    // Distinctive names (not `window`/`engine`/`rounds`): guarded members
    // index cad_lint's CL011 by name tree-wide, and those collide with
    // ubiquitous unguarded struct fields.
    ts::MultivariateSeries window_series GUARDED_BY(mu);
    core::DetectionEngine cad_engine GUARDED_BY(mu);
    uint64_t rounds_serviced GUARDED_BY(mu) = 0;
  };

  // Builds the scheduler from the registered weights; after this the tenant
  // set is immutable (which is what makes `tenants_` safe to read without a
  // fleet-wide lock).
  void Seal();
  void WorkerLoop();
  // Services one scheduler quantum. Returns false when no tenant was ready.
  bool ServiceOne(std::vector<double>* staging);
  static std::unique_ptr<obs::ExpositionServer> MakeServer(FleetEngine* self);
  obs::Registry& fleet_registry() const;

  const FleetOptions options_;
  const FleetMetrics metrics_;  // stable pointers, atomic recording

  // Setup-thread state; immutable once sealed.
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::map<std::string, int> tenant_index_;
  std::unique_ptr<WeightedScheduler> scheduler_;  // created by Seal()
  bool started_ = false;
  int max_sensors_ = 0;  // widest tenant; sizes worker staging buffers

  WorkspacePool pool_;

  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;

  // Destroyed first: the server thread's handlers read tenants_ and take
  // tenant locks, so the server must die before any of that does.
  std::unique_ptr<obs::ExpositionServer> server_;
};

}  // namespace cad::fleet

#endif  // CAD_FLEET_FLEET_ENGINE_H_
