#include "fleet/fleet_engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "check/check.h"
#include "common/alloc_tracker.h"
#include "common/stopwatch.h"
#include "obs/json_util.h"

namespace cad::fleet {

namespace {

constexpr size_t kMaxTenantNameLength = 120;

// Tenant names become Prometheus label values and /explain routing keys;
// restricting them to [a-z0-9_.-] (first char [a-z0-9_]) keeps every
// downstream surface (exposition text, URLs, log lines) escape-free.
bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > kMaxTenantNameLength) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool base = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
    if (i == 0 ? !base : !(base || c == '.' || c == '-')) return false;
  }
  return true;
}

}  // namespace

FleetEngine::Tenant::Tenant(std::string tenant_name, int sensors,
                            const core::CadOptions& opts, double tenant_weight,
                            int queue_capacity)
    : name(std::move(tenant_name)),
      n_sensors(sensors),
      weight(tenant_weight),
      registry(std::make_unique<obs::Registry>()),
      options([&] {
        core::CadOptions tenant_options = opts;
        // Pipeline metrics are private per tenant (exposed tenant-labelled
        // by the fleet); a tenant never runs its own exposition server.
        tenant_options.metrics_registry = registry.get();
        tenant_options.exposition_port = -1;
        return tenant_options;
      }()),
      queue(sensors, queue_capacity),
      mu(common::lock_order::kFleetTenant, "fleet::Tenant::mu"),
      ingest(sensors, options.window, options.step),
      window_series(sensors, options.window),
      cad_engine(sensors, options) {}

FleetEngine::FleetEngine(const FleetOptions& options)
    : options_(options),
      metrics_(FleetMetrics::For(obs::ResolveRegistry(
          options.metrics_registry))) {}

FleetEngine::~FleetEngine() { Stop(); }

obs::Registry& FleetEngine::fleet_registry() const {
  return obs::ResolveRegistry(options_.metrics_registry);
}

Result<int> FleetEngine::AddTenant(const std::string& name, int n_sensors,
                                   const core::CadOptions& cad_options,
                                   double weight) {
  if (scheduler_ != nullptr) {
    return Status::FailedPrecondition(
        "AddTenant must precede the first Push / Start (the tenant set is "
        "sealed)");
  }
  if (!ValidTenantName(name)) {
    return Status::InvalidArgument(
        "tenant name '" + name +
        "' is not a valid label value ([a-z0-9_] then [a-z0-9_.-], <= 120 "
        "chars)");
  }
  if (tenant_index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate tenant name '" + name + "'");
  }
  if (n_sensors <= 0) {
    return Status::InvalidArgument("n_sensors must be positive");
  }
  if (!(weight > 0.0)) {
    return Status::InvalidArgument("tenant weight must be positive");
  }
  // The tenant window is its own series: validate against window length.
  CAD_RETURN_NOT_OK(cad_options.Validate(cad_options.window));

  const int index = static_cast<int>(tenants_.size());
  tenants_.push_back(std::make_unique<Tenant>(name, n_sensors, cad_options,
                                              weight, options_.queue_capacity));
  tenant_index_.emplace(name, index);
  max_sensors_ = std::max(max_sensors_, n_sensors);
  return index;
}

void FleetEngine::Seal() {
  if (scheduler_ != nullptr) return;
  std::vector<double> weights;
  weights.reserve(tenants_.size());
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    weights.push_back(tenant->weight);
  }
  scheduler_ = std::make_unique<WeightedScheduler>(std::move(weights));
}

Status FleetEngine::Start() {
  CAD_RETURN_NOT_OK(options_.Validate());
  if (started_) {
    return Status::FailedPrecondition("fleet already started");
  }
  Seal();
  started_ = true;
  metrics_.tenants->Set(static_cast<double>(tenants_.size()));
  metrics_.workers->Set(static_cast<double>(options_.n_workers));
  workers_.reserve(static_cast<size_t>(options_.n_workers));
  for (int i = 0; i < options_.n_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // Last: every structure its handlers touch is already alive and workers
  // are running, so a scrape observes a live fleet.
  server_ = MakeServer(this);
  return Status::Ok();
}

void FleetEngine::Stop() {
  server_.reset();
  stop_.store(true, std::memory_order_release);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void FleetEngine::Drain() {
  if (!started_ || scheduler_ == nullptr) return;
  while (!stop_.load(std::memory_order_acquire) && !scheduler_->Idle()) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Result<bool> FleetEngine::Push(int tenant, std::span<const double> readings) {
  if (tenant < 0 || tenant >= n_tenants()) {
    return Status::InvalidArgument("tenant index " + std::to_string(tenant) +
                                   " out of range");
  }
  Seal();  // first Push seals the tenant set (pre-Start pre-filling)
  Tenant& t = *tenants_[static_cast<size_t>(tenant)];
  if (static_cast<int>(readings.size()) != t.n_sensors) {
    return Status::InvalidArgument(
        "sample has " + std::to_string(readings.size()) +
        " readings, tenant '" + t.name + "' expects " +
        std::to_string(t.n_sensors));
  }
  // Queue(18) then scheduler(14): sequential scopes, never nested — the
  // rank order only constrains locks held simultaneously.
  const bool accepted = t.queue.TryPush(readings);
  if (accepted) {
    metrics_.samples_total->Increment();
    scheduler_->MakeReady(tenant);
  } else {
    metrics_.samples_rejected_total->Increment();
  }
  return accepted;
}

void FleetEngine::WorkerLoop() {
  // Per-worker staging row for queue pops, sized for the widest tenant;
  // allocated once per worker, outside any quantum's allocation audit.
  std::vector<double> staging(static_cast<size_t>(std::max(max_sensors_, 1)));
  int idle_spins = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (ServiceOne(&staging)) {
      idle_spins = 0;
      continue;
    }
    // Idle backoff: yield first, then bounded sleeps. Polling (instead of a
    // condition variable) keeps the scheduler lock free of wait edges; the
    // 100us cap bounds both new-work latency and shutdown latency.
    ++idle_spins;
    if (idle_spins < 16) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(idle_spins < 64 ? 10 : 100));
    }
  }
}

bool FleetEngine::ServiceOne(std::vector<double>* staging) {
  int index = -1;
  if (!scheduler_->TryAcquire(&index)) return false;
  Tenant& tenant = *tenants_[static_cast<size_t>(index)];

  WorkspacePool::PooledWorkspace* arena = pool_.Acquire(tenant.n_sensors);
  // A quantum is "steady" only if the arena has already served this problem
  // size — otherwise engine buffers grow into it and allocation is expected.
  bool steady = tenant.n_sensors <= arena->max_sensors &&
                tenant.options.window <= arena->max_window;

  const int64_t allocs_before = common::ThreadAllocCount();
  int rounds_run = 0;
  {
    common::MutexLock lock(tenant.mu);
    const bool anomaly_was_open = tenant.cad_engine.anomaly_open();
    const size_t anomalies_before = tenant.cad_engine.anomalies().size();
    for (int drained = 0; drained < options_.quantum_samples; ++drained) {
      if (!tenant.queue.PopInto(staging->data())) break;
      const bool round_due = tenant.ingest.Append(std::span<const double>(
          staging->data(), static_cast<size_t>(tenant.n_sensors)));
      if (!round_due) continue;
      Stopwatch round_watch;
      tenant.ingest.MaterializeInto(&tenant.window_series);
      tenant.cad_engine.Step(tenant.window_series, 0, tenant.ingest.window_start_time(),
                         tenant.ingest.window_end_time(), &arena->workspace);
      metrics_.round_seconds->Observe(round_watch.ElapsedSeconds());
      ++rounds_run;
      ++tenant.rounds_serviced;
      if (tenant.rounds_serviced <= static_cast<uint64_t>(options_.alloc_warmup_rounds)) {
        steady = false;  // capacities still warming
      }
    }
    // Anomaly open/close transitions push onto the anomaly list by design;
    // they are rare events, not steady-state round work.
    if (tenant.cad_engine.anomaly_open() != anomaly_was_open ||
        tenant.cad_engine.anomalies().size() != anomalies_before) {
      steady = false;
    }
  }
  const int64_t alloc_delta = common::ThreadAllocCount() - allocs_before;

  arena->max_sensors = std::max(arena->max_sensors, tenant.n_sensors);
  arena->max_window = std::max(arena->max_window, tenant.options.window);
  pool_.Release(arena);

  metrics_.quanta_total->Increment();
  if (rounds_run > 0) {
    metrics_.rounds_total->Increment(static_cast<uint64_t>(rounds_run));
    if (steady) {
      metrics_.steady_rounds_total->Increment(
          static_cast<uint64_t>(rounds_run));
      if (alloc_delta > 0) {
        metrics_.steady_allocs_total->Increment(
            static_cast<uint64_t>(alloc_delta));
      }
    }
  }

  // Queue(18) then scheduler(14), again sequential scopes. Checking
  // emptiness here (not inside the drain loop) closes the race where a
  // producer pushed after our last pop: either we see the sample now, or
  // the producer's MakeReady re-queues the tenant.
  scheduler_->Release(index, /*has_more_work=*/!tenant.queue.empty());
  return true;
}

Result<int> FleetEngine::TenantIndex(const std::string& name) const {
  const auto it = tenant_index_.find(name);
  if (it == tenant_index_.end()) {
    return Status::InvalidArgument("unknown tenant '" + name + "'");
  }
  return it->second;
}

Result<FleetEngine::TenantStatus> FleetEngine::TenantInfo(int tenant) const {
  if (tenant < 0 || tenant >= n_tenants()) {
    return Status::InvalidArgument("tenant index " + std::to_string(tenant) +
                                   " out of range");
  }
  const Tenant& t = *tenants_[static_cast<size_t>(tenant)];
  TenantStatus status;
  status.name = t.name;
  status.weight = t.weight;
  status.n_sensors = t.n_sensors;
  {
    common::MutexLock lock(t.mu);
    status.samples_seen = t.ingest.samples_seen();
    status.rounds = t.rounds_serviced;
    status.anomaly_open = t.cad_engine.anomaly_open();
  }
  status.accepted = t.queue.accepted();
  status.rejected = t.queue.rejected();
  status.pending = static_cast<uint64_t>(t.queue.size());
  return status;
}

Result<std::vector<core::Anomaly>> FleetEngine::TenantAnomalies(
    int tenant) const {
  if (tenant < 0 || tenant >= n_tenants()) {
    return Status::InvalidArgument("tenant index " + std::to_string(tenant) +
                                   " out of range");
  }
  const Tenant& t = *tenants_[static_cast<size_t>(tenant)];
  common::MutexLock lock(t.mu);
  return t.cad_engine.anomalies();
}

std::string FleetEngine::MetricsText() const {
  std::string out = obs::ToPrometheusText(fleet_registry().TakeSnapshot());
  std::vector<obs::LabeledSnapshot> labeled;
  labeled.reserve(tenants_.size());
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    labeled.push_back({tenant->name, tenant->registry->TakeSnapshot()});
  }
  out += obs::ToPrometheusTextLabeled("tenant", labeled);
  return out;
}

std::string FleetEngine::HealthJson() const {
  uint64_t pending = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    pending += static_cast<uint64_t>(tenant->queue.size());
    accepted += tenant->queue.accepted();
    rejected += tenant->queue.rejected();
  }
  uint64_t rounds = 0;
  int anomalies_open = 0;
  for (const std::unique_ptr<Tenant>& tenant : tenants_) {
    Tenant& t = *tenant;
    common::MutexLock lock(t.mu);
    rounds += t.rounds_serviced;
    anomalies_open += t.cad_engine.anomaly_open() ? 1 : 0;
  }
  std::string json = "{\"tenants\":" + std::to_string(tenants_.size());
  json += ",\"workers\":" + std::to_string(options_.n_workers);
  json += ",\"samples_accepted\":" + std::to_string(accepted);
  json += ",\"samples_rejected\":" + std::to_string(rejected);
  json += ",\"pending_samples\":" + std::to_string(pending);
  json += ",\"rounds\":" + std::to_string(rounds);
  json += ",\"anomalies_open\":" + std::to_string(anomalies_open);
  json += ",\"quanta\":" +
          std::to_string(scheduler_ != nullptr ? scheduler_->total_quanta()
                                               : 0);
  json += '}';
  return json;
}

std::string FleetEngine::ExplainTenantJson(const std::string& tenant,
                                           int round) const {
  const auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) return std::string();  // 404 upstream
  const Tenant& t = *tenants_[static_cast<size_t>(it->second)];
  std::optional<obs::DecisionProvenance> provenance;
  {
    common::MutexLock lock(t.mu);
    provenance = t.cad_engine.Explain(round);
  }
  if (!provenance.has_value()) return std::string();  // 404 upstream
  return obs::ProvenanceToJson(*provenance);
}

std::unique_ptr<obs::ExpositionServer> FleetEngine::MakeServer(
    FleetEngine* self) {
  if (self->options_.exposition_port < 0) return nullptr;
  obs::ExpositionServer::Handlers handlers;
  handlers.metrics_text = [self] { return self->MetricsText(); };
  handlers.healthz_json = [self] { return self->HealthJson(); };
  handlers.explain_tenant_json = [self](const std::string& tenant, int round) {
    return self->ExplainTenantJson(tenant, round);
  };
  Result<std::unique_ptr<obs::ExpositionServer>> server =
      obs::ExpositionServer::Start(
          static_cast<uint16_t>(self->options_.exposition_port),
          std::move(handlers));
  if (!server.ok()) {
    // Exposition is opt-in telemetry; a bind failure must not take the
    // fleet down with it.
    std::fprintf(stderr, "FleetEngine: exposition server disabled: %s\n",
                 server.status().ToString().c_str());
    return nullptr;
  }
  return std::move(server).value();
}

}  // namespace cad::fleet
