// PCA-based anomaly detection (Shyu et al. 2003 / Aggarwal's linear-model
// family, references [76] and [4] of the paper): fit the training
// covariance, eigendecompose it, and score each point by its Mahalanobis
// distance expressed in the principal basis — sum of y_k^2 / lambda_k over
// components, which weights deviations along low-variance (minor)
// directions most heavily. Those minor directions encode the inter-sensor
// linear structure, so this is the classic linear cousin of CAD's
// correlation-graph view.
#ifndef CAD_BASELINES_PCA_DETECTOR_H_
#define CAD_BASELINES_PCA_DETECTOR_H_

#include "baselines/detector.h"
#include "stats/eigen.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct PcaOptions {
  // Components with eigenvalue below `variance_floor` * trace/n are clamped
  // to it (near-singular covariance directions would dominate the score).
  double variance_floor = 1e-4;
};

class PcaDetector : public Detector {
 public:
  explicit PcaDetector(const PcaOptions& options = {}) : options_(options) {}

  std::string name() const override { return "PCA"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  PcaOptions options_;
  bool fitted_ = false;
  ts::Scaler scaler_;
  stats::EigenDecomposition basis_;
  std::vector<double> safe_eigenvalues_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_PCA_DETECTOR_H_
