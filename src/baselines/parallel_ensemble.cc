#include "baselines/parallel_ensemble.h"

#include <algorithm>
#include <cstdint>
#include <thread>
#include <utility>

#include "check/check.h"
#include "common/lock_order.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cad::baselines {

namespace {

// Error slot shared by the scoring workers. The lowest failing member index
// wins so the reported Status does not depend on thread scheduling.
struct ScoreErrors {
  // Rank 40 (common/lock_order.h): leaf — scoring workers hold nothing else.
  common::Mutex mu{common::lock_order::kEnsembleErrors,
                   "baselines::ScoreErrors::mu"};
  Status first_error GUARDED_BY(mu) = Status::Ok();
  size_t first_error_member GUARDED_BY(mu) = SIZE_MAX;
};

}  // namespace

Result<std::vector<double>> ParallelEnsemble::ScoreImpl(
    const ts::MultivariateSeries& test) {
  // Members score concurrently: each worker owns a disjoint set of member
  // detectors (strided assignment) and writes into its own result slots, so
  // the only cross-thread state is the error slot above plus the internally
  // synchronized obs registry/tracer. Fusion then runs sequentially over the
  // slots in member order — byte-identical to the old sequential fold, which
  // matters because kMean addition is not FP-associative.
  const size_t n_members = members_.size();
  std::vector<std::vector<double>> slots(n_members);
  ScoreErrors errors;

  const size_t n_threads = std::min<size_t>(
      n_members,
      std::max<size_t>(1, std::thread::hardware_concurrency()));
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  for (size_t w = 0; w < n_threads; ++w) {
    workers.emplace_back([this, &test, &slots, &errors, w, n_threads,
                          n_members] {
      for (size_t m = w; m < n_members; m += n_threads) {
        Result<std::vector<double>> scores = members_[m]->Score(test);
        if (!scores.ok()) {
          common::MutexLock lock(errors.mu);
          if (m < errors.first_error_member) {
            errors.first_error_member = m;
            errors.first_error = scores.status();
          }
          continue;
        }
        slots[m] = std::move(scores).value();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  {
    common::MutexLock lock(errors.mu);
    if (errors.first_error_member != SIZE_MAX) return errors.first_error;
  }

  std::vector<double> fused(test.length(), 0.0);
  for (size_t m = 0; m < n_members; ++m) {
    const std::vector<double>& scores = slots[m];
    CAD_CHECK(scores.size() == fused.size(),
              members_[m]->name() + " returned wrong score length");
    for (size_t t = 0; t < fused.size(); ++t) {
      if (fusion_ == ScoreFusion::kMax) {
        fused[t] = std::max(fused[t], scores[t]);
      } else {
        fused[t] += scores[t];
      }
    }
  }
  if (fusion_ == ScoreFusion::kMean) {
    for (double& v : fused) v /= static_cast<double>(members_.size());
  }
  MinMaxNormalize(&fused);
  return fused;
}

}  // namespace cad::baselines
