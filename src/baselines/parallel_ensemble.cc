#include "baselines/parallel_ensemble.h"

#include "check/check.h"

#include <algorithm>

namespace cad::baselines {

Result<std::vector<double>> ParallelEnsemble::ScoreImpl(
    const ts::MultivariateSeries& test) {
  std::vector<double> fused(test.length(), 0.0);
  for (const auto& member : members_) {
    Result<std::vector<double>> scores = member->Score(test);
    if (!scores.ok()) return scores.status();
    CAD_CHECK(scores.value().size() == fused.size(),
              member->name() + " returned wrong score length");
    for (size_t t = 0; t < fused.size(); ++t) {
      if (fusion_ == ScoreFusion::kMax) {
        fused[t] = std::max(fused[t], scores.value()[t]);
      } else {
        fused[t] += scores.value()[t];
      }
    }
  }
  if (fusion_ == ScoreFusion::kMean) {
    for (double& v : fused) v /= static_cast<double>(members_.size());
  }
  MinMaxNormalize(&fused);
  return fused;
}

}  // namespace cad::baselines
