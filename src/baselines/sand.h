// SAND (Boniol et al., PVLDB 2021) and its online variant SAND*.
//
// SAND maintains a weighted set of subsequence centroids obtained by
// k-Shape-style clustering under the shape-based distance (SBD) and scores
// each subsequence by its weighted distance to the model: heavily-weighted
// clusters represent frequent (normal) behaviour, so distance to them is
// discounted less than distance to rare clusters.
//
// Following the paper's setup (Section VI-A): the pattern length l is
// estimated from the autocorrelation function and the centroid length is
// 4*l; SAND* processes the series in batches with update rate alpha = 0.5,
// an initial model built from the first half and batch size 0.1|T|.
//
// Simplification vs. the original (documented in DESIGN.md): centroid
// refinement uses the SBD-aligned mean of the members instead of the
// k-Shape eigendecomposition — same alignment principle, no linear-algebra
// dependency. Both variants are stochastic through the k-means++-style
// initialization, matching their non-zero variance in the paper's tables.
#ifndef CAD_BASELINES_SAND_H_
#define CAD_BASELINES_SAND_H_

#include <cstdint>

#include "baselines/univariate.h"

namespace cad::baselines {

struct SandOptions {
  // 0 = estimate the pattern length from the ACF (paper protocol); the
  // centroid length is 4x this value.
  int pattern_length = 0;
  int n_clusters = 6;
  int max_iterations = 5;
  uint64_t seed = 11;
  // SAND* streaming parameters.
  double alpha = 0.5;
  double init_fraction = 0.5;
  double batch_fraction = 0.1;
};

class Sand : public UnivariateDetector {
 public:
  explicit Sand(const SandOptions& options = {}) : options_(options) {}

  std::string name() const override { return "SAND"; }
  bool deterministic() const override { return false; }

  std::vector<double> ScoreSeries(std::span<const double> train,
                                  std::span<const double> test) override;

 private:
  SandOptions options_;
};

class SandStar : public UnivariateDetector {
 public:
  explicit SandStar(const SandOptions& options = {}) : options_(options) {}

  std::string name() const override { return "SAND*"; }
  bool deterministic() const override { return false; }

  std::vector<double> ScoreSeries(std::span<const double> train,
                                  std::span<const double> test) override;

 private:
  SandOptions options_;
};

std::unique_ptr<Detector> MakeSandEnsemble(const SandOptions& options = {});
std::unique_ptr<Detector> MakeSandStarEnsemble(const SandOptions& options = {});

}  // namespace cad::baselines

#endif  // CAD_BASELINES_SAND_H_
