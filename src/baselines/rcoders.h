// RCoders (Abdulaal, Liu & Lancewicki, KDD 2021) — reconstruction-based
// anomaly detection with per-sensor localization.
//
// Substitution note (DESIGN.md §1): the original learns asynchronous phase
// synchronization with spectral components before a recurrent autoencoder.
// This reimplementation keeps the two properties the paper's evaluation
// uses: (1) reconstruction-error scores from a bottleneck autoencoder
// trained on normal data, and (2) *per-sensor* reconstruction errors that
// attribute an anomaly to sensors (the F1_sensor comparison of Table IV).
// The autoencoder reconstructs short context windows per time point; the
// per-sensor error averages that sensor's residuals across the window.
#ifndef CAD_BASELINES_RCODERS_H_
#define CAD_BASELINES_RCODERS_H_

#include <cstdint>
#include <memory>

#include "baselines/detector.h"
#include "nn/mlp.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct RcodersOptions {
  int window = 4;     // context width per reconstruction
  int latent = 12;
  int hidden = 48;
  int epochs = 8;
  double learning_rate = 1e-3;
  uint64_t seed = 5;
  int max_train_windows = 4000;
};

class Rcoders : public Detector {
 public:
  explicit Rcoders(const RcodersOptions& options = {}) : options_(options) {}

  std::string name() const override { return "RCoders"; }
  bool deterministic() const override { return false; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

  bool provides_sensor_scores() const override { return true; }
  [[nodiscard]] Result<std::vector<std::vector<double>>> SensorScores(
      const ts::MultivariateSeries& test) override;

 private:
  // Per-sensor squared reconstruction errors [sensor][t].
  [[nodiscard]] Result<std::vector<std::vector<double>>> ReconstructionErrors(
      const ts::MultivariateSeries& test);

  RcodersOptions options_;
  ts::Scaler scaler_;
  int n_sensors_ = 0;
  std::unique_ptr<nn::Mlp> autoencoder_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_RCODERS_H_
