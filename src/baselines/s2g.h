// S2G — Series2Graph (Boniol & Palpanas, PVLDB 2020), reimplemented in its
// graph-scoring essence: overlapping subsequences are embedded into a small
// pattern space, quantized into graph nodes, and consecutive subsequences
// form directed edges whose traversal frequency measures normality — rarely
// travelled edges indicate anomalous transitions.
//
// Embedding simplification (documented in DESIGN.md): instead of the
// original rotation-invariant PCA embedding we use the per-third means of
// each z-normalized subsequence quantized into `bins` levels. This keeps
// the method's signature behaviour — recurring patterns collapse onto heavy
// paths; anomalies wander off them — while staying dependency-free and
// fully deterministic (S2G is one of the paper's four deterministic
// methods).
#ifndef CAD_BASELINES_S2G_H_
#define CAD_BASELINES_S2G_H_

#include "baselines/univariate.h"

namespace cad::baselines {

struct S2gOptions {
  int query_length = 100;  // paper Section VI-A uses 100 for all datasets
  int bins = 5;            // quantization levels per embedding coordinate
};

class S2g : public UnivariateDetector {
 public:
  explicit S2g(const S2gOptions& options = {}) : options_(options) {}

  std::string name() const override { return "S2G"; }
  bool deterministic() const override { return true; }

  std::vector<double> ScoreSeries(std::span<const double> train,
                                  std::span<const double> test) override;

 private:
  S2gOptions options_;
};

// Factory-made MTS ensemble with the paper's settings.
std::unique_ptr<Detector> MakeS2gEnsemble(const S2gOptions& options = {});

}  // namespace cad::baselines

#endif  // CAD_BASELINES_S2G_H_
