// HBOS — Histogram-Based Outlier Score (Goldstein & Dengel 2012, reference
// [30] of the paper): per-dimension equal-width histograms fitted on the
// training split; a point's score is the sum over dimensions of the log
// inverse bin density. Assumes feature independence — fast, coarse, and a
// classic representative of the probabilistic baseline family.
#ifndef CAD_BASELINES_HBOS_H_
#define CAD_BASELINES_HBOS_H_

#include "baselines/detector.h"

namespace cad::baselines {

struct HbosOptions {
  int n_bins = 20;
};

class Hbos : public Detector {
 public:
  explicit Hbos(const HbosOptions& options = {}) : options_(options) {}

  std::string name() const override { return "HBOS"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  struct Histogram {
    double lo = 0.0;
    double width = 1.0;            // bin width
    std::vector<double> density;   // normalized so the max bin is 1
  };

  HbosOptions options_;
  bool fitted_ = false;
  std::vector<Histogram> histograms_;  // per sensor
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_HBOS_H_
