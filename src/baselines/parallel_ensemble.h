// ParallelEnsemble — the paper's Section IV-F suggestion made concrete:
// "CAD can be used in parallel with other anomaly detection methods to
// provide an additional check for the anomalies."
//
// Wraps any set of detectors and fuses their per-point scores. kMax keeps
// an alarm whenever *any* member raises one (covers CAD's blind spot:
// anomalies that change amplitudes but never correlations, e.g. a uniform
// level shift across a whole community); kMean trades that recall for
// fewer false positives.
//
// Scoring runs the members on a thread per hardware core (strided member
// assignment, per-member result slots, thread-safety-annotated error slot in
// parallel_ensemble.cc) and fuses sequentially in member order, so the fused
// scores are byte-identical to a sequential evaluation.
#ifndef CAD_BASELINES_PARALLEL_ENSEMBLE_H_
#define CAD_BASELINES_PARALLEL_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "baselines/detector.h"
#include "check/check.h"

namespace cad::baselines {

enum class ScoreFusion {
  kMax,
  kMean,
};

class ParallelEnsemble : public Detector {
 public:
  ParallelEnsemble(std::vector<std::unique_ptr<Detector>> members,
                   ScoreFusion fusion = ScoreFusion::kMax)
      : members_(std::move(members)), fusion_(fusion) {
    CAD_CHECK(!members_.empty(), "ensemble needs at least one member");
  }

  std::string name() const override {
    std::string name = members_[0]->name();
    for (size_t i = 1; i < members_.size(); ++i) {
      // Appended in two steps: "+" + name() takes the rvalue operator+
      // overload that trips GCC 12's -Wrestrict false positive (PR105651)
      // under -Werror.
      name += '+';
      name += members_[i]->name();
    }
    return name;
  }

  bool deterministic() const override {
    for (const auto& member : members_) {
      if (!member->deterministic()) return false;
    }
    return true;
  }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override {
    for (const auto& member : members_) {
      CAD_RETURN_NOT_OK(member->Fit(train));
    }
    return Status::Ok();
  }

  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  std::vector<std::unique_ptr<Detector>> members_;
  ScoreFusion fusion_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_PARALLEL_ENSEMBLE_H_
