#include "baselines/pca_detector.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

Status PcaDetector::FitImpl(const ts::MultivariateSeries& train) {
  if (train.length() < 2) {
    return Status::InvalidArgument("PCA needs at least two training points");
  }
  const int n = train.n_sensors();
  scaler_ = ts::FitZScore(train);
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, train);

  // Covariance of the z-scored training data (means are ~0 by construction).
  stats::SymmetricMatrix covariance(n);
  const double inv_len = 1.0 / static_cast<double>(scaled.length());
  for (int i = 0; i < n; ++i) {
    auto xi = scaled.sensor(i);
    for (int j = i; j < n; ++j) {
      auto xj = scaled.sensor(j);
      double sum = 0.0;
      for (int t = 0; t < scaled.length(); ++t) sum += xi[t] * xj[t];
      covariance.set(i, j, sum * inv_len);
    }
  }

  basis_ = stats::JacobiEigen(covariance);
  double trace = 0.0;
  for (double lambda : basis_.values) trace += std::max(lambda, 0.0);
  const double floor =
      options_.variance_floor * std::max(trace / n, 1e-12);
  safe_eigenvalues_.clear();
  for (double lambda : basis_.values) {
    safe_eigenvalues_.push_back(std::max(lambda, floor));
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> PcaDetector::ScoreImpl(
    const ts::MultivariateSeries& test) {
  if (!fitted_) {
    CAD_RETURN_NOT_OK(Fit(test));
  }
  const int n = test.n_sensors();
  if (static_cast<int>(scaler_.offset.size()) != n) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, test);
  std::vector<double> scores(test.length(), 0.0);
  std::vector<double> point(n);
  for (int t = 0; t < test.length(); ++t) {
    for (int i = 0; i < n; ++i) point[i] = scaled.value(i, t);
    double score = 0.0;
    for (size_t k = 0; k < basis_.vectors.size(); ++k) {
      double projection = 0.0;
      for (int i = 0; i < n; ++i) projection += basis_.vectors[k][i] * point[i];
      score += projection * projection / safe_eigenvalues_[k];
    }
    scores[t] = score;
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
