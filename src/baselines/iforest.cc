#include "baselines/iforest.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

namespace {

// Average path length of an unsuccessful BST search over n points.
double AveragePathLength(int n) {
  if (n <= 1) return 0.0;
  const double h = std::log(static_cast<double>(n - 1)) + 0.5772156649015329;
  return 2.0 * h - 2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

std::vector<std::vector<double>> ToPoints(const ts::MultivariateSeries& series) {
  std::vector<std::vector<double>> points(series.length());
  for (int t = 0; t < series.length(); ++t) {
    points[t].resize(series.n_sensors());
    for (int i = 0; i < series.n_sensors(); ++i) {
      points[t][i] = series.value(i, t);
    }
  }
  return points;
}

}  // namespace

int Iforest::BuildNode(Tree* tree, std::vector<int>* indices, int begin,
                       int end, int depth, int max_depth,
                       const std::vector<std::vector<double>>& points,
                       Rng* rng) {
  const int node_index = static_cast<int>(tree->nodes.size());
  tree->nodes.push_back({});
  tree->nodes[node_index].size = end - begin;

  if (end - begin <= 1 || depth >= max_depth) return node_index;

  // Pick a feature with spread; give up after a few attempts (all-constant).
  int feature = -1;
  double lo = 0.0, hi = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int f = static_cast<int>(rng->NextBounded(
        static_cast<uint64_t>(n_features_)));
    lo = hi = points[(*indices)[begin]][f];
    for (int i = begin + 1; i < end; ++i) {
      const double v = points[(*indices)[i]][f];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > 1e-12) {
      feature = f;
      break;
    }
  }
  if (feature < 0) return node_index;  // unsplittable leaf

  const double split = rng->Uniform(lo, hi);
  auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end,
      [&](int idx) { return points[idx][feature] < split; });
  const int mid = static_cast<int>(mid_it - indices->begin());
  if (mid == begin || mid == end) return node_index;  // degenerate split

  tree->nodes[node_index].feature = feature;
  tree->nodes[node_index].split = split;
  const int left =
      BuildNode(tree, indices, begin, mid, depth + 1, max_depth, points, rng);
  tree->nodes[node_index].left = left;
  const int right =
      BuildNode(tree, indices, mid, end, depth + 1, max_depth, points, rng);
  tree->nodes[node_index].right = right;
  return node_index;
}

void Iforest::FitOnPoints(const std::vector<std::vector<double>>& points) {
  Rng rng(options_.seed);
  const int n = static_cast<int>(points.size());
  const int psi = std::min(options_.subsample, n);
  const int max_depth =
      static_cast<int>(std::ceil(std::log2(std::max(2, psi))));
  c_norm_ = AveragePathLength(psi);
  n_features_ = static_cast<int>(points[0].size());

  trees_.clear();
  trees_.reserve(options_.n_trees);
  for (int t = 0; t < options_.n_trees; ++t) {
    std::vector<int> sample = rng.SampleWithoutReplacement(n, psi);
    Tree tree;
    BuildNode(&tree, &sample, 0, psi, 0, max_depth, points, &rng);
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double Iforest::PathLength(const Tree& tree,
                           const std::vector<double>& point) const {
  int node = 0;
  int depth = 0;
  while (true) {
    const Node& current = tree.nodes[node];
    if (current.feature < 0) {
      return static_cast<double>(depth) + AveragePathLength(current.size);
    }
    node = point[current.feature] < current.split ? current.left
                                                  : current.right;
    ++depth;
  }
}

Status Iforest::FitImpl(const ts::MultivariateSeries& train) {
  if (train.empty()) return Status::InvalidArgument("empty training series");
  FitOnPoints(ToPoints(train));
  return Status::Ok();
}

Result<std::vector<double>> Iforest::ScoreImpl(const ts::MultivariateSeries& test) {
  if (!fitted_) {
    if (test.empty()) return Status::InvalidArgument("empty series");
    FitOnPoints(ToPoints(test));
  }
  if (n_features_ != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const std::vector<std::vector<double>> points = ToPoints(test);
  std::vector<double> scores(points.size(), 0.0);
  for (size_t t = 0; t < points.size(); ++t) {
    double total = 0.0;
    for (const Tree& tree : trees_) total += PathLength(tree, points[t]);
    const double mean = total / static_cast<double>(trees_.size());
    scores[t] = std::pow(2.0, -mean / std::max(c_norm_, 1e-9));
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
