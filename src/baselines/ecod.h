// ECOD — unsupervised outlier detection via Empirical Cumulative
// distribution functions (Li et al., TKDE 2022).
//
// Per sensor, the left and right empirical tail probabilities of each
// reading are turned into dimension-wise outlier scores
//   O_left = -log F(x),  O_right = -log (1 - F(x^-)),
// with a skewness-directed automatic choice per dimension; the final score
// is max(sum O_left, sum O_right, sum O_auto) over sensors. ECOD is one of
// the two baselines (with RCoders) that can attribute anomalies to sensors
// (Table IV), which SensorScores() exposes as the per-sensor O_auto.
#ifndef CAD_BASELINES_ECOD_H_
#define CAD_BASELINES_ECOD_H_

#include "baselines/detector.h"
#include "stats/ecdf.h"

namespace cad::baselines {

class Ecod : public Detector {
 public:
  std::string name() const override { return "ECOD"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

  bool provides_sensor_scores() const override { return true; }
  [[nodiscard]] Result<std::vector<std::vector<double>>> SensorScores(
      const ts::MultivariateSeries& test) override;

 private:
  [[nodiscard]] Status EnsureFitted(const ts::MultivariateSeries& fallback);
  // Per-sensor dimension scores [sensor][t]: the skewness-directed O_auto.
  [[nodiscard]] Result<std::vector<std::vector<double>>> DimensionScores(
      const ts::MultivariateSeries& test) const;

  bool fitted_ = false;
  std::vector<stats::Ecdf> ecdf_;   // per sensor
  std::vector<double> skewness_;    // per sensor
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_ECOD_H_
