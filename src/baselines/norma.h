// NormA (Boniol et al., VLDBJ 2021): builds a weighted "normal model" of
// recurring subsequence patterns, then scores each subsequence by its
// weighted distance to the model's patterns.
//
// Following the paper's setup: the pattern length l comes from the ACF and
// the normal-model length is 4*l. Model construction samples candidate
// subsequences and clusters them with Euclidean k-means on z-normalized
// shapes; each pattern's weight combines its frequency (cluster size) and
// coherence (inverse intra-cluster spread). Stochastic through the
// candidate sampling and seeding.
#ifndef CAD_BASELINES_NORMA_H_
#define CAD_BASELINES_NORMA_H_

#include <cstdint>

#include "baselines/univariate.h"

namespace cad::baselines {

struct NormaOptions {
  int pattern_length = 0;  // 0 = estimate from ACF; model length = 4*l
  int n_candidates = 80;   // sampled candidate subsequences
  int n_clusters = 4;      // normal-model patterns
  int max_iterations = 8;
  uint64_t seed = 13;
};

class Norma : public UnivariateDetector {
 public:
  explicit Norma(const NormaOptions& options = {}) : options_(options) {}

  std::string name() const override { return "NormA"; }
  bool deterministic() const override { return false; }

  std::vector<double> ScoreSeries(std::span<const double> train,
                                  std::span<const double> test) override;

 private:
  NormaOptions options_;
};

std::unique_ptr<Detector> MakeNormaEnsemble(const NormaOptions& options = {});

}  // namespace cad::baselines

#endif  // CAD_BASELINES_NORMA_H_
