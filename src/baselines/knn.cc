#include "baselines/knn.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

namespace {

std::vector<std::vector<double>> ToPoints(const ts::MultivariateSeries& series,
                                          const ts::Scaler& scaler) {
  const ts::MultivariateSeries scaled = ts::Apply(scaler, series);
  std::vector<std::vector<double>> points(scaled.length());
  for (int t = 0; t < scaled.length(); ++t) {
    points[t].resize(scaled.n_sensors());
    for (int i = 0; i < scaled.n_sensors(); ++i) {
      points[t][i] = scaled.value(i, t);
    }
  }
  return points;
}

}  // namespace

Status KnnDetector::FitImpl(const ts::MultivariateSeries& train) {
  if (train.length() <= options_.k) {
    return Status::InvalidArgument("kNN needs more training points than k");
  }
  scaler_ = ts::FitZScore(train);
  reference_ = ToPoints(train, scaler_);
  if (options_.max_train_points > 0 &&
      static_cast<int>(reference_.size()) > options_.max_train_points) {
    const double stride =
        static_cast<double>(reference_.size()) / options_.max_train_points;
    std::vector<std::vector<double>> sampled;
    sampled.reserve(options_.max_train_points);
    for (int i = 0; i < options_.max_train_points; ++i) {
      sampled.push_back(reference_[static_cast<size_t>(i * stride)]);
    }
    reference_ = std::move(sampled);
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> KnnDetector::ScoreImpl(
    const ts::MultivariateSeries& test) {
  if (!fitted_) {
    CAD_RETURN_NOT_OK(Fit(test));  // unsupervised fallback
  }
  if (static_cast<int>(scaler_.offset.size()) != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const std::vector<std::vector<double>> points = ToPoints(test, scaler_);
  std::vector<double> scores(points.size(), 0.0);
  std::vector<double> distances;
  for (size_t t = 0; t < points.size(); ++t) {
    distances.clear();
    distances.reserve(reference_.size());
    for (const std::vector<double>& ref : reference_) {
      double d = 0.0;
      for (size_t i = 0; i < ref.size(); ++i) {
        const double diff = points[t][i] - ref[i];
        d += diff * diff;
      }
      distances.push_back(d);
    }
    const int k = std::min<int>(options_.k,
                                static_cast<int>(distances.size()) - 1);
    std::nth_element(distances.begin(), distances.begin() + k,
                     distances.end());
    scores[t] = std::sqrt(distances[k]);
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
