#include "baselines/lof.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

// Indices and distances of the k nearest points to `query` among `points`,
// excluding index `skip` (-1 to keep all), sorted by ascending distance.
struct NeighborList {
  std::vector<int> index;
  std::vector<double> distance;
};

NeighborList KNearest(const std::vector<std::vector<double>>& points,
                      const std::vector<double>& query, int k, int skip) {
  std::vector<std::pair<double, int>> all;
  all.reserve(points.size());
  for (int i = 0; i < static_cast<int>(points.size()); ++i) {
    if (i == skip) continue;
    all.emplace_back(SquaredDistance(points[i], query), i);
  }
  const int take = std::min<int>(k, static_cast<int>(all.size()));
  std::partial_sort(all.begin(), all.begin() + take, all.end());
  NeighborList out;
  out.index.reserve(take);
  out.distance.reserve(take);
  for (int i = 0; i < take; ++i) {
    out.index.push_back(all[i].second);
    out.distance.push_back(std::sqrt(all[i].first));
  }
  return out;
}

std::vector<std::vector<double>> ToPoints(const ts::MultivariateSeries& series,
                                          const ts::Scaler& scaler) {
  const ts::MultivariateSeries scaled = ts::Apply(scaler, series);
  std::vector<std::vector<double>> points(scaled.length());
  for (int t = 0; t < scaled.length(); ++t) {
    points[t].resize(scaled.n_sensors());
    for (int i = 0; i < scaled.n_sensors(); ++i) {
      points[t][i] = scaled.value(i, t);
    }
  }
  return points;
}

}  // namespace

void Lof::FitOnPoints(const std::vector<std::vector<double>>& points) {
  train_points_ = points;
  if (options_.max_train_points > 0 &&
      static_cast<int>(train_points_.size()) > options_.max_train_points) {
    // Deterministic stride subsampling preserves the temporal spread.
    const double stride = static_cast<double>(train_points_.size()) /
                          options_.max_train_points;
    std::vector<std::vector<double>> sampled;
    sampled.reserve(options_.max_train_points);
    for (int i = 0; i < options_.max_train_points; ++i) {
      sampled.push_back(train_points_[static_cast<size_t>(i * stride)]);
    }
    train_points_ = std::move(sampled);
  }

  const int n = static_cast<int>(train_points_.size());
  std::vector<NeighborList> neighbors(n);
  k_distance_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    neighbors[i] = KNearest(train_points_, train_points_[i], options_.k, i);
    k_distance_[i] =
        neighbors[i].distance.empty() ? 0.0 : neighbors[i].distance.back();
  }

  // Local reachability density: lrd(p) = 1 / mean_o reach-dist_k(p, o).
  lrd_.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const NeighborList& nb = neighbors[i];
    if (nb.index.empty()) {
      lrd_[i] = 0.0;
      continue;
    }
    double sum = 0.0;
    for (size_t j = 0; j < nb.index.size(); ++j) {
      sum += std::max(k_distance_[nb.index[j]], nb.distance[j]);
    }
    const double mean = sum / static_cast<double>(nb.index.size());
    lrd_[i] = mean > 1e-12 ? 1.0 / mean : 1e12;
  }
  fitted_ = true;
}

Status Lof::FitImpl(const ts::MultivariateSeries& train) {
  if (train.length() <= options_.k) {
    return Status::InvalidArgument("LOF needs more training points than k");
  }
  scaler_ = ts::FitZScore(train);
  FitOnPoints(ToPoints(train, scaler_));
  return Status::Ok();
}

Result<std::vector<double>> Lof::ScoreImpl(const ts::MultivariateSeries& test) {
  if (!fitted_) {
    // Unsupervised fallback: fit on the test series itself.
    if (test.length() <= options_.k) {
      return Status::InvalidArgument("series shorter than k");
    }
    scaler_ = ts::FitZScore(test);
    FitOnPoints(ToPoints(test, scaler_));
  }
  if (static_cast<int>(scaler_.offset.size()) != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }

  const std::vector<std::vector<double>> points = ToPoints(test, scaler_);
  std::vector<double> scores(points.size(), 0.0);
  for (size_t t = 0; t < points.size(); ++t) {
    const NeighborList nb = KNearest(train_points_, points[t], options_.k, -1);
    if (nb.index.empty()) continue;
    double reach_sum = 0.0;
    double lrd_sum = 0.0;
    for (size_t j = 0; j < nb.index.size(); ++j) {
      reach_sum += std::max(k_distance_[nb.index[j]], nb.distance[j]);
      lrd_sum += lrd_[nb.index[j]];
    }
    const double count = static_cast<double>(nb.index.size());
    const double mean_reach = reach_sum / count;
    const double lrd_p = mean_reach > 1e-12 ? 1.0 / mean_reach : 1e12;
    scores[t] = (lrd_sum / count) / lrd_p;  // classic LOF ratio
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
