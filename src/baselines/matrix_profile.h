// Matrix Profile discord detection (Yeh et al., ICDM 2016 — reference [85]
// of the paper), computed with the STOMP O(T^2) recurrence: every
// subsequence's z-normalized distance to its nearest non-trivial neighbour.
// Discords (subsequences far from everything else) are anomalies; the
// profile value is the anomaly score. Deterministic.
#ifndef CAD_BASELINES_MATRIX_PROFILE_H_
#define CAD_BASELINES_MATRIX_PROFILE_H_

#include "baselines/univariate.h"

namespace cad::baselines {

struct MatrixProfileOptions {
  // Subsequence length m; 0 = estimate from the ACF (like SAND / NormA).
  int subsequence_length = 0;
};

// Self-join matrix profile of `x` with subsequence length m and the standard
// m/2 exclusion zone. Returns T - m + 1 nearest-neighbour distances.
std::vector<double> SelfJoinMatrixProfile(std::span<const double> x, int m);

class MatrixProfileDetector : public UnivariateDetector {
 public:
  explicit MatrixProfileDetector(const MatrixProfileOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "MP"; }
  bool deterministic() const override { return true; }

  std::vector<double> ScoreSeries(std::span<const double> train,
                                  std::span<const double> test) override;

 private:
  MatrixProfileOptions options_;
};

std::unique_ptr<Detector> MakeMatrixProfileEnsemble(
    const MatrixProfileOptions& options = {});

}  // namespace cad::baselines

#endif  // CAD_BASELINES_MATRIX_PROFILE_H_
