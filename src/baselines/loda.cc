#include "baselines/loda.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace cad::baselines {

namespace {
constexpr double kDensityFloor = 1e-4;
}  // namespace

double Loda::Project(const Projection& projection,
                     const ts::MultivariateSeries& scaled, int t) const {
  double value = 0.0;
  for (size_t k = 0; k < projection.index.size(); ++k) {
    value += projection.weight[k] * scaled.value(projection.index[k], t);
  }
  return value;
}

Status Loda::FitImpl(const ts::MultivariateSeries& train) {
  if (train.empty()) return Status::InvalidArgument("empty training series");
  const int n = train.n_sensors();
  scaler_ = ts::FitZScore(train);
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, train);

  Rng rng(options_.seed);
  const int nonzeros = std::max(1, static_cast<int>(std::sqrt(n)));
  projections_.assign(options_.n_projections, {});
  for (Projection& projection : projections_) {
    projection.index = rng.SampleWithoutReplacement(n, nonzeros);
    std::sort(projection.index.begin(), projection.index.end());
    projection.weight.resize(nonzeros);
    for (double& w : projection.weight) w = rng.Gaussian();

    // Histogram over the projected training values.
    std::vector<double> values(scaled.length());
    for (int t = 0; t < scaled.length(); ++t) {
      values[t] = Project(projection, scaled, t);
    }
    auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
    projection.lo = *lo_it;
    const double span = *hi_it - *lo_it;
    projection.width = span > 1e-12 ? span / options_.n_bins : 1.0;
    projection.density.assign(options_.n_bins, 0.0);
    for (double v : values) {
      int bin = static_cast<int>((v - projection.lo) / projection.width);
      bin = std::clamp(bin, 0, options_.n_bins - 1);
      projection.density[bin] += 1.0;
    }
    for (double& d : projection.density) {
      d /= static_cast<double>(scaled.length());
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> Loda::ScoreImpl(const ts::MultivariateSeries& test) {
  if (!fitted_) {
    CAD_RETURN_NOT_OK(Fit(test));
  }
  if (static_cast<int>(scaler_.offset.size()) != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, test);
  std::vector<double> scores(test.length(), 0.0);
  for (const Projection& projection : projections_) {
    for (int t = 0; t < test.length(); ++t) {
      const double v = Project(projection, scaled, t);
      const int bin = static_cast<int>((v - projection.lo) / projection.width);
      double density = kDensityFloor;
      if (bin >= 0 && bin < options_.n_bins) {
        density = std::max(projection.density[bin], kDensityFloor);
      }
      scores[t] += -std::log(density);
    }
  }
  for (double& v : scores) v /= static_cast<double>(projections_.size());
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
