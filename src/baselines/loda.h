// LODA — Lightweight On-line Detector of Anomalies (Pevný, Machine Learning
// 2016, reference [67] of the paper): an ensemble of sparse random
// one-dimensional projections, each with a histogram density fitted on the
// training data; a point's score is the mean negative log density across
// projections. Stochastic through the projection draw.
#ifndef CAD_BASELINES_LODA_H_
#define CAD_BASELINES_LODA_H_

#include <cstdint>

#include "baselines/detector.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct LodaOptions {
  int n_projections = 50;
  int n_bins = 30;
  uint64_t seed = 17;
};

class Loda : public Detector {
 public:
  explicit Loda(const LodaOptions& options = {}) : options_(options) {}

  std::string name() const override { return "LODA"; }
  bool deterministic() const override { return false; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  struct Projection {
    std::vector<int> index;      // sparse non-zero coordinates
    std::vector<double> weight;  // Gaussian weights
    double lo = 0.0;
    double width = 1.0;
    std::vector<double> density;  // normalized histogram
  };

  double Project(const Projection& projection,
                 const ts::MultivariateSeries& scaled, int t) const;

  LodaOptions options_;
  bool fitted_ = false;
  ts::Scaler scaler_;
  std::vector<Projection> projections_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_LODA_H_
