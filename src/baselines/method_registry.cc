#include "baselines/method_registry.h"

#include "baselines/cad_adapter.h"
#include "baselines/copod.h"
#include "baselines/ecod.h"
#include "baselines/hbos.h"
#include "baselines/iforest.h"
#include "baselines/knn.h"
#include "baselines/loda.h"
#include "baselines/lof.h"
#include "baselines/matrix_profile.h"
#include "baselines/norma.h"
#include "baselines/pca_detector.h"
#include "baselines/rcoders.h"
#include "baselines/s2g.h"
#include "baselines/sand.h"
#include "baselines/usad.h"
#include "check/check.h"

namespace cad::baselines {

std::vector<std::string> AllMethodNames() {
  return {"CAD",     "LOF",  "ECOD", "IForest", "USAD",
          "RCoders", "S2G",  "SAND", "SAND*",   "NormA"};
}

std::vector<std::string> ExtendedMethodNames() {
  std::vector<std::string> names = AllMethodNames();
  for (const char* extra : {"kNN", "HBOS", "COPOD", "PCA", "LODA", "MP"}) {
    names.push_back(extra);
  }
  return names;
}

std::unique_ptr<Detector> MakeMethod(const std::string& name,
                                     const core::CadOptions& cad_options,
                                     uint64_t seed) {
  if (name == "CAD") return std::make_unique<CadAdapter>(cad_options);
  if (name == "LOF") return std::make_unique<Lof>();
  if (name == "ECOD") return std::make_unique<Ecod>();
  if (name == "IForest") {
    IforestOptions options;
    options.seed = seed;
    return std::make_unique<Iforest>(options);
  }
  if (name == "USAD") {
    UsadOptions options;
    options.seed = seed;
    return std::make_unique<Usad>(options);
  }
  if (name == "RCoders") {
    RcodersOptions options;
    options.seed = seed;
    return std::make_unique<Rcoders>(options);
  }
  if (name == "S2G") return MakeS2gEnsemble();
  if (name == "SAND") {
    SandOptions options;
    options.seed = seed;
    return MakeSandEnsemble(options);
  }
  if (name == "SAND*") {
    SandOptions options;
    options.seed = seed;
    return MakeSandStarEnsemble(options);
  }
  if (name == "NormA") {
    NormaOptions options;
    options.seed = seed;
    return MakeNormaEnsemble(options);
  }
  if (name == "kNN") return std::make_unique<KnnDetector>();
  if (name == "HBOS") return std::make_unique<Hbos>();
  if (name == "COPOD") return std::make_unique<Copod>();
  if (name == "PCA") return std::make_unique<PcaDetector>();
  if (name == "LODA") {
    LodaOptions options;
    options.seed = seed;
    return std::make_unique<Loda>(options);
  }
  if (name == "MP") return MakeMatrixProfileEnsemble();
  // CAD_FATAL (unlike CAD_CHECK(false, ...)) survives every check level, so
  // this path never falls through to a missing return.
  CAD_FATAL("unknown method '", name, "'");
}

}  // namespace cad::baselines
