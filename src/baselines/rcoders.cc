#include "baselines/rcoders.h"

#include <algorithm>

namespace cad::baselines {

namespace {

// Flattens window [start, start + w) time-major: sample t's sensors adjacent.
std::vector<double> Flatten(const ts::MultivariateSeries& scaled, int start,
                            int w) {
  std::vector<double> window;
  window.reserve(static_cast<size_t>(w) * scaled.n_sensors());
  for (int t = start; t < start + w; ++t) {
    for (int i = 0; i < scaled.n_sensors(); ++i) {
      window.push_back(scaled.value(i, t));
    }
  }
  return window;
}

}  // namespace

Status Rcoders::FitImpl(const ts::MultivariateSeries& train) {
  if (train.length() < options_.window * 2) {
    return Status::InvalidArgument("training series shorter than two windows");
  }
  n_sensors_ = train.n_sensors();
  scaler_ = ts::FitMinMax(train);
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, train);

  const int input = options_.window * n_sensors_;
  Rng rng(options_.seed);
  nn::MlpOptions mlp;
  mlp.layer_sizes = {input, options_.hidden, options_.latent, options_.hidden,
                     input};
  mlp.output_activation = nn::Activation::kSigmoid;
  mlp.learning_rate = options_.learning_rate;
  autoencoder_ = std::make_unique<nn::Mlp>(mlp, &rng);

  const int total_positions = train.length() - options_.window + 1;
  const int stride =
      std::max(1, total_positions / std::max(1, options_.max_train_windows));
  std::vector<int> starts;
  for (int start = 0; start + options_.window <= train.length();
       start += stride) {
    starts.push_back(start);
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&starts);
    for (int start : starts) {
      const std::vector<double> window = Flatten(scaled, start, options_.window);
      autoencoder_->TrainStep(window, window);
    }
  }
  return Status::Ok();
}

Result<std::vector<std::vector<double>>> Rcoders::ReconstructionErrors(
    const ts::MultivariateSeries& test) {
  if (autoencoder_ == nullptr) {
    return Status::FailedPrecondition("RCoders requires Fit before Score");
  }
  if (test.n_sensors() != n_sensors_) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, test);
  std::vector<std::vector<double>> errors(
      n_sensors_, std::vector<double>(test.length(), 0.0));
  std::vector<int> coverage(test.length(), 0);

  const int w = options_.window;
  for (int start = 0; start + w <= test.length(); ++start) {
    const std::vector<double> window = Flatten(scaled, start, w);
    const std::vector<double> recon = autoencoder_->Forward(window);
    for (int dt = 0; dt < w; ++dt) {
      const int t = start + dt;
      for (int i = 0; i < n_sensors_; ++i) {
        const double d = window[static_cast<size_t>(dt) * n_sensors_ + i] -
                         recon[static_cast<size_t>(dt) * n_sensors_ + i];
        errors[i][t] += d * d;
      }
    }
    for (int dt = 0; dt < w; ++dt) ++coverage[start + dt];
  }
  for (int t = 0; t < test.length(); ++t) {
    if (coverage[t] == 0) continue;
    for (int i = 0; i < n_sensors_; ++i) {
      errors[i][t] /= static_cast<double>(coverage[t]);
    }
  }
  return errors;
}

Result<std::vector<double>> Rcoders::ScoreImpl(const ts::MultivariateSeries& test) {
  Result<std::vector<std::vector<double>>> errors = ReconstructionErrors(test);
  if (!errors.ok()) return errors.status();
  std::vector<double> scores(test.length(), 0.0);
  for (const std::vector<double>& sensor_errors : errors.value()) {
    for (int t = 0; t < test.length(); ++t) scores[t] += sensor_errors[t];
  }
  for (double& v : scores) v /= static_cast<double>(n_sensors_);
  MinMaxNormalize(&scores);
  return scores;
}

Result<std::vector<std::vector<double>>> Rcoders::SensorScores(
    const ts::MultivariateSeries& test) {
  Result<std::vector<std::vector<double>>> errors = ReconstructionErrors(test);
  if (!errors.ok()) return errors.status();
  std::vector<std::vector<double>> scores = std::move(errors).value();
  for (std::vector<double>& row : scores) MinMaxNormalize(&row);
  return scores;
}

}  // namespace cad::baselines
