// kNN distance-based outlier detection (Ramaswamy, Rastogi & Shim, SIGMOD
// 2000 — reference [69] of the paper): a point's anomaly score is its
// distance to its k-th nearest neighbour in the (training) reference set.
#ifndef CAD_BASELINES_KNN_H_
#define CAD_BASELINES_KNN_H_

#include "baselines/detector.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct KnnDetectorOptions {
  int k = 10;
  int max_train_points = 6000;  // stride-subsampling cap (0 = unlimited)
};

class KnnDetector : public Detector {
 public:
  explicit KnnDetector(const KnnDetectorOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "kNN"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  KnnDetectorOptions options_;
  ts::Scaler scaler_;
  bool fitted_ = false;
  std::vector<std::vector<double>> reference_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_KNN_H_
