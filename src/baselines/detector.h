// Common interface for all anomaly detectors compared in the paper's
// evaluation (Section VI-A): three data-mining methods (LOF, ECOD, IForest),
// two deep reconstruction methods (USAD, RCoders), four univariate methods
// lifted to MTS (S2G, SAND, SAND*, NormA) and CAD itself via an adapter.
//
// Contract: Fit() consumes the training/historical split (it may be a no-op
// for methods that fit on the test data like the paper's unsupervised
// univariate methods); Score() returns one anomaly score per test time
// point, min-max normalized into [0, 1] (higher = more abnormal), ready for
// the evaluation stack's threshold grid search.
#ifndef CAD_BASELINES_DETECTOR_H_
#define CAD_BASELINES_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ts/multivariate_series.h"

namespace cad::baselines {

class Detector {
 public:
  virtual ~Detector() = default;

  virtual std::string name() const = 0;

  // Whether repeated runs produce identical scores (Table VIII groups
  // methods by this).
  virtual bool deterministic() const = 0;

  // Trains / fits on the historical split (no-op for methods that need no
  // training data). Non-virtual: wraps FitImpl in an obs::Span
  // ("fit", method label) and records the duration into the global
  // cad_detector_fit_seconds histogram, so all methods are observed
  // uniformly regardless of implementation.
  [[nodiscard]] Status Fit(const ts::MultivariateSeries& train);

  // Scores every time point of `test` in [0, 1]. Non-virtual wrapper over
  // ScoreImpl, instrumented like Fit (cad_detector_score_seconds).
  [[nodiscard]] Result<std::vector<double>> Score(const ts::MultivariateSeries& test);

  // Sensor-level attribution: scores_per_sensor[i][t] in [0, 1]. Only ECOD
  // and RCoders provide this in the paper (Table IV's F1_sensor comparison);
  // the default reports non-support.
  virtual bool provides_sensor_scores() const { return false; }
  [[nodiscard]] virtual Result<std::vector<std::vector<double>>> SensorScores(
      const ts::MultivariateSeries& test) {
    (void)test;
    return Status::FailedPrecondition(name() +
                                      " does not provide sensor scores");
  }

 protected:
  // The actual method implementations, supplied by each detector.
  [[nodiscard]] virtual Status FitImpl(const ts::MultivariateSeries& train) = 0;
  [[nodiscard]] virtual Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) = 0;
};

// Min-max normalizes raw scores into [0, 1] in place; a constant score
// vector maps to all zeros.
void MinMaxNormalize(std::vector<double>* scores);

}  // namespace cad::baselines

#endif  // CAD_BASELINES_DETECTOR_H_
