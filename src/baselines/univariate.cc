#include "baselines/univariate.h"

#include "check/check.h"

namespace cad::baselines {

Result<std::vector<double>> UnivariateEnsemble::ScoreImpl(
    const ts::MultivariateSeries& test) {
  if (test.empty()) return Status::InvalidArgument("empty series");
  if (train_.length() > 0 && train_.n_sensors() != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  std::vector<double> mean_scores(test.length(), 0.0);
  for (int i = 0; i < test.n_sensors(); ++i) {
    std::unique_ptr<UnivariateDetector> detector = factory_(i);
    const std::span<const double> history =
        train_.length() > 0 ? train_.sensor(i) : std::span<const double>{};
    std::vector<double> scores = detector->ScoreSeries(history, test.sensor(i));
    CAD_CHECK(scores.size() == static_cast<size_t>(test.length()),
              "univariate detector returned wrong score length");
    for (int t = 0; t < test.length(); ++t) mean_scores[t] += scores[t];
  }
  for (double& v : mean_scores) v /= static_cast<double>(test.n_sensors());
  MinMaxNormalize(&mean_scores);
  return mean_scores;
}

}  // namespace cad::baselines
