#include "baselines/detector.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/pipeline_metrics.h"
#include "obs/trace.h"

namespace cad::baselines {

namespace {

// Fit/Score instrumentation shared by every detector (all nine baselines
// plus the CAD adapter and ensembles): one span per call, labelled with the
// method name, and aggregate duration histograms + call counters in the
// global registry. Per-method latency breakdowns live in the trace (span
// arg "method"); the registry keeps method-agnostic aggregates.
struct DetectorMetrics {
  obs::Counter* fit_total;
  obs::Counter* score_total;
  obs::Histogram* fit_seconds;
  obs::Histogram* score_seconds;

  static const DetectorMetrics& Get() {
    static const DetectorMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::Global();
      return DetectorMetrics{
          &registry.counter("cad_detector_fit_total",
                            "Detector::Fit calls across all methods"),
          &registry.counter("cad_detector_score_total",
                            "Detector::Score calls across all methods"),
          &registry.histogram("cad_detector_fit_seconds", {},
                              "Detector::Fit latency across all methods"),
          &registry.histogram("cad_detector_score_seconds", {},
                              "Detector::Score latency across all methods")};
    }();
    return metrics;
  }
};

}  // namespace

Status Detector::Fit(const ts::MultivariateSeries& train) {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.fit_total->Increment();
  obs::Span span(obs::Tracer::Global(), "fit");
  if (span.active()) span.AddArg("method", name());
  obs::ScopedHistogramTimer timer(metrics.fit_seconds);
  return FitImpl(train);
}

Result<std::vector<double>> Detector::Score(const ts::MultivariateSeries& test) {
  const DetectorMetrics& metrics = DetectorMetrics::Get();
  metrics.score_total->Increment();
  obs::Span span(obs::Tracer::Global(), "score");
  if (span.active()) span.AddArg("method", name());
  obs::ScopedHistogramTimer timer(metrics.score_seconds);
  return ScoreImpl(test);
}

void MinMaxNormalize(std::vector<double>* scores) {
  if (scores->empty()) return;
  auto [lo_it, hi_it] = std::minmax_element(scores->begin(), scores->end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12) {
    std::fill(scores->begin(), scores->end(), 0.0);
    return;
  }
  const double inv = 1.0 / (hi - lo);
  for (double& v : *scores) v = (v - lo) * inv;
}

}  // namespace cad::baselines
