#include "baselines/detector.h"

#include <algorithm>

namespace cad::baselines {

void MinMaxNormalize(std::vector<double>* scores) {
  if (scores->empty()) return;
  auto [lo_it, hi_it] = std::minmax_element(scores->begin(), scores->end());
  const double lo = *lo_it, hi = *hi_it;
  if (hi - lo < 1e-12) {
    std::fill(scores->begin(), scores->end(), 0.0);
    return;
  }
  const double inv = 1.0 / (hi - lo);
  for (double& v : *scores) v = (v - lo) * inv;
}

}  // namespace cad::baselines
