#include "baselines/hbos.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

namespace {
// Density floor for empty / out-of-range bins so -log stays finite; one
// order below a single-sample bin at typical training sizes.
constexpr double kDensityFloor = 1e-4;
}  // namespace

Status Hbos::FitImpl(const ts::MultivariateSeries& train) {
  if (train.empty()) return Status::InvalidArgument("empty training series");
  histograms_.assign(train.n_sensors(), {});
  for (int i = 0; i < train.n_sensors(); ++i) {
    auto x = train.sensor(i);
    auto [lo_it, hi_it] = std::minmax_element(x.begin(), x.end());
    Histogram& hist = histograms_[i];
    hist.lo = *lo_it;
    const double span = *hi_it - *lo_it;
    hist.width = span > 1e-12 ? span / options_.n_bins : 1.0;
    hist.density.assign(options_.n_bins, 0.0);
    for (double v : x) {
      int bin = static_cast<int>((v - hist.lo) / hist.width);
      bin = std::clamp(bin, 0, options_.n_bins - 1);
      hist.density[bin] += 1.0;
    }
    const double peak =
        *std::max_element(hist.density.begin(), hist.density.end());
    if (peak > 0.0) {
      for (double& d : hist.density) d /= peak;
    }
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> Hbos::ScoreImpl(const ts::MultivariateSeries& test) {
  if (!fitted_) {
    CAD_RETURN_NOT_OK(Fit(test));  // unsupervised fallback
  }
  if (static_cast<int>(histograms_.size()) != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  std::vector<double> scores(test.length(), 0.0);
  for (int i = 0; i < test.n_sensors(); ++i) {
    const Histogram& hist = histograms_[i];
    auto x = test.sensor(i);
    for (int t = 0; t < test.length(); ++t) {
      const int bin = static_cast<int>((x[t] - hist.lo) / hist.width);
      double density = kDensityFloor;  // out of range = maximally surprising
      if (bin >= 0 && bin < options_.n_bins) {
        density = std::max(hist.density[bin], kDensityFloor);
      }
      scores[t] += std::log(1.0 / density);
    }
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
