#include "baselines/norma.h"

#include <algorithm>
#include <cmath>

#include "baselines/subsequence.h"
#include "common/rng.h"
#include "stats/autocorrelation.h"

namespace cad::baselines {

namespace {

struct NormalModel {
  std::vector<std::vector<double>> patterns;
  std::vector<double> weights;  // normalized to sum 1
};

NormalModel BuildModel(std::span<const double> reference, int length,
                       const NormaOptions& options, cad::Rng* rng) {
  NormalModel model;
  const int n_positions = static_cast<int>(reference.size()) - length + 1;
  if (n_positions <= 0) return model;

  // Sample candidate subsequences at random offsets.
  const int n_candidates = std::min(options.n_candidates, n_positions);
  std::vector<std::vector<double>> candidates;
  candidates.reserve(n_candidates);
  for (int i = 0; i < n_candidates; ++i) {
    const int start = static_cast<int>(
        rng->NextBounded(static_cast<uint64_t>(n_positions)));
    std::vector<double> sub(reference.begin() + start,
                            reference.begin() + start + length);
    ZNormalize(&sub);
    candidates.push_back(std::move(sub));
  }

  // Euclidean k-means on the z-normalized candidates.
  const int k = std::min<int>(options.n_clusters,
                              static_cast<int>(candidates.size()));
  std::vector<int> seeds = rng->SampleWithoutReplacement(
      static_cast<int>(candidates.size()), k);
  for (int idx : seeds) model.patterns.push_back(candidates[idx]);

  std::vector<int> assignment(candidates.size(), 0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t s = 0; s < candidates.size(); ++s) {
      double best = 1e18;
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d = SquaredEuclidean(candidates[s], model.patterns[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assignment[s] != best_c) changed = true;
      assignment[s] = best_c;
    }
    std::vector<std::vector<double>> sums(k, std::vector<double>(length, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t s = 0; s < candidates.size(); ++s) {
      for (int i = 0; i < length; ++i) sums[assignment[s]][i] += candidates[s][i];
      ++counts[assignment[s]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (int i = 0; i < length; ++i) {
        sums[c][i] /= static_cast<double>(counts[c]);
      }
      ZNormalize(&sums[c]);
      model.patterns[c] = std::move(sums[c]);
    }
    if (!changed && iter > 0) break;
  }

  // Weights: frequency x coherence.
  model.weights.assign(k, 0.0);
  std::vector<double> spread(k, 0.0);
  std::vector<int> counts(k, 0);
  for (size_t s = 0; s < candidates.size(); ++s) {
    spread[assignment[s]] +=
        std::sqrt(SquaredEuclidean(candidates[s], model.patterns[assignment[s]]));
    ++counts[assignment[s]];
  }
  double total = 0.0;
  for (int c = 0; c < k; ++c) {
    const double mean_spread =
        counts[c] > 0 ? spread[c] / static_cast<double>(counts[c]) : 1.0;
    model.weights[c] = static_cast<double>(counts[c]) / (1.0 + mean_spread);
    total += model.weights[c];
  }
  if (total > 0.0) {
    for (double& w : model.weights) w /= total;
  }
  return model;
}

}  // namespace

std::vector<double> Norma::ScoreSeries(std::span<const double> train,
                                       std::span<const double> test) {
  cad::Rng rng(options_.seed);
  int l = options_.pattern_length;
  if (l <= 0) {
    const int max_lag = std::min<int>(256, static_cast<int>(test.size()) / 3);
    l = cad::stats::EstimateDominantPeriod(test, 4, max_lag, 0.1, 25);
  }
  const int length =
      std::clamp(4 * l, 8, std::max(8, static_cast<int>(test.size()) / 4));
  const int stride = std::max(1, length / 4);

  // Normal model from the history when present, else the test series itself.
  const std::span<const double> reference = train.empty() ? test : train;
  const NormalModel model = BuildModel(reference, length, options_, &rng);
  if (model.patterns.empty()) {
    return std::vector<double>(test.size(), 0.0);
  }

  std::vector<std::vector<double>> subs =
      ExtractSubsequences(test, length, stride);
  std::vector<double> sub_scores(subs.size(), 0.0);
  for (size_t s = 0; s < subs.size(); ++s) {
    ZNormalize(&subs[s]);
    // Weighted sum of distances to the normal-model patterns.
    double score = 0.0;
    for (size_t c = 0; c < model.patterns.size(); ++c) {
      score += model.weights[c] *
               std::sqrt(SquaredEuclidean(subs[s], model.patterns[c]));
    }
    sub_scores[s] = score;
  }

  std::vector<double> scores = SpreadSubsequenceScores(
      sub_scores, length, stride, static_cast<int>(test.size()));
  MinMaxNormalize(&scores);
  return scores;
}

std::unique_ptr<Detector> MakeNormaEnsemble(const NormaOptions& options) {
  return std::make_unique<UnivariateEnsemble>(
      "NormA", /*deterministic=*/false, [options](int sensor) {
        NormaOptions per_sensor = options;
        per_sensor.seed = options.seed + static_cast<uint64_t>(sensor) * 131;
        return std::make_unique<Norma>(per_sensor);
      });
}

}  // namespace cad::baselines
