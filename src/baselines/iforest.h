// IForest — Isolation Forest (Liu, Ting & Zhou, ICDM 2008).
//
// An ensemble of randomized binary trees isolates each point; anomalies need
// fewer random splits to isolate. Score(x) = 2^(-E[h(x)] / c(psi)) where
// h(x) is the path length in each tree and c(psi) is the average path length
// of an unsuccessful BST search over the subsample size psi. Stochastic:
// repeated runs differ per seed, which Table VIII's min-F1 robustness study
// relies on.
#ifndef CAD_BASELINES_IFOREST_H_
#define CAD_BASELINES_IFOREST_H_

#include <memory>

#include "baselines/detector.h"
#include "common/rng.h"

namespace cad::baselines {

struct IforestOptions {
  int n_trees = 100;
  int subsample = 256;
  uint64_t seed = 7;
};

class Iforest : public Detector {
 public:
  explicit Iforest(const IforestOptions& options = {}) : options_(options) {}

  std::string name() const override { return "IForest"; }
  bool deterministic() const override { return false; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  struct Node {
    int feature = -1;        // -1 marks a leaf
    double split = 0.0;
    int left = -1, right = -1;
    int size = 0;            // points that reached this node while building
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  void FitOnPoints(const std::vector<std::vector<double>>& points);
  int BuildNode(Tree* tree, std::vector<int>* indices, int begin, int end,
                int depth, int max_depth,
                const std::vector<std::vector<double>>& points, Rng* rng);
  double PathLength(const Tree& tree, const std::vector<double>& point) const;

  IforestOptions options_;
  bool fitted_ = false;
  int n_features_ = 0;
  double c_norm_ = 1.0;  // c(psi)
  std::vector<Tree> trees_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_IFOREST_H_
