#include "baselines/sand.h"

#include <algorithm>
#include <cmath>

#include "baselines/subsequence.h"
#include "common/rng.h"
#include "stats/autocorrelation.h"

namespace cad::baselines {

namespace {

struct WeightedModel {
  std::vector<std::vector<double>> centroids;  // z-normalized
  std::vector<double> weights;                 // occurrence mass per centroid
};

// SBD plus the aligning shift (positive shift: b lags a).
struct SbdResult {
  double distance = 2.0;
  int shift = 0;
};

SbdResult SbdWithShift(const std::vector<double>& a,
                       const std::vector<double>& b, int max_shift) {
  const int l = static_cast<int>(a.size());
  SbdResult result;
  double norm_a = 0.0, norm_b = 0.0;
  for (int i = 0; i < l; ++i) {
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  const double denom = std::sqrt(norm_a * norm_b);
  if (denom < 1e-12) return {0.0, 0};
  double best = -1.0;
  for (int shift = -max_shift; shift <= max_shift; ++shift) {
    double dot = 0.0;
    const int begin = std::max(0, shift);
    const int end = std::min(l, l + shift);
    for (int i = begin; i < end; ++i) dot += a[i] * b[i - shift];
    if (dot / denom > best) {
      best = dot / denom;
      result.shift = shift;
    }
  }
  result.distance = 1.0 - best;
  return result;
}

// Shifts `x` by `shift` with zero padding (aligning it onto the centroid).
std::vector<double> Shifted(const std::vector<double>& x, int shift) {
  const int l = static_cast<int>(x.size());
  std::vector<double> out(l, 0.0);
  for (int i = 0; i < l; ++i) {
    const int j = i - shift;
    if (j >= 0 && j < l) out[i] = x[j];
  }
  return out;
}

int MaxShift(int subsequence_length) { return subsequence_length / 4; }

// Clusters z-normalized subsequences into a weighted model (SBD k-means with
// aligned-mean refinement).
WeightedModel ClusterSubsequences(std::vector<std::vector<double>> subs,
                                  int n_clusters, int max_iterations,
                                  cad::Rng* rng) {
  WeightedModel model;
  if (subs.empty()) return model;
  const int l = static_cast<int>(subs[0].size());
  const int k = std::min<int>(n_clusters, static_cast<int>(subs.size()));
  const int shift_cap = MaxShift(l);

  // Random distinct seeds.
  std::vector<int> seed_index =
      rng->SampleWithoutReplacement(static_cast<int>(subs.size()), k);
  for (int idx : seed_index) model.centroids.push_back(subs[idx]);
  model.weights.assign(k, 0.0);

  std::vector<int> assignment(subs.size(), 0);
  std::vector<int> shift(subs.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment.
    bool changed = false;
    for (size_t s = 0; s < subs.size(); ++s) {
      double best = 1e18;
      int best_c = 0, best_shift = 0;
      for (int c = 0; c < k; ++c) {
        const SbdResult r = SbdWithShift(model.centroids[c], subs[s], shift_cap);
        if (r.distance < best) {
          best = r.distance;
          best_c = c;
          best_shift = r.shift;
        }
      }
      if (assignment[s] != best_c) changed = true;
      assignment[s] = best_c;
      shift[s] = best_shift;
    }
    // Refinement: SBD-aligned mean per cluster.
    std::vector<std::vector<double>> sums(k, std::vector<double>(l, 0.0));
    std::vector<int> counts(k, 0);
    for (size_t s = 0; s < subs.size(); ++s) {
      const std::vector<double> aligned = Shifted(subs[s], shift[s]);
      std::vector<double>& sum = sums[assignment[s]];
      for (int i = 0; i < l; ++i) sum[i] += aligned[i];
      ++counts[assignment[s]];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (int i = 0; i < l; ++i) {
        sums[c][i] /= static_cast<double>(counts[c]);
      }
      ZNormalize(&sums[c]);
      model.centroids[c] = std::move(sums[c]);
    }
    if (!changed && iter > 0) break;
  }

  // Final weights = cluster occupancy.
  std::fill(model.weights.begin(), model.weights.end(), 0.0);
  for (size_t s = 0; s < subs.size(); ++s) model.weights[assignment[s]] += 1.0;
  return model;
}

// Weighted anomaly score of one subsequence against the model: the SBD to
// each centroid inflated for low-weight (rare) clusters.
double ScoreAgainstModel(const WeightedModel& model,
                         const std::vector<double>& sub) {
  if (model.centroids.empty()) return 0.0;
  const int shift_cap = MaxShift(static_cast<int>(sub.size()));
  const double w_max =
      *std::max_element(model.weights.begin(), model.weights.end());
  double best = 1e18;
  for (size_t c = 0; c < model.centroids.size(); ++c) {
    const double d = SbdWithShift(model.centroids[c], sub, shift_cap).distance;
    const double rarity =
        std::sqrt((w_max + 1.0) / (model.weights[c] + 1.0));
    best = std::min(best, d * rarity);
  }
  return best;
}

struct SubsequencePlan {
  int length = 0;
  int stride = 0;
};

SubsequencePlan PlanSubsequences(std::span<const double> series,
                                 int pattern_length) {
  SubsequencePlan plan;
  int l = pattern_length;
  if (l <= 0) {
    // Paper protocol: pattern length from the ACF; centroid length 4*l.
    const int max_lag = std::min<int>(256, static_cast<int>(series.size()) / 3);
    l = cad::stats::EstimateDominantPeriod(series, 4, max_lag, 0.1, 25);
  }
  plan.length =
      std::clamp(4 * l, 8, std::max(8, static_cast<int>(series.size()) / 4));
  plan.stride = std::max(1, plan.length / 4);
  return plan;
}

std::vector<std::vector<double>> NormalizedSubsequences(
    std::span<const double> x, const SubsequencePlan& plan) {
  std::vector<std::vector<double>> subs =
      ExtractSubsequences(x, plan.length, plan.stride);
  for (std::vector<double>& sub : subs) ZNormalize(&sub);
  return subs;
}

}  // namespace

std::vector<double> Sand::ScoreSeries(std::span<const double> train,
                                      std::span<const double> test) {
  cad::Rng rng(options_.seed);
  const SubsequencePlan plan = PlanSubsequences(test, options_.pattern_length);

  // Model built on everything available (train history + test), as the batch
  // method sees the whole series at once.
  std::vector<std::vector<double>> model_subs;
  if (!train.empty()) model_subs = NormalizedSubsequences(train, plan);
  std::vector<std::vector<double>> test_subs =
      NormalizedSubsequences(test, plan);
  model_subs.insert(model_subs.end(), test_subs.begin(), test_subs.end());

  const WeightedModel model = ClusterSubsequences(
      std::move(model_subs), options_.n_clusters, options_.max_iterations, &rng);

  std::vector<double> sub_scores(test_subs.size(), 0.0);
  for (size_t s = 0; s < test_subs.size(); ++s) {
    sub_scores[s] = ScoreAgainstModel(model, test_subs[s]);
  }
  std::vector<double> scores = SpreadSubsequenceScores(
      sub_scores, plan.length, plan.stride, static_cast<int>(test.size()));
  MinMaxNormalize(&scores);
  return scores;
}

std::vector<double> SandStar::ScoreSeries(std::span<const double> train,
                                          std::span<const double> test) {
  cad::Rng rng(options_.seed);
  const SubsequencePlan plan = PlanSubsequences(test, options_.pattern_length);
  std::vector<std::vector<double>> test_subs =
      NormalizedSubsequences(test, plan);
  std::vector<double> sub_scores(test_subs.size(), 0.0);
  if (test_subs.empty()) {
    return std::vector<double>(test.size(), 0.0);
  }

  // Initial model: the training history when present, otherwise the paper's
  // initial fraction of the stream (those subsequences score against the
  // model they formed, like the original's initialization batch).
  size_t init_count = 0;
  std::vector<std::vector<double>> init_subs;
  if (!train.empty()) {
    init_subs = NormalizedSubsequences(train, plan);
  } else {
    init_count = std::max<size_t>(
        1, static_cast<size_t>(test_subs.size() * options_.init_fraction));
    init_subs.assign(test_subs.begin(), test_subs.begin() + init_count);
  }
  WeightedModel model = ClusterSubsequences(
      init_subs, options_.n_clusters, options_.max_iterations, &rng);

  const size_t batch =
      std::max<size_t>(1, static_cast<size_t>(test_subs.size() *
                                              options_.batch_fraction));
  const int shift_cap = MaxShift(plan.length);
  const int l = plan.length;
  size_t s = 0;
  while (s < test_subs.size()) {
    const size_t end = std::min(test_subs.size(), s + batch);
    // Score the batch against the current model, then fold it in.
    std::vector<std::vector<double>> batch_sum(
        model.centroids.size(), std::vector<double>(l, 0.0));
    std::vector<double> batch_count(model.centroids.size(), 0.0);
    for (size_t i = s; i < end; ++i) {
      sub_scores[i] = ScoreAgainstModel(model, test_subs[i]);
      // Assign to the nearest centroid for the model update.
      double best = 1e18;
      int best_c = 0, best_shift = 0;
      for (size_t c = 0; c < model.centroids.size(); ++c) {
        const SbdResult r =
            SbdWithShift(model.centroids[c], test_subs[i], shift_cap);
        if (r.distance < best) {
          best = r.distance;
          best_c = static_cast<int>(c);
          best_shift = r.shift;
        }
      }
      const std::vector<double> aligned = Shifted(test_subs[i], best_shift);
      for (int j = 0; j < l; ++j) batch_sum[best_c][j] += aligned[j];
      batch_count[best_c] += 1.0;
    }
    // Update rate alpha blends old centroids with the batch means.
    for (size_t c = 0; c < model.centroids.size(); ++c) {
      if (batch_count[c] == 0.0) continue;
      std::vector<double> blended(l, 0.0);
      for (int j = 0; j < l; ++j) {
        const double batch_mean = batch_sum[c][j] / batch_count[c];
        blended[j] = options_.alpha * model.centroids[c][j] +
                     (1.0 - options_.alpha) * batch_mean;
      }
      ZNormalize(&blended);
      model.centroids[c] = std::move(blended);
      model.weights[c] += batch_count[c];
    }
    s = end;
  }

  std::vector<double> scores = SpreadSubsequenceScores(
      sub_scores, plan.length, plan.stride, static_cast<int>(test.size()));
  MinMaxNormalize(&scores);
  return scores;
}

std::unique_ptr<Detector> MakeSandEnsemble(const SandOptions& options) {
  return std::make_unique<UnivariateEnsemble>(
      "SAND", /*deterministic=*/false, [options](int sensor) {
        SandOptions per_sensor = options;
        per_sensor.seed = options.seed + static_cast<uint64_t>(sensor) * 977;
        return std::make_unique<Sand>(per_sensor);
      });
}

std::unique_ptr<Detector> MakeSandStarEnsemble(const SandOptions& options) {
  return std::make_unique<UnivariateEnsemble>(
      "SAND*", /*deterministic=*/false, [options](int sensor) {
        SandOptions per_sensor = options;
        per_sensor.seed = options.seed + static_cast<uint64_t>(sensor) * 1013;
        return std::make_unique<SandStar>(per_sensor);
      });
}

}  // namespace cad::baselines
