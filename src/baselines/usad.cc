#include "baselines/usad.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

std::vector<std::vector<double>> Usad::MakeWindows(
    const ts::MultivariateSeries& series, int stride) const {
  const ts::MultivariateSeries scaled = ts::Apply(scaler_, series);
  std::vector<std::vector<double>> windows;
  const int w = options_.window;
  for (int start = 0; start + w <= scaled.length(); start += stride) {
    std::vector<double> window;
    window.reserve(static_cast<size_t>(w) * scaled.n_sensors());
    for (int t = start; t < start + w; ++t) {
      for (int i = 0; i < scaled.n_sensors(); ++i) {
        window.push_back(scaled.value(i, t));
      }
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

Status Usad::FitImpl(const ts::MultivariateSeries& train) {
  if (train.length() < options_.window * 2) {
    return Status::InvalidArgument("training series shorter than two windows");
  }
  n_sensors_ = train.n_sensors();
  scaler_ = ts::FitMinMax(train);

  // Stride so at most max_train_windows windows are visited per epoch.
  const int total_positions = train.length() - options_.window + 1;
  const int stride =
      std::max(1, total_positions / std::max(1, options_.max_train_windows));
  const std::vector<std::vector<double>> windows = MakeWindows(train, stride);
  if (windows.empty()) return Status::InvalidArgument("no training windows");

  const int input = options_.window * n_sensors_;
  Rng rng(options_.seed);
  nn::MlpOptions mlp;
  mlp.layer_sizes = {input, options_.hidden, options_.latent, options_.hidden,
                     input};
  mlp.output_activation = nn::Activation::kSigmoid;  // min-max scaled targets
  mlp.learning_rate = options_.learning_rate;
  ae1_ = std::make_unique<nn::Mlp>(mlp, &rng);
  ae2_ = std::make_unique<nn::Mlp>(mlp, &rng);

  // Two-phase schedule per the original: early epochs emphasize plain
  // reconstruction, later epochs emphasize the chained (adversarial) path.
  std::vector<int> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 1; epoch <= options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double chain_weight =
        1.0 - 1.0 / static_cast<double>(epoch);  // (e-1)/e, grows over epochs
    for (int idx : order) {
      const std::vector<double>& w = windows[idx];
      ae1_->TrainStep(w, w);
      // AE2 reconstructs the original from AE1's current output; the weight
      // ramps up like USAD's (1 - 1/e) adversarial term.
      const std::vector<double> recon1 = ae1_->Forward(w);
      ae2_->TrainStep(recon1, w, std::max(0.1, chain_weight));
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> Usad::ScoreImpl(const ts::MultivariateSeries& test) {
  if (ae1_ == nullptr) {
    return Status::FailedPrecondition("USAD requires Fit before Score");
  }
  if (test.n_sensors() != n_sensors_) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  // Score every window position (stride 1) and assign the window's score to
  // its last point — the moment the data becomes available.
  const std::vector<std::vector<double>> windows = MakeWindows(test, 1);
  std::vector<double> scores(test.length(), 0.0);
  for (size_t s = 0; s < windows.size(); ++s) {
    const std::vector<double>& w = windows[s];
    const std::vector<double> recon1 = ae1_->Forward(w);
    const std::vector<double> recon2 = ae2_->Forward(recon1);
    double err1 = 0.0, err2 = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
      err1 += (w[i] - recon1[i]) * (w[i] - recon1[i]);
      err2 += (w[i] - recon2[i]) * (w[i] - recon2[i]);
    }
    const double inv = 1.0 / static_cast<double>(w.size());
    const int t = static_cast<int>(s) + options_.window - 1;
    scores[t] = options_.alpha * err1 * inv + options_.beta * err2 * inv;
  }
  // Head points (before the first full window) inherit the first score.
  for (int t = 0; t < options_.window - 1 && t < test.length(); ++t) {
    scores[t] = scores[std::min(test.length() - 1, options_.window - 1)];
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
