#include "baselines/subsequence.h"

#include <algorithm>
#include <cmath>

#include "check/check.h"
#include "common/status.h"

namespace cad::baselines {

void ZNormalize(std::vector<double>* x) {
  const size_t n = x->size();
  if (n == 0) return;
  double mean = 0.0;
  for (double v : *x) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : *x) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  const double std = std::sqrt(var);
  if (std < 1e-12) {
    std::fill(x->begin(), x->end(), 0.0);
    return;
  }
  for (double& v : *x) v = (v - mean) / std;
}

std::vector<std::vector<double>> ExtractSubsequences(std::span<const double> x,
                                                     int length, int stride) {
  CAD_CHECK(length > 0 && stride > 0, "bad subsequence parameters");
  std::vector<std::vector<double>> out;
  for (int start = 0; start + length <= static_cast<int>(x.size());
       start += stride) {
    out.emplace_back(x.begin() + start, x.begin() + start + length);
  }
  return out;
}

double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b) {
  CAD_CHECK(a.size() == b.size(), "length mismatch");
  double d = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

double ShapeBasedDistance(const std::vector<double>& a,
                          const std::vector<double>& b, int max_shift) {
  CAD_CHECK(a.size() == b.size(), "length mismatch");
  const int l = static_cast<int>(a.size());
  if (l == 0) return 0.0;

  double norm_a = 0.0, norm_b = 0.0;
  for (int i = 0; i < l; ++i) {
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  const double denom = std::sqrt(norm_a * norm_b);
  if (denom < 1e-12) return 0.0;  // both flat: identical shapes

  double best = -1.0;
  for (int shift = -max_shift; shift <= max_shift; ++shift) {
    double dot = 0.0;
    // a[i] aligned against b[i - shift].
    const int begin = std::max(0, shift);
    const int end = std::min(l, l + shift);
    for (int i = begin; i < end; ++i) dot += a[i] * b[i - shift];
    best = std::max(best, dot / denom);
  }
  return 1.0 - best;
}

std::vector<double> SpreadSubsequenceScores(const std::vector<double>& scores,
                                            int subsequence_length, int stride,
                                            int series_length) {
  std::vector<double> point_scores(series_length, 0.0);
  std::vector<int> coverage(series_length, 0);
  for (size_t s = 0; s < scores.size(); ++s) {
    const int begin = static_cast<int>(s) * stride;
    const int end = std::min(series_length, begin + subsequence_length);
    for (int t = begin; t < end; ++t) {
      point_scores[t] += scores[s];
      ++coverage[t];
    }
  }
  for (int t = 0; t < series_length; ++t) {
    if (coverage[t] > 0) point_scores[t] /= static_cast<double>(coverage[t]);
  }
  return point_scores;
}

}  // namespace cad::baselines
