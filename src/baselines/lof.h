// LOF — Local Outlier Factor (Breunig et al., SIGMOD 2000).
//
// Each time point is an n-dimensional vector of sensor readings. Following
// the paper's experimental setup (novelty-style LOF fitted on the training
// split — which is what makes LOF's training time the dominant cost in
// Table VI), Fit() computes the k-nearest-neighbour structure and local
// reachability densities over the training points; Score() then rates each
// test point by the classic LOF ratio against its k nearest training
// points. When no training data was provided, the detector fits on the test
// series itself.
#ifndef CAD_BASELINES_LOF_H_
#define CAD_BASELINES_LOF_H_

#include "baselines/detector.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct LofOptions {
  int k = 20;
  // Optional subsampling cap on training points to keep the O(N^2) fit
  // tractable on long series (0 = use everything).
  int max_train_points = 6000;
};

class Lof : public Detector {
 public:
  explicit Lof(const LofOptions& options = {}) : options_(options) {}

  std::string name() const override { return "LOF"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  void FitOnPoints(const std::vector<std::vector<double>>& points);

  LofOptions options_;
  ts::Scaler scaler_;
  bool fitted_ = false;
  std::vector<std::vector<double>> train_points_;
  std::vector<double> k_distance_;  // distance to the k-th neighbour
  std::vector<double> lrd_;         // local reachability density
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_LOF_H_
