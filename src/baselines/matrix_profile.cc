#include "baselines/matrix_profile.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/subsequence.h"
#include "check/check.h"
#include "stats/autocorrelation.h"

namespace cad::baselines {

namespace {

// Per-position means and stds of all length-m subsequences via prefix sums.
struct MovingMoments {
  std::vector<double> mean;
  std::vector<double> std;
};

MovingMoments ComputeMoments(std::span<const double> x, int m) {
  const int n_subs = static_cast<int>(x.size()) - m + 1;
  MovingMoments moments;
  moments.mean.resize(n_subs);
  moments.std.resize(n_subs);
  double sum = 0.0, sum_sq = 0.0;
  for (int t = 0; t < m; ++t) {
    sum += x[t];
    sum_sq += x[t] * x[t];
  }
  for (int i = 0; i < n_subs; ++i) {
    const double mean = sum / m;
    const double var = std::max(0.0, sum_sq / m - mean * mean);
    moments.mean[i] = mean;
    moments.std[i] = std::sqrt(var);
    if (i + 1 < n_subs) {
      sum += x[i + m] - x[i];
      sum_sq += x[i + m] * x[i + m] - x[i] * x[i];
    }
  }
  return moments;
}

// Z-normalized distance from the dot product QT of two raw subsequences.
double ZNormDistance(double qt, int m, double mean_i, double std_i,
                     double mean_j, double std_j) {
  if (std_i < 1e-12 || std_j < 1e-12) {
    // A flat subsequence matches other flat ones exactly, nothing else.
    return (std_i < 1e-12 && std_j < 1e-12) ? 0.0 : std::sqrt(2.0 * m);
  }
  const double corr =
      (qt - m * mean_i * mean_j) / (m * std_i * std_j);
  return std::sqrt(std::max(0.0, 2.0 * m * (1.0 - std::min(1.0, corr))));
}

}  // namespace

std::vector<double> SelfJoinMatrixProfile(std::span<const double> x, int m) {
  const int n = static_cast<int>(x.size());
  CAD_CHECK(m >= 2 && m <= n, "bad subsequence length");
  const int n_subs = n - m + 1;
  const int exclusion = std::max(1, m / 2);
  const MovingMoments moments = ComputeMoments(x, m);

  std::vector<double> profile(n_subs, std::numeric_limits<double>::infinity());

  // STOMP: for every diagonal k >= exclusion, the dot product
  // QT(i, i + k) follows a rolling recurrence along the diagonal.
  for (int k = exclusion; k < n_subs; ++k) {
    double qt = 0.0;
    for (int t = 0; t < m; ++t) qt += x[t] * x[t + k];
    for (int i = 0; i + k < n_subs; ++i) {
      if (i > 0) {
        qt += x[i + m - 1] * x[i + k + m - 1] - x[i - 1] * x[i + k - 1];
      }
      const double d =
          ZNormDistance(qt, m, moments.mean[i], moments.std[i],
                        moments.mean[i + k], moments.std[i + k]);
      profile[i] = std::min(profile[i], d);
      profile[i + k] = std::min(profile[i + k], d);
    }
  }

  // Series shorter than 2 * exclusion have no valid neighbour; report 0.
  for (double& v : profile) {
    if (!std::isfinite(v)) v = 0.0;
  }
  return profile;
}

std::vector<double> MatrixProfileDetector::ScoreSeries(
    std::span<const double> train, std::span<const double> test) {
  (void)train;  // self-join on the scored series, as the discord definition
  int m = options_.subsequence_length;
  if (m <= 0) {
    const int max_lag = std::min<int>(256, static_cast<int>(test.size()) / 3);
    m = cad::stats::EstimateDominantPeriod(test, 4, max_lag, 0.1, 32);
    m = std::clamp(2 * m, 8, std::max(8, static_cast<int>(test.size()) / 4));
  }
  const std::vector<double> profile = SelfJoinMatrixProfile(test, m);
  std::vector<double> scores =
      SpreadSubsequenceScores(profile, m, /*stride=*/1,
                              static_cast<int>(test.size()));
  MinMaxNormalize(&scores);
  return scores;
}

std::unique_ptr<Detector> MakeMatrixProfileEnsemble(
    const MatrixProfileOptions& options) {
  return std::make_unique<UnivariateEnsemble>(
      "MP", /*deterministic=*/true,
      [options](int) { return std::make_unique<MatrixProfileDetector>(options); });
}

}  // namespace cad::baselines
