// COPOD — Copula-Based Outlier Detection (Li et al., ICDM 2020, reference
// [47] of the paper): empirical-copula tail probabilities per dimension,
// aggregated as the maximum of the averaged left, right and
// skewness-corrected negative log tail probabilities. ECOD's sibling with a
// mean aggregation instead of a sum.
#ifndef CAD_BASELINES_COPOD_H_
#define CAD_BASELINES_COPOD_H_

#include "baselines/detector.h"
#include "stats/ecdf.h"

namespace cad::baselines {

class Copod : public Detector {
 public:
  std::string name() const override { return "COPOD"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  bool fitted_ = false;
  std::vector<stats::Ecdf> ecdf_;  // per sensor
  std::vector<double> skewness_;   // per sensor
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_COPOD_H_
