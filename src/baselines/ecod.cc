#include "baselines/ecod.h"

#include <cmath>

namespace cad::baselines {

namespace {

double Skewness(std::span<const double> x) {
  const size_t n = x.size();
  if (n < 3) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 < 1e-12) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

// Tail probability floored away from zero so -log stays finite; the floor is
// half of one empirical mass unit (the convention PyOD's ECOD uses).
double SafeNegLog(double p, size_t sample_size) {
  const double floor = 0.5 / static_cast<double>(sample_size + 1);
  return -std::log(p > floor ? p : floor);
}

}  // namespace

Status Ecod::FitImpl(const ts::MultivariateSeries& train) {
  if (train.empty()) return Status::InvalidArgument("empty training series");
  ecdf_.clear();
  skewness_.clear();
  ecdf_.reserve(train.n_sensors());
  for (int i = 0; i < train.n_sensors(); ++i) {
    ecdf_.emplace_back(train.sensor(i));
    skewness_.push_back(Skewness(train.sensor(i)));
  }
  fitted_ = true;
  return Status::Ok();
}

Status Ecod::EnsureFitted(const ts::MultivariateSeries& fallback) {
  if (fitted_) {
    if (static_cast<int>(ecdf_.size()) != fallback.n_sensors()) {
      return Status::InvalidArgument("sensor count differs from fitted data");
    }
    return Status::Ok();
  }
  return Fit(fallback);
}

Result<std::vector<std::vector<double>>> Ecod::DimensionScores(
    const ts::MultivariateSeries& test) const {
  std::vector<std::vector<double>> per_sensor(
      test.n_sensors(), std::vector<double>(test.length(), 0.0));
  for (int i = 0; i < test.n_sensors(); ++i) {
    const stats::Ecdf& ecdf = ecdf_[i];
    const bool use_left = skewness_[i] < 0.0;
    auto x = test.sensor(i);
    for (int t = 0; t < test.length(); ++t) {
      const double left = SafeNegLog(ecdf.Left(x[t]), ecdf.sample_size());
      const double right = SafeNegLog(ecdf.Right(x[t]), ecdf.sample_size());
      per_sensor[i][t] = use_left ? left : right;
    }
  }
  return per_sensor;
}

Result<std::vector<double>> Ecod::ScoreImpl(const ts::MultivariateSeries& test) {
  CAD_RETURN_NOT_OK(EnsureFitted(test));
  std::vector<double> scores(test.length(), 0.0);
  std::vector<double> sum_left(test.length(), 0.0);
  std::vector<double> sum_right(test.length(), 0.0);
  std::vector<double> sum_auto(test.length(), 0.0);
  for (int i = 0; i < test.n_sensors(); ++i) {
    const stats::Ecdf& ecdf = ecdf_[i];
    const bool use_left = skewness_[i] < 0.0;
    auto x = test.sensor(i);
    for (int t = 0; t < test.length(); ++t) {
      const double left = SafeNegLog(ecdf.Left(x[t]), ecdf.sample_size());
      const double right = SafeNegLog(ecdf.Right(x[t]), ecdf.sample_size());
      sum_left[t] += left;
      sum_right[t] += right;
      sum_auto[t] += use_left ? left : right;
    }
  }
  for (int t = 0; t < test.length(); ++t) {
    scores[t] = std::max({sum_left[t], sum_right[t], sum_auto[t]});
  }
  MinMaxNormalize(&scores);
  return scores;
}

Result<std::vector<std::vector<double>>> Ecod::SensorScores(
    const ts::MultivariateSeries& test) {
  CAD_RETURN_NOT_OK(EnsureFitted(test));
  Result<std::vector<std::vector<double>>> per_sensor = DimensionScores(test);
  if (!per_sensor.ok()) return per_sensor.status();
  std::vector<std::vector<double>> scores = std::move(per_sensor).value();
  for (std::vector<double>& row : scores) MinMaxNormalize(&row);
  return scores;
}

}  // namespace cad::baselines
