// Adapter exposing the CAD detector through the shared Detector interface so
// the benchmark harness evaluates all ten methods uniformly. Fit() stores
// the historical split used as CAD's warm-up; Score() runs Algorithm 2 and
// returns the per-point score series (0.5 == the eta-sigma decision rule).
// The full DetectionReport of the last run stays accessible for the
// sensor-level and timing tables.
#ifndef CAD_BASELINES_CAD_ADAPTER_H_
#define CAD_BASELINES_CAD_ADAPTER_H_

#include <optional>

#include "baselines/detector.h"
#include "core/cad_detector.h"

namespace cad::baselines {

class CadAdapter : public Detector {
 public:
  explicit CadAdapter(const core::CadOptions& options) : options_(options) {}

  std::string name() const override { return "CAD"; }
  bool deterministic() const override { return true; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override {
    train_ = train;
    return Status::Ok();
  }

  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override {
    core::CadDetector detector(options_);
    Result<core::DetectionReport> report =
        detector.Detect(test, train_.length() > 0 ? &train_ : nullptr);
    if (!report.ok()) return report.status();
    last_report_ = std::move(report).value();
    return last_report_->point_scores;
  }

  bool provides_sensor_scores() const override { return true; }

  // Per-sensor score 1 across each detected anomaly's time span.
  [[nodiscard]] Result<std::vector<std::vector<double>>> SensorScores(
      const ts::MultivariateSeries& test) override {
    if (!last_report_.has_value()) {
      Result<std::vector<double>> scores = Score(test);
      if (!scores.ok()) return scores.status();
    }
    std::vector<std::vector<double>> scores(
        test.n_sensors(), std::vector<double>(test.length(), 0.0));
    for (const core::Anomaly& anomaly : last_report_->anomalies) {
      for (int v : anomaly.sensors) {
        for (int t = anomaly.start_time;
             t < anomaly.end_time && t < test.length(); ++t) {
          scores[v][t] = 1.0;
        }
      }
    }
    return scores;
  }

  // Report of the most recent Score() call; empty before any run.
  const std::optional<core::DetectionReport>& last_report() const {
    return last_report_;
  }

  const core::CadOptions& options() const { return options_; }

 private:
  core::CadOptions options_;
  ts::MultivariateSeries train_;
  std::optional<core::DetectionReport> last_report_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_CAD_ADAPTER_H_
