// Univariate subsequence anomaly detectors and the ensemble adapter that
// lifts them to MTS exactly as the paper does (Section VI-A): "we perform
// these methods on each time series and treat the mean of the abnormal
// scores as the output".
#ifndef CAD_BASELINES_UNIVARIATE_H_
#define CAD_BASELINES_UNIVARIATE_H_

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "baselines/detector.h"

namespace cad::baselines {

// One univariate method: scores every point of `test` in [0, 1]; `train`
// may be empty (these methods are unsupervised and fit on the input).
class UnivariateDetector {
 public:
  virtual ~UnivariateDetector() = default;
  virtual std::string name() const = 0;
  virtual bool deterministic() const = 0;
  virtual std::vector<double> ScoreSeries(std::span<const double> train,
                                          std::span<const double> test) = 0;
};

// Applies a univariate method independently to every sensor and averages the
// per-sensor score series. A fresh detector instance is created per sensor
// through the factory so no state leaks across sensors.
class UnivariateEnsemble : public Detector {
 public:
  using Factory = std::function<std::unique_ptr<UnivariateDetector>(int sensor)>;

  UnivariateEnsemble(std::string name, bool deterministic, Factory factory)
      : name_(std::move(name)),
        deterministic_(deterministic),
        factory_(std::move(factory)) {}

  std::string name() const override { return name_; }
  bool deterministic() const override { return deterministic_; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override {
    train_ = train;  // kept only to hand each sensor its history
    return Status::Ok();
  }

  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  std::string name_;
  bool deterministic_;
  Factory factory_;
  ts::MultivariateSeries train_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_UNIVARIATE_H_
