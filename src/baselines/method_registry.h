// Factory for the ten methods of the paper's comparison (Section VI-A):
// CAD, LOF, ECOD, IForest, USAD, RCoders, S2G, SAND, SAND*, NormA — in the
// row order of Table III. Stochastic methods take a run seed so the
// benchmark harness can average over 10 repeats as the paper does.
#ifndef CAD_BASELINES_METHOD_REGISTRY_H_
#define CAD_BASELINES_METHOD_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/detector.h"
#include "core/cad_options.h"

namespace cad::baselines {

// Names in Table III row order.
std::vector<std::string> AllMethodNames();

// The extended roster: the paper's ten methods plus the six additional
// related-work baselines implemented here (kNN, HBOS, COPOD, PCA, LODA, MP).
std::vector<std::string> ExtendedMethodNames();

// Instantiates one method. `cad_options` configures the CAD adapter (other
// methods ignore it); `seed` perturbs the stochastic methods per repeat.
std::unique_ptr<Detector> MakeMethod(const std::string& name,
                                     const core::CadOptions& cad_options,
                                     uint64_t seed);

}  // namespace cad::baselines

#endif  // CAD_BASELINES_METHOD_REGISTRY_H_
