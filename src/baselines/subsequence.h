// Shared subsequence machinery for the univariate baselines (S2G, SAND,
// SAND*, NormA): extraction, z-normalization, shape-based distance, and
// mapping per-subsequence scores back onto time points.
#ifndef CAD_BASELINES_SUBSEQUENCE_H_
#define CAD_BASELINES_SUBSEQUENCE_H_

#include <span>
#include <vector>

namespace cad::baselines {

// Z-normalizes in place; constant subsequences become all zeros.
void ZNormalize(std::vector<double>* x);

// Overlapping subsequences of `length` every `stride` points. The trailing
// remainder shorter than `length` is dropped (all four methods do this).
std::vector<std::vector<double>> ExtractSubsequences(std::span<const double> x,
                                                     int length, int stride);

// Squared Euclidean distance.
double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b);

// Shape-based distance (k-Shape / SAND): 1 - max cross-correlation over
// shifts in [-max_shift, max_shift], computed on z-normalized inputs.
// Result is in [0, 2].
double ShapeBasedDistance(const std::vector<double>& a,
                          const std::vector<double>& b, int max_shift);

// Distributes per-subsequence scores onto time points: each point gets the
// mean score of the subsequences covering it (0 where nothing covers).
std::vector<double> SpreadSubsequenceScores(const std::vector<double>& scores,
                                            int subsequence_length, int stride,
                                            int series_length);

}  // namespace cad::baselines

#endif  // CAD_BASELINES_SUBSEQUENCE_H_
