// USAD — UnSupervised Anomaly Detection (Audibert et al., KDD 2020).
//
// USAD trains a pair of autoencoders over sliding windows of the MTS with a
// two-phase adversarial scheme; at inference the anomaly score of a window is
//   alpha * ||W - AE1(W)||^2 + beta * ||AE2(AE1(W)) - W||^2,
// i.e. the second autoencoder amplifies reconstruction drift of the first.
//
// Substitution note (DESIGN.md §1): the original shares one encoder between
// the two decoders and trains with epoch-weighted adversarial objectives in
// PyTorch. Here AE1 and AE2 are two dense autoencoders from the from-scratch
// cad::nn substrate; AE1 learns to reconstruct normal windows and AE2 learns
// to reconstruct the original window *from AE1's output*, preserving the
// chained scoring path, the training-data dependence and the seed-dependent
// instability the paper highlights (Tables VI and VIII).
#ifndef CAD_BASELINES_USAD_H_
#define CAD_BASELINES_USAD_H_

#include <cstdint>
#include <memory>

#include "baselines/detector.h"
#include "nn/mlp.h"
#include "ts/normalize.h"

namespace cad::baselines {

struct UsadOptions {
  int window = 5;       // window width in time points (input dim = window * n)
  int latent = 16;      // bottleneck size
  int hidden = 64;      // hidden layer size
  int epochs = 8;
  double learning_rate = 1e-3;
  double alpha = 0.5;   // weight of the AE1 reconstruction term
  double beta = 0.5;    // weight of the chained AE2 term
  uint64_t seed = 3;
  int max_train_windows = 4000;  // stride-subsampled cap per epoch
};

class Usad : public Detector {
 public:
  explicit Usad(const UsadOptions& options = {}) : options_(options) {}

  std::string name() const override { return "USAD"; }
  bool deterministic() const override { return false; }

  [[nodiscard]] Status FitImpl(const ts::MultivariateSeries& train) override;
  [[nodiscard]] Result<std::vector<double>> ScoreImpl(
      const ts::MultivariateSeries& test) override;

 private:
  std::vector<std::vector<double>> MakeWindows(
      const ts::MultivariateSeries& series, int stride) const;

  UsadOptions options_;
  ts::Scaler scaler_;
  int n_sensors_ = 0;
  std::unique_ptr<nn::Mlp> ae1_;
  std::unique_ptr<nn::Mlp> ae2_;
};

}  // namespace cad::baselines

#endif  // CAD_BASELINES_USAD_H_
