#include "baselines/copod.h"

#include <algorithm>
#include <cmath>

namespace cad::baselines {

namespace {

double Skewness(std::span<const double> x) {
  const size_t n = x.size();
  if (n < 3) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0, m3 = 0.0;
  for (double v : x) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 < 1e-12) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

double SafeNegLog(double p, size_t sample_size) {
  const double floor = 0.5 / static_cast<double>(sample_size + 1);
  return -std::log(p > floor ? p : floor);
}

}  // namespace

Status Copod::FitImpl(const ts::MultivariateSeries& train) {
  if (train.empty()) return Status::InvalidArgument("empty training series");
  ecdf_.clear();
  skewness_.clear();
  for (int i = 0; i < train.n_sensors(); ++i) {
    ecdf_.emplace_back(train.sensor(i));
    skewness_.push_back(Skewness(train.sensor(i)));
  }
  fitted_ = true;
  return Status::Ok();
}

Result<std::vector<double>> Copod::ScoreImpl(const ts::MultivariateSeries& test) {
  if (!fitted_) {
    CAD_RETURN_NOT_OK(Fit(test));
  }
  if (static_cast<int>(ecdf_.size()) != test.n_sensors()) {
    return Status::InvalidArgument("sensor count differs from fitted data");
  }
  const double n_dims = static_cast<double>(test.n_sensors());
  std::vector<double> scores(test.length(), 0.0);
  std::vector<double> left(test.length(), 0.0);
  std::vector<double> right(test.length(), 0.0);
  std::vector<double> corrected(test.length(), 0.0);
  for (int i = 0; i < test.n_sensors(); ++i) {
    const stats::Ecdf& ecdf = ecdf_[i];
    const bool use_left = skewness_[i] < 0.0;
    auto x = test.sensor(i);
    for (int t = 0; t < test.length(); ++t) {
      const double l = SafeNegLog(ecdf.Left(x[t]), ecdf.sample_size());
      const double r = SafeNegLog(ecdf.Right(x[t]), ecdf.sample_size());
      left[t] += l;
      right[t] += r;
      corrected[t] += use_left ? l : r;
    }
  }
  for (int t = 0; t < test.length(); ++t) {
    scores[t] =
        std::max({left[t], right[t], corrected[t]}) / n_dims;  // mean tail
  }
  MinMaxNormalize(&scores);
  return scores;
}

}  // namespace cad::baselines
