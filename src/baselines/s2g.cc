#include "baselines/s2g.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "baselines/subsequence.h"

namespace cad::baselines {

namespace {

// Autocorrelation of a z-normalized subsequence at one lag (denominator l,
// biased — fine for a quantized signature).
double AcfAt(const std::vector<double>& x, int lag) {
  const int l = static_cast<int>(x.size());
  if (lag >= l) return 0.0;
  double num = 0.0;
  for (int i = 0; i + lag < l; ++i) num += x[i] * x[i + lag];
  return num / static_cast<double>(l);
}

int QuantizeUnit(double v, int bins) {  // v in [-1, 1]
  const double clamped = std::clamp(v, -1.0, 1.0);
  return std::min(bins - 1, static_cast<int>((clamped + 1.0) / 2.0 * bins));
}

// Quantizes one z-normalized subsequence into a shape-signature node id:
// the ACF at quarter and half length (captures periodic structure and its
// phase relationships) plus the normalized mean absolute first difference
// (captures roughness). Recurring patterns land on the same node; pattern
// breaks scatter across rare nodes.
int64_t NodeId(const std::vector<double>& subsequence, int bins) {
  const int l = static_cast<int>(subsequence.size());
  const double acf_quarter = AcfAt(subsequence, std::max(1, l / 4));
  const double acf_half = AcfAt(subsequence, std::max(1, l / 2));
  double roughness = 0.0;
  for (int i = 1; i < l; ++i) {
    roughness += std::abs(subsequence[i] - subsequence[i - 1]);
  }
  roughness /= std::max(1, l - 1);  // in [0, ~2.2] for unit-variance input

  int64_t id = QuantizeUnit(acf_quarter, bins);
  id = id * bins + QuantizeUnit(acf_half, bins);
  id = id * bins + QuantizeUnit(roughness - 1.0, bins);
  return id;
}

}  // namespace

std::vector<double> S2g::ScoreSeries(std::span<const double> train,
                                     std::span<const double> test) {
  const int l = std::min<int>(options_.query_length,
                              std::max<int>(8, static_cast<int>(test.size()) / 4));
  const int stride = std::max(1, l / 8);

  // Build the pattern graph from training data when available, otherwise
  // from the test series itself (the method is unsupervised).
  std::unordered_map<int64_t, double> node_weight;
  std::unordered_map<int64_t, double> edge_weight;
  auto ingest = [&](std::span<const double> x) {
    std::vector<std::vector<double>> subs = ExtractSubsequences(x, l, stride);
    int64_t prev = -1;
    for (std::vector<double>& sub : subs) {
      ZNormalize(&sub);
      const int64_t node = NodeId(sub, options_.bins);
      node_weight[node] += 1.0;
      if (prev >= 0) {
        edge_weight[(prev << 20) ^ node] += 1.0;
      }
      prev = node;
    }
  };
  if (!train.empty()) ingest(train);
  ingest(test);

  // Score test subsequences: normality = frequency of the node plus the
  // frequency of the edge taken to reach it; anomaly = inverse normality.
  std::vector<std::vector<double>> subs = ExtractSubsequences(test, l, stride);
  std::vector<double> sub_scores(subs.size(), 0.0);
  int64_t prev = -1;
  for (size_t s = 0; s < subs.size(); ++s) {
    ZNormalize(&subs[s]);
    const int64_t node = NodeId(subs[s], options_.bins);
    double normality = node_weight[node];
    if (prev >= 0) normality += edge_weight[(prev << 20) ^ node];
    sub_scores[s] = 1.0 / (1.0 + normality);
    prev = node;
  }

  std::vector<double> scores = SpreadSubsequenceScores(
      sub_scores, l, stride, static_cast<int>(test.size()));
  MinMaxNormalize(&scores);
  return scores;
}

std::unique_ptr<Detector> MakeS2gEnsemble(const S2gOptions& options) {
  return std::make_unique<UnivariateEnsemble>(
      "S2G", /*deterministic=*/true,
      [options](int) { return std::make_unique<S2g>(options); });
}

}  // namespace cad::baselines
