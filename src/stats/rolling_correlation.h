// RollingCorrelationTracker: incremental window-correlation maintenance.
//
// CAD recomputes an n x n Pearson matrix every round over a window of width
// w — O(n^2 w) work — although consecutive windows share w - s columns. This
// tracker maintains the sufficient statistics (per-sensor sums, squared
// sums, and pairwise cross products) and updates them in O(n^2 s) per slide:
// a w/s-fold speedup for the paper-recommended s ≈ 0.02 w.
//
// Floating-point drift from repeated add/subtract accumulates slowly; the
// tracker transparently recomputes from scratch every `refresh_interval`
// slides, bounding the drift to ~1e-12 per pairwise correlation (verified by
// tests against the direct computation).
#ifndef CAD_STATS_ROLLING_CORRELATION_H_
#define CAD_STATS_ROLLING_CORRELATION_H_

#include <vector>

#include "common/realtime.h"
#include "stats/correlation.h"
#include "ts/multivariate_series.h"

namespace cad::stats {

class RollingCorrelationTracker {
 public:
  // Tracks windows of width `window` over `n_sensors` sensors.
  RollingCorrelationTracker(int n_sensors, int window,
                            int refresh_interval = 64);

  // Positions the tracker on window [start, start + window) of `series`,
  // computing all statistics from scratch.
  void Reset(const ts::MultivariateSeries& series, int start);

  // Slides the window from its current position to `new_start` (which must
  // be > current start and <= current start + window so the windows
  // overlap; otherwise the tracker resets). `series` must be the same
  // object passed to Reset.
  void SlideTo(const ts::MultivariateSeries& series,
               int new_start) CAD_REALTIME_AUDITED;

  // The correlation matrix of the current window.
  CorrelationMatrix Correlations() const;

  // Allocation-free form: writes into `out` (bitwise-identical to
  // Correlations). The tracker's own scratch is sized at construction, so a
  // Reset/SlideTo/CorrelationsInto cycle never touches the heap.
  void CorrelationsInto(CorrelationMatrix* out) const CAD_REALTIME_AUDITED;

  int start() const { return start_; }
  int window() const { return window_; }

 private:
  void Accumulate(const ts::MultivariateSeries& series, int column,
                  double sign);

  int n_sensors_;
  int window_;
  int refresh_interval_;
  int start_ = -1;
  int slides_since_refresh_ = 0;

  std::vector<double> sum_;      // per sensor
  std::vector<double> sum_sq_;   // per sensor
  std::vector<double> cross_;    // n x n upper triangle, row-major full
  // Reused per-call buffers (sized at construction; mutable because
  // CorrelationsInto is logically const).
  std::vector<double> column_scratch_;        // one column's readings
  mutable std::vector<double> centered_norm_;  // per sensor
};

}  // namespace cad::stats

#endif  // CAD_STATS_ROLLING_CORRELATION_H_
