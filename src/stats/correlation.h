// Correlation measures (paper Section III-B): TSG edge weights are the
// correlation of two sensors' readings within one window.
//
// Pearson is the paper's choice; Spearman (rank) correlation is offered as a
// robustness extension — invariant to monotone distortions and insensitive
// to heavy-tailed spikes, at an O(w log w) per-sensor ranking cost.
//
// The matrix form precomputes each sensor's centered, unit-norm residuals so
// an n x n matrix over a window of width w costs O(n*w + n^2*w) flops with a
// cache-friendly inner product; rows can be computed on multiple threads
// (bitwise-identical results regardless of thread count). Degenerate
// (constant) sensors are mapped to correlation 0 instead of NaN.
#ifndef CAD_STATS_CORRELATION_H_
#define CAD_STATS_CORRELATION_H_

#include <span>
#include <vector>

#include "common/realtime.h"
#include "ts/multivariate_series.h"

namespace cad::stats {

enum class CorrelationKind {
  kPearson,
  kSpearman,
};

// Pearson correlation of two equal-length series; 0 when either is constant.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Spearman rank correlation (ties get average ranks); 0 when constant.
double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y);

// Dense symmetric correlation matrix with unit diagonal, stored row-major.
class CorrelationMatrix {
 public:
  CorrelationMatrix() = default;
  explicit CorrelationMatrix(int n) { Reset(n); }

  // Re-shapes to n x n identity. Capacity is retained, so a matrix reused
  // across rounds of the same width never reallocates.
  void Reset(int n) {
    n_ = n;
    values_.assign(static_cast<size_t>(n) * n, 0.0);
    for (int i = 0; i < n; ++i) set(i, i, 1.0);
  }

  int size() const { return n_; }
  double at(int i, int j) const { return values_[static_cast<size_t>(i) * n_ + j]; }
  void set(int i, int j, double v) {
    values_[static_cast<size_t>(i) * n_ + j] = v;
    values_[static_cast<size_t>(j) * n_ + i] = v;
  }

 private:
  int n_ = 0;
  std::vector<double> values_;
};

// Reusable buffers for WindowCorrelationMatrixInto. Buffers grow to the
// problem size on first use and are reused verbatim afterwards, so the
// steady-state recomputation touches no heap.
struct CorrelationScratch {
  std::vector<double> residuals;   // n x w, row-major
  std::vector<uint8_t> degenerate;  // per sensor
  std::vector<double> ranked;       // Spearman only: one sensor's ranks
  std::vector<int> rank_order;      // Spearman only: argsort scratch
};

// Correlation matrix of all sensor pairs within window [start, start + w) of
// `series`. Constant sensors correlate 0 with everything (and 1 with self).
// `n_threads` > 1 parallelizes the pairwise products (results identical).
CorrelationMatrix WindowCorrelationMatrix(
    const ts::MultivariateSeries& series, int start, int w,
    CorrelationKind kind = CorrelationKind::kPearson, int n_threads = 1);

// Allocation-free form: writes into `out` using `scratch`'s buffers.
// Bitwise-identical to WindowCorrelationMatrix for every input.
void WindowCorrelationMatrixInto(const ts::MultivariateSeries& series,
                                 int start, int w, CorrelationKind kind,
                                 int n_threads, CorrelationScratch* scratch,
                                 CorrelationMatrix* out) CAD_REALTIME_AUDITED;

// Average ranks of `x` (ties share the mean rank); the Spearman transform.
std::vector<double> RankTransform(std::span<const double> x);

// Allocation-free form; `order` is argsort scratch, `ranks` the output.
void RankTransformInto(std::span<const double> x, std::vector<int>* order,
                       std::vector<double>* ranks);

}  // namespace cad::stats

#endif  // CAD_STATS_CORRELATION_H_
