#include "stats/autocorrelation.h"

#include <algorithm>
#include <cmath>

namespace cad::stats {

std::vector<double> Autocorrelation(std::span<const double> x, int max_lag) {
  const int n = static_cast<int>(x.size());
  if (max_lag >= n) max_lag = n > 0 ? n - 1 : 0;
  std::vector<double> acf(max_lag + 1, 0.0);
  if (n == 0) return acf;

  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);

  double denom = 0.0;
  for (double v : x) denom += (v - mean) * (v - mean);
  if (denom < 1e-12) return acf;  // constant series

  for (int lag = 0; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (int t = 0; t + lag < n; ++t) {
      num += (x[t] - mean) * (x[t + lag] - mean);
    }
    acf[lag] = num / denom;
  }
  return acf;
}

int EstimateDominantPeriod(std::span<const double> x, int min_lag, int max_lag,
                           double min_acf, int fallback) {
  if (min_lag < 1) min_lag = 1;
  std::vector<double> acf = Autocorrelation(x, max_lag + 1);
  const int hi = std::min<int>(max_lag, static_cast<int>(acf.size()) - 2);
  int best_lag = -1;
  double best_val = min_acf;
  for (int lag = std::max(min_lag, 1); lag <= hi; ++lag) {
    const bool local_max = acf[lag] >= acf[lag - 1] && acf[lag] >= acf[lag + 1];
    if (local_max && acf[lag] > best_val) {
      best_val = acf[lag];
      best_lag = lag;
    }
  }
  return best_lag > 0 ? best_lag : fallback;
}

}  // namespace cad::stats
