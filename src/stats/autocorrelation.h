// Autocorrelation and dominant-period estimation.
//
// The paper (Section VI-A) sets the pattern length of SAND / SAND* / NormA
// from the autocorrelation function of each series; EstimateDominantPeriod
// reproduces that: the first prominent local maximum of the ACF after lag 0.
#ifndef CAD_STATS_AUTOCORRELATION_H_
#define CAD_STATS_AUTOCORRELATION_H_

#include <span>
#include <vector>

namespace cad::stats {

// ACF values for lags 0..max_lag (inclusive); acf[0] == 1 for non-constant
// input, all zeros for constant input.
std::vector<double> Autocorrelation(std::span<const double> x, int max_lag);

// Lag of the first local ACF maximum with value above `min_acf`, searched in
// [min_lag, max_lag]. Falls back to `fallback` when none qualifies.
int EstimateDominantPeriod(std::span<const double> x, int min_lag, int max_lag,
                           double min_acf = 0.1, int fallback = 50);

}  // namespace cad::stats

#endif  // CAD_STATS_AUTOCORRELATION_H_
