// Streaming statistics.
//
// RunningStats implements Welford's online algorithm; Algorithm 2 of the
// paper maintains the mean and standard deviation of the outlier-variation
// counts n_r incrementally as rounds arrive, which is exactly this
// accumulator. RollingStats keeps the same moments over a fixed-size sliding
// window (used by the streaming baselines).
#ifndef CAD_STATS_RUNNING_STATS_H_
#define CAD_STATS_RUNNING_STATS_H_

#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>

#include "common/realtime.h"

namespace cad::stats {

class RunningStats {
 public:
  void Add(double x) CAD_REALTIME {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance (divides by N), matching the paper's use of sigma
  // over all observed rounds.
  double variance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Merges another accumulator (Chan's parallel update).
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const int64_t total = count_ + other.count_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) /
                           static_cast<double>(total);
    mean_ += delta * static_cast<double>(other.count_) /
             static_cast<double>(total);
    count_ = total;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Mean/stddev over the last `capacity` values pushed.
class RollingStats {
 public:
  explicit RollingStats(size_t capacity) : capacity_(capacity) {}

  void Add(double x) {
    // cad-lint: allow(CL007) name-resolution over-approximation: the policy's `stats_.Add` is RunningStats::Add; RollingStats only backs the streaming baselines
    window_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    if (window_.size() > capacity_) {
      const double old = window_.front();
      window_.pop_front();
      sum_ -= old;
      sum_sq_ -= old * old;
    }
  }

  size_t size() const { return window_.size(); }
  bool full() const { return window_.size() == capacity_; }

  double mean() const {
    return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
  }
  double variance() const {
    if (window_.empty()) return 0.0;
    const double m = mean();
    double v = sum_sq_ / static_cast<double>(window_.size()) - m * m;
    return v > 0.0 ? v : 0.0;  // guard against catastrophic cancellation
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace cad::stats

#endif  // CAD_STATS_RUNNING_STATS_H_
