// Symmetric eigendecomposition via cyclic Jacobi rotations — the substrate
// for the PCA baseline (Shyu et al. 2003, cited as [76] in the paper's
// related work). Sizes here are sensor counts (tens to ~1,000), where
// Jacobi's O(n^3) per sweep with a handful of sweeps is perfectly adequate
// and has no external dependencies.
#ifndef CAD_STATS_EIGEN_H_
#define CAD_STATS_EIGEN_H_

#include <vector>

#include "common/status.h"

namespace cad::stats {

// Dense symmetric matrix, row-major.
class SymmetricMatrix {
 public:
  SymmetricMatrix() = default;
  explicit SymmetricMatrix(int n)
      : n_(n), values_(static_cast<size_t>(n) * n, 0.0) {}

  int size() const { return n_; }
  double at(int i, int j) const { return values_[static_cast<size_t>(i) * n_ + j]; }
  void set(int i, int j, double v) {
    values_[static_cast<size_t>(i) * n_ + j] = v;
    values_[static_cast<size_t>(j) * n_ + i] = v;
  }

 private:
  int n_ = 0;
  std::vector<double> values_;
};

struct EigenDecomposition {
  // Eigenvalues in descending order.
  std::vector<double> values;
  // eigenvectors[k] is the unit eigenvector for values[k].
  std::vector<std::vector<double>> vectors;
};

// Decomposes a symmetric matrix. `max_sweeps` full Jacobi sweeps; converges
// when all off-diagonal mass is below `tolerance`.
EigenDecomposition JacobiEigen(const SymmetricMatrix& matrix,
                               int max_sweeps = 50, double tolerance = 1e-12);

}  // namespace cad::stats

#endif  // CAD_STATS_EIGEN_H_
