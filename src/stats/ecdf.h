// Empirical CDF and quantiles. ECOD (Li et al., TKDE 2022) scores points by
// left/right empirical tail probabilities; this is its statistical substrate.
#ifndef CAD_STATS_ECDF_H_
#define CAD_STATS_ECDF_H_

#include <algorithm>
#include <span>
#include <vector>

#include "check/check.h"
#include "common/status.h"

namespace cad::stats {

// Immutable empirical CDF over one fitted sample.
class Ecdf {
 public:
  explicit Ecdf(std::span<const double> sample)
      : sorted_(sample.begin(), sample.end()) {
    std::sort(sorted_.begin(), sorted_.end());
  }

  // P(X <= x), in [0, 1]; 0 for an empty sample.
  double Left(double x) const {
    if (sorted_.empty()) return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
  }

  // P(X >= x).
  double Right(double x) const {
    if (sorted_.empty()) return 0.0;
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(sorted_.end() - it) /
           static_cast<double>(sorted_.size());
  }

  size_t sample_size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

// Linear-interpolated quantile of a sample (q in [0, 1]); aborts on empty
// input because every call site controls its sample.
inline double Quantile(std::span<const double> sample, double q) {
  CAD_CHECK(!sample.empty(), "Quantile of empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

}  // namespace cad::stats

#endif  // CAD_STATS_ECDF_H_
