#include "stats/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cad::stats {

EigenDecomposition JacobiEigen(const SymmetricMatrix& matrix, int max_sweeps,
                               double tolerance) {
  const int n = matrix.size();
  // Working copy of the matrix and the accumulated rotations.
  std::vector<std::vector<double>> a(n, std::vector<double>(n));
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    v[i][i] = 1.0;
    for (int j = 0; j < n; ++j) a[i][j] = matrix.at(i, j);
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) off += a[i][j] * a[i][j];
    }
    if (off < tolerance) break;

    for (int p = 0; p < n; ++p) {
      for (int q = p + 1; q < n; ++q) {
        if (std::abs(a[p][q]) < 1e-300) continue;
        // Classic Jacobi rotation annihilating a[p][q].
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int i = 0; i < n; ++i) {
          const double aip = a[i][p], aiq = a[i][q];
          a[i][p] = c * aip - s * aiq;
          a[i][q] = s * aip + c * aiq;
        }
        for (int i = 0; i < n; ++i) {
          const double api = a[p][i], aqi = a[q][i];
          a[p][i] = c * api - s * aqi;
          a[q][i] = s * api + c * aqi;
        }
        for (int i = 0; i < n; ++i) {
          const double vip = v[i][p], viq = v[i][q];
          v[i][p] = c * vip - s * viq;
          v[i][q] = s * vip + c * viq;
        }
      }
    }
  }

  EigenDecomposition result;
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return a[x][x] > a[y][y]; });
  for (int k : order) {
    result.values.push_back(a[k][k]);
    std::vector<double> vec(n);
    for (int i = 0; i < n; ++i) vec[i] = v[i][k];
    result.vectors.push_back(std::move(vec));
  }
  return result;
}

}  // namespace cad::stats
