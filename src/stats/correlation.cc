#include "stats/correlation.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

namespace cad::stats {

namespace {
constexpr double kEpsilon = 1e-12;
}  // namespace

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  CAD_CHECK(x.size() == y.size(), "correlation of unequal-length series");
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mean_x = 0.0, mean_y = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < kEpsilon || syy < kEpsilon) return 0.0;
  double r = sxy / std::sqrt(sxx * syy);
  // Clamp rounding drift so callers can rely on [-1, 1].
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

void RankTransformInto(std::span<const double> x, std::vector<int>* order,
                       std::vector<double>* ranks) {
  const int n = static_cast<int>(x.size());
  order->resize(n);
  std::iota(order->begin(), order->end(), 0);
  std::sort(order->begin(), order->end(),
            [&](int a, int b) { return x[a] < x[b]; });
  ranks->assign(n, 0.0);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && x[(*order)[j + 1]] == x[(*order)[i]]) ++j;
    const double shared = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (int idx = i; idx <= j; ++idx) (*ranks)[(*order)[idx]] = shared;
    i = j + 1;
  }
}

std::vector<double> RankTransform(std::span<const double> x) {
  std::vector<int> order;
  std::vector<double> ranks;
  RankTransformInto(x, &order, &ranks);
  return ranks;
}

double SpearmanCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  CAD_CHECK(x.size() == y.size(), "correlation of unequal-length series");
  if (x.size() < 2) return 0.0;
  const std::vector<double> rx = RankTransform(x);
  const std::vector<double> ry = RankTransform(y);
  return PearsonCorrelation(rx, ry);
}

void WindowCorrelationMatrixInto(const ts::MultivariateSeries& series,
                                 int start, int w, CorrelationKind kind,
                                 int n_threads, CorrelationScratch* scratch,
                                 CorrelationMatrix* out) CAD_REALTIME_AUDITED {
  const int n = series.n_sensors();
  CAD_CHECK(start >= 0 && start + w <= series.length(), "window out of range");
  out->Reset(n);
  CorrelationMatrix& corr = *out;

  // Center and unit-normalize each sensor's window (rank-transformed first
  // for Spearman); the correlation of two sensors is then a dot product.
  std::vector<double>& residuals = scratch->residuals;
  residuals.assign(static_cast<size_t>(n) * w, 0.0);
  std::vector<uint8_t>& degenerate = scratch->degenerate;
  degenerate.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    auto window = series.sensor_window(i, start, w);
    std::span<const double> x = window;
    if (kind == CorrelationKind::kSpearman) {
      RankTransformInto(window, &scratch->rank_order, &scratch->ranked);
      x = scratch->ranked;
    }
    double mean = 0.0;
    for (double v : x) mean += v;
    mean /= static_cast<double>(w);
    double norm_sq = 0.0;
    double* res = residuals.data() + static_cast<size_t>(i) * w;
    for (int t = 0; t < w; ++t) {
      res[t] = x[t] - mean;
      norm_sq += res[t] * res[t];
    }
    if (norm_sq < kEpsilon) {
      degenerate[i] = 1;
      continue;
    }
    const double inv_norm = 1.0 / std::sqrt(norm_sq);
    for (int t = 0; t < w; ++t) res[t] *= inv_norm;
  }

  // Upper-triangle dot products, optionally split over threads by row with
  // a balanced interleaving (row i costs n - i products, so striding rows
  // across threads evens the load). Each cell is written by exactly one
  // thread and the arithmetic per cell is fixed, so results are identical
  // for any thread count.
  auto compute_rows = [&](int first_row, int stride) {
    for (int i = first_row; i < n; i += stride) {
      if (degenerate[i]) continue;
      const double* xi = residuals.data() + static_cast<size_t>(i) * w;
      for (int j = i + 1; j < n; ++j) {
        if (degenerate[j]) continue;
        const double* xj = residuals.data() + static_cast<size_t>(j) * w;
        double dot = 0.0;
        for (int t = 0; t < w; ++t) dot += xi[t] * xj[t];
        if (dot > 1.0) dot = 1.0;
        if (dot < -1.0) dot = -1.0;
        corr.set(i, j, dot);
      }
    }
  };

  if (n_threads <= 1 || n < 2 * n_threads) {
    compute_rows(0, 1);
  } else {
    std::vector<std::thread> workers;
    // cad-lint: allow(CL007) opt-in n_threads>1 path; the engine's default single-thread configuration never reaches it
    workers.reserve(n_threads);
    for (int t = 0; t < n_threads; ++t) {
      // cad-lint: allow(CL007) thread spawn on the opt-in n_threads>1 path only
      workers.emplace_back(compute_rows, t, n_threads);
    }
    // cad-lint: allow(CL007) join on the opt-in n_threads>1 path only
    for (std::thread& worker : workers) worker.join();
  }
}

CorrelationMatrix WindowCorrelationMatrix(const ts::MultivariateSeries& series,
                                          int start, int w,
                                          CorrelationKind kind, int n_threads) {
  CorrelationMatrix corr;
  CorrelationScratch scratch;
  WindowCorrelationMatrixInto(series, start, w, kind, n_threads, &scratch,
                              &corr);
  return corr;
}

}  // namespace cad::stats
