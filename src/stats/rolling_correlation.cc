#include "stats/rolling_correlation.h"

#include "check/check.h"

#include <cmath>

namespace cad::stats {

namespace {
constexpr double kEpsilon = 1e-12;
}  // namespace

RollingCorrelationTracker::RollingCorrelationTracker(int n_sensors, int window,
                                                     int refresh_interval)
    : n_sensors_(n_sensors),
      window_(window),
      refresh_interval_(refresh_interval),
      sum_(n_sensors, 0.0),
      sum_sq_(n_sensors, 0.0),
      cross_(static_cast<size_t>(n_sensors) * n_sensors, 0.0),
      column_scratch_(n_sensors, 0.0),
      centered_norm_(n_sensors, 0.0) {
  CAD_CHECK(n_sensors > 0 && window > 0, "bad tracker shape");
}

void RollingCorrelationTracker::Accumulate(const ts::MultivariateSeries& series,
                                           int column, double sign) {
  // Gather the column once (series is sensor-major).
  std::vector<double>& values = column_scratch_;
  for (int i = 0; i < n_sensors_; ++i) values[i] = series.value(i, column);
  for (int i = 0; i < n_sensors_; ++i) {
    const double xi = values[i];
    sum_[i] += sign * xi;
    sum_sq_[i] += sign * xi * xi;
    double* row = cross_.data() + static_cast<size_t>(i) * n_sensors_;
    for (int j = i + 1; j < n_sensors_; ++j) {
      row[j] += sign * xi * values[j];
    }
  }
}

void RollingCorrelationTracker::Reset(const ts::MultivariateSeries& series,
                                      int start) {
  CAD_CHECK(start >= 0 && start + window_ <= series.length(),
            "window out of range");
  std::fill(sum_.begin(), sum_.end(), 0.0);
  std::fill(sum_sq_.begin(), sum_sq_.end(), 0.0);
  std::fill(cross_.begin(), cross_.end(), 0.0);
  for (int t = start; t < start + window_; ++t) {
    Accumulate(series, t, +1.0);
  }
  start_ = start;
  slides_since_refresh_ = 0;
}

void RollingCorrelationTracker::SlideTo(
    const ts::MultivariateSeries& series, int new_start) CAD_REALTIME_AUDITED {
  CAD_CHECK(new_start >= 0 && new_start + window_ <= series.length(),
            "window out of range");
  const bool overlaps =
      start_ >= 0 && new_start > start_ && new_start <= start_ + window_;
  if (!overlaps || ++slides_since_refresh_ >= refresh_interval_) {
    Reset(series, new_start);
    return;
  }
  // Remove the columns leaving the window, add the ones entering it.
  for (int t = start_; t < new_start; ++t) Accumulate(series, t, -1.0);
  for (int t = start_ + window_; t < new_start + window_; ++t) {
    Accumulate(series, t, +1.0);
  }
  start_ = new_start;
}

void RollingCorrelationTracker::CorrelationsInto(CorrelationMatrix* out) const
    CAD_REALTIME_AUDITED {
  CAD_CHECK(start_ >= 0, "tracker not positioned; call Reset first");
  out->Reset(n_sensors_);
  CorrelationMatrix& corr = *out;
  const double w = static_cast<double>(window_);
  // Per-sensor centered norms: sum((x - mean)^2) = sum_sq - sum^2 / w.
  std::vector<double>& centered_norm = centered_norm_;
  for (int i = 0; i < n_sensors_; ++i) {
    centered_norm[i] = sum_sq_[i] - sum_[i] * sum_[i] / w;
  }
  for (int i = 0; i < n_sensors_; ++i) {
    if (centered_norm[i] < kEpsilon) continue;  // constant sensor -> 0
    const double* row = cross_.data() + static_cast<size_t>(i) * n_sensors_;
    for (int j = i + 1; j < n_sensors_; ++j) {
      if (centered_norm[j] < kEpsilon) continue;
      const double cov = row[j] - sum_[i] * sum_[j] / w;
      double r = cov / std::sqrt(centered_norm[i] * centered_norm[j]);
      if (r > 1.0) r = 1.0;
      if (r < -1.0) r = -1.0;
      corr.set(i, j, r);
    }
  }
}

CorrelationMatrix RollingCorrelationTracker::Correlations() const {
  CorrelationMatrix corr;
  CorrelationsInto(&corr);
  return corr;
}

}  // namespace cad::stats
