#include "nn/mlp.h"

#include "check/check.h"

#include <cmath>

namespace cad::nn {

Mlp::Mlp(const MlpOptions& options, Rng* rng) : options_(options) {
  CAD_CHECK(options.layer_sizes.size() >= 2, "MLP needs >= 2 layer sizes");
  CAD_CHECK(rng != nullptr, "rng must not be null");
  for (size_t l = 0; l + 1 < options.layer_sizes.size(); ++l) {
    const int in = options.layer_sizes[l];
    const int out = options.layer_sizes[l + 1];
    Layer layer;
    layer.weights = Matrix(in, out);
    layer.bias.assign(out, 0.0);
    // He initialization for ReLU-style hidden layers.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (double& w : layer.weights.data()) w = rng->Gaussian(0.0, scale);
    layer.m_w = Matrix(in, out);
    layer.v_w = Matrix(in, out);
    layer.m_b.assign(out, 0.0);
    layer.v_b.assign(out, 0.0);
    layers_.push_back(std::move(layer));
  }
}

double Mlp::Activate(Activation a, double x) {
  switch (a) {
    case Activation::kReLU: return x > 0.0 ? x : 0.0;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kIdentity: return x;
  }
  return x;
}

// Gradient expressed in terms of the *activated* value (saves recomputation).
double Mlp::ActivateGrad(Activation a, double activated) {
  switch (a) {
    case Activation::kReLU: return activated > 0.0 ? 1.0 : 0.0;
    case Activation::kSigmoid: return activated * (1.0 - activated);
    case Activation::kIdentity: return 1.0;
  }
  return 1.0;
}

std::vector<double> Mlp::Forward(std::span<const double> input) const {
  CAD_CHECK(static_cast<int>(input.size()) == input_size(), "input size");
  std::vector<double> current(input.begin(), input.end());
  std::vector<double> next;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    next.assign(layer.bias.size(), 0.0);
    AffineForward(current.data(), layer.weights, layer.bias, next.data());
    const Activation act = (l + 1 == layers_.size())
                               ? options_.output_activation
                               : options_.hidden_activation;
    for (double& v : next) v = Activate(act, v);
    current.swap(next);
  }
  return current;
}

double Mlp::Loss(std::span<const double> input,
                 std::span<const double> target) const {
  const std::vector<double> out = Forward(input);
  CAD_CHECK(out.size() == target.size(), "target size");
  double loss = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    const double d = out[i] - target[i];
    loss += d * d;
  }
  return loss / static_cast<double>(out.size());
}

double Mlp::TrainStep(std::span<const double> input,
                      std::span<const double> target, double loss_scale,
                      std::vector<double>* input_gradient) {
  CAD_CHECK(static_cast<int>(input.size()) == input_size(), "input size");
  CAD_CHECK(static_cast<int>(target.size()) == output_size(), "target size");

  // Forward, keeping every layer's activations.
  std::vector<std::vector<double>> activations;
  activations.reserve(layers_.size() + 1);
  activations.emplace_back(input.begin(), input.end());
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> out(layer.bias.size(), 0.0);
    AffineForward(activations.back().data(), layer.weights, layer.bias,
                  out.data());
    const Activation act = (l + 1 == layers_.size())
                               ? options_.output_activation
                               : options_.hidden_activation;
    for (double& v : out) v = Activate(act, v);
    activations.push_back(std::move(out));
  }

  // MSE loss and output delta.
  const std::vector<double>& output = activations.back();
  const double inv_out = 1.0 / static_cast<double>(output.size());
  double loss = 0.0;
  std::vector<double> delta(output.size());
  for (size_t i = 0; i < output.size(); ++i) {
    const double diff = output[i] - target[i];
    loss += diff * diff;
    delta[i] = 2.0 * diff * inv_out * loss_scale *
               ActivateGrad(options_.output_activation, output[i]);
  }
  loss *= inv_out;

  // Backward with per-layer Adam updates.
  ++adam_step_;
  const double lr = options_.learning_rate;
  const double b1 = options_.adam_beta1, b2 = options_.adam_beta2;
  const double bias_corr1 = 1.0 - std::pow(b1, static_cast<double>(adam_step_));
  const double bias_corr2 = 1.0 - std::pow(b2, static_cast<double>(adam_step_));

  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    Layer& layer = layers_[l];
    const std::vector<double>& in_act = activations[l];
    std::vector<double> prev_delta(in_act.size(), 0.0);

    for (int i = 0; i < layer.weights.rows(); ++i) {
      const double a_i = in_act[i];
      double* w_row = layer.weights.row(i);
      double* m_row = layer.m_w.row(i);
      double* v_row = layer.v_w.row(i);
      double grad_in = 0.0;
      for (int j = 0; j < layer.weights.cols(); ++j) {
        grad_in += w_row[j] * delta[j];
        const double g = a_i * delta[j];
        m_row[j] = b1 * m_row[j] + (1.0 - b1) * g;
        v_row[j] = b2 * v_row[j] + (1.0 - b2) * g * g;
        const double m_hat = m_row[j] / bias_corr1;
        const double v_hat = v_row[j] / bias_corr2;
        w_row[j] -= lr * m_hat / (std::sqrt(v_hat) + options_.adam_epsilon);
      }
      prev_delta[i] = grad_in;
    }
    for (size_t j = 0; j < layer.bias.size(); ++j) {
      const double g = delta[j];
      layer.m_b[j] = b1 * layer.m_b[j] + (1.0 - b1) * g;
      layer.v_b[j] = b2 * layer.v_b[j] + (1.0 - b2) * g * g;
      const double m_hat = layer.m_b[j] / bias_corr1;
      const double v_hat = layer.v_b[j] / bias_corr2;
      layer.bias[j] -= lr * m_hat / (std::sqrt(v_hat) + options_.adam_epsilon);
    }

    if (l > 0) {
      const Activation act = options_.hidden_activation;
      for (size_t i = 0; i < prev_delta.size(); ++i) {
        prev_delta[i] *= ActivateGrad(act, in_act[i]);
      }
      delta.swap(prev_delta);
    } else if (input_gradient != nullptr) {
      *input_gradient = std::move(prev_delta);
    }
  }
  return loss;
}

}  // namespace cad::nn
