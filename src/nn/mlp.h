// A small multilayer perceptron with ReLU hidden layers, a configurable
// output activation and an Adam optimizer — the substrate for the USAD and
// RCoders reconstruction baselines (see DESIGN.md §1 for why these are
// reimplemented from scratch instead of using a deep-learning framework).
//
// Training is plain stochastic gradient descent over single samples (the
// baseline workloads are small enough that batching buys nothing here), and
// all randomness flows through the caller-provided cad::Rng so runs are
// reproducible per seed.
#ifndef CAD_NN_MLP_H_
#define CAD_NN_MLP_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace cad::nn {

enum class Activation {
  kReLU,
  kSigmoid,
  kIdentity,
};

struct MlpOptions {
  std::vector<int> layer_sizes;  // e.g. {in, hidden..., out}
  Activation hidden_activation = Activation::kReLU;
  Activation output_activation = Activation::kSigmoid;
  double learning_rate = 1e-3;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_epsilon = 1e-8;
};

class Mlp {
 public:
  // Initializes weights with He/Xavier-style scaling from `rng`.
  Mlp(const MlpOptions& options, Rng* rng);

  int input_size() const { return options_.layer_sizes.front(); }
  int output_size() const { return options_.layer_sizes.back(); }

  // Forward pass; returns the output layer activations.
  std::vector<double> Forward(std::span<const double> input) const;

  // Forward + backward + Adam step against an MSE loss towards `target`.
  // Returns the sample's MSE. The gradient can optionally be scaled by
  // `loss_scale` (used by USAD's phase-weighted objectives), and
  // `input_gradient`, when non-null, receives dLoss/dInput (used to chain
  // USAD's adversarial pass through the first autoencoder).
  double TrainStep(std::span<const double> input,
                   std::span<const double> target, double loss_scale = 1.0,
                   std::vector<double>* input_gradient = nullptr);

  // MSE of Forward(input) against target without updating weights.
  double Loss(std::span<const double> input,
              std::span<const double> target) const;

 private:
  struct Layer {
    Matrix weights;               // in x out
    std::vector<double> bias;     // out
    Matrix m_w, v_w;              // Adam moments for weights
    std::vector<double> m_b, v_b; // Adam moments for bias
  };

  static double Activate(Activation a, double x);
  static double ActivateGrad(Activation a, double activated);

  MlpOptions options_;
  std::vector<Layer> layers_;
  int64_t adam_step_ = 0;
};

}  // namespace cad::nn

#endif  // CAD_NN_MLP_H_
