// Minimal dense row-major matrix used by the neural-network substrate. Only
// the operations the MLP needs are provided; this is deliberately not a
// general linear-algebra library.
#ifndef CAD_NN_MATRIX_H_
#define CAD_NN_MATRIX_H_

#include <vector>

#include "common/status.h"

namespace cad::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  double* row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const double* row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// out = a(row) * W + b, where a is a length-`in` vector, W is in x out.
inline void AffineForward(const double* a, const Matrix& w,
                          const std::vector<double>& b, double* out) {
  const int in = w.rows(), n_out = w.cols();
  for (int j = 0; j < n_out; ++j) out[j] = b[j];
  for (int i = 0; i < in; ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    const double* w_row = w.row(i);
    for (int j = 0; j < n_out; ++j) out[j] += ai * w_row[j];
  }
}

}  // namespace cad::nn

#endif  // CAD_NN_MATRIX_H_
