// Range-based precision and recall (Tatbul et al., NeurIPS 2018) — the
// third major evaluation family for time-series anomaly detection, next to
// the point adjustment (PA/DPA) and volume (VUS) measures this library
// implements. Scores *ranges* instead of points:
//
//   Recall_T(R)  = alpha * ExistenceReward(R) +
//                  (1-alpha) * (Overlap * Position * Cardinality)(R)
//   Precision(P) =            (Overlap * Position * Cardinality)(P)
//
// averaged over the real ranges R (recall) and predicted ranges P
// (precision). The positional bias controls where inside a range overlap is
// worth most; `kFront` expresses the paper's early-detection preference.
#ifndef CAD_EVAL_RANGE_METRICS_H_
#define CAD_EVAL_RANGE_METRICS_H_

#include "eval/confusion.h"

namespace cad::eval {

enum class PositionalBias {
  kFlat,   // every overlapped position counts equally
  kFront,  // earlier positions of the range count more (early detection)
  kBack,   // later positions count more
};

struct RangeMetricOptions {
  // Weight of the existence reward in recall (Tatbul's alpha).
  double alpha = 0.5;
  PositionalBias bias = PositionalBias::kFlat;
  // Cardinality penalty: one real range split across `x` predicted ranges
  // is discounted by 1/x^gamma_exponent (0 disables the penalty).
  double gamma_exponent = 1.0;
};

struct RangePrf {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

// Range-based precision/recall/F1 of binary predictions against truth.
RangePrf RangeBasedScore(const Labels& pred, const Labels& truth,
                         const RangeMetricOptions& options = {});

}  // namespace cad::eval

#endif  // CAD_EVAL_RANGE_METRICS_H_
