// Root-cause ranking metrics: did the advisor's ranked sensor list name the
// truly injected sensor near the top? Netdata's Anomaly Advisor is judged on
// "the culprit is in the first screen of 30-50 metrics"; with ground truth
// we can be stricter — bench/advisor_bench gates on hit@3.
#ifndef CAD_EVAL_ROOT_CAUSE_H_
#define CAD_EVAL_ROOT_CAUSE_H_

#include <algorithm>
#include <vector>

namespace cad::eval {

// True when any of the first `k` entries of `ranking` (advisor order, best
// candidate first) is one of the truly injected `true_sensors`.
[[nodiscard]] inline bool RootCauseHitAtK(const std::vector<int>& ranking,
                                          const std::vector<int>& true_sensors,
                                          int k) {
  const int limit = std::min<int>(k, static_cast<int>(ranking.size()));
  for (int i = 0; i < limit; ++i) {
    if (std::find(true_sensors.begin(), true_sensors.end(), ranking[i]) !=
        true_sensors.end()) {
      return true;
    }
  }
  return false;
}

// Fraction of incidents whose ranking hit the truth within the top k.
// hits[i] is RootCauseHitAtK for incident i; empty input yields 0.
[[nodiscard]] inline double RootCauseHitRate(const std::vector<bool>& hits) {
  if (hits.empty()) return 0.0;
  int n_hits = 0;
  for (bool hit : hits) {
    if (hit) ++n_hits;
  }
  return static_cast<double>(n_hits) / static_cast<double>(hits.size());
}

// First detection round whose window [r*step, r*step + window) covers
// `sample`, for a driver whose round r sees exactly that span (both the
// batch and streaming drivers do, counting samples from 0). Returns -1 when
// no round covers the sample (only possible for step > window gaps).
// This is the pure window/step arithmetic; advisor::WindowForSamples derives
// the same mapping from a concrete flight log's recorded spans — the
// injector round-trip test holds the two against each other.
[[nodiscard]] inline int FirstRoundCovering(int sample, int window, int step) {
  if (sample < 0 || window <= 0 || step <= 0) return -1;
  const int r = sample >= window ? (sample - window) / step + 1 : 0;
  return r * step <= sample ? r : -1;
}

}  // namespace cad::eval

#endif  // CAD_EVAL_ROOT_CAUSE_H_
