#include "eval/adjust.h"

#include "check/check.h"

namespace cad::eval {

Labels PointAdjust(const Labels& pred, const Labels& truth) {
  CAD_CHECK(pred.size() == truth.size(), "label length mismatch");
  Labels adjusted = pred;
  for (const Segment& segment : ExtractSegments(truth)) {
    bool detected = false;
    for (int t = segment.begin; t < segment.end; ++t) {
      if (pred[t]) {
        detected = true;
        break;
      }
    }
    if (detected) {
      for (int t = segment.begin; t < segment.end; ++t) adjusted[t] = 1;
    }
  }
  return adjusted;
}

Labels DelayPointAdjust(const Labels& pred, const Labels& truth) {
  CAD_CHECK(pred.size() == truth.size(), "label length mismatch");
  Labels adjusted = pred;
  for (const Segment& segment : ExtractSegments(truth)) {
    int first_tp = -1;
    for (int t = segment.begin; t < segment.end; ++t) {
      if (pred[t]) {
        first_tp = t;
        break;
      }
    }
    if (first_tp >= 0) {
      for (int t = first_tp; t < segment.end; ++t) adjusted[t] = 1;
    }
  }
  return adjusted;
}

Labels Adjust(Adjustment mode, const Labels& pred, const Labels& truth) {
  switch (mode) {
    case Adjustment::kNone: return pred;
    case Adjustment::kPointAdjust: return PointAdjust(pred, truth);
    case Adjustment::kDelayPointAdjust: return DelayPointAdjust(pred, truth);
  }
  return pred;
}

PrfScore ScoreWithAdjustment(Adjustment mode, const Labels& pred,
                             const Labels& truth) {
  return FromConfusion(Count(Adjust(mode, pred, truth), truth));
}

}  // namespace cad::eval
