#include "eval/threshold.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>

namespace cad::eval {

namespace {

Labels ThresholdScores(const std::vector<double>& scores, double threshold) {
  Labels pred(scores.size(), 0);
  for (size_t t = 0; t < scores.size(); ++t) {
    pred[t] = scores[t] >= threshold ? 1 : 0;
  }
  return pred;
}

struct RatePoint {
  double fpr = 0.0;
  double tpr = 0.0;       // == recall
  double precision = 0.0;
};

// Rates of thresholded + adjusted predictions swept over the grid, ordered
// from the loosest threshold (0: everything abnormal) to the strictest.
std::vector<RatePoint> SweepRates(const std::vector<double>& scores,
                                  const Labels& truth, Adjustment mode,
                                  double grid_step) {
  std::vector<RatePoint> points;
  const int steps = static_cast<int>(std::round(1.0 / grid_step));
  points.reserve(steps + 1);
  for (int i = 0; i <= steps; ++i) {
    const double threshold = static_cast<double>(i) * grid_step;
    const Labels adjusted = Adjust(mode, ThresholdScores(scores, threshold), truth);
    const Confusion c = Count(adjusted, truth);
    RatePoint p;
    const double pos = static_cast<double>(c.tp + c.fn);
    const double neg = static_cast<double>(c.fp + c.tn);
    p.tpr = pos > 0 ? static_cast<double>(c.tp) / pos : 0.0;
    p.fpr = neg > 0 ? static_cast<double>(c.fp) / neg : 0.0;
    p.precision = (c.tp + c.fp) > 0
                      ? static_cast<double>(c.tp) / static_cast<double>(c.tp + c.fp)
                      : 1.0;  // strictest-threshold convention
    points.push_back(p);
  }
  return points;
}

}  // namespace

BestF1 BestF1Search(const std::vector<double>& scores, const Labels& truth,
                    Adjustment mode, double grid_step) {
  CAD_CHECK(scores.size() == truth.size(), "scores/truth length mismatch");
  BestF1 best;
  const int steps = static_cast<int>(std::round(1.0 / grid_step));
  for (int i = 0; i <= steps; ++i) {
    const double threshold = static_cast<double>(i) * grid_step;
    const PrfScore s =
        ScoreWithAdjustment(mode, ThresholdScores(scores, threshold), truth);
    if (s.f1 > best.f1) {
      best.f1 = s.f1;
      best.precision = s.precision;
      best.recall = s.recall;
      best.threshold = threshold;
    }
  }
  return best;
}

double AucRoc(const std::vector<double>& scores, const Labels& truth,
              Adjustment mode, double grid_step) {
  std::vector<RatePoint> points = SweepRates(scores, truth, mode, grid_step);
  // Anchor the endpoints and integrate TPR over FPR. Thresholds sweep from
  // loose (high fpr/tpr) to strict (low), so reverse into ascending fpr.
  std::reverse(points.begin(), points.end());
  double area = 0.0;
  double prev_fpr = 0.0, prev_tpr = 0.0;
  for (const RatePoint& p : points) {
    if (p.fpr < prev_fpr) continue;  // guard against non-monotone PA artifacts
    area += (p.fpr - prev_fpr) * (p.tpr + prev_tpr) / 2.0;
    prev_fpr = p.fpr;
    prev_tpr = p.tpr;
  }
  area += (1.0 - prev_fpr) * (1.0 + prev_tpr) / 2.0;  // close to (1, 1)
  return area;
}

double AucPr(const std::vector<double>& scores, const Labels& truth,
             Adjustment mode, double grid_step) {
  std::vector<RatePoint> points = SweepRates(scores, truth, mode, grid_step);
  // Integrate precision over recall, ascending recall (strict -> loose is
  // already descending recall, so reverse order of the sweep).
  double area = 0.0;
  double prev_recall = 0.0;
  double prev_precision = 1.0;
  std::reverse(points.begin(), points.end());  // ascending recall
  for (const RatePoint& p : points) {
    if (p.tpr < prev_recall) continue;
    area += (p.tpr - prev_recall) * (p.precision + prev_precision) / 2.0;
    prev_recall = p.tpr;
    prev_precision = p.precision;
  }
  return area;
}

Labels DilateTruth(const Labels& truth, int amount) {
  if (amount <= 0) return truth;
  Labels dilated = truth;
  const int n = static_cast<int>(truth.size());
  for (const Segment& segment : ExtractSegments(truth)) {
    const int lo = std::max(0, segment.begin - amount);
    const int hi = std::min(n, segment.end + amount);
    for (int t = lo; t < hi; ++t) dilated[t] = 1;
  }
  return dilated;
}

namespace {

template <typename AucFn>
double Volume(const std::vector<double>& scores, const Labels& truth,
              Adjustment mode, const VusOptions& options, AucFn auc) {
  CAD_CHECK(options.window_step > 0, "window_step must be positive");
  double total = 0.0;
  int count = 0;
  for (int window = 0; window <= options.max_window;
       window += options.window_step) {
    const Labels dilated = DilateTruth(truth, (window + 1) / 2);
    total += auc(scores, dilated, mode, options.grid_step);
    ++count;
  }
  return count > 0 ? total / count : 0.0;
}

}  // namespace

double VusRoc(const std::vector<double>& scores, const Labels& truth,
              Adjustment mode, const VusOptions& options) {
  return Volume(scores, truth, mode, options, AucRoc);
}

double VusPr(const std::vector<double>& scores, const Labels& truth,
             Adjustment mode, const VusOptions& options) {
  return Volume(scores, truth, mode, options, AucPr);
}

}  // namespace cad::eval
