#include "eval/range_metrics.h"

#include "check/check.h"

#include <algorithm>
#include <cmath>

namespace cad::eval {

namespace {

// Positional weight of index `i` (0-based) within a range of length `n`.
double PositionWeight(PositionalBias bias, int i, int n) {
  switch (bias) {
    case PositionalBias::kFlat: return 1.0;
    case PositionalBias::kFront: return static_cast<double>(n - i);
    case PositionalBias::kBack: return static_cast<double>(i + 1);
  }
  return 1.0;
}

// Tatbul's omega: the positionally-weighted fraction of `range` covered by
// `overlap` (a sub-interval of `range`).
double OverlapReward(const Segment& range, const Segment& overlap,
                     PositionalBias bias) {
  const int n = range.end - range.begin;
  double covered = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double weight = PositionWeight(bias, i, n);
    total += weight;
    const int t = range.begin + i;
    if (t >= overlap.begin && t < overlap.end) covered += weight;
  }
  return total > 0.0 ? covered / total : 0.0;
}

// Sum of omega over every `other` range intersecting `range`, plus the
// cardinality discount.
double RangeReward(const Segment& range, const std::vector<Segment>& others,
                   const RangeMetricOptions& options) {
  double reward = 0.0;
  int overlapping = 0;
  for (const Segment& other : others) {
    const int begin = std::max(range.begin, other.begin);
    const int end = std::min(range.end, other.end);
    if (begin >= end) continue;
    ++overlapping;
    reward += OverlapReward(range, {begin, end}, options.bias);
  }
  if (overlapping == 0) return 0.0;
  const double cardinality =
      1.0 / std::pow(static_cast<double>(overlapping), options.gamma_exponent);
  return std::min(1.0, reward * cardinality);
}

}  // namespace

RangePrf RangeBasedScore(const Labels& pred, const Labels& truth,
                         const RangeMetricOptions& options) {
  CAD_CHECK(pred.size() == truth.size(), "label length mismatch");
  const std::vector<Segment> real = ExtractSegments(truth);
  const std::vector<Segment> predicted = ExtractSegments(pred);

  RangePrf result;
  if (!real.empty()) {
    double recall = 0.0;
    for (const Segment& range : real) {
      bool exists = false;
      for (const Segment& p : predicted) {
        if (std::max(range.begin, p.begin) < std::min(range.end, p.end)) {
          exists = true;
          break;
        }
      }
      recall += options.alpha * (exists ? 1.0 : 0.0) +
                (1.0 - options.alpha) * RangeReward(range, predicted, options);
    }
    result.recall = recall / static_cast<double>(real.size());
  }
  if (!predicted.empty()) {
    double precision = 0.0;
    for (const Segment& range : predicted) {
      precision += RangeReward(range, real, options);
    }
    result.precision = precision / static_cast<double>(predicted.size());
  }
  result.f1 = (result.precision + result.recall) > 0.0
                  ? 2.0 * result.precision * result.recall /
                        (result.precision + result.recall)
                  : 0.0;
  return result;
}

}  // namespace cad::eval
