#include "eval/ahead_miss.h"

#include "check/check.h"

namespace cad::eval {

int FirstDetection(const Labels& pred, const Segment& segment) {
  for (int t = segment.begin; t < segment.end; ++t) {
    if (pred[t]) return t;
  }
  return -1;
}

AheadMiss CompareAheadMiss(const Labels& pred_m1, const Labels& pred_m2,
                           const Labels& truth) {
  CAD_CHECK(pred_m1.size() == truth.size() && pred_m2.size() == truth.size(),
            "label length mismatch");
  AheadMiss result;
  const std::vector<Segment> segments = ExtractSegments(truth);
  result.total_anomalies = static_cast<int>(segments.size());

  for (const Segment& segment : segments) {
    const int t1 = FirstDetection(pred_m1, segment);
    const int t2 = FirstDetection(pred_m2, segment);
    if (t1 >= 0) {
      ++result.detected_by_m1;
      if (t2 < 0 || t1 < t2) ++result.ahead_count;
    } else if (t2 >= 0) {
      ++result.miss_count;
    }
  }

  result.ahead = result.detected_by_m1 > 0
                     ? static_cast<double>(result.ahead_count) /
                           static_cast<double>(result.detected_by_m1)
                     : 0.0;
  const int missed = result.total_anomalies - result.detected_by_m1;
  result.miss = missed > 0 ? static_cast<double>(result.miss_count) /
                                 static_cast<double>(missed)
                           : 0.0;
  return result;
}

}  // namespace cad::eval
