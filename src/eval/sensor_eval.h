// Abnormal-sensor evaluation (paper Section VI-C, F1_sensor).
//
// Following the paper's protocol, all abnormal sensors a method reports
// within one ground-truth anomaly period are merged into a single predicted
// sensor set for that anomaly; the set is scored against the ground-truth
// abnormal sensors with a set-wise F1, and F1_sensor is the macro average
// over all anomalies the method detected (an undetected anomaly contributes
// F1 = 0).
#ifndef CAD_EVAL_SENSOR_EVAL_H_
#define CAD_EVAL_SENSOR_EVAL_H_

#include <vector>

#include "eval/confusion.h"

namespace cad::eval {

// Ground truth for one anomaly: its time segment plus affected sensors.
struct SensorGroundTruth {
  Segment segment;
  std::vector<int> sensors;  // ascending ids
};

// One method's sensor attribution for one anomaly.
struct SensorPrediction {
  Segment segment;           // time span of the *detected* anomaly
  std::vector<int> sensors;  // ascending ids
};

// Set-wise F1 between two ascending id vectors.
PrfScore SensorSetF1(const std::vector<int>& predicted,
                     const std::vector<int>& actual);

// F1_sensor: for each ground-truth anomaly, the predicted sensor set is the
// union of sensors from predictions whose segment overlaps the anomaly's
// segment; missing overlap scores 0. Returns the macro average.
double SensorF1(const std::vector<SensorPrediction>& predictions,
                const std::vector<SensorGroundTruth>& ground_truth);

}  // namespace cad::eval

#endif  // CAD_EVAL_SENSOR_EVAL_H_
