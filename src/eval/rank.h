// Average-rank aggregation for comparison tables (the "Rank" column of the
// paper's Table III): each method is ranked per metric column (1 = best,
// average rank for ties), then ranks are averaged across columns.
#ifndef CAD_EVAL_RANK_H_
#define CAD_EVAL_RANK_H_

#include <algorithm>
#include <vector>

#include "check/check.h"
#include "common/status.h"

namespace cad::eval {

// Ranks one column of method scores (higher score = better = lower rank).
// Tied scores share the average of the ranks they span.
inline std::vector<double> RankColumn(const std::vector<double>& scores) {
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<double> ranks(n, 0.0);
  int i = 0;
  while (i < n) {
    int j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double shared = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (int idx = i; idx <= j; ++idx) ranks[order[idx]] = shared;
    i = j + 1;
  }
  return ranks;
}

// Averages ranks over columns; columns[c][m] is method m's score in column c.
inline std::vector<double> AverageRanks(
    const std::vector<std::vector<double>>& columns) {
  CAD_CHECK(!columns.empty(), "no rank columns");
  const size_t n = columns[0].size();
  std::vector<double> avg(n, 0.0);
  for (const std::vector<double>& column : columns) {
    CAD_CHECK(column.size() == n, "rank column size mismatch");
    const std::vector<double> ranks = RankColumn(column);
    for (size_t m = 0; m < n; ++m) avg[m] += ranks[m];
  }
  for (double& v : avg) v /= static_cast<double>(columns.size());
  return avg;
}

}  // namespace cad::eval

#endif  // CAD_EVAL_RANK_H_
