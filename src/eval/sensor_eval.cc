#include "eval/sensor_eval.h"

#include <algorithm>

namespace cad::eval {

PrfScore SensorSetF1(const std::vector<int>& predicted,
                     const std::vector<int>& actual) {
  std::vector<int> intersection;
  std::set_intersection(predicted.begin(), predicted.end(), actual.begin(),
                        actual.end(), std::back_inserter(intersection));
  Confusion c;
  c.tp = static_cast<int64_t>(intersection.size());
  c.fp = static_cast<int64_t>(predicted.size()) - c.tp;
  c.fn = static_cast<int64_t>(actual.size()) - c.tp;
  return FromConfusion(c);
}

namespace {

bool Overlaps(const Segment& a, const Segment& b) {
  return a.begin < b.end && b.begin < a.end;
}

}  // namespace

double SensorF1(const std::vector<SensorPrediction>& predictions,
                const std::vector<SensorGroundTruth>& ground_truth) {
  if (ground_truth.empty()) return 0.0;
  double total = 0.0;
  for (const SensorGroundTruth& anomaly : ground_truth) {
    // Merge sensors from every prediction overlapping this anomaly's span.
    std::vector<int> merged;
    for (const SensorPrediction& prediction : predictions) {
      if (Overlaps(prediction.segment, anomaly.segment)) {
        merged.insert(merged.end(), prediction.sensors.begin(),
                      prediction.sensors.end());
      }
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (!merged.empty()) {
      total += SensorSetF1(merged, anomaly.sensors).f1;
    }
  }
  return total / static_cast<double>(ground_truth.size());
}

}  // namespace cad::eval
