// Point Adjustment (PA) and Delay-Point Adjustment (DPA), paper Section V.
//
// PA (Xu et al., WWW 2018): if any point of a ground-truth anomaly segment is
// predicted abnormal, the whole segment's predictions are adjusted to 1.
// PA ignores *when* within the segment the detection happened.
//
// DPA (the delay-aware half of the paper's DaE scheme): only the false
// negatives *after the first true positive* of each segment are adjusted, so
// a late detection keeps its early missed points as FNs. DPA is strictly
// more rigorous: F1_DPA <= F1_PA (tests assert this as a property).
#ifndef CAD_EVAL_ADJUST_H_
#define CAD_EVAL_ADJUST_H_

#include "eval/confusion.h"

namespace cad::eval {

enum class Adjustment {
  kNone,
  kPointAdjust,       // PA
  kDelayPointAdjust,  // DPA
};

// Returns a copy of `pred` with PA applied against `truth`.
Labels PointAdjust(const Labels& pred, const Labels& truth);

// Returns a copy of `pred` with DPA applied against `truth`.
Labels DelayPointAdjust(const Labels& pred, const Labels& truth);

// Dispatch helper.
Labels Adjust(Adjustment mode, const Labels& pred, const Labels& truth);

// F1 of `pred` against `truth` under an adjustment mode.
PrfScore ScoreWithAdjustment(Adjustment mode, const Labels& pred,
                             const Labels& truth);

}  // namespace cad::eval

#endif  // CAD_EVAL_ADJUST_H_
