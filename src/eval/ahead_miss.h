// Ahead / Miss: the relative half of the paper's Delay-aware Evaluation
// (Section V). Given two methods' binary predictions against one ground
// truth with I anomalies:
//
//   Ahead = I_ahead / I_d    where I_ahead = #anomalies M1 detects strictly
//                            earlier than M2 (an anomaly M2 misses entirely
//                            counts as ahead), I_d = #anomalies M1 detects;
//   Miss  = I_miss / (I-I_d) where I_miss = #anomalies M1 misses but M2
//                            detects; Miss = 0 when I_d == I.
//
// Ideal: Ahead = 100%, Miss = 0.
#ifndef CAD_EVAL_AHEAD_MISS_H_
#define CAD_EVAL_AHEAD_MISS_H_

#include "eval/confusion.h"

namespace cad::eval {

struct AheadMiss {
  double ahead = 0.0;  // fraction in [0, 1]
  double miss = 0.0;   // fraction in [0, 1]
  int total_anomalies = 0;
  int detected_by_m1 = 0;
  int ahead_count = 0;
  int miss_count = 0;
};

// First index within [segment.begin, segment.end) where pred is 1, or -1.
int FirstDetection(const Labels& pred, const Segment& segment);

// Compares method M1 against M2 (per the paper, M1 is CAD in all tables).
AheadMiss CompareAheadMiss(const Labels& pred_m1, const Labels& pred_m2,
                           const Labels& truth);

}  // namespace cad::eval

#endif  // CAD_EVAL_AHEAD_MISS_H_
