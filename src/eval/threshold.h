// Threshold-based evaluation of score series: best-F1 grid search (the
// paper's protocol: thresholds 0..1 with step 0.001) and ROC / PR curves
// with VUS (Volume Under the Surface, Paparrizos et al., PVLDB 2022).
//
// VUS extends AUC with a third axis: a boundary-tolerance window ell. For
// each ell the ground truth segments are dilated by ell/2 points on both
// sides, the ROC (or PR) curve of the score series is computed against the
// dilated truth — with PA or DPA applied to each thresholded prediction, as
// the paper evaluates — and the volume is the average of the per-ell areas.
// The original VUS uses continuous-valued dilated labels; the binary
// dilation used here preserves the measure's ranking behaviour (which is
// what Figure 5 compares) and is pinned down by tests.
#ifndef CAD_EVAL_THRESHOLD_H_
#define CAD_EVAL_THRESHOLD_H_

#include <vector>

#include "eval/adjust.h"

namespace cad::eval {

struct BestF1 {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double threshold = 0.0;
};

// Thresholds `scores` at every grid point (score >= threshold => abnormal),
// applies `mode`, and returns the best F1. Scores must be in [0, 1].
BestF1 BestF1Search(const std::vector<double>& scores, const Labels& truth,
                    Adjustment mode, double grid_step = 0.001);

// Area under the ROC curve of thresholded-and-adjusted predictions.
double AucRoc(const std::vector<double>& scores, const Labels& truth,
              Adjustment mode, double grid_step = 0.01);

// Area under the PR curve (average-precision style, trapezoidal over the
// recall axis).
double AucPr(const std::vector<double>& scores, const Labels& truth,
             Adjustment mode, double grid_step = 0.01);

struct VusOptions {
  int max_window = 16;      // largest dilation ell
  int window_step = 4;      // ell = 0, step, 2*step, ..., <= max_window
  double grid_step = 0.01;  // threshold grid for each curve
};

// Volume under the ROC surface over the window axis.
double VusRoc(const std::vector<double>& scores, const Labels& truth,
              Adjustment mode, const VusOptions& options = {});

// Volume under the PR surface over the window axis.
double VusPr(const std::vector<double>& scores, const Labels& truth,
             Adjustment mode, const VusOptions& options = {});

// Dilates every truth segment by `amount` points on each side (clamped to
// the series bounds); exposed for tests.
Labels DilateTruth(const Labels& truth, int amount);

}  // namespace cad::eval

#endif  // CAD_EVAL_THRESHOLD_H_
