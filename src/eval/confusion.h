// Point-wise confusion counting and precision/recall/F1.
#ifndef CAD_EVAL_CONFUSION_H_
#define CAD_EVAL_CONFUSION_H_

#include <cstdint>
#include <vector>

#include "check/check.h"
#include "common/status.h"

namespace cad::eval {

// Binary per-time-point labels (0 = normal, 1 = abnormal).
using Labels = std::vector<uint8_t>;

struct Confusion {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  int64_t tn = 0;
};

struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

inline Confusion Count(const Labels& pred, const Labels& truth) {
  CAD_CHECK(pred.size() == truth.size(), "label length mismatch");
  Confusion c;
  for (size_t t = 0; t < pred.size(); ++t) {
    if (pred[t] && truth[t]) ++c.tp;
    else if (pred[t] && !truth[t]) ++c.fp;
    else if (!pred[t] && truth[t]) ++c.fn;
    else ++c.tn;
  }
  return c;
}

inline PrfScore FromConfusion(const Confusion& c) {
  PrfScore s;
  const double p_denom = static_cast<double>(c.tp + c.fp);
  const double r_denom = static_cast<double>(c.tp + c.fn);
  s.precision = p_denom > 0 ? static_cast<double>(c.tp) / p_denom : 0.0;
  s.recall = r_denom > 0 ? static_cast<double>(c.tp) / r_denom : 0.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

// Contiguous runs of 1s in a ground truth: the paper's individual anomalies.
struct Segment {
  int begin = 0;  // inclusive
  int end = 0;    // exclusive
};

inline std::vector<Segment> ExtractSegments(const Labels& truth) {
  std::vector<Segment> segments;
  int begin = -1;
  for (int t = 0; t < static_cast<int>(truth.size()); ++t) {
    if (truth[t] && begin < 0) begin = t;
    if (!truth[t] && begin >= 0) {
      segments.push_back({begin, t});
      begin = -1;
    }
  }
  if (begin >= 0) segments.push_back({begin, static_cast<int>(truth.size())});
  return segments;
}

}  // namespace cad::eval

#endif  // CAD_EVAL_CONFUSION_H_
