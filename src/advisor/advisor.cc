#include "advisor/advisor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "check/check.h"
#include "obs/json_util.h"

namespace cad::advisor {

namespace {

// The determinism keystone: the offline path (cad_explain --advise) consumes
// doubles strtod'd back from a "%.9g" JSONL dump, the live path consumes the
// engine's original doubles. Pushing every consumed double through the same
// %.9g round trip makes both paths compute on identical bits, so the report
// bytes match exactly. Non-finite values collapse to 0 because the JSON dump
// spells them `null` and the offline reader already reads that as 0.
double Canonical9g(double v) {
  if (!std::isfinite(v)) return 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return std::strtod(buf, nullptr);
}

// Per-sensor accumulator while replaying the window's rounds.
struct SensorState {
  bool member = false;  // currently resident in O_r (replayed)
  int onset_round = -1;
  int onset_window_start = 0;
  int onset_window_end = 0;
  int outlier_rounds = 0;
  int mover_rounds = 0;
  int enter_count = 0;
  int exit_count = 0;
  double structural = 0.0;

  bool HasEvidence() const {
    return onset_round >= 0 || enter_count > 0 || exit_count > 0 ||
           mover_rounds > 0 || outlier_rounds > 0;
  }
};

int MaxSensorId(const std::vector<const obs::DecisionRecord*>& records) {
  int max_id = -1;
  for (const obs::DecisionRecord* record : records) {
    for (int v : record->entered) max_id = std::max(max_id, v);
    for (int v : record->exited) max_id = std::max(max_id, v);
    for (int v : record->movers) max_id = std::max(max_id, v);
  }
  return max_id;
}

void AppendIntArray(std::string* out, const std::vector<int>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += std::to_string(values[i]);
  }
  *out += ']';
}

}  // namespace

AdviseWindow WindowForSamples(const std::vector<obs::DecisionRecord>& records,
                              int sample_from, int sample_to) {
  AdviseWindow window;
  window.first_round = 1;  // first > last selects nothing until a hit below
  window.last_round = 0;
  for (const obs::DecisionRecord& record : records) {
    // Window spans are [start, end) on the time axis; the sample range is
    // inclusive on both ends.
    if (record.window_end <= sample_from || record.window_start > sample_to) {
      continue;
    }
    if (window.first_round > window.last_round) {
      window.first_round = record.round;
    }
    window.last_round = record.round;
  }
  return window;
}

AdviceReport Advise(const std::vector<obs::DecisionRecord>& records,
                    const AdviseWindow& window) {
  const int lo = window.first_round < 0 ? std::numeric_limits<int>::min()
                                        : window.first_round;
  const int hi = window.last_round < 0 ? std::numeric_limits<int>::max()
                                       : window.last_round;

  std::vector<const obs::DecisionRecord*> scanned;
  scanned.reserve(records.size());
  for (const obs::DecisionRecord& record : records) {
    if (record.round < lo || record.round > hi) continue;
    CAD_CHECK(scanned.empty() || record.round > scanned.back()->round,
              "flight-log records must be ascending in round");
    scanned.push_back(&record);
  }

  AdviceReport report;
  if (scanned.empty()) return report;
  report.first_round = scanned.front()->round;
  report.last_round = scanned.back()->round;
  report.rounds_scanned = static_cast<int>(scanned.size());

  std::vector<SensorState> sensors(
      static_cast<size_t>(MaxSensorId(scanned) + 1));

  bool in_segment = false;
  int prev_communities = 0;
  for (size_t i = 0; i < scanned.size(); ++i) {
    const obs::DecisionRecord& record = *scanned[i];
    const double score = Canonical9g(record.score);
    if (record.abnormal) ++report.rounds_abnormal;

    // Outlier-set membership replay. A sensor exiting without a recorded
    // entry was resident before the window opened: its onset predates the
    // evidence, so it is pinned to the window's first round.
    for (int v : record.entered) {
      SensorState& state = sensors[static_cast<size_t>(v)];
      ++state.enter_count;
      state.member = true;
      if (state.onset_round < 0) {
        state.onset_round = record.round;
        state.onset_window_start = record.window_start;
        state.onset_window_end = record.window_end;
      }
    }
    for (int v : record.exited) {
      SensorState& state = sensors[static_cast<size_t>(v)];
      ++state.exit_count;
      state.member = false;
      if (state.onset_round < 0) {
        state.onset_round = report.first_round;
        state.onset_window_start = scanned.front()->window_start;
        state.onset_window_end = scanned.front()->window_end;
      }
    }
    for (int v : record.movers) {
      ++sensors[static_cast<size_t>(v)].mover_rounds;
    }
    for (SensorState& state : sensors) {
      if (!state.member) continue;
      ++state.outlier_rounds;
      state.structural += score;
    }

    // Incident segments: maximal abnormal / anomaly-open runs.
    const bool active = record.abnormal || record.anomaly_open;
    if (active && !in_segment) {
      IncidentSegment segment;
      segment.first_round = record.round;
      segment.last_round = record.round;
      report.segments.push_back(segment);
    } else if (active) {
      report.segments.back().last_round = record.round;
    }
    in_segment = active;

    // Timeline: rounds where something happened.
    const int delta_communities =
        i == 0 ? 0 : record.n_communities - prev_communities;
    prev_communities = record.n_communities;
    if (!record.entered.empty() || !record.exited.empty() ||
        !record.movers.empty() || record.abnormal || delta_communities != 0) {
      TimelineEvent event;
      event.round = record.round;
      event.window_start = record.window_start;
      event.window_end = record.window_end;
      event.abnormal = record.abnormal;
      event.anomaly_open = record.anomaly_open;
      event.score = score;
      event.n_communities = record.n_communities;
      event.delta_communities = delta_communities;
      event.modularity = Canonical9g(record.modularity);
      event.entered = record.entered;
      event.exited = record.exited;
      event.movers = record.movers;
      report.timeline.push_back(std::move(event));
    }
  }

  // Findings, with severity from the documented formula.
  for (size_t id = 0; id < sensors.size(); ++id) {
    const SensorState& state = sensors[id];
    if (!state.HasEvidence()) continue;
    SensorFinding finding;
    finding.sensor = static_cast<int>(id);
    finding.onset_round = state.onset_round;
    finding.onset_window_start = state.onset_window_start;
    finding.onset_window_end = state.onset_window_end;
    finding.outlier_rounds = state.outlier_rounds;
    finding.mover_rounds = state.mover_rounds;
    finding.enter_count = state.enter_count;
    finding.exit_count = state.exit_count;
    finding.structural = state.structural;
    finding.severity = kMoverWeight * state.mover_rounds + state.structural +
                       kPresenceWeight * state.outlier_rounds +
                       kChurnWeight * (state.enter_count + state.exit_count);
    report.ranking.push_back(std::move(finding));
  }

  // Blast radius: within each segment, a sensor's peers are the sensors
  // whose onset falls at or after its own — the part of the cascade it
  // plausibly dragged along.
  for (IncidentSegment& segment : report.segments) {
    std::vector<SensorFinding*> onsets;
    for (SensorFinding& finding : report.ranking) {
      if (finding.onset_round >= segment.first_round &&
          finding.onset_round <= segment.last_round) {
        onsets.push_back(&finding);
      }
    }
    std::sort(onsets.begin(), onsets.end(),
              [](const SensorFinding* a, const SensorFinding* b) {
                if (a->onset_round != b->onset_round) {
                  return a->onset_round < b->onset_round;
                }
                return a->sensor < b->sensor;
              });
    for (SensorFinding* finding : onsets) {
      segment.onset_order.push_back(finding->sensor);
    }
    for (SensorFinding* finding : onsets) {
      for (const SensorFinding* other : onsets) {
        if (other == finding) continue;
        if (other->onset_round >= finding->onset_round) {
          finding->peers.push_back(other->sensor);
        }
      }
      std::sort(finding->peers.begin(), finding->peers.end());
      finding->blast_radius = static_cast<int>(finding->peers.size());
    }
  }

  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const SensorFinding& a, const SensorFinding& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              if (a.onset_round != b.onset_round) {
                return a.onset_round < b.onset_round;
              }
              return a.sensor < b.sensor;
            });
  return report;
}

std::string AdviceReportToJson(const AdviceReport& report) {
  std::string json = "{\"advice_version\":1,\"window\":{\"first_round\":";
  json += std::to_string(report.first_round);
  json += ",\"last_round\":" + std::to_string(report.last_round);
  json += ",\"rounds_scanned\":" + std::to_string(report.rounds_scanned);
  json += ",\"rounds_abnormal\":" + std::to_string(report.rounds_abnormal);
  json += "},\"ranking\":[";
  for (size_t i = 0; i < report.ranking.size(); ++i) {
    const SensorFinding& finding = report.ranking[i];
    if (i > 0) json += ',';
    json += "{\"sensor\":" + std::to_string(finding.sensor);
    json += ",\"severity\":";
    obs::AppendJsonNumber(&json, finding.severity);
    json += ",\"onset_round\":" + std::to_string(finding.onset_round);
    json += ",\"onset_window_start\":" +
            std::to_string(finding.onset_window_start);
    json += ",\"onset_window_end\":" + std::to_string(finding.onset_window_end);
    json += ",\"mover_rounds\":" + std::to_string(finding.mover_rounds);
    json += ",\"outlier_rounds\":" + std::to_string(finding.outlier_rounds);
    json += ",\"enter_count\":" + std::to_string(finding.enter_count);
    json += ",\"exit_count\":" + std::to_string(finding.exit_count);
    json += ",\"structural\":";
    obs::AppendJsonNumber(&json, finding.structural);
    json += ",\"blast_radius\":" + std::to_string(finding.blast_radius);
    json += ",\"peers\":";
    AppendIntArray(&json, finding.peers);
    json += '}';
  }
  json += "],\"segments\":[";
  for (size_t i = 0; i < report.segments.size(); ++i) {
    const IncidentSegment& segment = report.segments[i];
    if (i > 0) json += ',';
    json += "{\"first_round\":" + std::to_string(segment.first_round);
    json += ",\"last_round\":" + std::to_string(segment.last_round);
    json += ",\"onset_order\":";
    AppendIntArray(&json, segment.onset_order);
    json += '}';
  }
  json += "],\"timeline\":[";
  for (size_t i = 0; i < report.timeline.size(); ++i) {
    const TimelineEvent& event = report.timeline[i];
    if (i > 0) json += ',';
    json += "{\"round\":" + std::to_string(event.round);
    json += ",\"window_start\":" + std::to_string(event.window_start);
    json += ",\"window_end\":" + std::to_string(event.window_end);
    json += ",\"abnormal\":";
    json += event.abnormal ? "true" : "false";
    json += ",\"anomaly_open\":";
    json += event.anomaly_open ? "true" : "false";
    json += ",\"score\":";
    obs::AppendJsonNumber(&json, event.score);
    json += ",\"n_communities\":" + std::to_string(event.n_communities);
    json += ",\"delta_communities\":" + std::to_string(event.delta_communities);
    json += ",\"modularity\":";
    obs::AppendJsonNumber(&json, event.modularity);
    json += ",\"entered\":";
    AppendIntArray(&json, event.entered);
    json += ",\"exited\":";
    AppendIntArray(&json, event.exited);
    json += ",\"movers\":";
    AppendIntArray(&json, event.movers);
    json += '}';
  }
  json += "]}";
  return json;
}

}  // namespace cad::advisor
