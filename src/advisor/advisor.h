// cad::advisor — root-cause triage over flight-recorder provenance.
//
// The detection pipeline stops at "round r is abnormal"; during an incident
// the operator's real questions are *which sensors broke first*, *how bad is
// each one*, and *what did the break drag down with it*. The advisor answers
// them from data the engine already keeps: the per-round DecisionRecords of
// the flight recorder (obs/flight_recorder.h). Given an incident window it
// scores every sensor on three axes:
//
//   severity      a weighted blend of mover rounds (Definition 2 community
//                 defection — the causal signal), cumulative
//                 correlation-structure deviation (the round score summed
//                 over the rounds the sensor sat in O_r, CSCAD-style
//                 continuous severity), outlier-set residency, and
//                 enter/exit churn;
//   onset         the first round the sensor deviated (joined the outlier
//                 set) inside the window — earlier onset ranks first among
//                 severity ties, because the first defector is the best
//                 root-cause candidate;
//   blast radius  the peers that deviated at or after the sensor's onset
//                 within the same incident segment — how far the break
//                 cascaded.
//
// and reconstructs a propagation timeline (round-by-round enter/exit/mover
// events plus community-structure deltas) and incident segments (maximal
// abnormal/anomaly-open runs with their onset order).
//
// Determinism contract: AdviceReportToJson is byte-deterministic for a given
// flight log, including across the live path (records straight from the
// ring) and the offline path (records re-parsed from a JSONL dump, i.e.
// cad_explain --advise). The JSONL dump renders doubles with "%.9g"
// (obs/json_util.h), so Advise first canonicalizes every double it consumes
// through the same %.9g round trip — both paths then compute on identical
// bits. Wall-clock fields (timings, unix_us) are never consumed.
//
// Surfaces: this library call, the /advise?from=..&to=.. endpoint of
// obs::ExpositionServer (wired by StreamingCad), and cad_explain --advise.
#ifndef CAD_ADVISOR_ADVISOR_H_
#define CAD_ADVISOR_ADVISOR_H_

#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace cad::advisor {

// Round range of an incident, inclusive on both ends. -1 = unbounded on that
// side (clamped to the rounds actually present in the flight log).
struct AdviseWindow {
  int first_round = -1;
  int last_round = -1;
};

// Everything the advisor holds against (or in favour of) one sensor.
struct SensorFinding {
  int sensor = -1;
  // Composite severity; see kMoverWeight/kPresenceWeight/kChurnWeight and
  // DESIGN.md "Advisor architecture" for the formula.
  double severity = 0.0;
  int onset_round = -1;        // first round the sensor deviated in-window
  int onset_window_start = 0;  // that round's window span on the time axis
  int onset_window_end = 0;
  int outlier_rounds = 0;      // rounds resident in O_r (replayed membership)
  int mover_rounds = 0;        // rounds listed as a Definition-2 mover
  int enter_count = 0;         // times it joined O_r
  int exit_count = 0;          // times it left O_r
  // Sum of the round deviation score over the sensor's resident rounds —
  // the CSCAD-style continuous correlation-structure severity.
  double structural = 0.0;
  // Peers whose onset falls at/after this sensor's onset inside the same
  // incident segment (ascending ids); blast_radius == peers.size().
  int blast_radius = 0;
  std::vector<int> peers;
};

// One row of the propagation timeline. Only rounds with activity appear:
// outlier-set changes, movers, an abnormal verdict, or a community-count
// change against the previous in-window round.
struct TimelineEvent {
  int round = -1;
  int window_start = 0;
  int window_end = 0;
  bool abnormal = false;
  bool anomaly_open = false;
  double score = 0.0;
  int n_communities = 0;
  int delta_communities = 0;  // vs the previous in-window round (0 for first)
  double modularity = 0.0;
  std::vector<int> entered;
  std::vector<int> exited;
  std::vector<int> movers;
};

// A maximal run of rounds that were abnormal or had an anomaly open — the
// advisor's notion of "one incident" inside the window. `onset_order` lists
// the sensors that first deviated during the segment, in (onset round,
// sensor id) order: the propagation order of the cascade.
struct IncidentSegment {
  int first_round = -1;
  int last_round = -1;
  std::vector<int> onset_order;
};

struct AdviceReport {
  // The window actually scanned (clamped to the records present).
  int first_round = -1;
  int last_round = -1;
  int rounds_scanned = 0;
  int rounds_abnormal = 0;
  // Sensors with any evidence, sorted by severity descending, then onset
  // round ascending (the earlier deviator is the better root-cause
  // candidate), then sensor id ascending. ranking.front() is the advisor's
  // root-cause verdict.
  std::vector<SensorFinding> ranking;
  std::vector<IncidentSegment> segments;
  std::vector<TimelineEvent> timeline;
};

// Severity formula weights (severity = kMoverWeight * mover_rounds +
// structural + kPresenceWeight * outlier_rounds + kChurnWeight *
// (enter_count + exit_count)). Movers dominate: a sensor that left its
// community itself is causally implicated, a sensor whose peers left it is
// collateral.
inline constexpr double kMoverWeight = 3.0;
inline constexpr double kPresenceWeight = 0.5;
inline constexpr double kChurnWeight = 0.25;

// Scores every sensor over the in-window subset of `records` and builds the
// ranked report. `records` must be ascending in round (the order every
// flight-log surface emits); out-of-window records are ignored. An empty
// window yields an empty report (rounds_scanned == 0).
[[nodiscard]] AdviceReport Advise(
    const std::vector<obs::DecisionRecord>& records,
    const AdviseWindow& window = AdviseWindow());

// Maps a sample (time-axis) range to the round range whose windows intersect
// [sample_from, sample_to], using the window spans the records themselves
// carry — no window/step arithmetic assumptions. When no record's window
// intersects the range, the returned window has first_round > last_round
// (both non-negative), which Advise treats as "select nothing".
[[nodiscard]] AdviseWindow WindowForSamples(
    const std::vector<obs::DecisionRecord>& records, int sample_from,
    int sample_to);

// One-line, byte-deterministic JSON rendering of the report (field order
// fixed, doubles via the shared %.9g policy, no wall-clock facts). The
// /advise HTTP body and cad_explain --advise stdout (modulo one trailing
// newline) are exactly this string.
[[nodiscard]] std::string AdviceReportToJson(const AdviceReport& report);

}  // namespace cad::advisor

#endif  // CAD_ADVISOR_ADVISOR_H_
