#include "check/validators.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>

#include "check/check.h"
#include "core/cad_detector.h"
#include "core/co_appearance.h"
#include "core/engine.h"
#include "core/round_processor.h"
#include "obs/metrics.h"

namespace cad::check {

namespace {

using internal::FormatMessage;

// Records the violation in the registry (global when nullptr) and wraps the
// message in the Status every validator returns.
Status Violation(obs::Registry* registry, const char* artifact,
                 std::string message) {
  obs::Registry& r = obs::ResolveRegistry(registry);
  r.counter("cad_check_violations_total",
            "structural validator violations (all artifacts)")
      .Increment();
  r.counter(std::string("cad_check_") + artifact + "_violations",
            "structural validator violations")
      .Increment();
  return Status::FailedPrecondition(std::move(message));
}

}  // namespace

Status ValidateGraph(const graph::Graph& graph, const GraphBounds& bounds,
                     obs::Registry* registry) {
  const int n = graph.n_vertices();
  // forward/backward half-edge counts + first seen weight per vertex pair
  // (key packs u < v), used for the symmetry and simple-graph checks.
  struct PairEntry {
    int forward = 0;   // entries in the smaller endpoint's list
    int backward = 0;  // entries in the larger endpoint's list
    double weight = 0.0;
  };
  std::unordered_map<int64_t, PairEntry> pairs;
  int64_t directed = 0;
  for (int u = 0; u < n; ++u) {
    if (bounds.max_degree >= 0 && graph.degree(u) > bounds.max_degree) {
      return Violation(registry, "graph",
                       FormatMessage("vertex ", u, " has degree ",
                                     graph.degree(u), " > max_degree ",
                                     bounds.max_degree));
    }
    for (const graph::Graph::Neighbor& nb : graph.neighbors(u)) {
      if (nb.vertex < 0 || nb.vertex >= n) {
        return Violation(registry, "graph",
                         FormatMessage("vertex ", u, " has neighbor ",
                                       nb.vertex, " outside [0, ", n, ")"));
      }
      if (nb.vertex == u) {
        return Violation(registry, "graph",
                         FormatMessage("self-loop at vertex ", u));
      }
      if (!std::isfinite(nb.weight)) {
        return Violation(registry, "graph",
                         FormatMessage("edge (", u, ", ", nb.vertex,
                                       ") has non-finite weight"));
      }
      if (bounds.max_abs_weight >= 0.0 &&
          std::abs(nb.weight) > bounds.max_abs_weight) {
        return Violation(
            registry, "graph",
            FormatMessage("edge (", u, ", ", nb.vertex, ") has |weight| ",
                          std::abs(nb.weight), " > ", bounds.max_abs_weight));
      }
      ++directed;
      const int lo = std::min(u, nb.vertex);
      const int hi = std::max(u, nb.vertex);
      PairEntry& entry =
          pairs[static_cast<int64_t>(lo) * n + hi];
      if (entry.forward == 0 && entry.backward == 0) entry.weight = nb.weight;
      int& side = u == lo ? entry.forward : entry.backward;
      ++side;
      if (side > 1) {
        return Violation(registry, "graph",
                         FormatMessage("duplicate edge (", lo, ", ", hi,
                                       "): graph must be simple"));
      }
      if (entry.weight != nb.weight) {
        return Violation(
            registry, "graph",
            FormatMessage("edge (", lo, ", ", hi, ") weight mismatch: ",
                          entry.weight, " vs ", nb.weight));
      }
    }
  }
  // Deterministic diagnostic: a min-reduction over the pair map picks the
  // smallest asymmetric edge regardless of hash iteration order, so the
  // failure message is byte-stable across runs.
  int64_t asymmetric_key = -1;
  // cad-lint: allow(CL003) min-reduction is independent of iteration order
  for (const auto& [key, entry] : pairs) {
    if (entry.forward != entry.backward &&
        (asymmetric_key < 0 || key < asymmetric_key)) {
      asymmetric_key = key;
    }
  }
  if (asymmetric_key >= 0) {
    const int lo = static_cast<int>(asymmetric_key / n);
    const int hi = static_cast<int>(asymmetric_key % n);
    return Violation(registry, "graph",
                     FormatMessage("asymmetric edge (", lo, ", ", hi,
                                   "): present in only one adjacency list"));
  }
  if (graph.n_edges() * 2 != directed) {
    return Violation(registry, "graph",
                     FormatMessage("edge-count bookkeeping off: n_edges() == ",
                                   graph.n_edges(), " but adjacency holds ",
                                   directed, " half-edges"));
  }
  if (bounds.max_edges >= 0 && graph.n_edges() > bounds.max_edges) {
    return Violation(registry, "graph",
                     FormatMessage("graph has ", graph.n_edges(),
                                   " edges > max_edges ", bounds.max_edges));
  }
  return Status::Ok();
}

Status ValidatePartition(const graph::Partition& partition, int n_vertices,
                         obs::Registry* registry) {
  if (static_cast<int>(partition.community.size()) != n_vertices) {
    return Violation(
        registry, "partition",
        FormatMessage("partition covers ", partition.community.size(),
                      " vertices, expected ", n_vertices));
  }
  if (partition.n_communities < 0 ||
      (n_vertices == 0 && partition.n_communities != 0)) {
    return Violation(registry, "partition",
                     FormatMessage("invalid community count ",
                                   partition.n_communities, " for ",
                                   n_vertices, " vertices"));
  }
  std::vector<int> size(static_cast<size_t>(std::max(partition.n_communities, 0)), 0);
  int next_new_id = 0;
  for (int v = 0; v < n_vertices; ++v) {
    const int c = partition.community[v];
    if (c < 0 || c >= partition.n_communities) {
      return Violation(registry, "partition",
                       FormatMessage("vertex ", v, " assigned community ", c,
                                     " outside [0, ", partition.n_communities,
                                     ")"));
    }
    if (size[static_cast<size_t>(c)] == 0) {
      // First member: canonical numbering assigns ids in order of first
      // appearance (community ids ordered by smallest member vertex).
      if (c != next_new_id) {
        return Violation(
            registry, "partition",
            FormatMessage("non-canonical labeling: community ", c,
                          " first appears (vertex ", v,
                          ") before community ", next_new_id));
      }
      ++next_new_id;
    }
    ++size[static_cast<size_t>(c)];
  }
  if (next_new_id != partition.n_communities) {
    return Violation(
        registry, "partition",
        FormatMessage("empty communities: only ", next_new_id, " of ",
                      partition.n_communities, " ids have members"));
  }
  return Status::Ok();
}

Status ValidateCoAppearance(const std::vector<int>& counts,
                            const std::vector<int>& prev_community,
                            const std::vector<int>& cur_community,
                            obs::Registry* registry) {
  const size_t n = prev_community.size();
  if (cur_community.size() != n || counts.size() != n) {
    return Violation(
        registry, "coappearance",
        FormatMessage("shape mismatch: ", counts.size(), " counts, ",
                      prev_community.size(), " previous communities, ",
                      cur_community.size(), " current communities"));
  }
  // Independent recount of S_r(v): vertices co-appear when they share *both*
  // the previous and the current community, so group by the pair. A group of
  // m members gives each member count m - 1; comparing against this recount
  // catches any asymmetric or stale counting, since co-appearance is
  // symmetric by definition.
  std::unordered_map<int64_t, int> group_size;
  group_size.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    const int64_t key = (static_cast<int64_t>(prev_community[v]) << 32) |
                        static_cast<uint32_t>(cur_community[v]);
    ++group_size[key];
  }
  for (size_t v = 0; v < n; ++v) {
    if (counts[v] < 0 || counts[v] > static_cast<int>(n) - 1) {
      return Violation(
          registry, "coappearance",
          FormatMessage("vertex ", v, " has co-appearance count ", counts[v],
                        " outside [0, ", n - 1, "]"));
    }
    const int64_t key = (static_cast<int64_t>(prev_community[v]) << 32) |
                        static_cast<uint32_t>(cur_community[v]);
    const int expected = group_size[key] - 1;
    if (counts[v] != expected) {
      return Violation(
          registry, "coappearance",
          FormatMessage("vertex ", v, " has co-appearance count ", counts[v],
                        ", recount gives ", expected));
    }
  }
  return Status::Ok();
}

Status ValidateCoAppearanceTracker(const core::CoAppearanceTracker& tracker,
                                   obs::Registry* registry) {
  for (int v = 0; v < tracker.n_vertices(); ++v) {
    const double rc = tracker.ratio(v);
    if (!std::isfinite(rc) || rc < 0.0 || rc > 1.0) {
      return Violation(registry, "coappearance",
                       FormatMessage("vertex ", v, " has RC ratio ", rc,
                                     " outside [0, 1]"));
    }
    if (tracker.history_size(v) > tracker.transitions()) {
      return Violation(
          registry, "coappearance",
          FormatMessage("vertex ", v, " holds ", tracker.history_size(v),
                        " windowed transitions but only ",
                        tracker.transitions(), " were observed"));
    }
  }
  return Status::Ok();
}

Status ValidateRunningStatsValues(int64_t count, double mean, double variance,
                                  double min, double max,
                                  obs::Registry* registry) {
  if (count < 0) {
    return Violation(registry, "running_stats",
                     FormatMessage("negative observation count ", count));
  }
  if (count == 0) return Status::Ok();
  if (!std::isfinite(mean)) {
    return Violation(registry, "running_stats",
                     FormatMessage("non-finite mean after ", count,
                                   " observations"));
  }
  if (!std::isfinite(variance) || variance < 0.0) {
    return Violation(registry, "running_stats",
                     FormatMessage("variance ", variance,
                                   " must be finite and >= 0"));
  }
  // Welford's mean is a convex combination of the observations; allow only
  // rounding-level leakage past the observed extremes.
  const double slack =
      1e-9 * (std::abs(min) + std::abs(max) + 1.0);
  if (mean < min - slack || mean > max + slack) {
    return Violation(registry, "running_stats",
                     FormatMessage("mean ", mean, " outside observed range [",
                                   min, ", ", max, "]"));
  }
  return Status::Ok();
}

Status ValidateRunningStats(const stats::RunningStats& stats,
                            obs::Registry* registry) {
  return ValidateRunningStatsValues(stats.count(), stats.mean(),
                                    stats.variance(), stats.min(), stats.max(),
                                    registry);
}

Status ValidateAssembler(const core::AnomalyAssembler& assembler,
                         int n_sensors, obs::Registry* registry) {
  const std::vector<uint8_t>& flags = assembler.open_sensor_flags();
  if (static_cast<int>(flags.size()) != n_sensors) {
    return Violation(registry, "assembler",
                     FormatMessage("open_sensor_flags covers ", flags.size(),
                                   " sensors, expected ", n_sensors));
  }
  size_t flags_set = 0;
  for (uint8_t f : flags) flags_set += f != 0 ? 1 : 0;
  if (assembler.open_first_round() < 0) {
    if (!assembler.open_sensors().empty() ||
        !assembler.open_movers().empty() || flags_set != 0) {
      return Violation(
          registry, "assembler",
          FormatMessage("closed assembler still holds ",
                        assembler.open_sensors().size(), " sensors, ",
                        assembler.open_movers().size(), " movers and ",
                        flags_set, " set flags"));
    }
  } else {
    if (flags_set != assembler.open_sensors().size()) {
      return Violation(
          registry, "assembler",
          FormatMessage("open assembler has ", flags_set,
                        " flagged sensors but ",
                        assembler.open_sensors().size(), " accumulated"));
    }
    for (int v : assembler.open_sensors()) {
      if (v < 0 || v >= n_sensors) {
        return Violation(registry, "assembler",
                         FormatMessage("open sensor ", v, " outside [0, ",
                                       n_sensors, ")"));
      }
      if (!flags[static_cast<size_t>(v)]) {
        return Violation(
            registry, "assembler",
            FormatMessage("open sensor ", v, " is missing its flag "
                          "(duplicate accumulation?)"));
      }
    }
    for (int v : assembler.open_movers()) {
      if (v < 0 || v >= n_sensors) {
        return Violation(registry, "assembler",
                         FormatMessage("open mover ", v, " outside [0, ",
                                       n_sensors, ")"));
      }
    }
  }
  for (size_t z = 0; z < assembler.anomalies().size(); ++z) {
    const core::Anomaly& anomaly = assembler.anomalies()[z];
    if (anomaly.first_round > anomaly.last_round) {
      return Violation(
          registry, "assembler",
          FormatMessage("anomaly ", z, " has round range [",
                        anomaly.first_round, ", ", anomaly.last_round, "]"));
    }
    if (anomaly.start_time >= anomaly.end_time ||
        anomaly.detection_time < anomaly.start_time ||
        anomaly.detection_time >= anomaly.end_time) {
      return Violation(
          registry, "assembler",
          FormatMessage("anomaly ", z, " has times start=", anomaly.start_time,
                        " detection=", anomaly.detection_time,
                        " end=", anomaly.end_time));
    }
    for (size_t i = 0; i < anomaly.sensors.size(); ++i) {
      const int v = anomaly.sensors[i];
      if (v < 0 || v >= n_sensors ||
          (i > 0 && anomaly.sensors[i - 1] >= v)) {
        return Violation(
            registry, "assembler",
            FormatMessage("anomaly ", z, " sensor list invalid at index ", i,
                          " (value ", v, ")"));
      }
    }
  }
  return Status::Ok();
}

Status ValidateRoundWorkspace(const core::RoundWorkspace& workspace,
                              int n_sensors, obs::Registry* registry) {
  if (workspace.correlation.size() != n_sensors) {
    return Violation(registry, "workspace",
                     FormatMessage("correlation matrix is ",
                                   workspace.correlation.size(), "x",
                                   workspace.correlation.size(),
                                   ", expected ", n_sensors));
  }
  if (workspace.tsg.n_vertices() != n_sensors) {
    return Violation(registry, "workspace",
                     FormatMessage("TSG has ", workspace.tsg.n_vertices(),
                                   " vertices, expected ", n_sensors));
  }
  if (static_cast<int>(workspace.partition.community.size()) != n_sensors) {
    return Violation(registry, "workspace",
                     FormatMessage("partition covers ",
                                   workspace.partition.community.size(),
                                   " vertices, expected ", n_sensors));
  }
  if (static_cast<int>(workspace.cur_flags.size()) != n_sensors) {
    return Violation(registry, "workspace",
                     FormatMessage("outlier flag buffer covers ",
                                   workspace.cur_flags.size(),
                                   " vertices, expected ", n_sensors));
  }
  if (workspace.successor.size() != workspace.successor_count.size()) {
    return Violation(registry, "workspace",
                     FormatMessage("successor tables diverge: ",
                                   workspace.successor.size(), " vs ",
                                   workspace.successor_count.size()));
  }
  return Status::Ok();
}

Status ValidateReport(const core::DetectionReport& report, int n_sensors,
                      obs::Registry* registry) {
  for (size_t i = 0; i < report.rounds.size(); ++i) {
    if (report.rounds[i].round != static_cast<int>(i)) {
      return Violation(
          registry, "report",
          FormatMessage("round trace ", i, " carries round index ",
                        report.rounds[i].round,
                        "; rounds must be sorted, unique and contiguous"));
    }
  }
  if (report.point_scores.size() != report.point_labels.size()) {
    return Violation(
        registry, "report",
        FormatMessage("score/label length mismatch: ",
                      report.point_scores.size(), " scores vs ",
                      report.point_labels.size(), " labels"));
  }
  for (size_t t = 0; t < report.point_scores.size(); ++t) {
    const double s = report.point_scores[t];
    if (!std::isfinite(s) || s < 0.0 || s > 1.0) {
      return Violation(registry, "report",
                       FormatMessage("point score at t=", t, " is ", s,
                                     ", outside [0, 1]"));
    }
    if (report.point_labels[t] > 1) {
      return Violation(registry, "report",
                       FormatMessage("point label at t=", t, " is ",
                                     static_cast<int>(report.point_labels[t]),
                                     ", must be 0 or 1"));
    }
  }
  if (static_cast<int>(report.sensor_labels.size()) != n_sensors) {
    return Violation(registry, "report",
                     FormatMessage("sensor_labels covers ",
                                   report.sensor_labels.size(),
                                   " sensors, expected ", n_sensors));
  }
  for (size_t z = 0; z < report.anomalies.size(); ++z) {
    const core::Anomaly& anomaly = report.anomalies[z];
    if (anomaly.first_round > anomaly.last_round) {
      return Violation(
          registry, "report",
          FormatMessage("anomaly ", z, " has round range [",
                        anomaly.first_round, ", ", anomaly.last_round, "]"));
    }
    if (!report.rounds.empty() &&
        (anomaly.first_round < 0 ||
         anomaly.last_round >= static_cast<int>(report.rounds.size()))) {
      return Violation(
          registry, "report",
          FormatMessage("anomaly ", z, " rounds [", anomaly.first_round, ", ",
                        anomaly.last_round, "] exceed the ",
                        report.rounds.size(), " traced rounds"));
    }
    if (anomaly.start_time >= anomaly.end_time) {
      return Violation(registry, "report",
                       FormatMessage("anomaly ", z, " has time range [",
                                     anomaly.start_time, ", ",
                                     anomaly.end_time, ")"));
    }
    if (anomaly.detection_time < anomaly.start_time ||
        anomaly.detection_time >= anomaly.end_time) {
      return Violation(
          registry, "report",
          FormatMessage("anomaly ", z, " detection time ",
                        anomaly.detection_time, " outside [",
                        anomaly.start_time, ", ", anomaly.end_time, ")"));
    }
    for (size_t i = 0; i < anomaly.sensors.size(); ++i) {
      const int v = anomaly.sensors[i];
      if (v < 0 || v >= n_sensors) {
        return Violation(registry, "report",
                         FormatMessage("anomaly ", z, " names sensor ", v,
                                       " outside [0, ", n_sensors, ")"));
      }
      if (i > 0 && anomaly.sensors[i - 1] >= v) {
        return Violation(
            registry, "report",
            FormatMessage("anomaly ", z,
                          " sensor list must be sorted and unique (",
                          anomaly.sensors[i - 1], " before ", v, ")"));
      }
    }
  }
  return Status::Ok();
}

}  // namespace cad::check
