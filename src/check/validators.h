// cad::check validators — structural invariants of the CAD pipeline,
// checkable at stage boundaries.
//
// Each validator walks one pipeline artifact and returns Status::Ok() when
// every invariant holds, or a FailedPrecondition Status naming the first
// violation precisely (vertex/round/sensor index and the offending values).
// On violation it also increments two counters in the given metrics
// registry (the process-global one when `registry` is nullptr):
//
//   cad_check_violations_total            all validators combined
//   cad_check_<artifact>_violations       per-artifact breakdown
//
// so long-running deployments can alert on silent structural corruption even
// when the abort policy is disabled.
//
// Validators are plain functions over data: they are cheap enough to call
// from tests unconditionally, and the core pipeline invokes them at stage
// boundaries under CAD_CHECK_LEVEL=full via CAD_VALIDATE (see check.h).
#ifndef CAD_CHECK_VALIDATORS_H_
#define CAD_CHECK_VALIDATORS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/louvain.h"
#include "stats/running_stats.h"

namespace cad::obs {
class Registry;
}  // namespace cad::obs

namespace cad::core {
struct DetectionReport;
class CoAppearanceTracker;
class AnomalyAssembler;
struct RoundWorkspace;
}  // namespace cad::core

namespace cad::check {

// Optional structural bounds for ValidateGraph. Negative = unconstrained.
struct GraphBounds {
  // Hard cap on any vertex degree. Note the TSG is a *union* kNN graph, so
  // its degree is not bounded by k; callers with an a-priori degree bound
  // (tests, regular topologies) can still enforce one here.
  int max_degree = -1;
  // Hard cap on the undirected edge count. For a union kNN graph over n
  // vertices this is n * k (each vertex contributes at most k picks).
  int64_t max_edges = -1;
  // Hard cap on |weight|; 1.0 for correlation TSGs. (Louvain's aggregated
  // graphs carry summed weights, so this is opt-in.)
  double max_abs_weight = -1.0;
};

// TSG invariants: adjacency symmetry (every half-edge has its mirror with an
// identical weight), no self-loops, no duplicate edges (simple graph),
// finite weights, endpoint ids in range, edge-count bookkeeping consistent,
// and the optional bounds.
[[nodiscard]] Status ValidateGraph(const graph::Graph& graph, const GraphBounds& bounds = {},
                     obs::Registry* registry = nullptr);

// Louvain partition invariants: exactly one community per vertex (the vector
// *is* the disjoint cover — what can break is shape and labeling), ids dense
// in [0, n_communities), every community non-empty, and canonical numbering
// (community c's first member appears before community c+1's first member,
// the determinism contract louvain.h documents).
[[nodiscard]] Status ValidatePartition(const graph::Partition& partition, int n_vertices,
                         obs::Registry* registry = nullptr);

// Co-appearance invariants for one observed transition: `counts` must equal
// an independent recomputation of S_r(v) from the two community vectors
// (co-appearance is symmetric by definition, so the recount catches any
// asymmetric corruption), and every count must lie in [0, n-1].
[[nodiscard]] Status ValidateCoAppearance(const std::vector<int>& counts,
                            const std::vector<int>& prev_community,
                            const std::vector<int>& cur_community,
                            obs::Registry* registry = nullptr);

// Tracker-level co-appearance invariants after any number of rounds: every
// RC ratio finite in [0, 1], and the windowed history never longer than the
// observed transition count.
[[nodiscard]] Status ValidateCoAppearanceTracker(const core::CoAppearanceTracker& tracker,
                                   obs::Registry* registry = nullptr);

// Raw-moment form used by tests to inject broken values (RunningStats itself
// has no setters): count >= 0, finite mean, variance >= 0, and for count > 0
// mean within [min, max].
[[nodiscard]] Status ValidateRunningStatsValues(int64_t count, double mean, double variance,
                                  double min, double max,
                                  obs::Registry* registry = nullptr);

// 3-sigma accumulator invariants (Algorithm 2's mu/sigma state).
[[nodiscard]] Status ValidateRunningStats(const stats::RunningStats& stats,
                            obs::Registry* registry = nullptr);

// Anomaly-assembler state-machine invariants, checked after every engine
// round: the open/closed state is internally consistent (closed => no
// accumulated candidate sensors and a clean flag set; open => the flag set
// is exactly the membership structure of open_sensors), and every closed
// anomaly is well-formed (ordered round and time ranges, detection time
// inside the footprint, sensors strictly ascending and in range).
[[nodiscard]] Status ValidateAssembler(const core::AnomalyAssembler& assembler,
                         int n_sensors, obs::Registry* registry = nullptr);

// Round-workspace size invariants after a finished round: every reused
// buffer in core::RoundWorkspace must be shaped for exactly n_sensors
// vertices (a stale size would silently mix rounds of different problems).
[[nodiscard]] Status ValidateRoundWorkspace(const core::RoundWorkspace& workspace,
                              int n_sensors, obs::Registry* registry = nullptr);

// DetectionReport invariants: round traces sorted/unique/contiguous from 0,
// per-point score/label series the same length with scores in [0, 1] and
// labels binary, sensor ids in anomalies and sensor_labels in range and
// each anomaly's sensor list sorted/unique, round and time ranges ordered.
[[nodiscard]] Status ValidateReport(const core::DetectionReport& report, int n_sensors,
                      obs::Registry* registry = nullptr);

}  // namespace cad::check

#endif  // CAD_CHECK_VALIDATORS_H_
