// cad::check — contract/invariant macros for the CAD pipeline.
//
// CAD's correctness hinges on structural invariants the type system cannot
// express (symmetric TSGs, disjoint Louvain covers, non-negative running
// variance, ...). This header provides the enforcement primitives; the
// structural validators themselves live in check/validators.h.
//
// Macro catalog
//   CAD_CHECK(cond, msg...)   hard invariant; active at level debug and full.
//   CAD_DCHECK(cond, msg...)  debug-only invariant for hot paths; active at
//                             level full, and at level debug only in
//                             !NDEBUG builds (so RelWithDebInfo pays nothing).
//   CAD_ENSURE(cond, Code, msg...)
//                             Status-propagating precondition: returns
//                             ::cad::Status::Code(message) from the enclosing
//                             function when cond is false. NEVER compiled
//                             out — it is error handling, not assertion.
//   CAD_FATAL(msg...)         unconditional [[noreturn]] failure (unreachable
//                             branches, exhaustive-switch fallthroughs).
//                             NEVER compiled out.
//   CAD_VALIDATE(expr)        runs a Status-returning validator and fails a
//                             check on error; active only at level full.
//                             Compiled to an *unevaluated* no-op otherwise.
//
// Check levels (CMake option CAD_CHECK_LEVEL=off|debug|full, default debug,
// surfaced here as the CAD_CHECK_LEVEL preprocessor value 0/1/2):
//   off   (0)  every macro except CAD_ENSURE/CAD_FATAL compiles to an
//              unevaluated no-op — zero instructions on the hot path.
//              Benchmark builds only; see the contract below.
//   debug (1)  CAD_CHECK is one predictable branch; CAD_DCHECK follows
//              NDEBUG; validators off. The default everywhere.
//   full  (2)  everything on, including the stage-boundary structural
//              validators in core/. For CI, fuzzing and soak runs.
//
// CONTRACT: condition expressions passed to CAD_CHECK/CAD_DCHECK must be
// side-effect free. At level off the condition is *not evaluated* (it sits
// in an unevaluated sizeof so typos still fail to compile), so a condition
// that does work — `CAD_CHECK(Fit(x).ok(), ...)` — silently loses that work.
// Hoist the call: `Status st = Fit(x); CAD_CHECK(st.ok(), ...)`. This is the
// classic assert()-under-NDEBUG hazard; the unevaluated-sizeof expansion
// keeps it from also being a silent *compile* rot hazard.
//
// Failure policy: failed checks format their message, report source
// location, bump cad::check::failure_count(), and call the installed
// failure handler (default: write to stderr and abort()). Tests may install
// a throwing handler via ScopedFailureHandler to observe the exact message
// without dying.
#ifndef CAD_CHECK_CHECK_H_
#define CAD_CHECK_CHECK_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

// The build system injects CAD_CHECK_LEVEL as 0 (off), 1 (debug) or 2
// (full); default to debug for standalone compilation.
#ifndef CAD_CHECK_LEVEL
#define CAD_CHECK_LEVEL 1
#endif

namespace cad::check {

// Source location + stringified condition of a failed check.
struct CheckContext {
  const char* file = "";
  int line = 0;
  const char* function = "";
  const char* expression = "";
};

// Handler invoked with the formatted failure line. It may throw (test
// harnesses) or log-and-return; if it returns, the process aborts — a failed
// CAD_CHECK never resumes execution.
using FailureHandler = void (*)(const CheckContext&, const std::string& message);

namespace internal {

inline std::atomic<FailureHandler>& HandlerSlot() {
  static std::atomic<FailureHandler> slot{nullptr};
  return slot;
}

inline std::atomic<uint64_t>& FailureCount() {
  static std::atomic<uint64_t> count{0};
  return count;
}

// Streams every argument into one string; CAD_CHECK(cond) with no message
// arguments resolves to the zero-argument overload.
inline std::string FormatMessage() { return std::string(); }

template <typename... Args>
std::string FormatMessage(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}

}  // namespace internal

// Installs `handler` process-wide; nullptr restores the default
// (stderr + abort). Returns the previous handler.
inline FailureHandler SetFailureHandler(FailureHandler handler) {
  return internal::HandlerSlot().exchange(handler);
}

// ---- failure dump hooks ---------------------------------------------------
//
// Components holding crash-relevant state (the flight recorder in
// obs/flight_recorder.h is the canonical one) register a dump hook;
// FailCheck runs every registered hook once — before the failure handler —
// so the state reaches disk even though a failed check never resumes.
// Hooks must be safe to run on the failing thread (which may hold that
// component's locks) and must not fail checks themselves; a reentrant
// failure skips the hooks instead of recursing.

using FailureDumpHook = void (*)(void* ctx);

namespace internal {

struct DumpHookSlot {
  FailureDumpHook hook = nullptr;
  void* ctx = nullptr;
};

inline std::mutex& DumpHookMutex() {
  static std::mutex mutex;
  return mutex;
}

inline std::vector<DumpHookSlot>& DumpHooks() {
  static std::vector<DumpHookSlot> hooks;
  return hooks;
}

inline void RunFailureDumpHooks() {
  thread_local bool dumping = false;
  if (dumping) return;  // a hook failed a check; do not recurse
  dumping = true;
  std::vector<DumpHookSlot> hooks;
  {
    std::lock_guard<std::mutex> lock(DumpHookMutex());
    hooks = DumpHooks();
  }
  for (const DumpHookSlot& slot : hooks) slot.hook(slot.ctx);
  dumping = false;
}

}  // namespace internal

// Registers a (hook, ctx) pair; duplicate pairs register once.
inline void AddFailureDumpHook(FailureDumpHook hook, void* ctx) {
  if (hook == nullptr) return;
  // cad-lint: allow(CL010) cold-path hook registration at component startup
  std::lock_guard<std::mutex> lock(internal::DumpHookMutex());
  for (const internal::DumpHookSlot& slot : internal::DumpHooks()) {
    if (slot.hook == hook && slot.ctx == ctx) return;
  }
  internal::DumpHooks().push_back({hook, ctx});
}

inline void RemoveFailureDumpHook(FailureDumpHook hook, void* ctx) {
  std::lock_guard<std::mutex> lock(internal::DumpHookMutex());
  auto& hooks = internal::DumpHooks();
  for (size_t i = 0; i < hooks.size(); ++i) {
    if (hooks[i].hook == hook && hooks[i].ctx == ctx) {
      hooks.erase(hooks.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

// Number of check failures observed so far (only visible >0 when a
// non-aborting handler is installed, e.g. in tests).
inline uint64_t failure_count() {
  return internal::FailureCount().load(std::memory_order_relaxed);
}

// Renders "CAD_CHECK failed at file:line in func: `expr` — message".
inline std::string FormatFailure(const CheckContext& ctx,
                                 const std::string& message) {
  std::ostringstream out;
  out << "CAD_CHECK failed at " << ctx.file << ":" << ctx.line << " in "
      << ctx.function << ": `" << ctx.expression << "`";
  if (!message.empty()) out << " — " << message;
  return out.str();
}

// Out-of-line slow path shared by every check macro. Marked noreturn: the
// installed handler may throw, but plain return falls through to abort().
[[noreturn]] inline void FailCheck(const CheckContext& ctx,
                                   const std::string& message) {
  internal::FailureCount().fetch_add(1, std::memory_order_relaxed);
  internal::RunFailureDumpHooks();
  if (FailureHandler handler = internal::HandlerSlot().load()) {
    handler(ctx, message);  // may throw (test harnesses)
  } else {
    std::cerr << FormatFailure(ctx, message) << std::endl;
  }
  std::abort();
}

// RAII failure-handler installation for tests.
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler)
      : previous_(SetFailureHandler(handler)) {}
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;
  ~ScopedFailureHandler() { SetFailureHandler(previous_); }

 private:
  FailureHandler previous_;
};

}  // namespace cad::check

#define CAD_CHECK_INTERNAL_FAIL(expr_str, ...)                             \
  ::cad::check::FailCheck(                                                 \
      ::cad::check::CheckContext{__FILE__, __LINE__, __func__, expr_str},  \
      ::cad::check::internal::FormatMessage(__VA_ARGS__))

// Active check: one predictable branch on success.
#define CAD_CHECK_INTERNAL_ACTIVE(cond, ...)                          \
  do {                                                                \
    if (!(cond)) [[unlikely]] {                                       \
      CAD_CHECK_INTERNAL_FAIL(#cond __VA_OPT__(, ) __VA_ARGS__);      \
    }                                                                 \
  } while (false)

// Disabled check: zero runtime cost, but the condition stays inside an
// unevaluated operand so it must still compile (no bit rot).
#define CAD_CHECK_INTERNAL_NOOP(cond, ...) \
  do {                                     \
    (void)sizeof(!(cond));                 \
  } while (false)

#if CAD_CHECK_LEVEL >= 1
#define CAD_CHECK(cond, ...) \
  CAD_CHECK_INTERNAL_ACTIVE(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define CAD_CHECK(cond, ...) CAD_CHECK_INTERNAL_NOOP(cond)
#endif

#if CAD_CHECK_LEVEL >= 2 || (CAD_CHECK_LEVEL >= 1 && !defined(NDEBUG))
#define CAD_DCHECK(cond, ...) \
  CAD_CHECK_INTERNAL_ACTIVE(cond __VA_OPT__(, ) __VA_ARGS__)
#else
#define CAD_DCHECK(cond, ...) CAD_CHECK_INTERNAL_NOOP(cond)
#endif

// Unconditional failure for unreachable code; never compiled out so the
// enclosing function needs no dead return path at any check level.
#define CAD_FATAL(...) \
  CAD_CHECK_INTERNAL_FAIL("unreachable" __VA_OPT__(, ) __VA_ARGS__)

// Status-propagating precondition. `code` is a ::cad::Status factory name
// (InvalidArgument, FailedPrecondition, ...); the enclosing function must
// return ::cad::Status or ::cad::Result<T>. Always active.
#define CAD_ENSURE(cond, code, ...)                                    \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      return ::cad::Status::code(                                      \
          ::cad::check::internal::FormatMessage(__VA_ARGS__));         \
    }                                                                  \
  } while (false)

// Stage-boundary validator hook: `expr` is a ::cad::Status-returning call
// (typically a check/validators.h function). Level full turns violations
// into check failures; below that the call is not evaluated.
#if CAD_CHECK_LEVEL >= 2
#define CAD_VALIDATE(expr)                               \
  do {                                                   \
    ::cad::Status cad_validate_status = (expr);          \
    if (!cad_validate_status.ok()) [[unlikely]] {        \
      CAD_CHECK_INTERNAL_FAIL(#expr,                     \
                              cad_validate_status.ToString()); \
    }                                                    \
  } while (false)
#define CAD_VALIDATE_ENABLED 1
#else
#define CAD_VALIDATE(expr)     \
  do {                         \
    (void)sizeof((expr).ok()); \
  } while (false)
#define CAD_VALIDATE_ENABLED 0
#endif

#endif  // CAD_CHECK_CHECK_H_
