#include "core/co_appearance.h"

#include "check/check.h"

#include <cstdint>
#include <unordered_map>

namespace cad::core {

std::vector<int> CoAppearanceNumbers(const std::vector<int>& prev_community,
                                     const std::vector<int>& cur_community) {
  CAD_CHECK(prev_community.size() == cur_community.size(),
            "community vectors differ in size");
  const int n = static_cast<int>(cur_community.size());

  // Vertices with identical (prev, cur) community pairs co-appear with each
  // other and with nobody else: S_r(v) = |group(v)| - 1.
  std::unordered_map<int64_t, int> group_size;
  group_size.reserve(n);
  auto key = [&](int v) {
    return (static_cast<int64_t>(prev_community[v]) << 32) |
           static_cast<uint32_t>(cur_community[v]);
  };
  for (int v = 0; v < n; ++v) ++group_size[key(v)];

  std::vector<int> s(n);
  for (int v = 0; v < n; ++v) s[v] = group_size[key(v)] - 1;
  return s;
}

std::vector<int> CoAppearanceTracker::Observe(
    const std::vector<int>& prev_community,
    const std::vector<int>& cur_community) {
  CAD_CHECK(static_cast<int>(cur_community.size()) == n_vertices_,
            "vertex count mismatch");
  std::vector<int> s = CoAppearanceNumbers(prev_community, cur_community);

  // Previous-round community sizes for the community normalization.
  std::unordered_map<int, int> prev_size;
  for (int c : prev_community) ++prev_size[c];

  for (int v = 0; v < n_vertices_; ++v) {
    double ratio;
    if (options_.normalization == RcNormalization::kGlobal) {
      ratio = n_vertices_ > 1
                  ? static_cast<double>(s[v]) / (n_vertices_ - 1)
                  : 1.0;
    } else {
      const int denom = prev_size[prev_community[v]] - 1;
      // A singleton has nobody to co-appear with: ratio 0, exactly as the
      // literal Eq. 3 gives (S = 0). Persistently isolated vertices become
      // persistent outliers, which is harmless — only outlier-set
      // *transitions* feed the variation count n_r.
      ratio = denom > 0 ? static_cast<double>(s[v]) / denom : 0.0;
    }
    history_[v].push_back(ratio);
    sums_[v] += ratio;
    if (options_.window > 0 &&
        static_cast<int>(history_[v].size()) > options_.window) {
      sums_[v] -= history_[v].front();
      history_[v].pop_front();
    }
  }
  ++transitions_;
  return s;
}

}  // namespace cad::core
