#include "core/co_appearance.h"

#include "check/check.h"

#include <cstdint>
#include <unordered_map>

namespace cad::core {

std::vector<int> CoAppearanceNumbers(const std::vector<int>& prev_community,
                                     const std::vector<int>& cur_community) {
  CAD_CHECK(prev_community.size() == cur_community.size(),
            "community vectors differ in size");
  const int n = static_cast<int>(cur_community.size());

  // Vertices with identical (prev, cur) community pairs co-appear with each
  // other and with nobody else: S_r(v) = |group(v)| - 1.
  std::unordered_map<int64_t, int> group_size;
  group_size.reserve(n);
  auto key = [&](int v) {
    return (static_cast<int64_t>(prev_community[v]) << 32) |
           static_cast<uint32_t>(cur_community[v]);
  };
  for (int v = 0; v < n; ++v) ++group_size[key(v)];

  std::vector<int> s(n);
  for (int v = 0; v < n; ++v) s[v] = group_size[key(v)] - 1;
  return s;
}

const std::vector<int>& CoAppearanceTracker::Observe(
    const std::vector<int>& prev_community,
    const std::vector<int>& cur_community) CAD_REALTIME_AUDITED {
  CAD_CHECK(static_cast<int>(cur_community.size()) == n_vertices_,
            "vertex count mismatch");
  CAD_CHECK(prev_community.size() == cur_community.size(),
            "community vectors differ in size");
  const int n = n_vertices_;

  // S_r(v) = |group(v)| - 1 where groups share the (prev, cur) community
  // pair. Counting is sort-based instead of hashed so the hot path reuses
  // flat buffers; the counts are integers, so the method cannot change them.
  keys_.resize(n);
  for (int v = 0; v < n; ++v) {
    keys_[v] = (static_cast<int64_t>(prev_community[v]) << 32) |
               static_cast<uint32_t>(cur_community[v]);
  }
  sorted_keys_.assign(keys_.begin(), keys_.end());
  std::sort(sorted_keys_.begin(), sorted_keys_.end());
  s_.resize(n);
  for (int v = 0; v < n; ++v) {
    const auto [lo, hi] = std::equal_range(sorted_keys_.begin(),
                                           sorted_keys_.end(), keys_[v]);
    s_[v] = static_cast<int>(hi - lo) - 1;
  }

  // Previous-round community sizes for the community normalization; ids are
  // dense (Louvain canonicalizes them), so a flat table suffices.
  int max_prev = 0;
  for (int c : prev_community) {
    CAD_DCHECK(c >= 0, "negative community id");
    max_prev = std::max(max_prev, c);
  }
  prev_size_.assign(max_prev + 1, 0);
  for (int c : prev_community) ++prev_size_[c];

  const int window = options_.window;
  const int slot = window > 0 ? transitions_ % window : 0;
  const bool evict = window > 0 && transitions_ >= window;
  for (int v = 0; v < n; ++v) {
    double ratio;
    if (options_.normalization == RcNormalization::kGlobal) {
      ratio = n_vertices_ > 1
                  ? static_cast<double>(s_[v]) / (n_vertices_ - 1)
                  : 1.0;
    } else {
      const int denom = prev_size_[prev_community[v]] - 1;
      // A singleton has nobody to co-appear with: ratio 0, exactly as the
      // literal Eq. 3 gives (S = 0). Persistently isolated vertices become
      // persistent outliers, which is harmless — only outlier-set
      // *transitions* feed the variation count n_r.
      ratio = denom > 0 ? static_cast<double>(s_[v]) / denom : 0.0;
    }
    // Same FP order as the deque implementation: add the new ratio first,
    // then subtract the evicted one.
    sums_[v] += ratio;
    if (evict) {
      sums_[v] -= ring_[static_cast<size_t>(v) * window + slot];
    }
    if (window > 0) ring_[static_cast<size_t>(v) * window + slot] = ratio;
  }
  ++transitions_;
  return s_;
}

}  // namespace cad::core
