#include "core/report_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cad::core {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendIntArray(std::string* out, const std::vector<int>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *out += ',';
    *out += std::to_string(values[i]);
  }
  *out += ']';
}

}  // namespace

std::string ReportToJson(const DetectionReport& report,
                         const ReportJsonOptions& options) {
  std::string json = "{\"anomalies\":[";
  for (size_t i = 0; i < report.anomalies.size(); ++i) {
    const Anomaly& anomaly = report.anomalies[i];
    if (i > 0) json += ',';
    json += "{\"start\":" + std::to_string(anomaly.start_time);
    json += ",\"end\":" + std::to_string(anomaly.end_time);
    json += ",\"detection_time\":" + std::to_string(anomaly.detection_time);
    json += ",\"first_round\":" + std::to_string(anomaly.first_round);
    json += ",\"last_round\":" + std::to_string(anomaly.last_round);
    json += ",\"sensors\":";
    AppendIntArray(&json, anomaly.sensors);
    json += '}';
  }
  json += "],\"rounds_processed\":" + std::to_string(report.rounds.size());
  json += ",\"warmup_seconds\":";
  AppendDouble(&json, report.warmup_seconds);
  json += ",\"detect_seconds\":";
  AppendDouble(&json, report.detect_seconds);
  json += ",\"seconds_per_round\":";
  AppendDouble(&json, report.seconds_per_round);
  json += ",\"round_latency\":{\"mean\":";
  AppendDouble(&json, report.round_latency.mean);
  json += ",\"p50\":";
  AppendDouble(&json, report.round_latency.p50);
  json += ",\"p95\":";
  AppendDouble(&json, report.round_latency.p95);
  json += ",\"p99\":";
  AppendDouble(&json, report.round_latency.p99);
  json += '}';

  if (options.include_rounds) {
    json += ",\"rounds\":[";
    for (size_t r = 0; r < report.rounds.size(); ++r) {
      const RoundTrace& trace = report.rounds[r];
      if (r > 0) json += ',';
      json += "{\"round\":" + std::to_string(trace.round);
      json += ",\"start\":" + std::to_string(trace.start_time);
      json += ",\"n_variations\":" + std::to_string(trace.n_variations);
      json += ",\"n_outliers\":" + std::to_string(trace.n_outliers);
      json += ",\"n_communities\":" + std::to_string(trace.n_communities);
      json += ",\"mu\":";
      AppendDouble(&json, trace.mu);
      json += ",\"sigma\":";
      AppendDouble(&json, trace.sigma);
      json += std::string(",\"abnormal\":") + (trace.abnormal ? "true" : "false");
      json += '}';
    }
    json += ']';
  }
  if (options.include_scores) {
    json += ",\"scores\":[";
    for (size_t t = 0; t < report.point_scores.size(); ++t) {
      if (t > 0) json += ',';
      AppendDouble(&json, report.point_scores[t]);
    }
    json += ']';
  }
  json += '}';
  return json;
}

Status WriteReportJson(const DetectionReport& report, const std::string& path,
                       const ReportJsonOptions& options) {
  std::ofstream file(path);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  file << ReportToJson(report, options) << '\n';
  if (!file) return Status::IoError("write failed for '" + path + "'");
  return Status::Ok();
}

}  // namespace cad::core
