#include "core/streaming.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "advisor/advisor.h"
#include "check/check.h"
#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/json_util.h"

namespace cad::core {

StreamingCad::StreamingCad(int n_sensors, const CadOptions& options)
    : n_sensors_(n_sensors),
      options_(options),
      metrics_(obs::PipelineMetrics::For(
          obs::ResolveRegistry(options.metrics_registry))),
      engine_(n_sensors, options),
      ingest_(n_sensors, options.window, options.step),
      window_(n_sensors, options.window),
      // Last in initialization order: every member its handlers touch
      // (mu_, engine_, the counters) is already alive when the serve thread
      // starts.
      server_(MakeServer(this)) {}

std::unique_ptr<obs::ExpositionServer> StreamingCad::MakeServer(
    StreamingCad* self) {
  if (self->options_.exposition_port < 0) return nullptr;
  obs::ExpositionServer::Handlers handlers;
  handlers.metrics_text = [self] {
    return obs::ToPrometheusText(self->TelemetrySnapshot());
  };
  handlers.healthz_json = [self] { return self->HealthJson(); };
  handlers.explain_json = [self](int round) { return self->ExplainJson(round); };
  handlers.advise_json = [self](int from_round, int to_round) {
    return self->AdviseJson(from_round, to_round);
  };
  Result<std::unique_ptr<obs::ExpositionServer>> server =
      obs::ExpositionServer::Start(
          static_cast<uint16_t>(self->options_.exposition_port),
          std::move(handlers));
  if (!server.ok()) {
    // Exposition is opt-in telemetry; a bind failure must not take the
    // detector down with it.
    std::fprintf(stderr, "StreamingCad: exposition server disabled: %s\n",
                 server.status().ToString().c_str());
    return nullptr;
  }
  return std::move(server).value();
}

obs::Snapshot StreamingCad::TelemetrySnapshot() const {
  common::MutexLock lock(mu_);
  return obs::ResolveRegistry(options_.metrics_registry).TakeSnapshot();
}

std::optional<obs::DecisionProvenance> StreamingCad::Explain(
    int round) const {
  common::MutexLock lock(mu_);
  return engine_.Explain(round);
}

std::string StreamingCad::DumpFlightLogJsonl() const {
  common::MutexLock lock(mu_);
  std::string jsonl;
  engine_.recorder().DumpJsonl(&jsonl);
  return jsonl;
}

std::vector<obs::DecisionRecord> StreamingCad::FlightLog() const {
  common::MutexLock lock(mu_);
  return engine_.recorder().Records();
}

std::string StreamingCad::AdviseJson(int from_round, int to_round) const {
  std::vector<obs::DecisionRecord> records = FlightLog();
  advisor::AdviseWindow window;
  window.first_round = from_round;
  window.last_round = to_round;
  const advisor::AdviceReport report = advisor::Advise(records, window);
  if (report.rounds_scanned == 0) return std::string();  // 404 upstream
  return advisor::AdviceReportToJson(report);
}

StreamHealth StreamingCad::Health() const {
  common::MutexLock lock(mu_);
  StreamHealth health;
  health.samples_seen = ingest_.samples_seen();
  health.rounds = engine_.rounds();
  health.anomaly_open = engine_.anomaly_open();
  const obs::FlightRecorder& recorder = engine_.recorder();
  health.last_round_age_seconds = recorder.seconds_since_last_record();
  health.rounds_per_second = recorder.recent_rounds_per_second();
  health.flight_ring_capacity = recorder.capacity();
  health.flight_ring_size = recorder.size();
  return health;
}

std::string StreamingCad::HealthJson() const {
  const StreamHealth health = Health();
  std::string json = "{\"samples_seen\":" +
                     std::to_string(health.samples_seen);
  json += ",\"rounds\":" + std::to_string(health.rounds);
  json += ",\"anomaly_open\":";
  json += health.anomaly_open ? "true" : "false";
  json += ",\"last_round_age_seconds\":";
  obs::AppendJsonNumber(&json, health.last_round_age_seconds);  // inf -> null
  json += ",\"rounds_per_second\":";
  obs::AppendJsonNumber(&json, health.rounds_per_second);
  json += ",\"flight_ring_capacity\":" +
          std::to_string(health.flight_ring_capacity);
  json += ",\"flight_ring_size\":" + std::to_string(health.flight_ring_size);
  json += '}';
  return json;
}

std::string StreamingCad::ExplainJson(int round) const {
  const std::optional<obs::DecisionProvenance> provenance = Explain(round);
  if (!provenance.has_value()) return std::string();  // 404 upstream
  return obs::ProvenanceToJson(*provenance);
}

Status StreamingCad::WarmUp(const ts::MultivariateSeries& historical) {
  common::MutexLock lock(mu_);
  if (ingest_.samples_seen() > 0) {
    return Status::FailedPrecondition("WarmUp must precede the first Push");
  }
  if (historical.n_sensors() != n_sensors_) {
    return Status::InvalidArgument("historical sensor count mismatch");
  }
  return engine_.WarmUp(historical);
}

Result<std::optional<StreamEvent>> StreamingCad::Push(
    std::span<const double> readings) {
  StreamEvent event;
  Result<bool> completed = Push(readings, &event);
  if (!completed.ok()) return completed.status();
  if (!completed.value()) return std::optional<StreamEvent>{};
  return std::optional<StreamEvent>{std::move(event)};
}

Result<bool> StreamingCad::Push(std::span<const double> readings,
                                StreamEvent* event) {
  if (static_cast<int>(readings.size()) != n_sensors_) {
    return Status::InvalidArgument("sample has " +
                                   std::to_string(readings.size()) +
                                   " readings, expected " +
                                   std::to_string(n_sensors_));
  }
  common::MutexLock lock(mu_);
  const bool round_due = ingest_.Append(readings);
  metrics_.stream_samples_total->Increment();
  if (!round_due) return false;
  RunRound(event);
  return true;
}

void StreamingCad::RunRound(StreamEvent* event) {
  Stopwatch round_watch;
  // Materialize the ring buffer into the reused window series (sensor-major).
  ingest_.MaterializeInto(&window_);

  // The engine handles the decision, mu/sigma update and anomaly assembly;
  // this driver only supplies the window's position on the stream's time
  // axis: [samples_seen - window, samples_seen).
  const EngineRound round = engine_.Step(window_, 0,
                                         ingest_.window_start_time(),
                                         ingest_.window_end_time());

  event->round = round.round;
  event->time_index = ingest_.samples_seen() - 1;
  event->n_variations = round.output->n_variations;
  event->abnormal = round.abnormal;
  // assign() into the caller's event reuses its vector capacity, so a
  // steady-state Push stays allocation-free end to end (the std::optional
  // overload pays for fresh vectors instead).
  event->outliers.assign(round.output->outliers.begin(),
                         round.output->outliers.end());
  event->entered.assign(round.output->entered.begin(),
                        round.output->entered.end());
  event->entered_movers.assign(round.output->entered_movers.begin(),
                               round.output->entered_movers.end());
  event->mu = round.mu;
  event->sigma = round.sigma;
  event->round_seconds = round_watch.ElapsedSeconds();
}

}  // namespace cad::core
