#include "core/streaming.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "advisor/advisor.h"
#include "check/check.h"
#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/json_util.h"

namespace cad::core {

StreamingCad::StreamingCad(int n_sensors, const CadOptions& options)
    : n_sensors_(n_sensors),
      options_(options),
      metrics_(obs::PipelineMetrics::For(
          obs::ResolveRegistry(options.metrics_registry))),
      engine_(n_sensors, options),
      buffer_(static_cast<size_t>(options.window) * n_sensors, 0.0),
      window_(n_sensors, options.window),
      // Last in initialization order: every member its handlers touch
      // (mu_, engine_, the counters) is already alive when the serve thread
      // starts.
      server_(MakeServer(this)) {}

std::unique_ptr<obs::ExpositionServer> StreamingCad::MakeServer(
    StreamingCad* self) {
  if (self->options_.exposition_port < 0) return nullptr;
  obs::ExpositionServer::Handlers handlers;
  handlers.metrics_text = [self] {
    return obs::ToPrometheusText(self->TelemetrySnapshot());
  };
  handlers.healthz_json = [self] { return self->HealthJson(); };
  handlers.explain_json = [self](int round) { return self->ExplainJson(round); };
  handlers.advise_json = [self](int from_round, int to_round) {
    return self->AdviseJson(from_round, to_round);
  };
  Result<std::unique_ptr<obs::ExpositionServer>> server =
      obs::ExpositionServer::Start(
          static_cast<uint16_t>(self->options_.exposition_port),
          std::move(handlers));
  if (!server.ok()) {
    // Exposition is opt-in telemetry; a bind failure must not take the
    // detector down with it.
    std::fprintf(stderr, "StreamingCad: exposition server disabled: %s\n",
                 server.status().ToString().c_str());
    return nullptr;
  }
  return std::move(server).value();
}

obs::Snapshot StreamingCad::TelemetrySnapshot() const {
  common::MutexLock lock(mu_);
  return obs::ResolveRegistry(options_.metrics_registry).TakeSnapshot();
}

std::optional<obs::DecisionProvenance> StreamingCad::Explain(
    int round) const {
  common::MutexLock lock(mu_);
  return engine_.Explain(round);
}

std::string StreamingCad::DumpFlightLogJsonl() const {
  common::MutexLock lock(mu_);
  std::string jsonl;
  engine_.recorder().DumpJsonl(&jsonl);
  return jsonl;
}

std::vector<obs::DecisionRecord> StreamingCad::FlightLog() const {
  common::MutexLock lock(mu_);
  return engine_.recorder().Records();
}

std::string StreamingCad::AdviseJson(int from_round, int to_round) const {
  std::vector<obs::DecisionRecord> records = FlightLog();
  advisor::AdviseWindow window;
  window.first_round = from_round;
  window.last_round = to_round;
  const advisor::AdviceReport report = advisor::Advise(records, window);
  if (report.rounds_scanned == 0) return std::string();  // 404 upstream
  return advisor::AdviceReportToJson(report);
}

StreamHealth StreamingCad::Health() const {
  common::MutexLock lock(mu_);
  StreamHealth health;
  health.samples_seen = samples_seen_;
  health.rounds = engine_.rounds();
  health.anomaly_open = engine_.anomaly_open();
  const obs::FlightRecorder& recorder = engine_.recorder();
  health.last_round_age_seconds = recorder.seconds_since_last_record();
  health.rounds_per_second = recorder.recent_rounds_per_second();
  health.flight_ring_capacity = recorder.capacity();
  health.flight_ring_size = recorder.size();
  return health;
}

std::string StreamingCad::HealthJson() const {
  const StreamHealth health = Health();
  std::string json = "{\"samples_seen\":" +
                     std::to_string(health.samples_seen);
  json += ",\"rounds\":" + std::to_string(health.rounds);
  json += ",\"anomaly_open\":";
  json += health.anomaly_open ? "true" : "false";
  json += ",\"last_round_age_seconds\":";
  obs::AppendJsonNumber(&json, health.last_round_age_seconds);  // inf -> null
  json += ",\"rounds_per_second\":";
  obs::AppendJsonNumber(&json, health.rounds_per_second);
  json += ",\"flight_ring_capacity\":" +
          std::to_string(health.flight_ring_capacity);
  json += ",\"flight_ring_size\":" + std::to_string(health.flight_ring_size);
  json += '}';
  return json;
}

std::string StreamingCad::ExplainJson(int round) const {
  const std::optional<obs::DecisionProvenance> provenance = Explain(round);
  if (!provenance.has_value()) return std::string();  // 404 upstream
  return obs::ProvenanceToJson(*provenance);
}

Status StreamingCad::WarmUp(const ts::MultivariateSeries& historical) {
  common::MutexLock lock(mu_);
  if (samples_seen_ > 0) {
    return Status::FailedPrecondition("WarmUp must precede the first Push");
  }
  if (historical.n_sensors() != n_sensors_) {
    return Status::InvalidArgument("historical sensor count mismatch");
  }
  return engine_.WarmUp(historical);
}

bool StreamingCad::RoundReady() const {
  if (samples_seen_ < options_.window) return false;
  return (samples_seen_ - options_.window) % options_.step == 0;
}

Result<std::optional<StreamEvent>> StreamingCad::Push(
    std::span<const double> readings) {
  if (static_cast<int>(readings.size()) != n_sensors_) {
    return Status::InvalidArgument("sample has " +
                                   std::to_string(readings.size()) +
                                   " readings, expected " +
                                   std::to_string(n_sensors_));
  }
  common::MutexLock lock(mu_);
  // Overwrite the oldest slot.
  const int slot = (buffer_head_ + buffered_) % options_.window;
  std::copy(readings.begin(), readings.end(),
            buffer_.begin() + static_cast<size_t>(slot) * n_sensors_);
  if (buffered_ < options_.window) {
    ++buffered_;
  } else {
    buffer_head_ = (buffer_head_ + 1) % options_.window;
  }
  ++samples_seen_;
  metrics_.stream_samples_total->Increment();

  if (!RoundReady()) return std::optional<StreamEvent>{};
  return std::optional<StreamEvent>{RunRound()};
}

StreamEvent StreamingCad::RunRound() {
  Stopwatch round_watch;
  // Materialize the ring buffer into the reused window series (sensor-major).
  for (int t = 0; t < options_.window; ++t) {
    const int slot = (buffer_head_ + t) % options_.window;
    const double* sample = buffer_.data() + static_cast<size_t>(slot) * n_sensors_;
    for (int i = 0; i < n_sensors_; ++i) window_.set_value(i, t, sample[i]);
  }

  // The engine handles the decision, mu/sigma update and anomaly assembly;
  // this driver only supplies the window's position on the stream's time
  // axis: [samples_seen - window, samples_seen).
  const EngineRound round = engine_.Step(
      window_, 0, samples_seen_ - options_.window, samples_seen_);

  StreamEvent event;
  event.round = round.round;
  event.time_index = samples_seen_ - 1;
  event.n_variations = round.output->n_variations;
  event.abnormal = round.abnormal;
  event.outliers = round.output->outliers;
  event.entered = round.output->entered;
  event.entered_movers = round.output->entered_movers;
  event.mu = round.mu;
  event.sigma = round.sigma;
  event.round_seconds = round_watch.ElapsedSeconds();
  return event;
}

}  // namespace cad::core
