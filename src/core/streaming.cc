#include "core/streaming.h"

#include <algorithm>
#include <cmath>

#include "check/check.h"
#include "check/validators.h"
#include "ts/window.h"

namespace cad::core {

StreamingCad::StreamingCad(int n_sensors, const CadOptions& options)
    : n_sensors_(n_sensors),
      options_(options),
      metrics_(obs::PipelineMetrics::For(
          obs::ResolveRegistry(options.metrics_registry))),
      processor_(n_sensors, options),
      buffer_(static_cast<size_t>(options.window) * n_sensors, 0.0),
      open_sensor_flags_(n_sensors, 0) {}

obs::Snapshot StreamingCad::TelemetrySnapshot() const {
  return obs::ResolveRegistry(options_.metrics_registry).TakeSnapshot();
}

Status StreamingCad::WarmUp(const ts::MultivariateSeries& historical) {
  common::MutexLock lock(mu_);
  if (samples_seen_ > 0) {
    return Status::FailedPrecondition("WarmUp must precede the first Push");
  }
  if (historical.n_sensors() != n_sensors_) {
    return Status::InvalidArgument("historical sensor count mismatch");
  }
  CAD_RETURN_NOT_OK(options_.Validate(historical.length()));
  Result<ts::WindowPlan> plan =
      ts::WindowPlan::Make(historical.length(), options_.window, options_.step);
  if (!plan.ok()) return plan.status();
  RoundProcessor warmup_processor(n_sensors_, options_);
  const int burn_in = options_.EffectiveBurnIn();
  for (int r = 0; r < plan.value().rounds(); ++r) {
    RoundOutput round =
        warmup_processor.ProcessWindow(historical, plan.value().start(r));
    if (r >= burn_in) variation_stats_.Add(round.n_variations);
  }
  // Stage-boundary contract (CAD_CHECK_LEVEL=full only): warm-up must leave
  // a well-formed mu/sigma accumulator behind.
  CAD_VALIDATE(check::ValidateRunningStats(variation_stats_,
                                           options_.metrics_registry));
  warmed_up_ = true;
  return Status::Ok();
}

bool StreamingCad::RoundReady() const {
  if (samples_seen_ < options_.window) return false;
  return (samples_seen_ - options_.window) % options_.step == 0;
}

Result<std::optional<StreamEvent>> StreamingCad::Push(
    std::span<const double> readings) {
  if (static_cast<int>(readings.size()) != n_sensors_) {
    return Status::InvalidArgument("sample has " +
                                   std::to_string(readings.size()) +
                                   " readings, expected " +
                                   std::to_string(n_sensors_));
  }
  common::MutexLock lock(mu_);
  // Overwrite the oldest slot.
  const int slot = (buffer_head_ + buffered_) % options_.window;
  std::copy(readings.begin(), readings.end(),
            buffer_.begin() + static_cast<size_t>(slot) * n_sensors_);
  if (buffered_ < options_.window) {
    ++buffered_;
  } else {
    buffer_head_ = (buffer_head_ + 1) % options_.window;
  }
  ++samples_seen_;
  metrics_.stream_samples_total->Increment();

  if (!RoundReady()) return std::optional<StreamEvent>{};
  return std::optional<StreamEvent>{RunRound()};
}

StreamEvent StreamingCad::RunRound() {
  Stopwatch round_watch;
  // Materialize the ring buffer into a window-sized series (sensor-major).
  ts::MultivariateSeries window(n_sensors_, options_.window);
  for (int t = 0; t < options_.window; ++t) {
    const int slot = (buffer_head_ + t) % options_.window;
    const double* sample = buffer_.data() + static_cast<size_t>(slot) * n_sensors_;
    for (int i = 0; i < n_sensors_; ++i) window.set_value(i, t, sample[i]);
  }

  RoundOutput round = processor_.ProcessWindow(window, 0);

  StreamEvent event;
  event.round = rounds_completed_;
  event.time_index = samples_seen_ - 1;
  event.n_variations = round.n_variations;
  event.outliers = round.outliers;
  event.entered = round.entered;
  event.mu = variation_stats_.mean();
  event.sigma = variation_stats_.stddev();

  // Decision mirrors CadDetector: the first stream round has no preceding
  // round, burn-in rounds carry cold-start artifacts, and afterwards the
  // eta-sigma rule applies as soon as any statistics exist.
  const int burn_in = options_.EffectiveBurnIn();
  if (rounds_completed_ > 0 && rounds_completed_ >= burn_in &&
      variation_stats_.count() > 0) {
    const double deviation = std::abs(round.n_variations - event.mu);
    if (options_.use_sigma_rule) {
      const double sigma = std::max(event.sigma, options_.min_sigma);
      event.abnormal = deviation >= std::max(options_.eta * sigma, 1e-9);
    } else {
      event.abnormal = round.n_variations >= options_.fixed_xi;
    }
  }

  if (event.abnormal) {
    if (open_first_round_ < 0) {
      open_first_round_ = event.round;
      open_start_time_ = samples_seen_ - options_.window;
      open_detection_time_ = event.time_index;
    }
    for (int v : event.entered) {
      if (!open_sensor_flags_[v]) {
        open_sensor_flags_[v] = 1;
        open_sensors_.push_back(v);
      }
    }
    for (int v : round.entered_movers) open_movers_.push_back(v);
  } else if (open_first_round_ >= 0) {
    Anomaly anomaly;
    // Same attribution pipeline as CadDetector::Detect (cad_options.h).
    const std::vector<int>& candidates =
        !open_movers_.empty() ? open_movers_ : open_sensors_;
    const double cut = options_.EffectiveAttributionCut();
    for (int v : candidates) {
      if (processor_.tracker().ratio(v) < cut) anomaly.sensors.push_back(v);
    }
    if (anomaly.sensors.empty()) anomaly.sensors = candidates;
    std::sort(anomaly.sensors.begin(), anomaly.sensors.end());
    anomaly.sensors.erase(
        std::unique(anomaly.sensors.begin(), anomaly.sensors.end()),
        anomaly.sensors.end());
    anomaly.first_round = open_first_round_;
    anomaly.last_round = event.round - 1;
    anomaly.start_time = open_start_time_;
    anomaly.end_time = samples_seen_ - options_.step;  // end of previous round
    anomaly.detection_time = open_detection_time_;
    metrics_.anomalies_total->Increment();
    anomalies_.push_back(std::move(anomaly));
    open_sensors_.clear();
    open_movers_.clear();
    std::fill(open_sensor_flags_.begin(), open_sensor_flags_.end(), 0);
    open_first_round_ = -1;
  }

  if (event.abnormal) metrics_.abnormal_rounds_total->Increment();
  if (rounds_completed_ >= burn_in) variation_stats_.Add(round.n_variations);
  CAD_VALIDATE(check::ValidateRunningStats(variation_stats_,
                                           options_.metrics_registry));
  ++rounds_completed_;
  event.round_seconds = round_watch.ElapsedSeconds();
  return event;
}

}  // namespace cad::core
