// Result types shared by every CAD driver (batch CadDetector, streaming
// StreamingCad, and any future driver built on core::DetectionEngine). Kept
// free of pipeline includes so drivers can expose anomalies without pulling
// in each other's machinery.
#ifndef CAD_CORE_TYPES_H_
#define CAD_CORE_TYPES_H_

#include <vector>

namespace cad::core {

// One detected anomaly Z = (V_Z, R_Z) with its time-domain footprint.
struct Anomaly {
  std::vector<int> sensors;  // V_Z, ascending sensor ids
  int first_round = 0;       // R_Z = [first_round, last_round], 0-based
  int last_round = 0;
  int start_time = 0;      // first time point covered by the abnormal rounds
  int end_time = 0;        // one-past-the-end time point
  int detection_time = 0;  // time point at which the alarm fires (end of the
                           // first abnormal round's window, minus one)
};

// Per-round trace for introspection, parameter studies and tests.
struct RoundTrace {
  int round = 0;
  int start_time = 0;
  int n_variations = 0;   // n_r
  int n_outliers = 0;     // |O_r|
  int n_communities = 0;  // c_r
  int n_edges = 0;        // TSG edges after pruning
  double mu = 0.0;        // running mean before this round's update
  double sigma = 0.0;     // running stddev before this round's update
  bool abnormal = false;
};

}  // namespace cad::core

#endif  // CAD_CORE_TYPES_H_
